#!/usr/bin/env python
"""Overload bench: N tenants submitting a TPC-H Q1/Q6/Q3 mix concurrently.

Drives a :class:`~repro.driver.driver.QuerySession` — the PR 9 overload
control plane: admission gate, per-tenant token-bucket budgets, shared
circuit-breaker board, per-query retry budgets and cancellation — with a
round-robin multi-tenant workload, optionally under a seeded
:func:`~repro.cloud.faults.brownout_plan` storm, and writes a structured
trajectory::

    PYTHONPATH=src python scripts/run_overload_bench.py \
        [--tenants 3] [--queries 12] [--brownout] [--output BENCH_overload.json]

Reported per run: completed / rejected / cancelled / failed counts (typed
rejection reasons broken out), p50/p99 *modelled* query latency, modelled
dollars per query, the admission controller's session counters, and every
breaker's final state and transition log.  Deterministic by construction:
fixed dataset seeds, a seeded storm, and modelled (never wall-clock) latency
and cost.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cloud.environment import CloudEnvironment  # noqa: E402
from repro.cloud.faults import brownout_plan  # noqa: E402
from repro.driver.admission import AdmissionConfig  # noqa: E402
from repro.driver.driver import QuerySession  # noqa: E402
from repro.driver.resilience import ResiliencePolicy  # noqa: E402
from repro.errors import (  # noqa: E402
    QueryCancelledError,
    QueryRejectedError,
    RetryBudgetExhaustedError,
)
from repro.workload.queries import q1_plan, q3_plan, q6_plan  # noqa: E402
from repro.workload.tpch import (  # noqa: E402
    generate_lineitem_dataset,
    generate_orders_dataset,
)

QUERY_MIX = ("q1", "q6", "q3")


def percentile(values, fraction):
    """Nearest-rank percentile of a non-empty list."""
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run(arguments: argparse.Namespace) -> dict:
    env = CloudEnvironment.create()
    lineitem = generate_lineitem_dataset(
        env.s3,
        scale_factor=arguments.scale_factor,
        num_files=arguments.files,
        row_group_rows=4096,
    )
    orders = generate_orders_dataset(
        env.s3,
        scale_factor=arguments.scale_factor,
        num_files=max(2, arguments.files // 2),
        row_group_rows=4096,
        seed=7,
    )
    plans = {
        "q1": q1_plan(lineitem.paths),
        "q6": q6_plan(lineitem.paths),
        "q3": q3_plan(lineitem.paths, orders.paths),
    }
    tenants = [f"tenant-{index}" for index in range(arguments.tenants)]

    storm = None
    if arguments.brownout:
        # Caps strictly below the retry budgets so every admitted query
        # provably converges or fails typed (see tests/test_overload_chaos.py).
        storm = brownout_plan(
            seed=arguments.seed, storm_rate=0.2, capacity_limit=6, max_count=12
        )
        env.install_fault_plan(storm)

    admission = AdmissionConfig(
        max_concurrent_queries=arguments.max_concurrent,
        max_queued_queries=arguments.max_queued,
        tenant_invocation_capacity=arguments.invocation_budget,
        tenant_dollar_capacity=arguments.dollar_budget,
    )
    latencies = []
    dollars = []
    outcomes = {"completed": 0, "cancelled": 0, "failed": 0}
    rejected: dict = {}
    per_query = []
    try:
        with QuerySession(
            env,
            admission=admission,
            resilience_policy=ResiliencePolicy(max_attempts=14),
        ) as session:
            handles = []
            for index in range(arguments.queries):
                query = QUERY_MIX[index % len(QUERY_MIX)]
                tenant = tenants[index % len(tenants)]
                try:
                    handle = session.submit(
                        plans[query], tenant=tenant, max_worker_retries=13
                    )
                except QueryRejectedError as error:
                    rejected[error.reason] = rejected.get(error.reason, 0) + 1
                    per_query.append(
                        {"query": query, "tenant": tenant,
                         "outcome": f"rejected:{error.reason}"}
                    )
                    continue
                handles.append((query, tenant, handle))
            for query, tenant, handle in handles:
                record = {"query": query, "tenant": tenant}
                try:
                    result = handle.result(timeout=300.0)
                except QueryCancelledError as error:
                    outcomes["cancelled"] += 1
                    record["outcome"] = f"cancelled:{error.stage}"
                except RetryBudgetExhaustedError:
                    outcomes["failed"] += 1
                    record["outcome"] = "failed:retry_budget"
                except Exception as error:  # noqa: BLE001 - report and continue
                    outcomes["failed"] += 1
                    record["outcome"] = f"failed:{type(error).__name__}"
                else:
                    outcomes["completed"] += 1
                    statistics = result.statistics
                    latencies.append(statistics.latency_seconds)
                    dollars.append(statistics.cost_total)
                    record.update(
                        outcome="completed",
                        modelled_latency_seconds=statistics.latency_seconds,
                        cost_dollars=statistics.cost_total,
                        retries=statistics.resilience.retries,
                        budget_spent=statistics.overload["retry_budget"][
                            "spent_total"
                        ],
                    )
                per_query.append(record)
            session_dict = session.to_dict()
    finally:
        env.install_fault_plan(None)

    return {
        "config": {
            "tenants": arguments.tenants,
            "queries": arguments.queries,
            "query_mix": list(QUERY_MIX),
            "scale_factor": arguments.scale_factor,
            "files": arguments.files,
            "brownout": bool(arguments.brownout),
            "seed": arguments.seed,
            "max_concurrent": arguments.max_concurrent,
            "max_queued": arguments.max_queued,
            "dollar_budget": arguments.dollar_budget,
            "invocation_budget": arguments.invocation_budget,
        },
        "outcomes": {**outcomes, "rejected": rejected},
        "modelled_latency_p50_seconds": percentile(latencies, 0.50) if latencies else None,
        "modelled_latency_p99_seconds": percentile(latencies, 0.99) if latencies else None,
        "dollars_total": sum(dollars),
        "dollars_per_query": sum(dollars) / len(dollars) if dollars else None,
        "faults_injected": storm.to_dict() if storm is not None else {},
        "session": session_dict,
        "per_query": per_query,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--queries", type=int, default=12)
    parser.add_argument("--scale-factor", type=float, default=0.002)
    parser.add_argument("--files", type=int, default=8)
    parser.add_argument("--max-concurrent", type=int, default=4)
    parser.add_argument("--max-queued", type=int, default=8)
    parser.add_argument("--dollar-budget", type=float, default=1.0)
    parser.add_argument("--invocation-budget", type=float, default=4096.0)
    parser.add_argument("--brownout", action="store_true",
                        help="install a seeded brownout storm")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", default="BENCH_overload.json")
    arguments = parser.parse_args()

    trajectory = run(arguments)
    with open(arguments.output, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    outcomes = trajectory["outcomes"]
    print(
        f"{arguments.queries} queries / {arguments.tenants} tenants"
        + (" under brownout" if arguments.brownout else "")
        + f": {outcomes['completed']} completed, "
        f"{sum(outcomes['rejected'].values())} rejected, "
        f"{outcomes['cancelled']} cancelled, {outcomes['failed']} failed"
    )
    if trajectory["modelled_latency_p50_seconds"] is not None:
        print(
            f"modelled latency p50 {trajectory['modelled_latency_p50_seconds']:.3f}s "
            f"p99 {trajectory['modelled_latency_p99_seconds']:.3f}s, "
            f"${trajectory['dollars_per_query']:.6f}/query"
        )
    print(f"wrote {arguments.output}")
    return 1 if outcomes["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
