#!/usr/bin/env python
"""Compare a fresh hot-path benchmark run against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py   # writes BENCH_hot_paths.json
    PYTHONPATH=src python scripts/run_tpch_experiments.py # writes BENCH_tpch.json
    python scripts/check_bench_regression.py [--baseline BENCH_hot_paths.json] \
        [--baseline BENCH_tpch.json] [--current fresh.json] [--tolerance 0.6]

``--baseline`` is repeatable; with none given, both committed trajectories
(``BENCH_hot_paths.json`` and ``BENCH_tpch.json``) are loaded and merged.

Four kinds of checks:

* **absolute floors** — the speedups the PR's acceptance criteria promise
  (partition scatter >= 5x, payload round-trip >= 3x, shuffle PUT collapse
  >= 16x) must hold in the *current* run;
* **hardware-conditional floors** — floors that only hold on suitable
  hardware (the process-pool wall speedup needs >= 4 cores); when the
  recorded hardware does not qualify they are skipped with a printed
  notice, never passed silently;
* **absolute request ceilings** — the write-combined shuffle plane must stay
  within its O(P) request budget at the benchmark's 32x32 shape (a silent
  fallback to the O(P²) per-receiver path fails here);
* **absolute ratio ceilings** — overhead ratios that must stay near 1.0 in
  the *current* run: the resilience plane's fault hooks must cost the
  fault-free TPC-H Q1 path less than 2% of wall time, the integrity
  plane's end-to-end checksumming less than 3%, and the armed overload
  plane (admission, budgets, breakers, cancellation) less than 2%;
* **relative regression** — each current speedup must stay within
  ``tolerance`` of the committed baseline (defaults to 60%, loose enough for
  machine-to-machine noise, tight enough to catch an accidental
  de-vectorisation).

With no ``--current`` file, the baseline itself is checked against the
absolute floors — a cheap CI sanity check that the committed trajectory still
backs the claims in the README.

Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Minimum speedups promised by the acceptance criteria, keyed by
#: ``(section, field)``: the data-plane floors from PR 1, the operator floors
#: from PR 2 (join probe, exchange routing, shuffle codec framing), the
#: scan-plane floors from PR 3 (late-materialization scan filter,
#: encoding-aware predicate evaluation), the shuffle I/O-plane floors
#: from PR 4 (write-combined request collapse and its modelled cost), and
#: the join-path floors from PR 5 (end-to-end TPC-H Q3 repartitioned over
#: the write-combined exchange).
ABSOLUTE_FLOORS = {
    ("partition_scatter", "speedup"): 5.0,
    ("payload_roundtrip", "speedup"): 3.0,
    ("join_probe", "speedup"): 5.0,
    ("exchange_route", "speedup"): 5.0,
    ("shuffle_codec", "speedup"): 1.2,
    ("shuffle_codec", "framing_speedup"): 5.0,
    ("scan_filter", "speedup"): 3.0,
    ("encoded_eval", "speedup"): 1.5,
    ("shuffle_requests", "put_collapse"): 16.0,
    ("shuffle_requests", "request_cost_collapse"): 1.5,
    ("shuffle_requests", "modelled_speedup"): 1.2,
    ("join_e2e", "put_collapse"): 8.0,
    ("join_e2e", "request_cost_collapse"): 4.0,
    ("join_e2e", "modelled_speedup"): 1.2,
    # PR 10: the five N-way join DAGs (Q5/Q7/Q9/Q10/Q18) in BENCH_tpch.json
    # must all be bit-identical to their NumPy references, and each must
    # have lowered to a genuine multi-stage DAG (>= 2 join stages).
    ("dag_join", "correct_fraction"): 1.0,
    ("dag_join", "min_dag_stages"): 2.0,
}

#: Floors that only hold on suitable hardware, keyed ``(section, field)``.
#: Each entry names a precondition field in the same section and its minimum
#: value; when the measurement's hardware does not meet it, the floor is
#: *skipped with a printed notice* — never silently passed — so a CI log
#: always shows whether the claim was actually checked.  The process-pool
#: wall speedup (PR 6) needs real cores: serial vs processes on a 1-core
#: host ties by construction.
CONDITIONAL_FLOORS = {
    ("end_to_end_q1", "wall_speedup"): {
        "floor": 2.0,
        "requires": ("cpu_count", 4),
    },
}

#: Maximum *absolute* request counts of the write-combined shuffle plane at
#: its 32x32-worker benchmark shape.  A silent fallback to the legacy
#: O(P²)-request path (1024 PUTs) blows straight through these, so it fails
#: tier-1 rather than shipping unnoticed.
ABSOLUTE_REQUEST_CEILINGS = {
    ("shuffle_requests", "combined_put_requests"): 32,
    ("shuffle_requests", "combined_get_requests"): 32 * 32,
    ("shuffle_requests", "combined_list_requests"): 512,
    ("shuffle_requests", "combined_head_requests"): 0,
    # The join benchmark runs 16 mappers per side into 16 join workers: one
    # combined PUT per mapper on both sides, at most one ranged GET per
    # (mapper, reducer, side) slice, and — because the mappers announce their
    # offset-bearing keys through the driver's map barrier — zero LIST/HEAD
    # discovery requests.
    ("join_e2e", "combined_put_requests"): 2 * 16,
    ("join_e2e", "combined_get_requests"): 2 * 16 * 16,
    ("join_e2e", "combined_list_requests"): 0,
    ("join_e2e", "combined_head_requests"): 0,
    # PR 10: every wave of an N-way DAG learns its inputs from the combined
    # objects announced through the result-queue barrier — across all five
    # TPC-H DAG queries and all of their waves, zero LIST/HEAD discovery
    # requests.  A single regression to discovery-by-listing fails here.
    ("dag_join", "discovery_list_requests"): 0,
    ("dag_join", "discovery_head_requests"): 0,
}

#: Maximum overhead ratios, keyed ``(section, field)``.  The resilience
#: plane (PR 7) promises the fault-injection hooks are free when no plan
#: fires: serial TPC-H Q1 with a zero-rate FaultPlan installed must stay
#: within 2% of the plain fast path's wall time.  The integrity plane
#: (PR 8) promises end-to-end checksumming — crc generation at write,
#: verification at every read, message digests — costs the checksummed
#: TPC-H Q1 less than 3% over the same query with integrity off.  The
#: overload control plane (PR 9) promises that an armed QuerySession —
#: admission gate, tenant budgets, breaker board, retry budget, cancellation
#: token — costs serial TPC-H Q1 less than 2% over a bare execute.
ABSOLUTE_RATIO_CEILINGS = {
    ("end_to_end_q1", "faultfree_overhead_ratio"): 1.02,
    ("end_to_end_q1", "integrity_overhead_ratio"): 1.03,
    ("end_to_end_q1", "admission_overhead_ratio"): 1.02,
}

#: Fields compared against the committed baseline for relative regressions.
RELATIVE_FIELDS = (
    "speedup",
    "framing_speedup",
    "put_collapse",
    "request_cost_collapse",
    "modelled_speedup",
)


def load_results(path: Path) -> dict:
    """Read the ``{"results": {...}}`` trajectory written by the benchmark."""
    try:
        with path.open(encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            f"{path}: no such file (run `PYTHONPATH=src python "
            f"benchmarks/bench_hot_paths.py` to produce one)"
        )
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    results = document.get("results")
    if not isinstance(results, dict):
        raise SystemExit(f"{path}: not a benchmark trajectory (missing 'results')")
    return results


def check(
    baseline_paths: Path | list[Path],
    current_path: Path | None,
    tolerance: float,
    sections: list[str] | None = None,
) -> int:
    if isinstance(baseline_paths, (str, Path)):
        baseline_paths = [baseline_paths]
    baseline: dict = {}
    for path in baseline_paths:
        baseline.update(load_results(path))
    current = load_results(current_path) if current_path else baseline
    failures = []

    def in_scope(name: str) -> bool:
        return sections is None or name in sections

    for (name, field), floor in ABSOLUTE_FLOORS.items():
        if not in_scope(name):
            continue
        measurement = current.get(name)
        if measurement is None:
            failures.append(f"{name}: missing from current results")
            continue
        speedup = measurement.get(field, 0.0)
        if speedup < floor:
            failures.append(
                f"{name}: {field} {speedup:.2f}x below floor {floor:.1f}x"
            )
        else:
            print(f"ok: {name} {field} {speedup:.2f}x (floor {floor:.1f}x)")

    for (name, field), spec in CONDITIONAL_FLOORS.items():
        if not in_scope(name):
            continue
        measurement = current.get(name)
        if measurement is None:
            failures.append(f"{name}: missing from current results")
            continue
        gate_field, gate_minimum = spec["requires"]
        gate_value = measurement.get(gate_field)
        if gate_value is None:
            failures.append(
                f"{name}: missing the {gate_field!r} field needed to decide "
                f"whether the {field} floor applies"
            )
            continue
        if gate_value < gate_minimum:
            # Skip *with a notice* — a silent pass here would read as if the
            # speedup claim had been verified on this machine.
            print(
                f"skipped: {name} {field} floor {spec['floor']:.1f}x NOT "
                f"checked ({gate_field} = {gate_value} < required "
                f"{gate_minimum}; run on a bigger machine to verify)"
            )
            continue
        observed = measurement.get(field, 0.0)
        if observed < spec["floor"]:
            failures.append(
                f"{name}: {field} {observed:.2f}x below floor "
                f"{spec['floor']:.1f}x (with {gate_field} = {gate_value})"
            )
        else:
            print(
                f"ok: {name} {field} {observed:.2f}x (floor {spec['floor']:.1f}x, "
                f"{gate_field} = {gate_value})"
            )

    for (name, field), ceiling in ABSOLUTE_REQUEST_CEILINGS.items():
        if not in_scope(name):
            continue
        measurement = current.get(name)
        if measurement is None:
            failures.append(f"{name}: missing from current results")
            continue
        observed = measurement.get(field)
        if observed is None:
            failures.append(f"{name}: missing the {field!r} request counter")
        elif observed > ceiling:
            failures.append(
                f"{name}: {field} = {observed} requests exceeds the "
                f"ceiling of {ceiling} (O(P²) fallback?)"
            )
        else:
            print(f"ok: {name} {field} {observed} requests (ceiling {ceiling})")

    for (name, field), ceiling in ABSOLUTE_RATIO_CEILINGS.items():
        if not in_scope(name):
            continue
        measurement = current.get(name)
        if measurement is None:
            failures.append(f"{name}: missing from current results")
            continue
        observed = measurement.get(field)
        if observed is None:
            failures.append(f"{name}: missing the {field!r} ratio")
        elif observed > ceiling:
            failures.append(
                f"{name}: {field} = {observed:.3f} exceeds the ceiling of "
                f"{ceiling:.2f} (fault hooks taxing the fault-free path?)"
            )
        else:
            print(f"ok: {name} {field} {observed:.3f} (ceiling {ceiling:.2f})")

    if current_path is not None:
        for name, measurement in baseline.items():
            if not in_scope(name):
                continue
            for field in RELATIVE_FIELDS:
                reference = measurement.get(field)
                observed = current.get(name, {}).get(field)
                if reference is None or observed is None:
                    continue
                allowed = reference * tolerance
                if observed < allowed:
                    failures.append(
                        f"{name}: {field} regressed to {observed:.2f}x, "
                        f"below {allowed:.2f}x ({tolerance:.0%} of baseline "
                        f"{reference:.2f}x)"
                    )
                else:
                    print(
                        f"ok: {name} {field} {observed:.2f}x vs baseline "
                        f"{reference:.2f}x"
                    )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        action="append",
        default=None,
        help="committed trajectory to compare against (repeatable; defaults "
        "to BENCH_hot_paths.json + BENCH_tpch.json)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=None,
        help="fresh benchmark output; omit to only check the baseline's floors",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.6,
        help="fraction of the baseline speedup the current run must retain",
    )
    parser.add_argument(
        "--sections",
        action="append",
        default=None,
        metavar="SECTION",
        help="check only this section (repeatable); defaults to all sections",
    )
    arguments = parser.parse_args()
    repo_root = Path(__file__).resolve().parent.parent
    baselines = arguments.baseline or [
        repo_root / "BENCH_hot_paths.json",
        repo_root / "BENCH_tpch.json",
    ]
    return check(
        baselines,
        arguments.current,
        arguments.tolerance,
        sections=arguments.sections,
    )


if __name__ == "__main__":
    raise SystemExit(main())
