#!/usr/bin/env python
"""TPC-H experiment runner: ten queries, modelled metrics, correctness column.

Runs the supported TPC-H queries — the single-table aggregates (Q1, Q6), the
two-table joins (Q3, Q12, Q14), and the N-way join DAGs (Q5, Q7, Q9, Q10,
Q18) — end to end through :class:`~repro.driver.driver.LambadaDriver` on a
generated dataset, and writes a structured trajectory::

    PYTHONPATH=src python scripts/run_tpch_experiments.py \
        [--sf 0.002] [--runs 3] [--warmup 1] [--query q5 --query q9 ...] \
        [--output BENCH_tpch.json]

Reported per query: median/min modelled latency and modelled dollars over
``--runs`` measured executions (after ``--warmup`` unmeasured ones), worker
and DAG-stage counts, the exchange request profile (combined PUTs, ranged
GETs, and LIST/HEAD discovery requests), and a **correctness column** — every
measured run is compared bit-identically against a single-pass NumPy
reference over the raw generator tables.  The ``dag_join`` summary section
aggregates the five DAG queries for the regression guard in
``scripts/check_bench_regression.py``: all of them must stay correct and
issue **zero** discovery requests per wave (the write-combined exchange
announces offsets through the result-queue barrier).

Deterministic by construction: fixed dataset seed, modelled (never
wall-clock) latency and cost.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.cloud.environment import CloudEnvironment  # noqa: E402
from repro.driver.driver import LambadaDriver  # noqa: E402
from repro.workload import queries as q  # noqa: E402
from repro.workload.tpch import (  # noqa: E402
    CustomerGenerator,
    LineitemGenerator,
    NationGenerator,
    OrdersGenerator,
    PartGenerator,
    RegionGenerator,
    SupplierGenerator,
    generate_customer_dataset,
    generate_lineitem_dataset,
    generate_nation_dataset,
    generate_orders_dataset,
    generate_part_dataset,
    generate_region_dataset,
    generate_supplier_dataset,
)

ALL_QUERIES = ("q1", "q3", "q5", "q6", "q7", "q9", "q10", "q12", "q14", "q18")
DAG_QUERIES = ("q5", "q7", "q9", "q10", "q18")


def build_stack(store, scale_factor: float, files: int, seed: int):
    """Generate the seven relations as datasets plus raw reference tables."""
    datasets = {
        "lineitem": generate_lineitem_dataset(
            store, scale_factor=scale_factor, num_files=files, seed=seed
        ),
        "orders": generate_orders_dataset(
            store, scale_factor=scale_factor, num_files=max(2, files // 2), seed=seed
        ),
        "customer": generate_customer_dataset(
            store, scale_factor=scale_factor, seed=seed
        ),
        "supplier": generate_supplier_dataset(
            store, scale_factor=scale_factor, seed=seed
        ),
        "part": generate_part_dataset(store, scale_factor=scale_factor, seed=seed),
        "nation": generate_nation_dataset(store, scale_factor=scale_factor, seed=seed),
        "region": generate_region_dataset(store, scale_factor=scale_factor, seed=seed),
    }
    tables = {
        "lineitem": LineitemGenerator(scale_factor, seed=seed).generate(),
        "orders": OrdersGenerator(scale_factor, seed=seed).generate(),
        "customer": CustomerGenerator(scale_factor, seed=seed).generate(),
        "supplier": SupplierGenerator(scale_factor, seed=seed).generate(),
        "part": PartGenerator(scale_factor, seed=seed).generate(),
        "nation": NationGenerator(scale_factor, seed=seed).generate(),
        "region": RegionGenerator(scale_factor, seed=seed).generate(),
    }
    return datasets, tables


def build_cases(datasets, tables):
    """``name -> (logical plan, reference table)`` for every query."""
    p = {name: dataset.paths for name, dataset in datasets.items()}
    t = tables
    return {
        "q1": (q.q1_plan(p["lineitem"]), q.reference_q1(t["lineitem"])),
        "q3": (
            q.q3_plan(p["lineitem"], p["orders"]),
            q.reference_q3(t["lineitem"], t["orders"]),
        ),
        "q5": (
            q.q5_plan(p["lineitem"], p["orders"], p["customer"], p["supplier"],
                      p["nation"], p["region"]),
            q.reference_q5(t["lineitem"], t["orders"], t["customer"],
                           t["supplier"], t["nation"], t["region"]),
        ),
        "q6": (
            q.q6_plan(p["lineitem"]),
            {"revenue": np.asarray([q.reference_q6(t["lineitem"])])},
        ),
        "q7": (
            q.q7_plan(p["lineitem"], p["orders"], p["customer"], p["supplier"]),
            q.reference_q7(t["lineitem"], t["orders"], t["customer"],
                           t["supplier"]),
        ),
        "q9": (
            q.q9_plan(p["lineitem"], p["part"], p["supplier"], p["orders"],
                      p["nation"]),
            q.reference_q9(t["lineitem"], t["part"], t["supplier"],
                           t["orders"], t["nation"]),
        ),
        "q10": (
            q.q10_plan(p["lineitem"], p["orders"], p["customer"], p["nation"]),
            q.reference_q10(t["lineitem"], t["orders"], t["customer"],
                            t["nation"]),
        ),
        "q12": (
            q.q12_plan(p["lineitem"], p["orders"]),
            q.reference_q12(t["lineitem"], t["orders"]),
        ),
        "q14": (
            q.q14_plan(p["lineitem"], p["part"]),
            q.reference_q14(t["lineitem"], t["part"]),
        ),
        "q18": (
            q.q18_plan(p["lineitem"], p["orders"], p["customer"]),
            q.reference_q18(t["lineitem"], t["orders"], t["customer"]),
        ),
    }


def tables_equal(reference, table, exact: bool) -> bool:
    """Compare an engine result against its NumPy reference.

    The DAG queries (``exact=True``) must be *bit-identical*: their measures
    are exactly integer-valued in float64, so summation order cannot show.
    The legacy queries sum cent-rounded prices, where partial-aggregate
    merge order moves the last few ULPs — those are held to ``rtol=1e-9``
    (the same bound the test suite uses for them).
    """
    if set(reference) != set(table):
        return False
    for name in reference:
        lhs = np.asarray(table[name])
        rhs = np.asarray(reference[name])
        if lhs.shape != rhs.shape:
            return False
        if exact:
            if not np.array_equal(lhs, rhs, equal_nan=True):
                return False
        elif not np.allclose(lhs, rhs, rtol=1e-9, equal_nan=True):
            return False
    return True


def run(arguments: argparse.Namespace) -> dict:
    env = CloudEnvironment.create()
    datasets, tables = build_stack(
        env.s3, arguments.sf, arguments.files, arguments.seed
    )
    cases = build_cases(datasets, tables)
    driver = LambadaDriver(env, memory_mib=arguments.memory_mib)

    names = arguments.query or list(ALL_QUERIES)
    unknown = sorted(set(names) - set(ALL_QUERIES))
    if unknown:
        raise SystemExit(f"unknown queries: {', '.join(unknown)}")

    results = {}
    for name in names:
        plan, reference = cases[name]
        exact = name in DAG_QUERIES
        for _ in range(arguments.warmup):
            driver.execute(plan)

        latencies, dollars, correct = [], [], True
        last = None
        for _ in range(arguments.runs):
            last = driver.execute(plan)
            latencies.append(last.statistics.latency_seconds)
            dollars.append(last.statistics.cost_total)
            correct = correct and tables_equal(reference, last.table, exact)

        stats = last.statistics
        exchange = stats.exchange
        results[name] = {
            "correct": bool(correct),
            "comparison": "bit_identical" if exact else "allclose_rtol_1e-9",
            "rows": int(last.num_rows),
            "runs": arguments.runs,
            "dag_stages": int(stats.dag_stages),
            "workers": int(stats.num_workers),
            "modelled_latency_median_seconds": statistics.median(latencies),
            "modelled_latency_min_seconds": min(latencies),
            "modelled_cost_median_dollars": statistics.median(dollars),
            "exchange_put_requests": int(exchange.put_requests),
            "exchange_combined_put_requests": int(exchange.combined_put_requests),
            "exchange_get_requests": int(exchange.get_requests),
            "discovery_list_requests": int(exchange.list_requests),
            "discovery_head_requests": int(exchange.head_requests),
            "gc_objects_deleted": int(stats.gc_objects_deleted),
        }
        print(
            f"{name:<4} {'ok' if correct else 'WRONG':<5} "
            f"rows {results[name]['rows']:>5}  "
            f"stages {results[name]['dag_stages']}  "
            f"latency {results[name]['modelled_latency_median_seconds']:6.2f} s  "
            f"cost {results[name]['modelled_cost_median_dollars'] * 100:8.4f} ¢  "
            f"discovery {results[name]['discovery_list_requests'] + results[name]['discovery_head_requests']}"
        )

    dag_measured = [n for n in names if n in DAG_QUERIES]
    if dag_measured:
        results["dag_join"] = {
            "queries": dag_measured,
            "correct_fraction": sum(
                results[n]["correct"] for n in dag_measured
            ) / len(dag_measured),
            "min_dag_stages": min(results[n]["dag_stages"] for n in dag_measured),
            "total_waves": sum(results[n]["dag_stages"] + 1 for n in dag_measured),
            "discovery_list_requests": sum(
                results[n]["discovery_list_requests"] for n in dag_measured
            ),
            "discovery_head_requests": sum(
                results[n]["discovery_head_requests"] for n in dag_measured
            ),
            "combined_put_requests": sum(
                results[n]["exchange_combined_put_requests"] for n in dag_measured
            ),
        }

    return {
        "config": {
            "scale_factor": arguments.sf,
            "files": arguments.files,
            "seed": arguments.seed,
            "runs": arguments.runs,
            "warmup": arguments.warmup,
            "memory_mib": arguments.memory_mib,
            "queries": names,
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sf", type=float, default=0.002,
                        help="TPC-H scale factor of the generated dataset")
    parser.add_argument("--files", type=int, default=4,
                        help="LINEITEM file count (ORDERS gets half)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--runs", type=int, default=3,
                        help="measured executions per query")
    parser.add_argument("--warmup", type=int, default=1,
                        help="unmeasured executions per query before timing")
    parser.add_argument("--memory-mib", type=int, default=2048)
    parser.add_argument("--query", action="append", default=None,
                        metavar="NAME",
                        help="run only this query (repeatable); default all")
    parser.add_argument("--output", default="BENCH_tpch.json")
    arguments = parser.parse_args()

    trajectory = run(arguments)
    with open(arguments.output, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    results = trajectory["results"]
    wrong = [n for n, m in results.items() if m.get("correct") is False]
    print(f"\nwrote {arguments.output}: {len(results)} sections")
    if wrong:
        print(f"INCORRECT results: {', '.join(wrong)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
