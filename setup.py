"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 editable wheels, which requires the `wheel`
package; in fully offline environments without it, `python setup.py develop`
installs the same editable path entry.

The interpreter floor and the NumPy floor are declared here so CI installs
are reproducible: the code uses 3.10+ typing syntax and relies on NumPy
>= 1.24 semantics (Generator.choice over int64 domains, dtype-stable
``np.unique`` inverses) that the kernels are pinned against.
"""
from setuptools import find_packages, setup

setup(
    name="lambada-repro",
    version="0.5.0",
    description="Reproduction of serverless interactive analytics on cold data",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
