"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 editable wheels, which requires the `wheel`
package; in fully offline environments without it, `python setup.py develop`
installs the same editable path entry.
"""
from setuptools import setup

setup()
