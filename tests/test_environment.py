"""Tests for the bundled cloud environment."""

import pytest

from repro.cloud.environment import CloudEnvironment


def test_create_wires_shared_clock_and_ledger():
    env = CloudEnvironment.create()
    assert env.s3.clock is env.clock
    assert env.sqs.clock is env.clock
    assert env.dynamodb.clock is env.clock
    assert env.lambda_service.clock is env.clock
    assert env.s3.ledger is env.ledger
    assert env.lambda_service.ledger is env.ledger


def test_create_rejects_unknown_region():
    with pytest.raises(ValueError):
        CloudEnvironment.create(region="moon")


def test_total_cost_accumulates_across_services():
    env = CloudEnvironment.create()
    env.s3.ensure_bucket("b")
    env.s3.put_object("b", "k", b"x" * 10)
    env.s3.get_object("b", "k")
    env.sqs.create_queue("q")
    env.sqs.send_message("q", "hello")
    assert env.total_cost() > 0
    breakdown = env.cost_breakdown()
    assert "s3.get_requests" in breakdown
    assert "sqs.requests" in breakdown


def test_reset_metering_clears_cost_and_clock():
    env = CloudEnvironment.create()
    env.s3.ensure_bucket("b")
    env.s3.put_object("b", "k", b"x")
    env.clock.advance(10)
    env.reset_metering()
    assert env.total_cost() == 0.0
    assert env.clock.now == 0.0


def test_concurrency_limit_is_passed_through():
    env = CloudEnvironment.create(concurrency_limit=7)
    assert env.lambda_service.concurrency_limit == 7


def test_rate_limit_flag_is_passed_through():
    env = CloudEnvironment.create(enforce_s3_rate_limits=True)
    assert env.s3.enforce_rate_limits is True
