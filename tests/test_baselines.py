"""Tests for the IaaS and QaaS baseline models (Figures 1 and 12)."""

import pytest

from repro.baselines.external import LAMBADA_PAPER_RESULTS, LOCUS_RESULTS, POCKET_RESULTS
from repro.baselines.iaas import (
    ALWAYS_ON_CONFIGURATIONS,
    AlwaysOnIaasModel,
    JobScopedFaasModel,
    JobScopedIaasModel,
)
from repro.baselines.qaas import AthenaModel, BigQueryModel
from repro.config import TB


# -- Figure 1a: job-scoped resources -----------------------------------------------------

def test_iaas_more_instances_faster_but_not_cheaper():
    model = JobScopedIaasModel()
    few = model.point(4)
    many = model.point(64)
    assert many.running_time_seconds < few.running_time_seconds
    assert many.cost_dollars >= few.cost_dollars * 0.9


def test_iaas_latency_floor_is_startup_time():
    model = JobScopedIaasModel()
    assert model.point(256).running_time_seconds > 120.0


def test_faas_reaches_interactive_latencies():
    model = JobScopedFaasModel()
    assert model.point(4096).running_time_seconds < 10.0
    assert model.point(8).running_time_seconds > 100.0


def test_faas_never_below_its_startup_floor():
    model = JobScopedFaasModel()
    assert model.point(100_000).running_time_seconds >= 4.0


def test_iaas_cheapest_configuration_cheaper_than_faas():
    """Figure 1a: at the low-cost end, IaaS is up to an order of magnitude cheaper."""
    iaas = min(p.cost_dollars for p in JobScopedIaasModel().sweep([1, 4, 16, 64, 256]))
    faas = min(p.cost_dollars for p in JobScopedFaasModel().sweep([8, 64, 512, 4096]))
    assert iaas < faas


def test_faas_interactive_point_faster_than_any_iaas_point():
    """Figure 1a: FaaS can reach latencies job-scoped IaaS cannot (startup-bound)."""
    fastest_iaas = min(
        p.running_time_seconds for p in JobScopedIaasModel().sweep([1, 4, 16, 64, 256])
    )
    fastest_faas = min(
        p.running_time_seconds for p in JobScopedFaasModel().sweep([8, 64, 512, 4096])
    )
    assert fastest_faas < fastest_iaas / 10


def test_sweep_rejects_bad_counts():
    with pytest.raises(ValueError):
        JobScopedIaasModel().point(0)
    with pytest.raises(ValueError):
        JobScopedFaasModel().point(0)


# -- Figure 1b: always-on resources -------------------------------------------------------

def test_always_on_configurations_meet_latency_target():
    model = AlwaysOnIaasModel()
    for configuration in ALWAYS_ON_CONFIGURATIONS:
        assert model.scan_seconds(configuration, TB) <= 11.0


def test_always_on_cost_independent_of_query_rate():
    model = AlwaysOnIaasModel()
    config = ALWAYS_ON_CONFIGURATIONS[0]
    assert model.hourly_cost(config, 1) == model.hourly_cost(config, 64)


def test_usage_based_costs_grow_linearly():
    model = AlwaysOnIaasModel()
    assert model.faas_hourly_cost(16) == pytest.approx(2 * model.faas_hourly_cost(8))
    assert model.qaas_hourly_cost(16) == pytest.approx(2 * model.qaas_hourly_cost(8))


def test_faas_cheaper_than_qaas_per_query():
    model = AlwaysOnIaasModel()
    assert model.faas_hourly_cost(1) < model.qaas_hourly_cost(1)


def test_crossover_exists_with_moderate_query_rate():
    """Figure 1b: at a moderate query rate the always-on cluster becomes cheaper
    than the usage-based alternatives."""
    model = AlwaysOnIaasModel()
    cheapest_cluster = min(model.hourly_cost(c) for c in ALWAYS_ON_CONFIGURATIONS)
    assert model.qaas_hourly_cost(1) < cheapest_cluster
    assert model.qaas_hourly_cost(64) > cheapest_cluster
    assert model.faas_hourly_cost(64) > cheapest_cluster


# -- Figure 12: QaaS comparison ---------------------------------------------------------------

def test_athena_cost_reflects_selectivity():
    athena = AthenaModel()
    assert athena.estimate("q6").cost_dollars < athena.estimate("q1").cost_dollars / 10


def test_bigquery_cost_ignores_selectivity():
    bigquery = BigQueryModel()
    q1 = bigquery.estimate("q1").cost_dollars
    q6 = bigquery.estimate("q6").cost_dollars
    assert q6 > q1 / 3  # only the column fraction differs, not the selectivity


def test_bigquery_more_expensive_than_athena_for_q1():
    """§5.4.3: BigQuery's loaded format is >5x larger, so Q1 costs much more."""
    assert (
        BigQueryModel().estimate("q1").cost_dollars
        > 3 * AthenaModel().estimate("q1").cost_dollars
    )


def test_athena_latency_scales_linearly_with_sf():
    athena = AthenaModel()
    assert athena.estimate("q1", 10000).latency_seconds == pytest.approx(
        10 * athena.estimate("q1", 1000).latency_seconds
    )


def test_bigquery_latency_scales_sublinearly():
    bigquery = BigQueryModel()
    ratio = (
        bigquery.estimate("q1", 10000).latency_seconds
        / bigquery.estimate("q1", 1000).latency_seconds
    )
    assert 1 < ratio < 10


def test_bigquery_cold_includes_load_time():
    bigquery = BigQueryModel()
    cold = bigquery.estimate("q1", 1000, cold=True)
    hot = bigquery.estimate("q1", 1000, cold=False)
    assert cold.cold_latency_seconds > 2000  # 40 min load
    assert hot.cold_latency_seconds == hot.latency_seconds


def test_bigquery_load_time_anchors():
    bigquery = BigQueryModel()
    assert bigquery.load_seconds(1000) == pytest.approx(40 * 60)
    assert bigquery.load_seconds(10000) == pytest.approx(6.7 * 3600)


def test_unknown_query_rejected():
    with pytest.raises(ValueError):
        AthenaModel().estimate("q99")
    with pytest.raises(ValueError):
        BigQueryModel().estimate("q99")


# -- external reference numbers -----------------------------------------------------------------

def test_published_numbers_present_and_sane():
    assert {r.workers for r in POCKET_RESULTS if r.system == "pocket"} == {250, 500, 1000}
    assert all(r.running_time_seconds > 0 for r in POCKET_RESULTS + LOCUS_RESULTS)
    assert LAMBADA_PAPER_RESULTS[250] > LAMBADA_PAPER_RESULTS[1000]
