"""Tests for schema and column types."""

import numpy as np
import pytest

from repro.errors import SchemaMismatchError, UnknownColumnError, UnsupportedTypeError
from repro.formats.schema import ColumnType, Field, Schema


def test_column_type_numpy_roundtrip():
    for ctype in ColumnType:
        assert ColumnType.from_numpy(ctype.numpy_dtype) is ctype


def test_column_type_item_sizes():
    assert ColumnType.INT32.item_size == 4
    assert ColumnType.INT64.item_size == 8
    assert ColumnType.FLOAT64.item_size == 8


def test_from_numpy_widens_small_ints():
    assert ColumnType.from_numpy(np.dtype("int16")) is ColumnType.INT32


def test_from_numpy_maps_float32_to_float64():
    assert ColumnType.from_numpy(np.dtype("float32")) is ColumnType.FLOAT64


def test_from_numpy_rejects_strings():
    with pytest.raises(UnsupportedTypeError):
        ColumnType.from_numpy(np.dtype("U10"))


def test_schema_from_pairs_and_lookup():
    schema = Schema.from_pairs([("a", ColumnType.INT64), ("b", ColumnType.FLOAT64)])
    assert schema.names == ["a", "b"]
    assert schema.field("b").type is ColumnType.FLOAT64
    assert schema.index_of("b") == 1
    assert "a" in schema
    assert "z" not in schema
    assert len(schema) == 2


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaMismatchError):
        Schema.from_pairs([("a", ColumnType.INT64), ("a", ColumnType.INT32)])


def test_schema_unknown_column_raises():
    schema = Schema.from_pairs([("a", ColumnType.INT64)])
    with pytest.raises(UnknownColumnError):
        schema.field("b")
    with pytest.raises(UnknownColumnError):
        schema.index_of("b")


def test_schema_from_table_infers_types():
    table = {"x": np.zeros(3, dtype=np.int64), "y": np.zeros(3, dtype=np.float64)}
    schema = Schema.from_table(table)
    assert schema.field("x").type is ColumnType.INT64
    assert schema.field("y").type is ColumnType.FLOAT64


def test_schema_select_preserves_order():
    schema = Schema.from_pairs(
        [("a", ColumnType.INT64), ("b", ColumnType.INT32), ("c", ColumnType.FLOAT64)]
    )
    selected = schema.select(["c", "a"])
    assert selected.names == ["c", "a"]


def test_validate_table_accepts_matching():
    schema = Schema.from_pairs([("a", ColumnType.INT64)])
    schema.validate_table({"a": np.zeros(3, dtype=np.int64)})


def test_validate_table_missing_column():
    schema = Schema.from_pairs([("a", ColumnType.INT64), ("b", ColumnType.INT64)])
    with pytest.raises(SchemaMismatchError):
        schema.validate_table({"a": np.zeros(3, dtype=np.int64)})


def test_validate_table_extra_column():
    schema = Schema.from_pairs([("a", ColumnType.INT64)])
    with pytest.raises(SchemaMismatchError):
        schema.validate_table({"a": np.zeros(3), "b": np.zeros(3)})


def test_validate_table_ragged_columns():
    schema = Schema.from_pairs([("a", ColumnType.INT64), ("b", ColumnType.INT64)])
    with pytest.raises(SchemaMismatchError):
        schema.validate_table({"a": np.zeros(3), "b": np.zeros(4)})


def test_schema_dict_roundtrip():
    schema = Schema.from_pairs([("a", ColumnType.INT64), ("b", ColumnType.FLOAT64)])
    assert Schema.from_dict(schema.to_dict()) == schema


def test_field_dict_roundtrip():
    field = Field("x", ColumnType.INT32)
    assert Field.from_dict(field.to_dict()) == field


def test_schema_equality_and_repr():
    first = Schema.from_pairs([("a", ColumnType.INT64)])
    second = Schema.from_pairs([("a", ColumnType.INT64)])
    third = Schema.from_pairs([("a", ColumnType.INT32)])
    assert first == second
    assert first != third
    assert "a:int64" in repr(first)
