"""Tests for the virtual clock."""

import pytest

from repro.cloud.clock import VirtualClock


def test_clock_starts_at_zero_by_default():
    assert VirtualClock().now == 0.0


def test_clock_starts_at_given_time():
    assert VirtualClock(5.0).now == 5.0


def test_clock_rejects_negative_start():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_moves_forward():
    clock = VirtualClock()
    assert clock.advance(2.5) == 2.5
    assert clock.now == 2.5


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.0)
    clock.advance(2.0)
    assert clock.now == pytest.approx(3.0)


def test_advance_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_to_future():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now == 10.0


def test_advance_to_past_is_noop():
    clock = VirtualClock(10.0)
    clock.advance_to(3.0)
    assert clock.now == 10.0


def test_reset():
    clock = VirtualClock(7.0)
    clock.reset()
    assert clock.now == 0.0


def test_reset_rejects_negative():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.reset(-5.0)


def test_repr_mentions_time():
    assert "3.5" in repr(VirtualClock(3.5))
