"""Cross-mode parity fuzz: serial vs threads vs processes, bit-identical.

The ``processes`` execution plane must be invisible to query semantics: for
every query shape (Q1 grouped aggregation, Q6 reduce-to-scalar, Q3 join over
the shuffle plane) and every partition count, all three execution modes must
produce *bit-identical* result tables — same columns, same dtypes, same bytes.
The fused scan→filter→agg kernel is likewise checked against the classic
materialize-then-aggregate path at the worker-plan level.

The process pool is forced to size 2 via ``max_parallel_invocations`` so the
suite exercises real multi-process execution even on single-core CI runners.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis.experiments import run_tpch_query, setup_functional_environment
from repro.cloud.s3 import SHM_SEGMENT_PREFIX
from repro.driver.driver import LambadaDriver
from repro.engine.payload import decode_table
from repro.engine.pipeline import execute_worker_plan
from repro.plan.optimizer import optimize
from repro.workload.queries import q1_plan, q3_plan, q6_plan
from repro.workload.tpch import generate_orders_dataset


def leaked_segments():
    """Names of shared-memory segments we created and failed to unlink."""
    try:
        return [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SHM_SEGMENT_PREFIX)
        ]
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return []


def assert_bit_identical(expected, actual, label=""):
    assert set(expected) == set(actual), (
        f"{label}: columns differ: {sorted(expected)} vs {sorted(actual)}"
    )
    for name in expected:
        left = np.asarray(expected[name])
        right = np.asarray(actual[name])
        assert left.dtype == right.dtype, f"{label}:{name}: dtype {left.dtype} vs {right.dtype}"
        assert np.array_equal(left, right, equal_nan=True), (
            f"{label}:{name}: values differ"
        )


@pytest.fixture(scope="module")
def stack():
    return setup_functional_environment(scale_factor=0.002, num_files=8)


@pytest.fixture(scope="module")
def orders(stack):
    env, _, _ = stack
    return generate_orders_dataset(
        env.s3, scale_factor=0.002, num_files=3, row_group_rows=512, seed=7
    )


@pytest.fixture(scope="module")
def threads_driver(stack):
    env, _, _ = stack
    return LambadaDriver(env, execution_mode="threads")


@pytest.fixture(scope="module")
def processes_driver(stack):
    env, _, _ = stack
    driver = LambadaDriver(
        env, execution_mode="processes", max_parallel_invocations=2
    )
    yield driver
    driver.close()


@pytest.mark.parametrize("num_workers", [1, 3, 8])
@pytest.mark.parametrize("query", ["q1", "q6"])
def test_scan_query_parity_across_modes(
    stack, threads_driver, processes_driver, query, num_workers
):
    _, dataset, serial_driver = stack
    serial = run_tpch_query(serial_driver, dataset, query, num_workers=num_workers)
    threaded = run_tpch_query(threads_driver, dataset, query, num_workers=num_workers)
    pooled = run_tpch_query(processes_driver, dataset, query, num_workers=num_workers)

    label = f"{query}/w{num_workers}"
    assert_bit_identical(serial.table, threaded.table, f"{label}:threads")
    assert_bit_identical(serial.table, pooled.table, f"{label}:processes")
    if query == "q6":
        assert pooled.scalar() == serial.scalar()
    # Every input/result segment is unlinked by the time execute() returns,
    # even while the pool itself stays warm.
    assert leaked_segments() == []


@pytest.mark.parametrize("num_workers", [2, 4])
def test_q3_join_parity_across_modes(
    stack, orders, threads_driver, processes_driver, num_workers
):
    _, dataset, serial_driver = stack
    plan = q3_plan(dataset.paths, orders.paths)
    serial = serial_driver.execute(plan, num_workers=num_workers)
    threaded = threads_driver.execute(plan, num_workers=num_workers)
    pooled = processes_driver.execute(plan, num_workers=num_workers)

    label = f"q3/w{num_workers}"
    assert_bit_identical(serial.table, threaded.table, f"{label}:threads")
    assert_bit_identical(serial.table, pooled.table, f"{label}:processes")
    assert leaked_segments() == []


@pytest.mark.parametrize("num_workers", [1, 3])
@pytest.mark.parametrize("builder", [q1_plan, q6_plan], ids=["q1", "q6"])
def test_fused_kernel_matches_classic_per_worker(stack, builder, num_workers):
    """The fused single-pass kernel is bit-identical to scan+filter+aggregate."""
    env, dataset, _ = stack
    physical, _ = optimize(builder(dataset.paths))
    for index, worker_plan in enumerate(physical.worker_plans(num_workers)):
        classic = execute_worker_plan(worker_plan, env.s3, fused=False)
        fused = execute_worker_plan(worker_plan, env.s3, fused=True)
        assert_bit_identical(
            decode_table(classic.partial),
            decode_table(fused.partial),
            f"worker{index}/w{num_workers}",
        )
        assert fused.rows_scanned == classic.rows_scanned
        assert fused.rows_after_filter == classic.rows_after_filter
