"""Tests for the shuffle-based (repartitioned) aggregation path."""

import numpy as np
import pytest

from repro.driver.shuffle import ShuffleAggregateCoordinator, ShuffleConfig
from repro.errors import ExecutionError
from repro.plan.expressions import col, lit
from repro.plan.logical import AggregateSpec
from repro.workload.queries import q1_plan


@pytest.fixture
def coordinator(env):
    return ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4)


def _reference_group_sum(table, key, value):
    keys, inverse = np.unique(table[key], return_inverse=True)
    sums = np.bincount(inverse, weights=table[value], minlength=len(keys))
    return {k: s for k, s in zip(keys, sums)}


def test_high_cardinality_group_by_matches_reference(env, dataset, coordinator, lineitem_table):
    result, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[
            AggregateSpec("sum", col("l_quantity"), "total_qty"),
            AggregateSpec("count", None, "n"),
        ],
        order_by=["l_orderkey"],
    )
    reference = _reference_group_sum(lineitem_table, "l_orderkey", "l_quantity")
    assert statistics.result_rows == len(reference)
    result_map = dict(zip(result["l_orderkey"].tolist(), result["total_qty"].tolist()))
    for key, expected in list(reference.items())[::37]:
        assert result_map[key] == pytest.approx(expected)
    assert result["n"].sum() == pytest.approx(len(lineitem_table["l_orderkey"]))


def test_group_count_matches_driver_merge_path(env, dataset, driver, coordinator, lineitem_table):
    """The shuffle path and the driver-merge path return the same aggregates."""
    shuffle_result, _ = coordinator.execute(
        dataset.paths,
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[
            AggregateSpec("sum", col("l_quantity"), "sum_qty"),
            AggregateSpec("avg", col("l_discount"), "avg_disc"),
        ],
        predicate=col("l_shipdate") <= lit(10_471),
        order_by=["l_returnflag", "l_linestatus"],
    )
    driver_result = driver.execute(q1_plan(dataset.paths))
    np.testing.assert_allclose(shuffle_result["sum_qty"], driver_result.column("sum_qty"), rtol=1e-9)
    np.testing.assert_allclose(shuffle_result["avg_disc"], driver_result.column("avg_disc"), rtol=1e-9)


def test_partition_objects_follow_expected_counts(env, dataset, coordinator):
    _, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "s")],
    )
    # Write combining (the default): each of the W map workers writes exactly
    # one combined object and announces its offset-bearing path through the
    # map barrier, so the reduce wave reads at most one non-empty slice per
    # sender×receiver pair off the driver-built manifest with zero discovery
    # requests.
    W = statistics.map_workers
    assert statistics.partition_objects_written == W
    assert statistics.exchange.put_requests == W
    assert statistics.exchange.combined_put_requests == W
    assert statistics.exchange.ranged_get_requests == statistics.partition_objects_read
    assert (
        statistics.exchange.ranged_get_requests + statistics.exchange.empty_parts_elided
        == W * W
    )
    assert statistics.exchange.list_requests == 0  # manifest replaces discovery
    assert statistics.exchange.bytes_touched >= statistics.exchange.bytes_read
    assert statistics.rows_scanned > 0


def test_legacy_path_writes_one_object_per_pair(env, dataset, lineitem_table):
    coordinator = ShuffleAggregateCoordinator(
        env, memory_mib=2048, num_buckets=4, config=ShuffleConfig(write_combining=False)
    )
    result, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "s")],
    )
    # Legacy parity baseline: one object per non-empty mapper×reducer pair.
    W = statistics.map_workers
    assert statistics.exchange.combined_put_requests == 0
    # Every empty pair is elided twice: the skipped PUT and the skipped GET.
    assert (
        statistics.partition_objects_written + statistics.exchange.empty_parts_elided // 2
        == W * W
    )
    assert statistics.exchange.put_requests == statistics.partition_objects_written
    assert statistics.partition_objects_read == statistics.partition_objects_written
    reference = _reference_group_sum(lineitem_table, "l_orderkey", "l_quantity")
    assert statistics.result_rows == len(reference)


def test_partition_files_spread_over_buckets(env, dataset, coordinator):
    coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "s")],
    )
    shuffle_buckets = [b for b in env.s3.list_buckets() if b.startswith("shuffle-b")]
    used = [b for b in shuffle_buckets if env.s3.object_count(b) > 0]
    assert len(used) == 4


def test_predicate_applied_before_partitioning(env, dataset, coordinator, lineitem_table):
    result, _ = coordinator.execute(
        dataset.paths,
        group_by=["l_linestatus"],
        aggregates=[AggregateSpec("count", None, "n")],
        predicate=col("l_quantity") < 10,
        order_by=["l_linestatus"],
    )
    mask = lineitem_table["l_quantity"] < 10
    statuses, counts = np.unique(lineitem_table["l_linestatus"][mask], return_counts=True)
    np.testing.assert_array_equal(result["l_linestatus"], statuses)
    np.testing.assert_allclose(result["n"], counts)


def test_combined_request_counts_at_32x32(env):
    """Acceptance bar: 32 mappers x 32 reducers issue <= 32 PUTs (was 1024)
    and at most 32*32 ranged GETs minus the elided empty slices."""
    from repro.workload.tpch import generate_lineitem_dataset

    dataset = generate_lineitem_dataset(
        env.s3, scale_factor=0.002, num_files=32, row_group_rows=256, seed=11
    )
    coordinator = ShuffleAggregateCoordinator(env, memory_mib=2048)
    _, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "s")],
    )
    assert statistics.map_workers == 32
    assert statistics.reduce_workers == 32
    assert statistics.exchange.put_requests <= 32
    assert statistics.exchange.combined_put_requests == statistics.exchange.put_requests
    assert statistics.exchange.get_requests == statistics.exchange.ranged_get_requests
    assert (
        statistics.exchange.ranged_get_requests
        == 32 * 32 - statistics.exchange.empty_parts_elided
    )
    assert statistics.exchange.head_requests == 0


def test_empty_partitions_elided_end_to_end(env, lineitem_table):
    """With fewer groups than reducers, empty slices cost zero requests."""
    from repro.workload.tpch import generate_lineitem_dataset

    dataset = generate_lineitem_dataset(
        env.s3, scale_factor=0.001, num_files=8, row_group_rows=256, seed=3
    )
    for write_combining in (True, False):
        coordinator = ShuffleAggregateCoordinator(
            env, config=ShuffleConfig(write_combining=write_combining)
        )
        result, statistics = coordinator.execute(
            dataset.paths,
            # Three distinct l_returnflag values over 8 reducers: most
            # mapper×reducer pairs are empty.
            group_by=["l_returnflag"],
            aggregates=[AggregateSpec("count", None, "n")],
            order_by=["l_returnflag"],
        )
        assert statistics.exchange.empty_parts_elided > 0
        pairs = statistics.map_workers * statistics.reduce_workers
        assert statistics.exchange.get_requests < pairs
        if write_combining:
            assert statistics.exchange.put_requests == statistics.map_workers
        else:
            assert statistics.exchange.put_requests < pairs
        assert result["n"].sum() == len(lineitem_table["l_returnflag"])


class _AlternatingCoordinator(ShuffleAggregateCoordinator):
    """Half the mappers write combined objects, half legacy objects."""

    def _map_mode(self, worker_id: int) -> bool:
        return worker_id % 2 == 0


def test_mixed_format_map_wave(env, dataset, lineitem_table):
    """Combined and legacy senders interoperate inside one query."""
    coordinator = _AlternatingCoordinator(env, num_buckets=4)
    result, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "total_qty")],
        order_by=["l_orderkey"],
    )
    assert statistics.exchange.combined_put_requests == statistics.map_workers // 2
    assert statistics.exchange.ranged_get_requests > 0
    reference = _reference_group_sum(lineitem_table, "l_orderkey", "l_quantity")
    assert statistics.result_rows == len(reference)
    result_map = dict(zip(result["l_orderkey"].tolist(), result["total_qty"].tolist()))
    for key, expected in list(reference.items())[::29]:
        assert result_map[key] == pytest.approx(expected)


def test_combined_falls_back_when_offsets_overflow_key(
    env, dataset, lineitem_table, monkeypatch
):
    """A fleet too wide for the encoded-key offset directory degrades to the
    legacy per-receiver format per mapper instead of failing the query."""
    import repro.exchange.naming as naming_module

    monkeypatch.setattr(naming_module, "S3_MAX_KEY_LENGTH", 40)
    coordinator = ShuffleAggregateCoordinator(env, num_buckets=4)
    result, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "total_qty")],
        order_by=["l_orderkey"],
    )
    assert statistics.exchange.combined_put_requests == 0
    assert statistics.exchange.put_requests > statistics.map_workers
    reference = _reference_group_sum(lineitem_table, "l_orderkey", "l_quantity")
    assert statistics.result_rows == len(reference)
    result_map = dict(zip(result["l_orderkey"].tolist(), result["total_qty"].tolist()))
    for key, expected in list(reference.items())[::41]:
        assert result_map[key] == pytest.approx(expected)


def test_requires_group_by_and_inputs(env, dataset, coordinator):
    with pytest.raises(ExecutionError):
        coordinator.execute(dataset.paths, group_by=[], aggregates=[AggregateSpec("count", None, "n")])
    with pytest.raises(ExecutionError):
        coordinator.execute(["s3://tpch/none-*.lpq"], group_by=["g"],
                            aggregates=[AggregateSpec("count", None, "n")])


def test_glob_inputs_supported(env, dataset, coordinator, lineitem_table):
    result, _ = coordinator.execute(
        [dataset.glob],
        group_by=["l_linestatus"],
        aggregates=[AggregateSpec("count", None, "n")],
    )
    assert result["n"].sum() == pytest.approx(len(lineitem_table["l_linestatus"]))
