"""Tests for the shuffle-based (repartitioned) aggregation path."""

import numpy as np
import pytest

from repro.driver.shuffle import ShuffleAggregateCoordinator
from repro.engine.aggregates import partial_aggregate
from repro.errors import ExecutionError
from repro.plan.expressions import col, lit
from repro.plan.logical import AggregateSpec
from repro.workload.queries import q1_plan


@pytest.fixture
def coordinator(env):
    return ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4)


def _reference_group_sum(table, key, value):
    keys, inverse = np.unique(table[key], return_inverse=True)
    sums = np.bincount(inverse, weights=table[value], minlength=len(keys))
    return {k: s for k, s in zip(keys, sums)}


def test_high_cardinality_group_by_matches_reference(env, dataset, coordinator, lineitem_table):
    result, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[
            AggregateSpec("sum", col("l_quantity"), "total_qty"),
            AggregateSpec("count", None, "n"),
        ],
        order_by=["l_orderkey"],
    )
    reference = _reference_group_sum(lineitem_table, "l_orderkey", "l_quantity")
    assert statistics.result_rows == len(reference)
    result_map = dict(zip(result["l_orderkey"].tolist(), result["total_qty"].tolist()))
    for key, expected in list(reference.items())[::37]:
        assert result_map[key] == pytest.approx(expected)
    assert result["n"].sum() == pytest.approx(len(lineitem_table["l_orderkey"]))


def test_group_count_matches_driver_merge_path(env, dataset, driver, coordinator, lineitem_table):
    """The shuffle path and the driver-merge path return the same aggregates."""
    shuffle_result, _ = coordinator.execute(
        dataset.paths,
        group_by=["l_returnflag", "l_linestatus"],
        aggregates=[
            AggregateSpec("sum", col("l_quantity"), "sum_qty"),
            AggregateSpec("avg", col("l_discount"), "avg_disc"),
        ],
        predicate=col("l_shipdate") <= lit(10_471),
        order_by=["l_returnflag", "l_linestatus"],
    )
    driver_result = driver.execute(q1_plan(dataset.paths))
    np.testing.assert_allclose(shuffle_result["sum_qty"], driver_result.column("sum_qty"), rtol=1e-9)
    np.testing.assert_allclose(shuffle_result["avg_disc"], driver_result.column("avg_disc"), rtol=1e-9)


def test_partition_objects_follow_expected_counts(env, dataset, coordinator):
    _, statistics = coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "s")],
    )
    # Each of the W map workers writes one object per reduce partition.
    expected = statistics.map_workers * statistics.reduce_workers
    assert statistics.partition_objects_written == expected
    assert statistics.partition_objects_read == expected
    assert statistics.rows_scanned > 0


def test_partition_files_spread_over_buckets(env, dataset, coordinator):
    coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "s")],
    )
    shuffle_buckets = [b for b in env.s3.list_buckets() if b.startswith("shuffle-b")]
    used = [b for b in shuffle_buckets if env.s3.object_count(b) > 0]
    assert len(used) == 4


def test_predicate_applied_before_partitioning(env, dataset, coordinator, lineitem_table):
    result, _ = coordinator.execute(
        dataset.paths,
        group_by=["l_linestatus"],
        aggregates=[AggregateSpec("count", None, "n")],
        predicate=col("l_quantity") < 10,
        order_by=["l_linestatus"],
    )
    mask = lineitem_table["l_quantity"] < 10
    statuses, counts = np.unique(lineitem_table["l_linestatus"][mask], return_counts=True)
    np.testing.assert_array_equal(result["l_linestatus"], statuses)
    np.testing.assert_allclose(result["n"], counts)


def test_requires_group_by_and_inputs(env, dataset, coordinator):
    with pytest.raises(ExecutionError):
        coordinator.execute(dataset.paths, group_by=[], aggregates=[AggregateSpec("count", None, "n")])
    with pytest.raises(ExecutionError):
        coordinator.execute(["s3://tpch/none-*.lpq"], group_by=["g"],
                            aggregates=[AggregateSpec("count", None, "n")])


def test_glob_inputs_supported(env, dataset, coordinator, lineitem_table):
    result, _ = coordinator.execute(
        [dataset.glob],
        group_by=["l_linestatus"],
        aggregates=[AggregateSpec("count", None, "n")],
    )
    assert result["n"].sum() == pytest.approx(len(lineitem_table["l_linestatus"]))
