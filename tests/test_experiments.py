"""Tests for the query-driven experiments (Figures 10-12) and the paper-scale model."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    PaperScaleModel,
    column_byte_fraction,
    figure10_worker_configurations,
    figure11_processing_time_distribution,
    figure12_qaas_comparison,
    run_tpch_query,
    setup_functional_environment,
    shipdate_prune_fraction,
)
from repro.workload.queries import reference_q1, reference_q6
from repro.workload.tpch import LineitemGenerator


# -- building blocks -----------------------------------------------------------------------

def test_column_byte_fraction_q1_about_half():
    from repro.analysis.experiments import QUERY_COLUMNS

    q1 = column_byte_fraction(QUERY_COLUMNS["q1"])
    q6 = column_byte_fraction(QUERY_COLUMNS["q6"])
    assert 0.4 < q1 < 0.6
    assert 0.25 < q6 < 0.4
    assert q6 < q1


def test_prune_fractions_match_selectivities():
    # Q1 keeps ~96% of the files, Q6 keeps ~15%.
    assert shipdate_prune_fraction("q1") < 0.1
    assert 0.75 < shipdate_prune_fraction("q6") < 0.95
    with pytest.raises(ValueError):
        shipdate_prune_fraction("q9")


# -- paper-scale model ------------------------------------------------------------------------

def test_sf1000_geometry():
    model = PaperScaleModel(query="q1", scale_factor=1000, files_per_worker=1)
    assert model.num_files == 320
    assert model.num_workers == 320
    model10k = PaperScaleModel(query="q1", scale_factor=10000, files_per_worker=1)
    assert model10k.num_workers == 3200


def test_worker_duration_pruned_vs_full():
    model = PaperScaleModel(query="q6", memory_mib=1792)
    pruned = model.worker_duration_seconds(pruned=True)
    full = model.worker_duration_seconds(pruned=False)
    # Figure 11: pruned workers finish in ~0.1-0.2 s, others in ~2-3 s.
    assert pruned < 0.5
    assert 1.0 < full < 5.0


def test_more_memory_faster_until_one_vcpu():
    small = PaperScaleModel(query="q1", memory_mib=512).worker_duration_seconds(False)
    medium = PaperScaleModel(query="q1", memory_mib=1792).worker_duration_seconds(False)
    large = PaperScaleModel(query="q1", memory_mib=3008).worker_duration_seconds(False)
    assert medium < small
    # Beyond one vCPU the scan is download-bound, so little further gain.
    assert large <= medium
    assert large > 0.5 * medium


def test_cold_runs_slower():
    hot = PaperScaleModel(query="q1", cold=False)
    cold = PaperScaleModel(query="q1", cold=True)
    assert cold.latency_seconds() > hot.latency_seconds()


def test_q1_latency_and_cost_at_sf1000_are_interactive():
    """§5.2: both hot and cold Q1 runs return in well under 10 s and cost a few cents."""
    for cold in (False, True):
        model = PaperScaleModel(query="q1", memory_mib=1792, cold=cold)
        assert model.latency_seconds() < 10.0
        total = model.cost_dollars()["total"]
        assert 0.005 < total < 0.10


def test_latency_roughly_constant_across_scale_factors():
    """§5.4.2: Lambada uses proportionally more workers, so latency grows only mildly."""
    sf1k = PaperScaleModel(query="q1", scale_factor=1000).latency_seconds()
    sf10k = PaperScaleModel(query="q1", scale_factor=10000).latency_seconds()
    assert sf10k < 3 * sf1k


def test_cost_scales_linearly_with_data():
    sf1k = PaperScaleModel(query="q1", scale_factor=1000).cost_dollars()["total"]
    sf10k = PaperScaleModel(query="q1", scale_factor=10000).cost_dollars()["total"]
    assert sf10k == pytest.approx(10 * sf1k, rel=0.25)


# -- figure builders ------------------------------------------------------------------------------

def test_figure10_memory_sweep_shape():
    data = figure10_worker_configurations(memory_sizes=(512, 1024, 1792, 3008))
    hot = [row for row in data["varying_memory"] if not row["cold"]]
    by_memory = {row["memory_mib"]: row for row in hot}
    # Bigger workers are faster up to 1792 MiB...
    assert by_memory[1792]["latency_seconds"] < by_memory[512]["latency_seconds"]
    # ...but 3008 MiB only increases the price, not the speed (Figure 10a).
    assert by_memory[3008]["cost_cents"] > by_memory[1792]["cost_cents"]
    assert by_memory[3008]["latency_seconds"] >= 0.9 * by_memory[1792]["latency_seconds"]
    cold = [row for row in data["varying_memory"] if row["cold"]]
    assert all(
        c["latency_seconds"] > h["latency_seconds"]
        for c, h in zip(sorted(cold, key=lambda r: r["memory_mib"]),
                        sorted(hot, key=lambda r: r["memory_mib"]))
    )


def test_figure10_files_sweep_shape():
    data = figure10_worker_configurations(files_per_worker=(1, 2, 4))
    hot = {row["files_per_worker"]: row for row in data["varying_files"] if not row["cold"]}
    # More files per worker (fewer workers) is slower but cheaper (Figure 10b).
    assert hot[1]["latency_seconds"] < hot[4]["latency_seconds"]
    assert hot[1]["cost_cents"] >= hot[4]["cost_cents"] * 0.9


def test_figure11_bimodal_distribution():
    data = figure11_processing_time_distribution(num_workers=320)
    q1 = np.array(data["q1"])
    q6 = np.array(data["q6"])
    assert len(q1) == 320 and len(q6) == 320
    # Q6: ~80% of the workers prune everything and return almost immediately.
    assert (q6 < 0.5).mean() > 0.6
    # Q1: only a small fraction prunes; most workers take seconds.
    assert (q1 > 1.0).mean() > 0.85
    assert (q1 < 0.5).mean() < 0.15


def test_figure12_lambada_cheaper_and_competitive():
    rows = figure12_qaas_comparison(scale_factors=(1000,), memory_sizes=(1792,))
    lambada_q1 = [r for r in rows if r["system"] == "lambada" and r["query"] == "q1" and not r["cold"]][0]
    athena_q1 = [r for r in rows if r["system"] == "athena" and r["query"] == "q1"][0]
    bigquery_q1 = [r for r in rows if r["system"] == "bigquery" and r["query"] == "q1" and not r["cold"]][0]
    # §5.4.3: one to two orders of magnitude cheaper.
    assert lambada_q1["cost_dollars"] < athena_q1["cost_dollars"] / 5
    assert lambada_q1["cost_dollars"] < bigquery_q1["cost_dollars"] / 30
    # §5.4.2: about 4x faster than Athena for Q1 at SF 1k.
    assert lambada_q1["latency_seconds"] < athena_q1["latency_seconds"] / 2
    # BigQuery hot is faster at SF 1k, but its cold run (including loading) is far slower.
    bigquery_cold = [r for r in rows if r["system"] == "bigquery" and r["query"] == "q1" and r["cold"]][0]
    assert bigquery_cold["latency_seconds"] > 100 * lambada_q1["latency_seconds"]

    lambada_q6 = [r for r in rows if r["system"] == "lambada" and r["query"] == "q6" and not r["cold"]][0]
    athena_q6 = [r for r in rows if r["system"] == "q6_placeholder"] or [
        r for r in rows if r["system"] == "athena" and r["query"] == "q6"
    ]
    athena_q6 = athena_q6[0]
    # §5.4.3: for Q6 the two systems are in the same ballpark (Athena's
    # selectivity-aware pricing almost closes the gap), in contrast to the
    # order-of-magnitude difference on Q1.
    assert lambada_q6["cost_dollars"] < 2 * athena_q6["cost_dollars"]
    assert lambada_q6["cost_dollars"] > athena_q6["cost_dollars"] / 20
    assert (lambada_q6["cost_dollars"] / athena_q6["cost_dollars"]) > (
        lambada_q1["cost_dollars"] / athena_q1["cost_dollars"]
    )


def test_figure12_scale_factor_trends():
    rows = figure12_qaas_comparison(scale_factors=(1000, 10000), memory_sizes=(1792,))
    athena = {
        r["scale_factor"]: r["latency_seconds"]
        for r in rows
        if r["system"] == "athena" and r["query"] == "q1"
    }
    lambada = {
        r["scale_factor"]: r["latency_seconds"]
        for r in rows
        if r["system"] == "lambada" and r["query"] == "q1" and not r["cold"]
    }
    # Athena slows down ~10x; Lambada stays roughly constant -> the gap widens
    # from ~4x to ~26x (§5.4.2).
    assert athena[10000] / athena[1000] > 5
    assert lambada[10000] / lambada[1000] < 3
    assert athena[10000] / lambada[10000] > athena[1000] / lambada[1000]


# -- functional-scale execution ---------------------------------------------------------------------

def test_functional_environment_runs_both_queries():
    env, dataset, driver = setup_functional_environment(scale_factor=0.0005, num_files=4)
    table = LineitemGenerator(scale_factor=0.0005).generate()
    q1 = run_tpch_query(driver, dataset, "q1")
    q6 = run_tpch_query(driver, dataset, "q6")
    np.testing.assert_allclose(q1.column("sum_qty"), reference_q1(table)["sum_qty"], rtol=1e-9)
    assert q6.scalar() == pytest.approx(reference_q6(table), rel=1e-9)
    with pytest.raises(ValueError):
        run_tpch_query(driver, dataset, "q3")
