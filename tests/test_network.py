"""Tests for the S3 bandwidth model (Figures 6 and 7 behaviour)."""

import pytest

from repro.cloud.network import BandwidthModel, TransferPlan
from repro.config import GB, MB, MiB, S3_STEADY_BANDWIDTH_BYTES_PER_S


@pytest.fixture
def model() -> BandwidthModel:
    return BandwidthModel()


def test_transfer_plan_request_count():
    plan = TransferPlan(total_bytes=10 * MiB, chunk_bytes=4 * MiB)
    assert plan.request_count == 3


def test_transfer_plan_zero_bytes_zero_requests():
    assert TransferPlan(total_bytes=0, chunk_bytes=MiB).request_count == 0


def test_transfer_plan_validation():
    with pytest.raises(ValueError):
        TransferPlan(total_bytes=-1, chunk_bytes=MiB)
    with pytest.raises(ValueError):
        TransferPlan(total_bytes=1, chunk_bytes=0)
    with pytest.raises(ValueError):
        TransferPlan(total_bytes=1, chunk_bytes=1, connections=0)


def test_model_rejects_bad_bandwidths():
    with pytest.raises(ValueError):
        BandwidthModel(steady_bandwidth=0)
    with pytest.raises(ValueError):
        BandwidthModel(steady_bandwidth=100, burst_bandwidth=50)


def test_zero_transfer_takes_no_time(model):
    assert model.transfer_seconds(TransferPlan(0, MiB)) == 0.0


def test_large_files_limited_to_steady_bandwidth(model):
    # Figure 6a: ~90 MiB/s regardless of connections for 1 GB objects.
    for connections in (1, 2, 4):
        bandwidth = model.scan_bandwidth(GB, 16 * MiB, connections, memory_mib=3008)
        assert bandwidth <= 1.05 * S3_STEADY_BANDWIDTH_BYTES_PER_S
        assert bandwidth >= 0.6 * S3_STEADY_BANDWIDTH_BYTES_PER_S


def test_small_files_burst_with_multiple_connections(model):
    # Figure 6b: small objects on large workers reach well above the steady
    # limit, but only with several concurrent connections.
    single = model.scan_bandwidth(100 * MB, 16 * MiB, 1, memory_mib=3008)
    multi = model.scan_bandwidth(100 * MB, 16 * MiB, 4, memory_mib=3008)
    assert multi > 1.5 * single
    assert multi > S3_STEADY_BANDWIDTH_BYTES_PER_S


def test_small_workers_see_lower_bandwidth(model):
    small = model.scan_bandwidth(GB, 16 * MiB, 1, memory_mib=512)
    large = model.scan_bandwidth(GB, 16 * MiB, 1, memory_mib=3008)
    assert small < large


def test_burst_limited_by_memory_size(model):
    small_worker = model.scan_bandwidth(100 * MB, 16 * MiB, 4, memory_mib=1024)
    large_worker = model.scan_bandwidth(100 * MB, 16 * MiB, 4, memory_mib=3008)
    assert large_worker > small_worker


def test_small_chunks_need_multiple_connections(model):
    # Figure 7: with 1 MiB chunks, one connection is latency-bound while four
    # connections reach (almost) the same throughput as 16 MiB chunks.
    one_small = model.scan_bandwidth(GB, 1 * MiB, 1, memory_mib=3008)
    four_small = model.scan_bandwidth(GB, 1 * MiB, 4, memory_mib=3008)
    one_large = model.scan_bandwidth(GB, 16 * MiB, 1, memory_mib=3008)
    assert four_small > one_small
    assert four_small >= 0.8 * one_large


def test_chunk_size_monotonicity_single_connection(model):
    bandwidths = [
        model.scan_bandwidth(GB, int(chunk * MiB), 1, memory_mib=3008)
        for chunk in (0.5, 1, 2, 4, 8, 16)
    ]
    assert bandwidths == sorted(bandwidths)


def test_effective_bandwidth_consistent_with_duration(model):
    plan = TransferPlan(total_bytes=GB, chunk_bytes=8 * MiB, connections=2, memory_mib=2048)
    seconds = model.transfer_seconds(plan)
    assert model.effective_bandwidth(plan) == pytest.approx(GB / seconds)


def test_link_bandwidth_never_exceeds_burst_ceiling(model):
    for memory in (512, 1024, 2048, 3008):
        for connections in (1, 2, 4, 8):
            assert model.link_bandwidth(memory, connections) <= model.burst_bandwidth
