"""Tests for the invocation strategies (flat vs two-level tree, Figure 5)."""

import numpy as np
import pytest

from repro.driver.invocation import (
    FlatInvocationModel,
    TreeInvocationModel,
    build_invocation_tree,
)


def test_flat_invocation_time_matches_rates():
    """§4.2: invoking 1000 workers from the driver alone takes 3.4-4.4 s
    (plus the cold-start delay of the functions themselves)."""
    for region in ("eu", "us", "sa", "ap"):
        model = FlatInvocationModel(region=region)
        initiation_seconds = 1000 / model.rate
        assert 3.3 <= initiation_seconds <= 4.6
        assert initiation_seconds <= model.time_to_start_all(1000) <= initiation_seconds + 1.5


def test_flat_invocation_scales_linearly():
    model = FlatInvocationModel()
    assert model.time_to_start_all(4096) > 3.0 * model.time_to_start_all(1024)


def test_tree_first_generation_is_sqrt():
    assert TreeInvocationModel.first_generation_count(4096) == 64
    assert TreeInvocationModel.first_generation_count(1000) == 32
    assert TreeInvocationModel.first_generation_count(1) == 1


def test_tree_starts_4k_workers_in_about_3_seconds():
    """§4.2 / Figure 5: the last of 4096 workers is initiated after ~2.5 s and
    the whole fleet is running in well under 4 s (vs 13-18 s flat)."""
    tree = TreeInvocationModel(region="eu")
    timeline = tree.timeline(4096)
    assert timeline.all_started_at <= 3.5
    assert tree.time_to_start_all(4096) <= 4.5
    flat = FlatInvocationModel(region="eu").time_to_start_all(4096)
    assert flat > 13.0
    assert tree.time_to_start_all(4096) < flat / 3


def test_tree_faster_than_flat_for_large_fleets():
    """The tree wins for large fleets; for small fleets the extra level of
    invocation latency makes the flat strategy competitive."""
    tree = TreeInvocationModel()
    flat = FlatInvocationModel()
    for workers in (1024, 4096, 16384):
        assert tree.time_to_start_all(workers) < flat.time_to_start_all(workers)


def test_timeline_arrays_are_consistent():
    timeline = TreeInvocationModel().timeline(1000)
    first_gen = TreeInvocationModel.first_generation_count(1000)
    assert len(timeline.before_own_invocation) == first_gen
    assert len(timeline.own_invocation) == first_gen
    assert len(timeline.invoking_workers) == first_gen
    # The driver initiates invocations one after the other.
    assert np.all(np.diff(timeline.before_own_invocation) > 0)


def test_timeline_children_split_evenly():
    timeline = TreeInvocationModel().timeline(4096)
    invoking = timeline.invoking_workers
    assert invoking.max() - invoking.min() <= 1.0 / 81.0 + 1e-9  # at most one child difference


def test_worker_start_times_cover_all_workers():
    model = TreeInvocationModel()
    starts = model.worker_start_times(500)
    assert len(starts) == 500
    assert np.all(starts >= 0)
    assert starts.max() <= model.time_to_start_all(500) + 1e-9


def test_warm_starts_are_faster():
    model = TreeInvocationModel()
    assert model.time_to_start_all(1024, cold=False) < model.time_to_start_all(1024, cold=True)


def test_invalid_worker_counts_rejected():
    with pytest.raises(ValueError):
        FlatInvocationModel().time_to_start_all(0)
    with pytest.raises(ValueError):
        TreeInvocationModel.first_generation_count(0)
    with pytest.raises(ValueError):
        FlatInvocationModel(region="nowhere")
    with pytest.raises(ValueError):
        TreeInvocationModel(region="nowhere")


# -- functional tree builder ------------------------------------------------------------

def test_build_tree_assigns_all_payloads_once():
    payloads = [{"worker_id": i} for i in range(10)]
    tree = build_invocation_tree(payloads)
    assert len(tree) == 4  # ceil(sqrt(10))
    seen = [parent["worker_id"] for parent in tree]
    for parent in tree:
        seen.extend(child["worker_id"] for child in parent["children"])
    assert sorted(seen) == list(range(10))


def test_build_tree_balanced_children():
    tree = build_invocation_tree([{"worker_id": i} for i in range(100)])
    child_counts = [len(parent["children"]) for parent in tree]
    assert max(child_counts) - min(child_counts) <= 1


def test_build_tree_single_worker():
    tree = build_invocation_tree([{"worker_id": 0}])
    assert len(tree) == 1
    assert tree[0]["children"] == []


def test_build_tree_empty():
    assert build_invocation_tree([]) == []


def test_build_tree_does_not_mutate_inputs():
    payloads = [{"worker_id": i} for i in range(5)]
    build_invocation_tree(payloads)
    assert all("children" not in payload for payload in payloads)
