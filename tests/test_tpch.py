"""Tests for the TPC-H LINEITEM generator and dataset writer."""

import numpy as np
import pytest

from repro.cloud.s3 import ObjectStore
from repro.formats.parquet import ColumnarFile
from repro.workload.tpch import (
    LINEITEM_SCHEMA,
    CURRENTDATE_DAYS,
    SHIPDATE_MAX_DAYS,
    SHIPDATE_MIN_DAYS,
    LineitemGenerator,
    generate_lineitem_dataset,
    replicate_dataset,
)


def test_row_count_scales_with_scale_factor():
    assert LineitemGenerator(0.001).num_rows == pytest.approx(6001, abs=1)
    assert LineitemGenerator(0.01).num_rows == pytest.approx(60012, abs=2)


def test_generator_rejects_nonpositive_scale():
    with pytest.raises(ValueError):
        LineitemGenerator(0)


def test_generated_columns_match_schema(lineitem_table):
    assert set(lineitem_table.keys()) == set(LINEITEM_SCHEMA.names)
    for name, column in lineitem_table.items():
        assert column.dtype == LINEITEM_SCHEMA.field(name).type.numpy_dtype


def test_generation_is_deterministic():
    first = LineitemGenerator(0.0005, seed=11).generate()
    second = LineitemGenerator(0.0005, seed=11).generate()
    np.testing.assert_array_equal(first["l_extendedprice"], second["l_extendedprice"])
    different = LineitemGenerator(0.0005, seed=12).generate()
    assert not np.array_equal(first["l_extendedprice"], different["l_extendedprice"])


def test_value_domains(lineitem_table):
    assert lineitem_table["l_quantity"].min() >= 1
    assert lineitem_table["l_quantity"].max() <= 50
    assert lineitem_table["l_discount"].min() >= 0.0
    assert lineitem_table["l_discount"].max() <= 0.10 + 1e-12
    assert lineitem_table["l_tax"].max() <= 0.08 + 1e-12
    assert lineitem_table["l_shipdate"].min() >= SHIPDATE_MIN_DAYS
    assert lineitem_table["l_shipdate"].max() <= SHIPDATE_MAX_DAYS
    assert set(np.unique(lineitem_table["l_returnflag"])) <= {0, 1, 2}
    assert set(np.unique(lineitem_table["l_linestatus"])) <= {0, 1}


def test_sorted_by_shipdate(lineitem_table):
    shipdate = lineitem_table["l_shipdate"]
    assert np.all(np.diff(shipdate) >= 0)


def test_returnflag_correlates_with_shipdate(lineitem_table):
    recent = lineitem_table["l_shipdate"] > CURRENTDATE_DAYS
    assert np.all(lineitem_table["l_returnflag"][recent] == 2)
    assert np.all(lineitem_table["l_linestatus"][recent] == 1)
    assert np.all(lineitem_table["l_linestatus"][~recent] == 0)


def test_receiptdate_after_shipdate(lineitem_table):
    assert np.all(lineitem_table["l_receiptdate"] > lineitem_table["l_shipdate"])


def test_explicit_row_count_override():
    table = LineitemGenerator(1.0).generate(num_rows=123)
    assert len(table["l_orderkey"]) == 123


# -- dataset writer ------------------------------------------------------------------

def test_dataset_files_written_and_readable(env, dataset):
    assert dataset.num_files == 4
    assert dataset.total_rows == 6001
    total = 0
    for path in dataset.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
        assert reader.schema == LINEITEM_SCHEMA
        total += reader.num_rows
    assert total == dataset.total_rows


def test_dataset_files_cover_disjoint_shipdate_ranges(env, dataset):
    """Files cover contiguous, non-overlapping shipdate ranges (the property
    that makes per-file min/max pruning effective, §5.1/§5.3)."""
    ranges = []
    for path in dataset.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
        mins = [g.column_meta("l_shipdate").min_value for g in reader.row_groups]
        maxes = [g.column_meta("l_shipdate").max_value for g in reader.row_groups]
        ranges.append((min(mins), max(maxes)))
    for (prev_min, prev_max), (next_min, next_max) in zip(ranges, ranges[1:]):
        assert prev_max <= next_min


def test_dataset_glob_matches_all_files(env, dataset):
    assert sorted(env.s3.glob(dataset.glob)) == sorted(dataset.paths)


def test_dataset_info_bytes_match_store(env, dataset):
    assert dataset.total_bytes == env.s3.total_bytes("tpch")


def test_generate_rejects_bad_file_count(env):
    with pytest.raises(ValueError):
        generate_lineitem_dataset(env.s3, scale_factor=0.001, num_files=0)


def test_replicate_dataset(env, dataset):
    replicated = replicate_dataset(env.s3, dataset, factor=3)
    assert replicated.num_files == 3 * dataset.num_files
    assert replicated.total_rows == 3 * dataset.total_rows
    # All copies really exist in the store.
    for path in replicated.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        assert env.s3.object_exists(bucket, key)


def test_replicate_factor_one_is_identity(env, dataset):
    assert replicate_dataset(env.s3, dataset, factor=1) is dataset


def test_replicate_rejects_bad_factor(env, dataset):
    with pytest.raises(ValueError):
        replicate_dataset(env.s3, dataset, factor=0)
