"""Tests for the TPC-H LINEITEM generator and dataset writer."""

import numpy as np
import pytest

from repro.formats.parquet import ColumnarFile
from repro.workload.tpch import (
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    PART_SCHEMA,
    CURRENTDATE_DAYS,
    PART_TYPE_CODES,
    PROMO_TYPE_CODES,
    SHIPDATE_MAX_DAYS,
    SHIPDATE_MIN_DAYS,
    LineitemGenerator,
    OrdersGenerator,
    PartGenerator,
    generate_lineitem_dataset,
    generate_orders_dataset,
    generate_part_dataset,
    lineitem_orderkey_domain,
    replicate_dataset,
)


def test_row_count_scales_with_scale_factor():
    assert LineitemGenerator(0.001).num_rows == pytest.approx(6001, abs=1)
    assert LineitemGenerator(0.01).num_rows == pytest.approx(60012, abs=2)


def test_generator_rejects_nonpositive_scale():
    with pytest.raises(ValueError):
        LineitemGenerator(0)


def test_generated_columns_match_schema(lineitem_table):
    assert set(lineitem_table.keys()) == set(LINEITEM_SCHEMA.names)
    for name, column in lineitem_table.items():
        assert column.dtype == LINEITEM_SCHEMA.field(name).type.numpy_dtype


def test_generation_is_deterministic():
    first = LineitemGenerator(0.0005, seed=11).generate()
    second = LineitemGenerator(0.0005, seed=11).generate()
    np.testing.assert_array_equal(first["l_extendedprice"], second["l_extendedprice"])
    different = LineitemGenerator(0.0005, seed=12).generate()
    assert not np.array_equal(first["l_extendedprice"], different["l_extendedprice"])


def test_value_domains(lineitem_table):
    assert lineitem_table["l_quantity"].min() >= 1
    assert lineitem_table["l_quantity"].max() <= 50
    assert lineitem_table["l_discount"].min() >= 0.0
    assert lineitem_table["l_discount"].max() <= 0.10 + 1e-12
    assert lineitem_table["l_tax"].max() <= 0.08 + 1e-12
    assert lineitem_table["l_shipdate"].min() >= SHIPDATE_MIN_DAYS
    assert lineitem_table["l_shipdate"].max() <= SHIPDATE_MAX_DAYS
    assert set(np.unique(lineitem_table["l_returnflag"])) <= {0, 1, 2}
    assert set(np.unique(lineitem_table["l_linestatus"])) <= {0, 1}


def test_sorted_by_shipdate(lineitem_table):
    shipdate = lineitem_table["l_shipdate"]
    assert np.all(np.diff(shipdate) >= 0)


def test_returnflag_correlates_with_shipdate(lineitem_table):
    recent = lineitem_table["l_shipdate"] > CURRENTDATE_DAYS
    assert np.all(lineitem_table["l_returnflag"][recent] == 2)
    assert np.all(lineitem_table["l_linestatus"][recent] == 1)
    assert np.all(lineitem_table["l_linestatus"][~recent] == 0)


def test_receiptdate_after_shipdate(lineitem_table):
    assert np.all(lineitem_table["l_receiptdate"] > lineitem_table["l_shipdate"])


def test_explicit_row_count_override():
    table = LineitemGenerator(1.0).generate(num_rows=123)
    assert len(table["l_orderkey"]) == 123


# -- dataset writer ------------------------------------------------------------------

def test_dataset_files_written_and_readable(env, dataset):
    assert dataset.num_files == 4
    assert dataset.total_rows == 6001
    total = 0
    for path in dataset.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
        assert reader.schema == LINEITEM_SCHEMA
        total += reader.num_rows
    assert total == dataset.total_rows


def test_dataset_files_cover_disjoint_shipdate_ranges(env, dataset):
    """Files cover contiguous, non-overlapping shipdate ranges (the property
    that makes per-file min/max pruning effective, §5.1/§5.3)."""
    ranges = []
    for path in dataset.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
        mins = [g.column_meta("l_shipdate").min_value for g in reader.row_groups]
        maxes = [g.column_meta("l_shipdate").max_value for g in reader.row_groups]
        ranges.append((min(mins), max(maxes)))
    for (prev_min, prev_max), (next_min, next_max) in zip(ranges, ranges[1:]):
        assert prev_max <= next_min


def test_dataset_glob_matches_all_files(env, dataset):
    assert sorted(env.s3.glob(dataset.glob)) == sorted(dataset.paths)


def test_dataset_info_bytes_match_store(env, dataset):
    assert dataset.total_bytes == env.s3.total_bytes("tpch")


def test_generate_rejects_bad_file_count(env):
    with pytest.raises(ValueError):
        generate_lineitem_dataset(env.s3, scale_factor=0.001, num_files=0)


def test_replicate_dataset(env, dataset):
    replicated = replicate_dataset(env.s3, dataset, factor=3)
    assert replicated.num_files == 3 * dataset.num_files
    assert replicated.total_rows == 3 * dataset.total_rows
    # All copies really exist in the store.
    for path in replicated.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        assert env.s3.object_exists(bucket, key)


def test_replicate_factor_one_is_identity(env, dataset):
    assert replicate_dataset(env.s3, dataset, factor=1) is dataset


def test_replicate_rejects_bad_factor(env, dataset):
    with pytest.raises(ValueError):
        replicate_dataset(env.s3, dataset, factor=0)


# ---------------------------------------------------------------------------
# ORDERS and PART generators (join workloads)
# ---------------------------------------------------------------------------

def test_orders_keys_are_unique_and_in_lineitem_domain():
    generator = OrdersGenerator(scale_factor=0.001, seed=7)
    table = generator.generate()
    keys = table["o_orderkey"]
    assert len(np.unique(keys)) == len(keys)
    domain = lineitem_orderkey_domain(0.001)
    assert keys.min() >= 1
    assert keys.max() < domain
    assert len(keys) == generator.num_rows


def test_orders_sorted_by_orderdate():
    table = OrdersGenerator(scale_factor=0.001, seed=7).generate()
    assert np.all(np.diff(table["o_orderdate"]) >= 0)


def test_orders_columns_match_schema():
    table = OrdersGenerator(scale_factor=0.001).generate()
    assert list(table) == ORDERS_SCHEMA.names


def test_orders_generation_is_deterministic():
    first = OrdersGenerator(scale_factor=0.001, seed=3).generate()
    second = OrdersGenerator(scale_factor=0.001, seed=3).generate()
    for name in first:
        np.testing.assert_array_equal(first[name], second[name])


def test_most_lineitems_match_an_order(lineitem_table):
    orders = OrdersGenerator(scale_factor=0.001, seed=7).generate()
    matched = np.isin(lineitem_table["l_orderkey"], orders["o_orderkey"])
    # ORDERS covers a quarter of the key domain, so roughly a quarter of the
    # lineitems join; the exact share varies with the draw.
    assert 0.05 < matched.mean() < 0.6


def test_part_covers_full_lineitem_partkey_domain(lineitem_table):
    part = PartGenerator(scale_factor=0.001, seed=7).generate()
    assert np.array_equal(part["p_partkey"], np.arange(1, len(part["p_partkey"]) + 1))
    assert np.isin(lineitem_table["l_partkey"], part["p_partkey"]).all()


def test_part_promo_flag_matches_type_codes():
    part = PartGenerator(scale_factor=0.01, seed=7).generate()
    np.testing.assert_array_equal(
        part["p_promo"], (part["p_type"] < PROMO_TYPE_CODES).astype(np.int32)
    )
    assert part["p_type"].min() >= 0
    assert part["p_type"].max() < PART_TYPE_CODES
    assert 0 < part["p_promo"].mean() < 1


def test_orders_dataset_written_and_readable(env):
    info = generate_orders_dataset(
        env.s3, scale_factor=0.001, num_files=3, row_group_rows=512
    )
    assert info.num_files == 3
    assert info.schema is ORDERS_SCHEMA
    total = 0
    for path in info.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
        assert reader.schema == ORDERS_SCHEMA
        total += reader.num_rows
    assert total == info.total_rows


def test_part_dataset_written_and_readable(env):
    info = generate_part_dataset(
        env.s3, scale_factor=0.001, num_files=2, row_group_rows=512
    )
    assert info.num_files == 2
    assert info.schema is PART_SCHEMA
    assert info.total_rows == PartGenerator(scale_factor=0.001).num_rows
    bucket, key = info.paths[0][len("s3://"):].split("/", 1)
    reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
    assert reader.schema == PART_SCHEMA


def test_orders_dataset_files_cover_disjoint_orderdate_ranges(env):
    info = generate_orders_dataset(
        env.s3, scale_factor=0.001, num_files=3, row_group_rows=512
    )
    ranges = []
    for path in info.paths:
        bucket, key = path[len("s3://"):].split("/", 1)
        reader = ColumnarFile.from_bytes(env.s3.get_object(bucket, key).data)
        mins = [g.column_meta("o_orderdate").min_value for g in reader.row_groups]
        maxes = [g.column_meta("o_orderdate").max_value for g in reader.row_groups]
        ranges.append((min(mins), max(maxes)))
    for (_, prev_max), (next_min, _) in zip(ranges, ranges[1:]):
        assert prev_max <= next_min
