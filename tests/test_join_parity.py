"""Parity tests: the vectorized join kernel must match the dict kernel.

The sort-based :func:`repro.engine.join.hash_join` must agree with the seed's
dict build/probe kernel (:func:`hash_join_dict`) *exactly* — same rows, same
row order, same dtypes — across empty, single-row, all-match, no-match,
duplicate-key, negative/NaN-key, and multi-key inputs.
"""

import numpy as np
import pytest

from repro.engine.join import hash_join, hash_join_dict
from repro.engine.table import Table, table_num_rows


def _assert_same_table(actual: Table, expected: Table):
    assert list(actual.keys()) == list(expected.keys())
    for name in expected:
        assert actual[name].dtype == expected[name].dtype, name
        np.testing.assert_array_equal(actual[name], expected[name], err_msg=name)


def _single_key_cases():
    rng = np.random.default_rng(99)
    return {
        "empty_both": (
            {"k": np.zeros(0, dtype=np.int64), "lv": np.zeros(0, dtype=np.float32)},
            {"k": np.zeros(0, dtype=np.int64), "rv": np.zeros(0, dtype=np.int32)},
        ),
        "empty_left": (
            {"k": np.zeros(0, dtype=np.int64), "lv": np.zeros(0)},
            {"k": np.array([1, 2], dtype=np.int64), "rv": np.array([1.0, 2.0])},
        ),
        "empty_right": (
            {"k": np.array([1, 2], dtype=np.int64), "lv": np.array([1.0, 2.0])},
            {"k": np.zeros(0, dtype=np.int64), "rv": np.zeros(0)},
        ),
        "single_row": (
            {"k": np.array([7], dtype=np.int64), "lv": np.array([1.5])},
            {"k": np.array([7], dtype=np.int64), "rv": np.array([2.5])},
        ),
        "all_match": (
            {"k": np.arange(50, dtype=np.int64), "lv": rng.random(50)},
            {"k": np.arange(50, dtype=np.int64), "rv": rng.random(50)},
        ),
        "no_match": (
            {"k": np.arange(50, dtype=np.int64), "lv": rng.random(50)},
            {"k": np.arange(100, 150, dtype=np.int64), "rv": rng.random(50)},
        ),
        "duplicate_keys_both_sides": (
            {"k": np.repeat(np.arange(5, dtype=np.int64), 20), "lv": rng.random(100)},
            {"k": np.repeat(np.arange(3, 8, dtype=np.int64), 10), "rv": rng.random(50)},
        ),
        "negative_and_wide_keys": (
            {
                "k": np.array([-5, 0, 3, -(2 ** 60), 2 ** 60, -5], dtype=np.int64),
                "lv": np.arange(6.0),
            },
            {
                "k": np.array([-(2 ** 60), -5, 2 ** 60, 7], dtype=np.int64),
                "rv": np.arange(4.0),
            },
        ),
        "nan_keys_never_match": (
            {"k": np.array([1.0, np.nan, 2.0, np.nan, -0.0]), "lv": np.arange(5.0)},
            {"k": np.array([np.nan, 1.0, 0.0, 2.0, 2.0]), "rv": np.arange(5.0)},
        ),
        "random_mid_cardinality": (
            {"k": rng.integers(0, 40, 500).astype(np.int64), "lv": rng.random(500)},
            {"k": rng.integers(0, 40, 300).astype(np.int64), "rv": rng.random(300)},
        ),
        "sparse_keys_fall_back_to_searchsorted": (
            {"k": rng.integers(-(2 ** 61), 2 ** 61, 200, dtype=np.int64), "lv": rng.random(200)},
            {"k": rng.integers(-(2 ** 61), 2 ** 61, 100, dtype=np.int64), "rv": rng.random(100)},
        ),
    }


@pytest.mark.parametrize("case", list(_single_key_cases()))
def test_vectorized_matches_dict_kernel(case):
    left, right = _single_key_cases()[case]
    _assert_same_table(
        hash_join(left, right, "k", "k"), hash_join_dict(left, right, "k", "k")
    )


def test_mixed_int_float_keys_above_2_53_match_dict_kernel():
    """Promoting mixed int/float keys to float64 would collapse 2^53+1 onto
    2^53 and invent matches; the aligned integer domain must not."""
    left = {
        "k": np.array([2 ** 53 + 1, 2 ** 53, 5, -7], dtype=np.int64),
        "lv": np.arange(4.0),
    }
    right = {
        "k": np.array([float(2 ** 53), 5.0, 5.5, -7.0, np.nan]),
        "rv": np.arange(5.0),
    }
    _assert_same_table(
        hash_join(left, right, "k", "k"), hash_join_dict(left, right, "k", "k")
    )
    # And the reverse orientation (float probe side, int build side).
    _assert_same_table(
        hash_join(right, left, "k", "k"), hash_join_dict(right, left, "k", "k")
    )


def test_mixed_uint64_float_keys_match_dict_kernel():
    left = {
        "k": np.array([2 ** 63 + 1024, 12, 2 ** 53], dtype=np.uint64),
        "lv": np.arange(3.0),
    }
    right = {
        "k": np.array([float(2 ** 63 + 2048), 12.0, -1.0, float(2 ** 53)]),
        "rv": np.arange(4.0),
    }
    _assert_same_table(
        hash_join(left, right, "k", "k"), hash_join_dict(left, right, "k", "k")
    )


def test_mixed_key_dtypes_in_multi_key_join():
    left = {
        "a": np.array([2 ** 53 + 1, 5, 5], dtype=np.int64),
        "b": np.array([1, 2, 3], dtype=np.int64),
        "lv": np.arange(3.0),
    }
    right = {
        "a": np.array([float(2 ** 53), 5.0, 5.0]),
        "b": np.array([1, 2, 3], dtype=np.int64),
        "rv": np.arange(3.0),
    }
    result = hash_join(left, right, ["a", "b"], ["a", "b"])
    # (2^53+1, 1) must not match (2^53.0, 1); (5, 2) and (5, 3) must.
    assert table_num_rows(result) == 2
    np.testing.assert_array_equal(result["b"], [2, 3])


def test_object_dtype_keys_with_none_match_dict_kernel():
    left = {
        "k": np.array(["a", None, "b", "a"], dtype=object),
        "lv": np.arange(4.0),
    }
    right = {
        "k": np.array([None, "b", "a"], dtype=object),
        "rv": np.arange(3.0),
    }
    _assert_same_table(
        hash_join(left, right, "k", "k"), hash_join_dict(left, right, "k", "k")
    )


def test_object_dtype_multi_key_join():
    left = {
        "k": np.array(["a", None, "b"], dtype=object),
        "g": np.array([1, 1, 2], dtype=np.int64),
        "lv": np.arange(3.0),
    }
    right = {
        "k": np.array(["a", "b", None], dtype=object),
        "g": np.array([1, 2, 1], dtype=np.int64),
        "rv": np.arange(3.0),
    }
    _assert_same_table(
        hash_join(left, right, ["k", "g"], ["k", "g"]),
        _multi_key_reference(left, right, ["k", "g"], ["k", "g"]),
    )


def test_empty_join_preserves_source_dtypes():
    left = {"k": np.zeros(0, dtype=np.int64), "lv": np.zeros(0, dtype=np.int16)}
    right = {
        "k": np.zeros(0, dtype=np.int64),
        "rv": np.zeros(0, dtype="<U3"),
        "flag": np.zeros(0, dtype=bool),
    }
    for kernel in (hash_join, hash_join_dict):
        result = kernel(left, right, "k", "k")
        assert result["k"].dtype == np.int64
        assert result["lv"].dtype == np.int16
        assert result["rv"].dtype == np.dtype("<U3")
        assert result["flag"].dtype == bool


def _multi_key_reference(left, right, left_keys, right_keys, suffix="_right"):
    """Tuple-key dict join, the multi-key analogue of the seed kernel."""
    build = {}
    right_tuples = list(zip(*(np.asarray(right[name]).tolist() for name in right_keys)))
    for index, key in enumerate(right_tuples):
        build.setdefault(key, []).append(index)
    left_tuples = list(zip(*(np.asarray(left[name]).tolist() for name in left_keys)))
    left_idx, right_idx = [], []
    for index, key in enumerate(left_tuples):
        for match in build.get(key, []):
            left_idx.append(index)
            right_idx.append(match)
    result = {name: np.asarray(col)[left_idx] for name, col in left.items()}
    for name, col in right.items():
        if name in right_keys:
            continue
        out = name if name not in left else name + suffix
        result[out] = np.asarray(col)[right_idx]
    return result


def test_multi_key_join_matches_tuple_dict_reference():
    rng = np.random.default_rng(17)
    left = {
        "a": rng.integers(0, 6, 400).astype(np.int64),
        "b": rng.integers(0, 5, 400).astype(np.int64),
        "lv": rng.random(400),
    }
    right = {
        "a": rng.integers(0, 6, 250).astype(np.int64),
        "b": rng.integers(0, 5, 250).astype(np.int64),
        "rv": rng.random(250),
    }
    _assert_same_table(
        hash_join(left, right, ["a", "b"], ["a", "b"]),
        _multi_key_reference(left, right, ["a", "b"], ["a", "b"]),
    )


def test_multi_key_join_with_string_column():
    left = {
        "a": np.array([1, 1, 2, 2], dtype=np.int64),
        "f": np.array(["x", "y", "x", "y"]),
        "lv": np.arange(4.0),
    }
    right = {
        "a": np.array([1, 2, 2], dtype=np.int64),
        "f": np.array(["y", "x", "z"]),
        "rv": np.arange(3.0),
    }
    _assert_same_table(
        hash_join(left, right, ["a", "f"], ["a", "f"]),
        _multi_key_reference(left, right, ["a", "f"], ["a", "f"]),
    )


def test_multi_key_join_nan_keys_never_match():
    left = {
        "a": np.array([1.0, np.nan, 2.0]),
        "b": np.array([1.0, 1.0, np.nan]),
        "lv": np.arange(3.0),
    }
    right = {
        "a": np.array([1.0, np.nan, 2.0]),
        "b": np.array([1.0, 1.0, np.nan]),
        "rv": np.arange(3.0),
    }
    result = hash_join(left, right, ["a", "b"], ["a", "b"])
    # Only the (1.0, 1.0) row can match; NaN rows drop out entirely.
    assert table_num_rows(result) == 1
    np.testing.assert_array_equal(result["lv"], [0.0])
    np.testing.assert_array_equal(result["rv"], [0.0])


def test_multi_key_count_mismatch_rejected():
    left = {"a": np.array([1]), "b": np.array([2]), "lv": np.array([0.0])}
    right = {"a": np.array([1]), "rv": np.array([0.0])}
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        hash_join(left, right, ["a", "b"], ["a"])


def test_join_probe_bench_shape_parity():
    """The exact shape the hot-path benchmark times must stay in parity."""
    rng = np.random.default_rng(11)
    num_rows, build_rows = 20_000, 2_000
    left = {
        "key": rng.integers(0, build_rows, num_rows, dtype=np.int64),
        "lv": rng.random(num_rows),
    }
    right = {
        "key": rng.integers(0, build_rows, build_rows, dtype=np.int64),
        "rv": rng.random(build_rows),
        "tag": rng.integers(0, 5, build_rows, dtype=np.int32),
    }
    _assert_same_table(
        hash_join(left, right, "key", "key"),
        hash_join_dict(left, right, "key", "key"),
    )