"""Tests for the usage metering ledger."""

import pytest

from repro.cloud.metering import MeteringLedger, UsageRecord
from repro.cloud.pricing import PriceList


def test_record_and_total():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 5)
    ledger.record("s3", "get_requests", 3)
    assert ledger.total("s3", "get_requests") == 8


def test_total_of_unknown_dimension_is_zero():
    assert MeteringLedger().total("s3", "get_requests") == 0.0


def test_negative_amount_rejected():
    with pytest.raises(ValueError):
        MeteringLedger().record("s3", "get_requests", -1)


def test_len_counts_records():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 1)
    ledger.record("sqs", "requests", 1)
    assert len(ledger) == 2


def test_cost_breakdown_prices_known_dimensions():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 1_000_000)
    ledger.record("s3", "put_requests", 1_000_000)
    breakdown = ledger.cost_breakdown()
    assert breakdown["s3.get_requests"] == pytest.approx(0.4)
    assert breakdown["s3.put_requests"] == pytest.approx(5.0)


def test_unknown_dimensions_have_zero_cost_but_appear():
    ledger = MeteringLedger()
    ledger.record("s3", "bytes_read", 12345)
    breakdown = ledger.cost_breakdown()
    assert breakdown["s3.bytes_read"] == 0.0


def test_total_cost_sums_breakdown():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 1_000_000)
    ledger.record("lambda", "gib_seconds", 1000)
    assert ledger.total_cost() == pytest.approx(sum(ledger.cost_breakdown().values()))


def test_cost_of_service_filters_by_prefix():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 1_000_000)
    ledger.record("sqs", "requests", 1_000_000)
    assert ledger.cost_of_service("s3") == pytest.approx(0.4)
    assert ledger.cost_of_service("sqs") == pytest.approx(0.4)


def test_lambda_gib_seconds_costed():
    ledger = MeteringLedger()
    ledger.record("lambda", "gib_seconds", 100.0)
    assert ledger.cost_breakdown()["lambda.gib_seconds"] == pytest.approx(
        100.0 * ledger.prices.lambda_gib_second
    )


def test_reset_clears_everything():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 10)
    ledger.reset()
    assert len(ledger) == 0
    assert ledger.total_cost() == 0.0


def test_merge_combines_ledgers():
    first = MeteringLedger()
    first.record("s3", "get_requests", 2)
    second = MeteringLedger()
    second.record("s3", "get_requests", 3)
    first.merge(second)
    assert first.total("s3", "get_requests") == 5


def test_custom_prices_flow_through():
    ledger = MeteringLedger(PriceList(s3_get_per_million=10.0))
    ledger.record("s3", "get_requests", 1_000_000)
    assert ledger.total_cost() == pytest.approx(10.0)


def test_records_iteration_preserves_order_and_fields():
    ledger = MeteringLedger()
    ledger.record("s3", "get_requests", 1, timestamp=1.5, tag="scan")
    record = next(iter(ledger.records()))
    assert isinstance(record, UsageRecord)
    assert record.service == "s3"
    assert record.timestamp == 1.5
    assert record.tag == "scan"
