"""Tests for the binary columnar payload codec."""

import json

import numpy as np
import pytest

from repro.engine.payload import (
    PAYLOAD_MARKER,
    SMALL_TABLE_ROWS,
    decode_table,
    encode_table,
    is_binary_payload,
)
from repro.engine.table import table_from_payload, table_to_payload, tables_allclose
from repro.errors import ExecutionError


def _round_trip(table, **kwargs):
    return decode_table(json.loads(json.dumps(encode_table(table, **kwargs))))


def test_small_tables_stay_legacy_json():
    table = {"k": np.arange(5, dtype=np.int64)}
    payload = encode_table(table)
    assert not is_binary_payload(payload)
    assert payload == {"k": [0, 1, 2, 3, 4]}


def test_large_tables_go_binary():
    table = {"k": np.arange(SMALL_TABLE_ROWS, dtype=np.int64)}
    payload = encode_table(table)
    assert is_binary_payload(payload)
    assert payload[PAYLOAD_MARKER] == 1
    assert payload["num_rows"] == SMALL_TABLE_ROWS


def test_binary_roundtrip_preserves_dtypes_and_values():
    rng = np.random.default_rng(3)
    table = {
        "i64": rng.integers(-(2 ** 60), 2 ** 60, 1000, dtype=np.int64),
        "u32": rng.integers(0, 2 ** 32 - 1, 1000).astype(np.uint32),
        "f64": rng.random(1000),
        "f32": rng.random(1000).astype(np.float32),
        "b": rng.integers(0, 2, 1000).astype(bool),
    }
    restored = _round_trip(table, force_binary=True)
    assert list(restored) == list(table)
    for name in table:
        assert restored[name].dtype == table[name].dtype
        np.testing.assert_array_equal(restored[name], table[name])


def test_binary_roundtrip_preserves_nan_and_inf():
    table = {"x": np.array([np.nan, np.inf, -np.inf, -0.0] * 100)}
    restored = _round_trip(table, force_binary=True)
    np.testing.assert_array_equal(
        np.isnan(restored["x"]), np.isnan(table["x"])
    )
    finite = ~np.isnan(table["x"])
    np.testing.assert_array_equal(restored["x"][finite], table["x"][finite])


def test_unicode_columns_roundtrip():
    table = {"tag": np.array(["A", "N", "R"] * 50)}
    restored = _round_trip(table, force_binary=True)
    np.testing.assert_array_equal(restored["tag"], table["tag"])


def test_object_columns_fall_back_to_lists():
    table = {"o": np.array([{"a": 1}, {"b": 2}] * 40, dtype=object)}
    payload = encode_table(table, force_binary=True)
    assert payload["columns"][0]["dtype"] == "object"
    restored = decode_table(json.loads(json.dumps(payload)))
    assert restored["o"][1] == {"b": 2}


def test_decoded_columns_are_writable():
    table = {"x": np.arange(1000, dtype=np.float64)}
    restored = _round_trip(table, force_binary=True)
    restored["x"][0] = 42.0  # must not raise (frombuffer views are read-only)


def test_decode_accepts_legacy_payloads():
    table = {"k": np.arange(10, dtype=np.int64), "v": np.linspace(0, 1, 10)}
    legacy = table_to_payload(table)
    assert tables_allclose(decode_table(legacy), table)


def test_table_from_payload_accepts_binary_payloads():
    table = {"k": np.arange(500, dtype=np.int64)}
    payload = encode_table(table, force_binary=True)
    np.testing.assert_array_equal(table_from_payload(payload)["k"], table["k"])


def test_empty_table_roundtrip():
    assert _round_trip({}) == {}
    assert _round_trip({}, force_binary=True) == {}


def test_zero_row_columns_roundtrip_binary():
    table = {"x": np.zeros(0, dtype=np.float64)}
    restored = _round_trip(table, force_binary=True)
    assert restored["x"].dtype == np.float64
    assert len(restored["x"]) == 0


def test_unknown_version_rejected():
    payload = encode_table({"x": np.arange(100.0)}, force_binary=True)
    payload[PAYLOAD_MARKER] = 99
    with pytest.raises(ExecutionError):
        decode_table(payload)


def test_binary_wire_is_json_serialisable_and_smaller_for_floats():
    rng = np.random.default_rng(11)
    table = {"x": rng.random(10_000)}
    legacy_wire = json.dumps(table_to_payload(table))
    binary_wire = json.dumps(encode_table(table, force_binary=True))
    assert len(binary_wire) < len(legacy_wire)
