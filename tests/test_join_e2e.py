"""End-to-end distributed join queries (TPC-H Q3/Q12/Q14) over the shuffle plane.

Parity is fuzzed across scale factors and partition counts against the NumPy
reference implementations, for the write-combined exchange (the default), the
legacy one-object-per-receiver plane, and a mixed-format fleet.  The counter
tests pin the acceptance criterion that the join path actually rides the
write-combined I/O plane (combined PUTs / ranged GETs nonzero in
``QueryStatistics.exchange``).
"""

import numpy as np
import pytest

from repro.driver.driver import LambadaDriver
from repro.driver.shuffle import ShuffleConfig, ShuffleJoinCoordinator
from repro.errors import InvalidPlanError
from repro.frontend.sql import SqlCatalog, parse_sql
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    ScanNode,
)
from repro.plan.expressions import col, lit
from repro.plan.optimizer import optimize
from repro.plan.physical import JoinPhysicalPlan
from repro.workload.queries import (
    q3_plan,
    q3_sql,
    q12_plan,
    q12_sql,
    q14_plan,
    q14_promo_revenue,
    q14_sql,
    reference_q3,
    reference_q12,
    reference_q14,
)
from repro.workload.tpch import (
    LINEITEM_SCHEMA,
    ORDERS_SCHEMA,
    LineitemGenerator,
    OrdersGenerator,
    PartGenerator,
    generate_lineitem_dataset,
    generate_orders_dataset,
    generate_part_dataset,
)


@pytest.fixture
def orders_dataset(env):
    return generate_orders_dataset(
        env.s3, scale_factor=0.001, num_files=3, row_group_rows=512, seed=7
    )


@pytest.fixture
def part_dataset(env):
    return generate_part_dataset(
        env.s3, scale_factor=0.001, num_files=2, row_group_rows=512, seed=7
    )


@pytest.fixture(scope="session")
def orders_table():
    return OrdersGenerator(scale_factor=0.001, seed=7).generate()


@pytest.fixture(scope="session")
def part_table():
    return PartGenerator(scale_factor=0.001, seed=7).generate()


def assert_tables_match(table, reference, label=""):
    assert set(table) == set(reference), (label, sorted(table), sorted(reference))
    for name in reference:
        np.testing.assert_allclose(
            np.asarray(table[name], dtype=np.float64),
            np.asarray(reference[name], dtype=np.float64),
            rtol=1e-9,
            err_msg=f"{label}:{name}",
        )


# ---------------------------------------------------------------------------
# Parity of the three queries (driver plan path)
# ---------------------------------------------------------------------------

def test_q3_matches_reference(driver, dataset, orders_dataset, lineitem_table, orders_table):
    result = driver.execute(q3_plan(dataset.paths, orders_dataset.paths))
    assert_tables_match(result.table, reference_q3(lineitem_table, orders_table), "q3")


def test_q12_matches_reference(driver, dataset, orders_dataset, lineitem_table, orders_table):
    result = driver.execute(q12_plan(dataset.paths, orders_dataset.paths))
    assert_tables_match(result.table, reference_q12(lineitem_table, orders_table), "q12")


def test_q14_matches_reference(driver, dataset, part_dataset, lineitem_table, part_table):
    result = driver.execute(q14_plan(dataset.paths, part_dataset.paths))
    reference = reference_q14(lineitem_table, part_table)
    assert_tables_match(result.table, reference, "q14")
    assert 0.0 < q14_promo_revenue(result.table) < 100.0
    assert q14_promo_revenue(result.table) == pytest.approx(
        q14_promo_revenue(reference)
    )


# ---------------------------------------------------------------------------
# Parity fuzz: scale factors x partition counts x exchange formats
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scale_factor", [0.0005, 0.002])
@pytest.mark.parametrize("num_workers", [1, 3, 5])
def test_q3_parity_across_scales_and_partitions(env, scale_factor, num_workers):
    lineitem = generate_lineitem_dataset(
        env.s3, scale_factor=scale_factor, num_files=4, row_group_rows=512, seed=11
    )
    orders = generate_orders_dataset(
        env.s3, scale_factor=scale_factor, num_files=3, row_group_rows=512, seed=11
    )
    driver = LambadaDriver(env)
    result = driver.execute(q3_plan(lineitem.paths, orders.paths), num_workers=num_workers)
    reference = reference_q3(
        LineitemGenerator(scale_factor, seed=11).generate(),
        OrdersGenerator(scale_factor, seed=11).generate(),
    )
    assert_tables_match(result.table, reference, f"q3@sf{scale_factor}/w{num_workers}")


@pytest.mark.parametrize("write_combining", [True, False])
def test_q12_parity_combined_vs_legacy(
    env, dataset, orders_dataset, lineitem_table, orders_table, write_combining
):
    driver = LambadaDriver(
        env, shuffle_config=ShuffleConfig(write_combining=write_combining)
    )
    result = driver.execute(q12_plan(dataset.paths, orders_dataset.paths))
    assert_tables_match(result.table, reference_q12(lineitem_table, orders_table))
    exchange = result.statistics.exchange
    if write_combining:
        assert exchange.combined_put_requests > 0
        assert exchange.ranged_get_requests > 0
    else:
        assert exchange.combined_put_requests == 0
        assert exchange.ranged_get_requests == 0
        assert exchange.put_requests > 0


def test_q14_parity_mixed_format_fleet(
    env, dataset, part_dataset, lineitem_table, part_table
):
    """Combined and legacy mappers interoperate within one join query."""

    class MixedJoinCoordinator(ShuffleJoinCoordinator):
        def _map_mode(self, side, worker_id):
            return worker_id % 2 == 0

    driver = LambadaDriver(env)
    driver._join_coordinator = MixedJoinCoordinator(env, memory_mib=driver.memory_mib)
    result = driver.execute(q14_plan(dataset.paths, part_dataset.paths))
    assert_tables_match(result.table, reference_q14(lineitem_table, part_table))
    exchange = result.statistics.exchange
    assert exchange.combined_put_requests > 0
    assert exchange.put_requests > exchange.combined_put_requests


# ---------------------------------------------------------------------------
# SQL frontend path
# ---------------------------------------------------------------------------

@pytest.fixture
def catalog(dataset, orders_dataset, part_dataset):
    catalog = SqlCatalog()
    for info in (dataset, orders_dataset, part_dataset):
        catalog.register_dataset(info)
    return catalog


def test_sql_q3_executes_end_to_end(driver, catalog, lineitem_table, orders_table):
    result = driver.execute(parse_sql(q3_sql(), catalog))
    assert_tables_match(result.table, reference_q3(lineitem_table, orders_table))


def test_sql_q12_executes_end_to_end(driver, catalog, lineitem_table, orders_table):
    result = driver.execute(parse_sql(q12_sql(), catalog))
    assert_tables_match(result.table, reference_q12(lineitem_table, orders_table))


def test_sql_q14_executes_end_to_end(driver, catalog, lineitem_table, part_table):
    result = driver.execute(parse_sql(q14_sql(), catalog))
    assert_tables_match(result.table, reference_q14(lineitem_table, part_table))


# ---------------------------------------------------------------------------
# Exchange and join counters (acceptance criteria)
# ---------------------------------------------------------------------------

def test_join_runs_over_write_combined_exchange(driver, dataset, orders_dataset):
    result = driver.execute(q3_plan(dataset.paths, orders_dataset.paths))
    statistics = result.statistics
    exchange = statistics.exchange
    # Both map waves write-combine: one PUT per mapper, no legacy objects.
    mappers = len(dataset.paths) + len(orders_dataset.paths)
    assert exchange.combined_put_requests == mappers
    assert exchange.put_requests == mappers
    assert exchange.ranged_get_requests > 0
    assert exchange.get_requests == exchange.ranged_get_requests
    assert exchange.head_requests == 0
    assert exchange.bytes_touched >= exchange.bytes_read
    # Join counters are threaded through WorkerResult into QueryStatistics.
    assert statistics.join_probe_rows > 0
    assert statistics.join_build_rows > 0
    assert statistics.join_output_rows > 0
    assert statistics.rows_scanned > 0
    assert statistics.cost_total > 0.0


def test_join_ranged_gets_bounded_by_slices(driver, dataset, orders_dataset):
    result = driver.execute(q3_plan(dataset.paths, orders_dataset.paths), num_workers=4)
    exchange = result.statistics.exchange
    # At most one ranged GET per (mapper, reducer, side) slice; empty slices
    # are elided without any request.
    mappers = len(dataset.paths) + len(orders_dataset.paths)
    assert exchange.ranged_get_requests + exchange.empty_parts_elided == mappers * 4


def test_join_per_side_pushdown_reported(driver, dataset, orders_dataset):
    result = driver.execute(q3_plan(dataset.paths, orders_dataset.paths))
    report = result.optimizer_report
    assert report.join_keys == ("l_orderkey", "o_orderkey")
    assert report.left_pushed_predicates == 1  # l_shipdate > cutoff
    assert report.right_pushed_predicates == 1  # o_orderdate < cutoff
    assert report.residual_predicates == 0
    pushed = set(report.pushed_columns)
    assert "l_orderkey" in pushed and "o_orderkey" in pushed
    assert "l_tax" not in pushed  # projection push-down trims unused columns
    columns = {r.column for r in report.prune_ranges}
    assert columns == {"l_shipdate", "o_orderdate"}


def test_join_collect_rows_without_aggregate(driver, dataset, orders_dataset,
                                             lineitem_table, orders_table):
    """Aggregate-free join plans return the joined rows themselves."""
    plan = JoinNode(
        child=FilterNode(
            child=ScanNode(
                paths=tuple(dataset.paths),
                schema_columns=tuple(LINEITEM_SCHEMA.names),
            ),
            predicate=col("l_shipdate") > lit(10_500),
        ),
        right=ScanNode(
            paths=tuple(orders_dataset.paths),
            schema_columns=tuple(ORDERS_SCHEMA.names),
        ),
        left_key="l_orderkey",
        right_key="o_orderkey",
    )
    result = driver.execute(plan)
    mask = lineitem_table["l_shipdate"] > 10_500
    keys = lineitem_table["l_orderkey"][mask]
    expected = int(np.isin(keys, orders_table["o_orderkey"]).sum())
    assert result.num_rows == expected
    assert "o_totalprice" in result.table
    assert result.statistics.join_output_rows == expected


def test_residual_predicate_filters_joined_rows(driver, dataset, orders_dataset,
                                                lineitem_table, orders_table):
    """A two-sided predicate stays above the join and still applies."""
    join = JoinNode(
        child=ScanNode(
            paths=tuple(dataset.paths), schema_columns=tuple(LINEITEM_SCHEMA.names)
        ),
        right=ScanNode(
            paths=tuple(orders_dataset.paths), schema_columns=tuple(ORDERS_SCHEMA.names)
        ),
        left_key="l_orderkey",
        right_key="o_orderkey",
    )
    residual = col("l_shipdate") > col("o_orderdate")
    plan = AggregateNode(
        child=FilterNode(child=join, predicate=residual),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    physical, report = optimize(plan)
    assert isinstance(physical, JoinPhysicalPlan)
    assert report.residual_predicates == 1
    result = driver.execute(plan)

    left_idx = np.flatnonzero(
        np.isin(lineitem_table["l_orderkey"], orders_table["o_orderkey"])
    )
    order = np.argsort(orders_table["o_orderkey"])
    pos = np.searchsorted(
        orders_table["o_orderkey"][order], lineitem_table["l_orderkey"][left_idx]
    )
    matched_dates = orders_table["o_orderdate"][order][pos]
    expected = int(
        (lineitem_table["l_shipdate"][left_idx] > matched_dates).sum()
    )
    assert result.column("n")[0] == pytest.approx(expected)


# ---------------------------------------------------------------------------
# Plan validation
# ---------------------------------------------------------------------------

def test_left_deep_join_tree_lowers_to_dag(dataset, orders_dataset, part_dataset):
    """A two-join left-deep tree lowers to a two-stage DAG physical plan."""
    from repro.plan.physical import DagPhysicalPlan

    inner = JoinNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        right=ScanNode(paths=tuple(orders_dataset.paths)),
        left_key="l_orderkey",
        right_key="o_orderkey",
    )
    outer = JoinNode(
        child=inner,
        right=ScanNode(paths=tuple(part_dataset.paths)),
        left_key="l_partkey",
        right_key="p_partkey",
    )
    physical, report = optimize(outer)
    assert isinstance(physical, DagPhysicalPlan)
    assert len(physical.stages) == 2
    assert report.dag_stages == 2
    # One map wave followed by one join wave per stage.
    waves = physical.waves()
    assert [wave["kind"] for wave in waves] == ["map", "join", "join"]
    assert "join stage" in physical.explain()


def test_group_by_right_key_rejected(dataset, orders_dataset):
    join = JoinNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        right=ScanNode(paths=tuple(orders_dataset.paths)),
        left_key="l_orderkey",
        right_key="o_orderkey",
    )
    plan = AggregateNode(
        child=join,
        group_by=("o_orderkey",),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    with pytest.raises(InvalidPlanError):
        optimize(plan)


def test_projection_above_join_keeps_only_selected_columns(driver, catalog):
    """A SELECT list without aggregates projects the joined rows exactly."""
    result = driver.execute(
        parse_sql(
            "SELECT o_orderpriority FROM lineitem JOIN orders "
            "ON l_orderkey = o_orderkey WHERE l_shipdate > 10500",
            catalog,
        )
    )
    assert list(result.table) == ["o_orderpriority"]
    assert result.num_rows > 0


def test_catalog_pruning_rejected_for_join_plans(driver, dataset, orders_dataset):
    from repro.driver.catalog import StatisticsCatalog
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError, match="catalog"):
        driver.execute(
            q3_plan(dataset.paths, orders_dataset.paths),
            catalog=StatisticsCatalog(driver.env.dynamodb),
            dataset_name="lineitem",
        )
