"""Tests for the S3-backed scan operator and its I/O source."""

import numpy as np
import pytest

from repro.cloud.s3 import ObjectStore
from repro.engine.s3io import S3ObjectSource, ScanStatistics
from repro.engine.scan import S3ScanOperator, ScanConfig
from repro.engine.table import concat_tables, table_num_rows
from repro.formats.compression import Compression
from repro.formats.parquet import write_table
from repro.plan.physical import PruneRange


@pytest.fixture
def store_with_file():
    store = ObjectStore()
    store.create_bucket("data")
    n = 4000
    table = {
        "id": np.arange(n, dtype=np.int64),
        "v": np.linspace(0, 1, n),
    }
    data = write_table(table, row_group_rows=1000, compression=Compression.GZIP)
    store.put_object("data", "t/part-0.lpq", data)
    return store, table


# -- S3ObjectSource ---------------------------------------------------------------------

def test_source_size_and_read(store_with_file):
    store, _ = store_with_file
    source = S3ObjectSource(store, "s3://data/t/part-0.lpq")
    size = store.head_object("data", "t/part-0.lpq").size
    assert source.size() == size
    assert source.read_at(0, 4) == b"LPQ1"


def test_source_chunked_reads_issue_multiple_requests(store_with_file):
    store, _ = store_with_file
    stats = ScanStatistics()
    source = S3ObjectSource(
        store, "s3://data/t/part-0.lpq", chunk_bytes=1024, statistics=stats
    )
    before = stats.get_requests
    source.read_at(0, 5000)
    # ceil(5000 / 1024) = 5 data requests.
    assert stats.get_requests - before == 5
    assert stats.bytes_read == 5000
    assert stats.transfer_seconds > 0


def test_source_read_past_end_is_clamped(store_with_file):
    store, _ = store_with_file
    source = S3ObjectSource(store, "s3://data/t/part-0.lpq")
    tail = source.read_at(source.size() - 4, 100)
    # Checksummed files end with the LPQ2 tail magic (pre-integrity files
    # with LPQ1); either way the clamped read returns exactly 4 bytes.
    assert tail in (b"LPQ1", b"LPQ2")


def test_source_rejects_bad_arguments(store_with_file):
    store, _ = store_with_file
    with pytest.raises(ValueError):
        S3ObjectSource(store, "s3://data/t/part-0.lpq", chunk_bytes=0)
    with pytest.raises(ValueError):
        S3ObjectSource(store, "s3://data/t/part-0.lpq", connections=0)
    source = S3ObjectSource(store, "s3://data/t/part-0.lpq")
    with pytest.raises(ValueError):
        source.read_at(-1, 10)


def test_statistics_merge():
    first = ScanStatistics(get_requests=2, bytes_read=100, transfer_seconds=1.0)
    second = ScanStatistics(get_requests=3, bytes_read=200, transfer_seconds=0.5)
    first.merge(second)
    assert first.get_requests == 5
    assert first.bytes_read == 300
    assert first.effective_bandwidth == pytest.approx(300 / 1.5)


# -- scan operator ----------------------------------------------------------------------

def test_scan_reads_all_rows(store_with_file):
    store, table = store_with_file
    scan = S3ScanOperator(store, ["s3://data/t/part-0.lpq"])
    result = concat_tables(list(scan.scan()))
    np.testing.assert_array_equal(np.sort(result["id"]), table["id"])
    assert scan.counters.rows_scanned == 4000
    assert scan.counters.files_scanned == 1
    assert scan.counters.row_groups_total == 4


def test_scan_projection_only_returns_requested_columns(store_with_file):
    store, _ = store_with_file
    scan = S3ScanOperator(store, ["s3://data/t/part-0.lpq"], columns=["v"])
    chunk = next(iter(scan.scan()))
    assert list(chunk.keys()) == ["v"]


def test_scan_projection_reads_fewer_bytes(store_with_file):
    store, _ = store_with_file
    full = S3ScanOperator(store, ["s3://data/t/part-0.lpq"])
    list(full.scan())
    projected = S3ScanOperator(store, ["s3://data/t/part-0.lpq"], columns=["v"])
    list(projected.scan())
    assert projected.statistics.bytes_read < full.statistics.bytes_read


def test_scan_pruning_skips_row_groups(store_with_file):
    store, _ = store_with_file
    scan = S3ScanOperator(
        store,
        ["s3://data/t/part-0.lpq"],
        prune_ranges=[PruneRange("id", 0, 999)],
    )
    result = concat_tables(list(scan.scan()))
    assert table_num_rows(result) == 1000
    assert scan.counters.row_groups_pruned == 3
    assert scan.counters.row_groups_scanned == 1


def test_scan_pruning_everything_returns_no_chunks(store_with_file):
    store, _ = store_with_file
    scan = S3ScanOperator(
        store,
        ["s3://data/t/part-0.lpq"],
        prune_ranges=[PruneRange("id", 100000, 200000)],
    )
    assert list(scan.scan()) == []
    assert scan.counters.rows_scanned == 0
    # Metadata was still read (one footer round-trip).
    assert scan.counters.metadata_seconds > 0


def test_scan_pruned_worker_is_much_faster(store_with_file):
    store, _ = store_with_file
    full = S3ScanOperator(store, ["s3://data/t/part-0.lpq"])
    list(full.scan())
    pruned = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], prune_ranges=[PruneRange("id", 1e9, 2e9)]
    )
    list(pruned.scan())
    assert pruned.modelled_seconds() < full.modelled_seconds()


def test_scan_multiple_files(store_with_file):
    store, table = store_with_file
    data = write_table(
        {"id": np.arange(100, dtype=np.int64), "v": np.zeros(100)}, row_group_rows=50
    )
    store.put_object("data", "t/part-1.lpq", data)
    scan = S3ScanOperator(store, ["s3://data/t/part-0.lpq", "s3://data/t/part-1.lpq"])
    result = concat_tables(list(scan.scan()))
    assert table_num_rows(result) == 4100
    assert scan.counters.files_scanned == 2


def test_more_memory_means_less_modelled_compute(store_with_file):
    store, _ = store_with_file
    small = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(memory_mib=512)
    )
    list(small.scan())
    large = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(memory_mib=1792)
    )
    list(large.scan())
    assert large.counters.decode_seconds < small.counters.decode_seconds


def test_two_threads_help_only_above_one_vcpu(store_with_file):
    store, _ = store_with_file
    one_thread = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(memory_mib=3008, threads=1)
    )
    list(one_thread.scan())
    two_threads = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(memory_mib=3008, threads=2)
    )
    list(two_threads.scan())
    assert two_threads.counters.decode_seconds < one_thread.counters.decode_seconds

    small_one = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(memory_mib=1024, threads=1)
    )
    list(small_one.scan())
    small_two = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(memory_mib=1024, threads=2)
    )
    list(small_two.scan())
    assert small_two.counters.decode_seconds == pytest.approx(small_one.counters.decode_seconds)


def test_overlap_reduces_modelled_time(store_with_file):
    store, _ = store_with_file
    overlapped = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(overlap_downloads=True)
    )
    list(overlapped.scan())
    sequential = S3ScanOperator(
        store, ["s3://data/t/part-0.lpq"], config=ScanConfig(overlap_downloads=False)
    )
    list(sequential.scan())
    assert overlapped.modelled_seconds() <= sequential.modelled_seconds()
