"""Tests for the simulated SQS queue service."""

import pytest

from repro.cloud.sqs import MAX_MESSAGE_BYTES, QueueService
from repro.errors import NoSuchQueueError, PayloadTooLargeError


@pytest.fixture
def queues() -> QueueService:
    service = QueueService()
    service.create_queue("results")
    return service


def test_send_and_receive_fifo(queues):
    queues.send_message("results", "first")
    queues.send_message("results", "second")
    received = queues.receive_messages("results", max_messages=10)
    assert [message.body for message in received] == ["first", "second"]


def test_receive_removes_messages(queues):
    queues.send_message("results", "only")
    queues.receive_messages("results")
    assert queues.receive_messages("results") == []


def test_receive_respects_max_messages(queues):
    for index in range(5):
        queues.send_message("results", str(index))
    first_batch = queues.receive_messages("results", max_messages=2)
    assert len(first_batch) == 2
    assert queues.approximate_message_count("results") == 3


def test_receive_rejects_nonpositive_max(queues):
    with pytest.raises(ValueError):
        queues.receive_messages("results", max_messages=0)


def test_json_roundtrip(queues):
    queues.send_json("results", {"worker": 3, "status": "ok"})
    message = queues.receive_messages("results")[0]
    assert message.json() == {"worker": 3, "status": "ok"}


def test_missing_queue_raises(queues):
    with pytest.raises(NoSuchQueueError):
        queues.send_message("nope", "x")
    with pytest.raises(NoSuchQueueError):
        queues.receive_messages("nope")


def test_create_queue_idempotent(queues):
    queues.send_message("results", "keep")
    queues.create_queue("results")
    assert queues.approximate_message_count("results") == 1


def test_purge_queue(queues):
    queues.send_message("results", "x")
    queues.purge_queue("results")
    assert queues.approximate_message_count("results") == 0


def test_delete_queue(queues):
    queues.delete_queue("results")
    assert "results" not in queues.list_queues()


def test_message_too_large_rejected(queues):
    with pytest.raises(PayloadTooLargeError):
        queues.send_message("results", "x" * (MAX_MESSAGE_BYTES + 1))


def test_message_ids_are_unique_and_increasing(queues):
    first = queues.send_message("results", "a")
    second = queues.send_message("results", "b")
    assert second.message_id > first.message_id


def test_requests_are_metered(queues):
    queues.send_message("results", "a")
    queues.receive_messages("results")
    assert queues.ledger.total("sqs", "requests") == 2
