"""Tests for the exchange cost models (Table 2 / Figure 9)."""


import pytest

from repro.exchange.cost_model import (
    EXCHANGE_VARIANTS,
    ExchangeCostModel,
    exchange_cost,
    request_counts,
    worker_cost_band,
)


def test_one_level_counts_are_quadratic():
    counts = request_counts("1l", 1000)
    assert counts["reads"] == pytest.approx(1000 ** 2)
    assert counts["writes"] == pytest.approx(1000 ** 2)
    assert counts["scans"] == 1


def test_one_level_write_combining_reduces_writes_to_p():
    counts = request_counts("1l-wc", 1000)
    assert counts["reads"] == pytest.approx(1000 ** 2)
    assert counts["writes"] == pytest.approx(1000)


def test_two_level_counts():
    counts = request_counts("2l", 1024)
    assert counts["reads"] == pytest.approx(2 * 1024 * 32)
    assert counts["writes"] == pytest.approx(2 * 1024 * 32)
    assert counts["scans"] == 2


def test_two_level_write_combining():
    counts = request_counts("2l-wc", 1024)
    assert counts["writes"] == pytest.approx(2 * 1024)
    assert counts["reads"] == pytest.approx(2 * 1024 * 32)


def test_three_level_counts():
    counts = request_counts("3l", 4096)
    assert counts["reads"] == pytest.approx(3 * 4096 * 16)
    assert counts["scans"] == 3


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        request_counts("4l", 100)
    with pytest.raises(ValueError):
        request_counts("1l", 0)


def test_request_counts_monotone_in_variant_level():
    """At large P, more levels always means fewer requests."""
    for P in (1024, 4096, 16384):
        one = request_counts("1l", P)["reads"]
        two = request_counts("2l", P)["reads"]
        three = request_counts("3l", P)["reads"]
        assert three < two < one


def test_figure9_ordering_matches_paper():
    """Figure 9: per-worker cost ordering 1l > 1l-wc > 2l > 2l-wc > 3l-wc at 4k workers."""
    costs = {variant: exchange_cost(variant, 4096)["cost_per_worker"] for variant in EXCHANGE_VARIANTS}
    assert costs["1l"] > costs["1l-wc"]
    assert costs["1l-wc"] > costs["2l"]
    assert costs["2l"] > costs["2l-wc"]
    assert costs["2l-wc"] > costs["3l-wc"]


def test_basic_exchange_cost_at_4k_workers_matches_paper():
    """§4.4.1: running BasicExchange with 4k workers costs about $100 in requests."""
    total = exchange_cost("1l", 4096)["total_cost"]
    assert 70 <= total <= 130


def test_one_level_cost_per_worker_grows_with_p():
    small = exchange_cost("1l", 64)["cost_per_worker"]
    large = exchange_cost("1l", 4096)["cost_per_worker"]
    assert large > 10 * small


def test_two_level_wc_below_worker_cost_band():
    """§4.4.4: 2l-wc brings request costs below worker costs in almost all configurations."""
    low, high = worker_cost_band("2l")
    for workers in (256, 1024, 4096):
        assert exchange_cost("2l-wc", workers)["cost_per_worker"] < high


def test_three_level_wc_negligible():
    low, high = worker_cost_band("3l")
    for workers in (64, 256, 1024, 4096, 16384):
        cost = exchange_cost("3l-wc", workers)["cost_per_worker"]
        # Always far below the upper edge of the worker-cost band, and close
        # to (or below) the lower edge even at the largest fleet sizes (the
        # per-worker LIST accounting adds a small constant term).
        assert cost < high / 10
        assert cost < 2 * low


def test_cost_model_wrapper_and_series():
    model = ExchangeCostModel()
    series = model.figure9_series((64, 256))
    assert set(series.keys()) == set(EXCHANGE_VARIANTS)
    assert set(series["1l"].keys()) == {64, 256}


def test_requests_per_bucket_per_round():
    model = ExchangeCostModel()
    # §4.4.2: 10k workers over 300 buckets -> P*sqrt(P)/B = 10000*100/300 requests
    rate = model.requests_per_bucket_per_round(10_000, 300, levels=2)
    assert rate == pytest.approx(10_000 * 100 / 300)
    with pytest.raises(ValueError):
        model.requests_per_bucket_per_round(100, 0)


def test_write_costs_dominated_by_reads_only_with_wc():
    plain = exchange_cost("2l", 1024)
    combined = exchange_cost("2l-wc", 1024)
    assert combined["write_cost"] < plain["write_cost"]
    assert combined["read_cost"] == pytest.approx(plain["read_cost"])
