"""Tests for the logical-to-physical optimizer (push-downs, two-phase aggregation)."""

import math

import pytest

from repro.errors import InvalidPlanError
from repro.plan.expressions import col
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    OrderByNode,
    ProjectNode,
    ScanNode,
)
from repro.plan.optimizer import optimize
from repro.workload.queries import q1_plan, q6_plan


def test_projection_pushdown_collects_referenced_columns():
    plan = AggregateNode(
        child=FilterNode(
            child=ScanNode(paths=("s3://b/x.lpq",)),
            predicate=col("a") > 1,
        ),
        group_by=("g",),
        aggregates=(AggregateSpec("sum", col("b") * col("c"), "s"),),
    )
    physical, report = optimize(plan)
    assert physical.worker_template.columns == ["a", "b", "c", "g"]
    assert report.pushed_columns == ["a", "b", "c", "g"]
    assert not report.read_all_columns


def test_udf_plans_read_all_columns():
    plan = FilterNode(child=ScanNode(paths=("s3://b/x.lpq",)), udf=lambda row: True)
    physical, report = optimize(plan)
    assert physical.worker_template.columns == []
    assert report.read_all_columns


def test_selection_pushdown_generates_prune_ranges():
    plan = FilterNode(
        child=ScanNode(paths=("s3://b/x.lpq",)),
        predicate=(col("d") >= 10) & (col("d") < 20) & (col("q") < 5),
    )
    physical, report = optimize(plan)
    ranges = {r.column: (r.lower, r.upper) for r in physical.worker_template.prune_ranges}
    assert ranges["d"] == (10, 20)
    assert ranges["q"] == (-math.inf, 5)
    assert physical.worker_template.predicate is not None


def test_multiple_filters_are_conjoined():
    plan = FilterNode(
        child=FilterNode(child=ScanNode(paths=("s3://b/x.lpq",)), predicate=col("a") > 1),
        predicate=col("b") < 5,
    )
    physical, _ = optimize(plan)
    ranges = {r.column for r in physical.worker_template.prune_ranges}
    assert ranges == {"a", "b"}


def test_avg_decomposed_into_sum_and_count():
    plan = AggregateNode(
        child=ScanNode(paths=("s3://b/x.lpq",)),
        aggregates=(AggregateSpec("avg", col("v"), "mean_v"),),
    )
    physical, report = optimize(plan)
    partial_aliases = [spec.alias for spec in physical.worker_template.aggregates]
    assert "__mean_v_sum" in partial_aliases
    assert "__mean_v_count" in partial_aliases
    finals = [spec.alias for spec in physical.driver.final_aggregates]
    assert finals == ["mean_v"]


def test_simple_aggregates_pass_through():
    plan = AggregateNode(
        child=ScanNode(paths=("s3://b/x.lpq",)),
        group_by=("g",),
        aggregates=(
            AggregateSpec("sum", col("v"), "s"),
            AggregateSpec("min", col("v"), "lo"),
            AggregateSpec("count", None, "n"),
        ),
    )
    physical, _ = optimize(plan)
    assert [spec.alias for spec in physical.worker_template.aggregates] == ["s", "lo", "n"]
    assert physical.driver.group_by == ["g"]
    assert not physical.driver.collect_rows


def test_no_aggregation_means_collect_rows():
    plan = ProjectNode(child=ScanNode(paths=("s3://b/x.lpq",)), columns=("a", "b"))
    physical, _ = optimize(plan)
    assert physical.driver.collect_rows
    assert physical.worker_template.columns == ["a", "b"]


def test_order_by_and_limit_land_in_driver_plan():
    plan = LimitNode(
        child=OrderByNode(
            child=AggregateNode(
                child=ScanNode(paths=("s3://b/x.lpq",)),
                group_by=("g",),
                aggregates=(AggregateSpec("sum", col("v"), "s"),),
            ),
            keys=("g",),
            descending=True,
        ),
        count=10,
    )
    physical, _ = optimize(plan)
    assert physical.driver.order_by == ["g"]
    assert physical.driver.descending
    assert physical.driver.limit == 10


def test_map_outputs_are_forwarded():
    plan = MapNode(
        child=ScanNode(paths=("s3://b/x.lpq",)),
        outputs=(("v", col("a") * col("b")),),
    )
    physical, _ = optimize(plan)
    assert physical.worker_template.map_outputs[0][0] == "v"
    assert physical.worker_template.columns == ["a", "b"]


def test_plan_must_start_with_scan():
    with pytest.raises(InvalidPlanError):
        optimize(FilterNode(child=None, predicate=col("x") > 1))  # type: ignore[arg-type]


def test_join_nodes_lower_into_a_join_physical_plan():
    from repro.plan.physical import JoinPhysicalPlan

    plan = JoinNode(
        child=ScanNode(paths=("s3://b/l.lpq",)),
        right=ScanNode(paths=("s3://b/r.lpq",)),
        left_key="k",
        right_key="rk",
    )
    physical, report = optimize(plan)
    assert isinstance(physical, JoinPhysicalPlan)
    assert physical.left.key == "k"
    assert physical.right.key == "rk"
    assert physical.driver.collect_rows
    assert report.join_keys == ("k", "rk")


def test_q1_pushdowns():
    physical, report = optimize(q1_plan(["s3://tpch/lineitem/part-0.lpq"]))
    assert set(physical.worker_template.columns) == {
        "l_returnflag",
        "l_linestatus",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_shipdate",
    }
    assert any(r.column == "l_shipdate" for r in physical.worker_template.prune_ranges)
    assert physical.driver.group_by == ["l_returnflag", "l_linestatus"]


def test_q6_pushdowns():
    physical, report = optimize(q6_plan(["s3://tpch/lineitem/part-0.lpq"]))
    ranges = {r.column: (r.lower, r.upper) for r in physical.worker_template.prune_ranges}
    assert "l_shipdate" in ranges
    assert "l_discount" in ranges
    assert "l_quantity" in ranges
    assert set(physical.worker_template.columns) == {
        "l_extendedprice",
        "l_discount",
        "l_quantity",
        "l_shipdate",
    }


def test_worker_plan_scan_knobs_forwarded():
    physical, _ = optimize(q6_plan(["s3://x/y.lpq"]), scan_connections=2, scan_chunk_bytes=1024)
    assert physical.worker_template.scan_connections == 2
    assert physical.worker_template.scan_chunk_bytes == 1024
