"""Tests for the simulated S3 object store."""

import pytest

from repro.cloud.s3 import ObjectStore, parse_s3_path
from repro.errors import (
    BucketAlreadyExistsError,
    InvalidRangeError,
    NoSuchBucketError,
    NoSuchKeyError,
    SlowDownError,
)


@pytest.fixture
def store() -> ObjectStore:
    store = ObjectStore()
    store.create_bucket("data")
    return store


def test_parse_s3_path():
    assert parse_s3_path("s3://bucket/some/key") == ("bucket", "some/key")


def test_parse_s3_path_bucket_only():
    assert parse_s3_path("s3://bucket") == ("bucket", "")


def test_parse_s3_path_rejects_non_s3():
    with pytest.raises(ValueError):
        parse_s3_path("/local/path")


def test_put_and_get_roundtrip(store):
    store.put_object("data", "a", b"hello world")
    assert store.get_object("data", "a").data == b"hello world"


def test_get_range(store):
    store.put_object("data", "a", b"0123456789")
    result = store.get_object("data", "a", 2, 5)
    assert result.data == b"234"
    assert result.range_start == 2
    assert result.range_end == 5


def test_get_range_open_ended(store):
    store.put_object("data", "a", b"0123456789")
    assert store.get_object("data", "a", 7).data == b"789"


def test_get_range_clamped_to_object_size(store):
    store.put_object("data", "a", b"0123")
    assert store.get_object("data", "a", 2, 100).data == b"23"


def test_get_range_beyond_object_raises(store):
    store.put_object("data", "a", b"0123")
    with pytest.raises(InvalidRangeError):
        store.get_object("data", "a", 10, 20)


def test_get_missing_key_raises(store):
    with pytest.raises(NoSuchKeyError):
        store.get_object("data", "missing")


def test_missing_bucket_raises():
    store = ObjectStore()
    with pytest.raises(NoSuchBucketError):
        store.get_object("nope", "a")


def test_create_existing_bucket_raises(store):
    with pytest.raises(BucketAlreadyExistsError):
        store.create_bucket("data")


def test_ensure_bucket_is_idempotent(store):
    store.ensure_bucket("data")
    store.ensure_bucket("other")
    assert "other" in store.list_buckets()


def test_overwrite_replaces_object(store):
    store.put_object("data", "a", b"one")
    store.put_object("data", "a", b"two")
    assert store.get_object("data", "a").data == b"two"
    assert store.object_count("data") == 1


def test_head_returns_size_without_data(store):
    store.put_object("data", "a", b"abcdef")
    meta = store.head_object("data", "a")
    assert meta.size == 6
    assert meta.path == "s3://data/a"


def test_object_exists(store):
    store.put_object("data", "a", b"x")
    assert store.object_exists("data", "a")
    assert not store.object_exists("data", "b")


def test_list_objects_with_prefix(store):
    store.put_object("data", "dir/a", b"1")
    store.put_object("data", "dir/b", b"2")
    store.put_object("data", "other/c", b"3")
    keys = [meta.key for meta in store.list_objects("data", "dir/")]
    assert keys == ["dir/a", "dir/b"]


def test_delete_object_and_missing_delete_is_noop(store):
    store.put_object("data", "a", b"x")
    store.delete_object("data", "a")
    store.delete_object("data", "a")
    assert not store.object_exists("data", "a")


def test_delete_bucket(store):
    store.put_object("data", "a", b"x")
    store.delete_bucket("data")
    assert "data" not in store.list_buckets()


def test_path_based_api_creates_bucket():
    store = ObjectStore()
    store.put_path("s3://auto/key", b"payload")
    assert store.get_path("s3://auto/key").data == b"payload"


def test_glob_matches_suffix(store):
    store.put_object("data", "t/part-0.lpq", b"a")
    store.put_object("data", "t/part-1.lpq", b"b")
    store.put_object("data", "t/readme.txt", b"c")
    assert store.glob("s3://data/t/*.lpq") == [
        "s3://data/t/part-0.lpq",
        "s3://data/t/part-1.lpq",
    ]


def test_glob_without_wildcard_checks_existence(store):
    store.put_object("data", "a", b"x")
    assert store.glob("s3://data/a") == ["s3://data/a"]
    assert store.glob("s3://data/b") == []


def test_request_counters(store):
    store.put_object("data", "a", b"x")
    store.get_object("data", "a")
    store.get_object("data", "a")
    store.list_objects("data")
    counts = store.request_counts["data"]
    assert counts["put"] == 1
    assert counts["get"] == 2
    assert counts["list"] == 1


def test_ledger_records_requests_and_bytes(store):
    store.put_object("data", "a", b"x" * 100)
    store.get_object("data", "a")
    assert store.ledger.total("s3", "put_requests") == 1
    assert store.ledger.total("s3", "get_requests") == 1
    assert store.ledger.total("s3", "bytes_written") == 100
    assert store.ledger.total("s3", "bytes_read") == 100


def test_total_bytes_and_object_count(store):
    store.put_object("data", "a", b"xxx")
    store.put_object("data", "b", b"yy")
    assert store.total_bytes("data") == 5
    assert store.object_count() == 2


def test_rate_limit_throttles_reads():
    store = ObjectStore(enforce_rate_limits=True, read_rate_limit_per_s=5)
    store.create_bucket("data")
    store.put_object("data", "a", b"x")
    with pytest.raises(SlowDownError):
        for _ in range(10):
            store.get_object("data", "a")


def test_rate_limit_window_resets_with_clock():
    store = ObjectStore(enforce_rate_limits=True, read_rate_limit_per_s=5)
    store.create_bucket("data")
    store.put_object("data", "a", b"x")
    for _ in range(5):
        store.get_object("data", "a")
    store.clock.advance(1.5)
    # After the window has passed, requests are allowed again.
    store.get_object("data", "a")


def test_put_rejects_non_bytes(store):
    with pytest.raises(TypeError):
        store.put_object("data", "a", "not bytes")  # type: ignore[arg-type]
