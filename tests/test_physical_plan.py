"""Tests for physical plan fragments and their serialisation."""

import math

import pytest

from repro.errors import InvalidPlanError
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.plan.physical import (
    DriverPlan,
    PhysicalPlan,
    PruneRange,
    WorkerPlan,
    clear_udf_registry,
    register_udf,
    resolve_udf,
)


def _template() -> WorkerPlan:
    return WorkerPlan(
        files=[],
        columns=["a", "b"],
        predicate=col("a") > 1,
        prune_ranges=[PruneRange("a", 1, math.inf)],
        map_outputs=[("v", col("a") * col("b"))],
        group_by=["g"],
        aggregates=[AggregateSpec("sum", col("v"), "s")],
    )


def test_worker_plan_dict_roundtrip():
    plan = _template()
    plan.files = ["s3://b/1.lpq"]
    restored = WorkerPlan.from_dict(plan.to_dict())
    assert restored.files == plan.files
    assert restored.columns == plan.columns
    assert restored.predicate.equals(plan.predicate)
    assert restored.prune_ranges[0].column == "a"
    assert restored.map_outputs[0][0] == "v"
    assert restored.group_by == ["g"]
    assert restored.aggregates[0].alias == "s"


def test_worker_plan_dict_is_json_compatible():
    import json

    payload = json.dumps(_template().to_dict())
    restored = WorkerPlan.from_dict(json.loads(payload))
    assert restored.columns == ["a", "b"]


def test_prune_range_infinity_roundtrip():
    prange = PruneRange("x", -math.inf, 5.0)
    restored = PruneRange.from_dict(prange.to_dict())
    assert restored.lower == -math.inf
    assert restored.upper == 5.0
    prange = PruneRange("x", 2.0, math.inf)
    restored = PruneRange.from_dict(prange.to_dict())
    assert restored.upper == math.inf


def test_with_files_copies_without_aliasing():
    template = _template()
    clone = template.with_files(["s3://b/1.lpq"])
    clone.columns.append("zzz")
    assert "zzz" not in template.columns
    assert clone.files == ["s3://b/1.lpq"]
    assert template.files == []


def test_partition_files_balanced():
    plan = PhysicalPlan(
        worker_template=_template(),
        driver=DriverPlan(),
        input_files=[f"s3://b/{i}.lpq" for i in range(10)],
    )
    assignments = plan.partition_files(4)
    assert sum(len(files) for files in assignments) == 10
    sizes = sorted(len(files) for files in assignments)
    assert sizes[-1] - sizes[0] <= 1


def test_partition_files_more_workers_than_files():
    plan = PhysicalPlan(
        worker_template=_template(),
        driver=DriverPlan(),
        input_files=["s3://b/0.lpq", "s3://b/1.lpq"],
    )
    assignments = plan.partition_files(8)
    assert len(assignments) == 2  # empty workers are dropped


def test_partition_files_rejects_nonpositive():
    plan = PhysicalPlan(worker_template=_template(), driver=DriverPlan(), input_files=["s3://b/0"])
    with pytest.raises(InvalidPlanError):
        plan.partition_files(0)


def test_worker_plans_have_distinct_files():
    plan = PhysicalPlan(
        worker_template=_template(),
        driver=DriverPlan(),
        input_files=[f"s3://b/{i}.lpq" for i in range(6)],
    )
    worker_plans = plan.worker_plans(3)
    seen = [path for wp in worker_plans for path in wp.files]
    assert sorted(seen) == sorted(plan.input_files)


def test_udf_registry_roundtrip():
    clear_udf_registry()
    fn = lambda x: x + 1  # noqa: E731
    ref = register_udf(fn)
    assert resolve_udf(ref) is fn


def test_udf_registry_unknown_reference():
    clear_udf_registry()
    with pytest.raises(InvalidPlanError):
        resolve_udf("udf-unknown")


def test_udf_references_are_unique():
    clear_udf_registry()
    first = register_udf(lambda x: x)
    second = register_udf(lambda x: x * 2)
    assert first != second
