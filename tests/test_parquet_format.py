"""Tests for the LPQ columnar file format (writer, reader, pruning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptFileError, UnknownColumnError
from repro.formats.compression import Compression
from repro.formats.parquet import ColumnarFile, ColumnarWriter, FileMetadata, write_table
from repro.formats.schema import ColumnType, Schema
from repro.formats.source import BytesSource


@pytest.fixture
def sample_table():
    rng = np.random.default_rng(3)
    n = 5000
    return {
        "id": np.arange(n, dtype=np.int64),
        "group": (np.arange(n, dtype=np.int32) // 100),
        "value": rng.random(n),
    }


def test_roundtrip_all_columns(sample_table):
    data = write_table(sample_table, row_group_rows=512)
    reader = ColumnarFile.from_bytes(data)
    result = reader.read_table()
    for name, column in sample_table.items():
        np.testing.assert_array_equal(result[name], column)


def test_roundtrip_preserves_dtypes(sample_table):
    data = write_table(sample_table, row_group_rows=512)
    result = ColumnarFile.from_bytes(data).read_table()
    assert result["id"].dtype == np.dtype("int64")
    assert result["group"].dtype == np.dtype("int32")
    assert result["value"].dtype == np.dtype("float64")


def test_row_group_count_and_sizes(sample_table):
    data = write_table(sample_table, row_group_rows=512)
    reader = ColumnarFile.from_bytes(data)
    assert reader.num_rows == 5000
    assert len(reader.row_groups) == 10  # ceil(5000 / 512)
    assert sum(group.num_rows for group in reader.row_groups) == 5000


def test_projection_reads_only_requested_columns(sample_table):
    data = write_table(sample_table, row_group_rows=1024)
    reader = ColumnarFile.from_bytes(data)
    result = reader.read_table(columns=["value"])
    assert list(result.keys()) == ["value"]
    np.testing.assert_array_equal(result["value"], sample_table["value"])


def test_min_max_statistics_are_correct(sample_table):
    data = write_table(sample_table, row_group_rows=1000)
    reader = ColumnarFile.from_bytes(data)
    for group in reader.row_groups:
        start = group.index * 1000
        end = start + group.num_rows
        meta = group.column_meta("id")
        assert meta.min_value == start
        assert meta.max_value == end - 1


def test_prune_row_groups_on_sorted_column(sample_table):
    data = write_table(sample_table, row_group_rows=1000)
    reader = ColumnarFile.from_bytes(data)
    surviving = reader.prune_row_groups("id", lower=2500, upper=3200)
    assert [group.index for group in surviving] == [2, 3]


def test_prune_with_open_bounds(sample_table):
    data = write_table(sample_table, row_group_rows=1000)
    reader = ColumnarFile.from_bytes(data)
    assert len(reader.prune_row_groups("id", lower=None, upper=None)) == 5
    assert len(reader.prune_row_groups("id", lower=4500)) == 1
    assert len(reader.prune_row_groups("id", upper=-1)) == 0
    assert len(reader.prune_row_groups("id", lower=5000)) == 0


def test_unknown_column_raises(sample_table):
    data = write_table(sample_table)
    reader = ColumnarFile.from_bytes(data)
    with pytest.raises(UnknownColumnError):
        reader.read_table(columns=["nope"])


def test_compression_codecs_roundtrip(sample_table):
    for codec in Compression:
        data = write_table(sample_table, compression=codec, row_group_rows=2048)
        result = ColumnarFile.from_bytes(data).read_table()
        np.testing.assert_array_equal(result["id"], sample_table["id"])


def test_gzip_smaller_than_uncompressed(sample_table):
    uncompressed = write_table(sample_table, compression=Compression.NONE)
    gzipped = write_table(sample_table, compression=Compression.GZIP)
    assert len(gzipped) < len(uncompressed)


def test_empty_table_roundtrip():
    table = {"a": np.zeros(0, dtype=np.int64)}
    data = write_table(table)
    reader = ColumnarFile.from_bytes(data)
    assert reader.num_rows == 0
    assert len(reader.read_table()["a"]) == 0


def test_footer_json_roundtrip(sample_table):
    data = write_table(sample_table, row_group_rows=1024)
    metadata = ColumnarFile.from_bytes(data).metadata
    restored = FileMetadata.from_json(metadata.to_json())
    assert restored.num_rows == metadata.num_rows
    assert restored.schema == metadata.schema
    assert len(restored.row_groups) == len(metadata.row_groups)


def test_writer_rejects_bad_row_group_size():
    schema = Schema.from_pairs([("a", ColumnType.INT64)])
    with pytest.raises(ValueError):
        ColumnarWriter(schema, row_group_rows=0)


def test_corrupt_magic_raises(sample_table):
    data = bytearray(write_table(sample_table))
    data[-1] = 0x00  # clobber trailing magic
    with pytest.raises(CorruptFileError):
        ColumnarFile.from_bytes(bytes(data))


def test_truncated_file_raises():
    with pytest.raises(CorruptFileError):
        ColumnarFile.from_bytes(b"LP")


def test_corrupt_footer_raises(sample_table):
    data = bytearray(write_table(sample_table))
    # Overwrite part of the footer JSON with garbage.
    data[len(data) // 2 + 10] = 0xFF
    with pytest.raises(CorruptFileError):
        reader = ColumnarFile.from_bytes(bytes(data))
        reader.read_table()


def test_metadata_only_read_touches_little_data(sample_table):
    class CountingSource(BytesSource):
        def __init__(self, data):
            super().__init__(data)
            self.bytes_served = 0

        def read_at(self, offset, length):
            result = super().read_at(offset, length)
            self.bytes_served += len(result)
            return result

    data = write_table(sample_table, row_group_rows=512)
    source = CountingSource(data)
    ColumnarFile(source)  # metadata read only
    # Only the footer and the magic bytes are read, not the column data.
    assert source.bytes_served < len(data) / 4


column_strategy = st.lists(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40), min_size=1, max_size=400
)


@settings(max_examples=40, deadline=None)
@given(
    ints=column_strategy,
    floats=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=400
    ),
    row_group_rows=st.integers(min_value=1, max_value=64),
)
def test_roundtrip_property(ints, floats, row_group_rows):
    n = min(len(ints), len(floats))
    table = {
        "i": np.array(ints[:n], dtype=np.int64),
        "f": np.array(floats[:n], dtype=np.float64),
    }
    data = write_table(table, row_group_rows=row_group_rows, compression=Compression.FAST)
    result = ColumnarFile.from_bytes(data).read_table()
    np.testing.assert_array_equal(result["i"], table["i"])
    np.testing.assert_array_equal(result["f"], table["f"])


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=500),
    lower=st.integers(min_value=0, max_value=10_000),
    upper=st.integers(min_value=0, max_value=10_000),
)
def test_pruning_never_drops_matching_rows(values, lower, upper):
    """Pruned row groups must not contain any row inside [lower, upper]."""
    if lower > upper:
        lower, upper = upper, lower
    table = {"v": np.array(sorted(values), dtype=np.int64)}
    data = write_table(table, row_group_rows=32, compression=Compression.NONE)
    reader = ColumnarFile.from_bytes(data)
    surviving = reader.prune_row_groups("v", lower=lower, upper=upper)
    kept = (
        np.concatenate([reader.read_column_chunk(group, "v") for group in surviving])
        if surviving
        else np.zeros(0, dtype=np.int64)
    )
    expected = table["v"][(table["v"] >= lower) & (table["v"] <= upper)]
    # Every row matching the range must still be present after pruning.
    assert np.isin(expected, kept).all()
