"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_lambada_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
            assert issubclass(obj, errors.LambadaError), name


def test_cloud_errors_group():
    for cls in (
        errors.NoSuchBucketError,
        errors.NoSuchKeyError,
        errors.SlowDownError,
        errors.TooManyRequestsError,
        errors.FunctionNotFoundError,
        errors.PayloadTooLargeError,
    ):
        assert issubclass(cls, errors.CloudError)


def test_format_errors_group():
    for cls in (errors.CorruptFileError, errors.UnsupportedTypeError, errors.SchemaMismatchError):
        assert issubclass(cls, errors.FormatError)


def test_plan_and_execution_errors_group():
    assert issubclass(errors.UnknownColumnError, errors.PlanError)
    assert issubclass(errors.SqlSyntaxError, errors.PlanError)
    assert issubclass(errors.WorkerFailedError, errors.ExecutionError)
    assert issubclass(errors.ExchangeError, errors.ExecutionError)


def test_worker_failed_error_carries_worker_id():
    error = errors.WorkerFailedError(7, "out of memory")
    assert error.worker_id == 7
    assert "7" in str(error)
    assert "out of memory" in str(error)


def test_catching_base_class_catches_everything():
    with pytest.raises(errors.LambadaError):
        raise errors.SlowDownError("throttled")
    with pytest.raises(errors.LambadaError):
        raise errors.SqlSyntaxError("bad sql")
