"""Process-pool lifecycle: shared-memory hygiene, fallbacks, warm reuse.

Every test that runs the pool asserts that ``/dev/shm`` carries no
``lambada_*`` segment afterwards — including the worker-exception and
retry paths, where cleanup is easiest to get wrong.  The pool is forced to
size 2 via ``max_parallel_invocations`` so the suite works on single-core
CI runners.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.analysis.experiments import run_tpch_query, setup_functional_environment
from repro.cloud.s3 import SHM_SEGMENT_PREFIX
from repro.driver.driver import LambadaDriver
from repro.errors import WorkerFailedError


def leaked_segments():
    try:
        return [
            name
            for name in os.listdir("/dev/shm")
            if name.startswith(SHM_SEGMENT_PREFIX)
        ]
    except FileNotFoundError:  # pragma: no cover - non-Linux hosts
        return []


def assert_bit_identical(expected, actual):
    assert set(expected) == set(actual)
    for name in expected:
        left = np.asarray(expected[name])
        right = np.asarray(actual[name])
        assert left.dtype == right.dtype, name
        assert np.array_equal(left, right, equal_nan=True), name


@pytest.fixture(scope="module")
def stack():
    return setup_functional_environment(scale_factor=0.002, num_files=4)


@pytest.fixture
def processes_driver(stack):
    env, _, _ = stack
    driver = LambadaDriver(
        env, execution_mode="processes", max_parallel_invocations=2
    )
    yield driver
    driver.close()


def test_query_leaves_no_segments_while_pool_is_warm(stack, processes_driver):
    _, dataset, serial_driver = stack
    pooled = run_tpch_query(processes_driver, dataset, "q1")
    serial = run_tpch_query(serial_driver, dataset, "q1")
    assert_bit_identical(serial.table, pooled.table)
    # The pool is still alive here; only the per-query segments must be gone.
    assert processes_driver._pool is not None
    assert leaked_segments() == []


def test_worker_exception_cleans_segments(stack, processes_driver):
    env, dataset, _ = stack
    # Corrupt one input object: the export succeeds (the blob exists) but the
    # child's scan fails, so every retry round errors out.
    bucket, _, key = dataset.paths[0].removeprefix("s3://").partition("/")
    original = env.s3.get_object(bucket, key).data
    env.s3.put_object(bucket, key, b"this is not a columnar file")
    try:
        with pytest.raises(WorkerFailedError):
            run_tpch_query(processes_driver, dataset, "q1")
    finally:
        env.s3.put_object(bucket, key, original)
    assert leaked_segments() == []


def test_injected_failure_is_retried_and_cleaned(stack, processes_driver, monkeypatch):
    _, dataset, serial_driver = stack
    pool = processes_driver._ensure_pool()
    assert pool is not None

    real_run_tasks = pool.run_tasks
    injected = {"count": 0}

    def flaky_run_tasks(tasks):
        results = real_run_tasks(tasks)
        if injected["count"] == 0:
            # Lose one worker's result: drop its segment (as a crashed worker
            # would never report it) and turn the message into an error.
            task_id, message = sorted(results.items())[0]
            if message[0] == "ok" and message[3] is not None:
                segment = shared_memory.SharedMemory(name=message[3])
                segment.unlink()
                segment.close()
            results[task_id] = ("err", task_id, "injected failure")
            injected["count"] += 1
        return results

    monkeypatch.setattr(pool, "run_tasks", flaky_run_tasks)
    pooled = run_tpch_query(processes_driver, dataset, "q1")
    assert injected["count"] == 1
    serial = run_tpch_query(serial_driver, dataset, "q1")
    assert_bit_identical(serial.table, pooled.table)
    assert leaked_segments() == []


def test_single_core_host_falls_back_to_serial(stack, monkeypatch):
    _, dataset, serial_driver = stack
    env = serial_driver.env
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    driver = LambadaDriver(env, execution_mode="processes")
    with pytest.warns(RuntimeWarning, match="single-core"):
        pooled = run_tpch_query(driver, dataset, "q1")
    assert driver._pool is None
    serial = run_tpch_query(serial_driver, dataset, "q1")
    assert_bit_identical(serial.table, pooled.table)
    assert leaked_segments() == []
    driver.close()


def test_spawn_failure_falls_back_to_serial(stack, monkeypatch):
    import repro.driver.procpool as procpool

    _, dataset, serial_driver = stack

    class BrokenPool:
        def __init__(self, size):
            raise RuntimeError("spawn blocked by sandbox")

    monkeypatch.setattr(procpool, "ProcessWorkerPool", BrokenPool)
    driver = LambadaDriver(
        serial_driver.env, execution_mode="processes", max_parallel_invocations=2
    )
    with pytest.warns(RuntimeWarning, match="failed to start"):
        pooled = run_tpch_query(driver, dataset, "q1")
    assert driver._pool is None
    serial = run_tpch_query(serial_driver, dataset, "q1")
    assert_bit_identical(serial.table, pooled.table)
    driver.close()


def test_pool_stays_warm_across_queries(stack, processes_driver):
    _, dataset, _ = stack
    run_tpch_query(processes_driver, dataset, "q1")
    pool = processes_driver._pool
    assert pool is not None
    pids = sorted(child.process.pid for child in pool._children)

    run_tpch_query(processes_driver, dataset, "q6")
    assert processes_driver._pool is pool
    assert sorted(child.process.pid for child in pool._children) == pids
    assert leaked_segments() == []

    processes_driver.close()
    assert processes_driver._pool is None
    processes_driver.close()  # idempotent
    assert all(not child.process.is_alive() for child in pool._children) or not pool._children


def test_pool_rejects_zero_size():
    from repro.driver.procpool import ProcessWorkerPool

    with pytest.raises(ValueError):
        ProcessWorkerPool(size=0)


def test_segment_prefix_is_scoped():
    # The leak checks scan /dev/shm by this prefix; keep it distinctive.
    assert SHM_SEGMENT_PREFIX.startswith("lambada")
