"""Tests for the public package surface (imports, exports, version, examples)."""

import importlib
import pathlib
import subprocess
import sys

import pytest

import repro


def test_version_is_exposed():
    assert repro.__version__
    assert repro.__version__.count(".") == 2


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackages_import_cleanly():
    for module in (
        "repro.cloud",
        "repro.formats",
        "repro.frontend",
        "repro.plan",
        "repro.engine",
        "repro.driver",
        "repro.exchange",
        "repro.workload",
        "repro.baselines",
        "repro.analysis",
        "repro.cli",
    ):
        importlib.import_module(module)


def test_subpackage_all_exports_resolve():
    for module_name in (
        "repro.cloud",
        "repro.formats",
        "repro.frontend",
        "repro.plan",
        "repro.engine",
        "repro.driver",
        "repro.exchange",
        "repro.workload",
        "repro.baselines",
    ):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


def test_public_functions_have_docstrings():
    """Every public callable exported at the top level is documented."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_examples_exist_and_compile():
    examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
    scripts = sorted(examples_dir.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        compile(script.read_text(), str(script), "exec")


@pytest.mark.parametrize("script", ["quickstart.py"])
def test_quickstart_example_runs(script):
    examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
    result = subprocess.run(
        [sys.executable, str(examples_dir / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "revenue" in result.stdout


def test_nway_join_example_runs():
    examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
    result = subprocess.run(
        [sys.executable, str(examples_dir / "nway_join_dag.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "join DAG stages:        5" in result.stdout
    assert "discovery LIST/HEAD:    0" in result.stdout


# ---------------------------------------------------------------------------
# The stable facade: connect() -> Session -> QueryResult
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def facade_session():
    from repro.workload.tpch import (
        generate_customer_dataset,
        generate_lineitem_dataset,
        generate_orders_dataset,
    )

    session = repro.connect()
    session.register(
        generate_lineitem_dataset(session.env.s3, scale_factor=0.002, num_files=4)
    )
    session.register(
        generate_orders_dataset(session.env.s3, scale_factor=0.002, num_files=2)
    )
    session.register(generate_customer_dataset(session.env.s3, scale_factor=0.002))
    yield session
    session.close()


def test_connect_defaults_create_environment():
    session = repro.connect()
    assert session.env is session.driver.env
    assert session.tables() == []


def test_facade_sql_returns_rows_statistics_explain(facade_session):
    result = facade_session.sql(
        "SELECT count(*) AS n FROM lineitem WHERE l_discount >= 0.05"
    )
    assert len(result.rows) == 1
    assert isinstance(result.rows[0]["n"], float)
    assert result.rows[0]["n"] > 0
    assert result.statistics.cost_total > 0
    explain = result.explain()
    assert "wave 0" in explain
    assert "partial agg" in explain


def test_facade_sql_join_dag(facade_session):
    from repro.workload.queries import q18_sql

    result = facade_session.sql(q18_sql(limit=5))
    assert result.num_rows == 5
    assert result.statistics.dag_stages == 2
    assert {"c_custkey", "o_orderkey", "o_totalprice", "sum_qty"} == set(
        result.rows[0]
    )
    explain = result.explain()
    assert "join order" in explain
    assert "join stage 0" in explain
    assert "join stage 1" in explain


def test_facade_explain_without_execution(facade_session):
    from repro.workload.queries import q18_sql

    text = facade_session.explain(q18_sql())
    assert "join order" in text
    assert "wave 0: map" in text


def test_facade_register_table_and_dataflow(facade_session):
    from repro import col

    paths = facade_session.catalog.paths_of("lineitem")
    facade_session.register_table("li2", paths)
    assert "li2" in facade_session.tables()
    count = facade_session.sql("SELECT count(*) AS n FROM li2").rows[0]["n"]
    flow_count = (
        facade_session.dataflow(list(paths)).count(alias="n").collect().rows[0]["n"]
    )
    assert count == flow_count
