"""Tests for the public package surface (imports, exports, version, examples)."""

import importlib
import pathlib
import subprocess
import sys

import pytest

import repro


def test_version_is_exposed():
    assert repro.__version__
    assert repro.__version__.count(".") == 2


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackages_import_cleanly():
    for module in (
        "repro.cloud",
        "repro.formats",
        "repro.frontend",
        "repro.plan",
        "repro.engine",
        "repro.driver",
        "repro.exchange",
        "repro.workload",
        "repro.baselines",
        "repro.analysis",
        "repro.cli",
    ):
        importlib.import_module(module)


def test_subpackage_all_exports_resolve():
    for module_name in (
        "repro.cloud",
        "repro.formats",
        "repro.frontend",
        "repro.plan",
        "repro.engine",
        "repro.driver",
        "repro.exchange",
        "repro.workload",
        "repro.baselines",
    ):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"


def test_public_functions_have_docstrings():
    """Every public callable exported at the top level is documented."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if callable(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_examples_exist_and_compile():
    examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
    scripts = sorted(examples_dir.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        compile(script.read_text(), str(script), "exec")


@pytest.mark.parametrize("script", ["quickstart.py"])
def test_quickstart_example_runs(script):
    examples_dir = pathlib.Path(__file__).resolve().parent.parent / "examples"
    result = subprocess.run(
        [sys.executable, str(examples_dir / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "revenue" in result.stdout
