"""Tests for DRAM partitioning (hash partition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.table import table_num_rows
from repro.errors import UnknownColumnError
from repro.exchange.partition import hash_partition, hash_values, partition_assignments


def test_assignments_in_range():
    table = {"k": np.arange(1000, dtype=np.int64)}
    assignment = partition_assignments(table, ["k"], 7)
    assert assignment.min() >= 0
    assert assignment.max() < 7
    assert len(assignment) == 1000


def test_assignments_deterministic():
    table = {"k": np.arange(100, dtype=np.int64)}
    first = partition_assignments(table, ["k"], 8)
    second = partition_assignments(table, ["k"], 8)
    np.testing.assert_array_equal(first, second)


def test_same_key_same_partition():
    table = {"k": np.array([5, 5, 5, 9, 9], dtype=np.int64)}
    assignment = partition_assignments(table, ["k"], 16)
    assert len(np.unique(assignment[:3])) == 1
    assert len(np.unique(assignment[3:])) == 1


def test_empty_table_empty_assignment():
    assert len(partition_assignments({"k": np.zeros(0)}, ["k"], 4)) == 0


def test_no_keys_round_robin():
    table = {"v": np.arange(10)}
    assignment = partition_assignments(table, [], 3)
    np.testing.assert_array_equal(assignment, np.arange(10) % 3)


def test_missing_key_raises():
    with pytest.raises(UnknownColumnError):
        partition_assignments({"a": np.zeros(3)}, ["b"], 4)


def test_nonpositive_partitions_rejected():
    with pytest.raises(ValueError):
        partition_assignments({"a": np.zeros(3)}, ["a"], 0)


def test_hash_partition_preserves_rows():
    rng = np.random.default_rng(1)
    table = {"k": rng.integers(0, 100, 500), "v": rng.random(500)}
    parts = hash_partition(table, ["k"], 8)
    assert sum(table_num_rows(part) for part in parts.values()) == 500


def test_hash_partition_rows_grouped_correctly():
    rng = np.random.default_rng(2)
    table = {"k": rng.integers(0, 100, 500).astype(np.int64)}
    parts = hash_partition(table, ["k"], 8)
    for partition, part in parts.items():
        assignment = partition_assignments(part, ["k"], 8)
        assert np.all(assignment == partition)


def test_hash_partition_reasonably_balanced():
    table = {"k": np.arange(10_000, dtype=np.int64)}
    parts = hash_partition(table, ["k"], 10)
    sizes = np.array([table_num_rows(part) for part in parts.values()])
    assert sizes.min() > 0.5 * sizes.mean()
    assert sizes.max() < 1.5 * sizes.mean()


def test_multi_key_hashing_differs_from_single_key():
    table = {
        "a": np.arange(1000, dtype=np.int64),
        "b": np.arange(1000, dtype=np.int64)[::-1].copy(),
    }
    single = partition_assignments(table, ["a"], 16)
    double = partition_assignments(table, ["a", "b"], 16)
    assert not np.array_equal(single, double)


def test_hash_values_shape_and_dtype():
    hashed = hash_values(np.arange(10, dtype=np.int64))
    assert hashed.dtype == np.uint64
    assert len(hashed) == 10


def test_hash_values_distinguishes_ints_above_2_53():
    """int64 keys above 2^53 must not collapse (the float64-cast precision bug)."""
    keys = np.array([2 ** 53 + offset for offset in range(16)], dtype=np.int64)
    hashed = hash_values(keys)
    assert len(set(hashed.tolist())) == len(keys)
    # The old float64 cast cannot represent consecutive ints up there:
    collapsed = keys.astype(np.float64)
    assert len(set(collapsed.tolist())) < len(keys)


def test_hash_values_uint64_and_small_int_dtypes():
    for dtype in (np.uint64, np.int32, np.int16, np.uint8):
        hashed = hash_values(np.arange(100).astype(dtype))
        assert hashed.dtype == np.uint64
        assert len(set(hashed.tolist())) == 100


def test_partitions_balanced_for_high_magnitude_keys():
    keys = (2 ** 53 + np.arange(10_000)).astype(np.int64)
    parts = hash_partition({"k": keys}, ["k"], 10)
    sizes = np.array([table_num_rows(part) for part in parts.values()])
    assert sizes.min() > 0.5 * sizes.mean()
    assert sizes.max() < 1.5 * sizes.mean()


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=-(10 ** 9), max_value=10 ** 9), min_size=1, max_size=300),
    partitions=st.integers(min_value=1, max_value=64),
)
def test_partitioning_is_a_partition_of_the_rows(keys, partitions):
    """Every row lands in exactly one partition and none are lost."""
    table = {"k": np.array(keys, dtype=np.int64)}
    parts = hash_partition(table, ["k"], partitions)
    total = sum(table_num_rows(part) for part in parts.values())
    assert total == len(keys)
    recovered = np.sort(np.concatenate([part["k"] for part in parts.values()]))
    np.testing.assert_array_equal(recovered, np.sort(table["k"]))
