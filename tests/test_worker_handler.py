"""Tests for the serverless worker event handler."""

import numpy as np
import pytest

from repro.cloud.environment import CloudEnvironment
from repro.cloud.lambda_service import FunctionConfig
from repro.driver.worker import RESULT_BUCKET, WORKER_FUNCTION_NAME, make_worker_handler
from repro.engine.payload import decode_table
from repro.formats.parquet import write_table
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.plan.physical import WorkerPlan


@pytest.fixture
def env_with_data():
    env = CloudEnvironment.create()
    env.s3.ensure_bucket("data")
    n = 1000
    table = {"x": np.arange(n, dtype=np.float64), "g": (np.arange(n) % 3).astype(np.int64)}
    env.s3.put_object("data", "f.lpq", write_table(table, row_group_rows=250))
    env.sqs.create_queue("results")
    env.lambda_service.deploy(
        FunctionConfig(name=WORKER_FUNCTION_NAME, memory_mib=2048),
        make_worker_handler(env),
    )
    return env


def _event(worker_id=0, children=None, queue="results"):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        aggregates=[AggregateSpec("sum", col("x"), "s")],
    )
    return {
        "worker_id": worker_id,
        "plan": plan.to_dict(),
        "result_queue": queue,
        "query_id": "q-test",
        "function_name": WORKER_FUNCTION_NAME,
        "children": children or [],
    }


def test_handler_executes_plan_and_posts_result(env_with_data):
    env = env_with_data
    result = env.lambda_service.invoke(WORKER_FUNCTION_NAME, _event())
    assert result.succeeded
    messages = env.sqs.receive_messages("results", max_messages=10)
    assert len(messages) == 1
    payload = messages[0].json()
    assert payload["status"] == "ok"
    assert payload["worker_id"] == 0
    partial = decode_table(payload["result"]["partial"])
    assert partial["s"][0] == pytest.approx(np.arange(1000).sum())


def test_handler_invokes_children_first(env_with_data):
    env = env_with_data
    children = [_event(worker_id=1), _event(worker_id=2)]
    for child in children:
        child.pop("children")
    result = env.lambda_service.invoke(WORKER_FUNCTION_NAME, _event(worker_id=0, children=children))
    assert result.succeeded
    messages = env.sqs.receive_messages("results", max_messages=10)
    worker_ids = sorted(m.json()["worker_id"] for m in messages)
    assert worker_ids == [0, 1, 2]
    # Parent + 2 children = 3 invocations total.
    assert env.lambda_service.total_invocations() == 3


def test_handler_reports_errors_to_queue(env_with_data):
    env = env_with_data
    event = _event()
    event["plan"]["files"] = ["s3://data/missing.lpq"]
    result = env.lambda_service.invoke(WORKER_FUNCTION_NAME, event)
    assert result.succeeded  # the handler itself did not crash
    message = env.sqs.receive_messages("results")[0].json()
    assert message["status"] == "error"
    assert "NoSuchKey" in message["error"]


def test_handler_charges_modelled_time(env_with_data):
    env = env_with_data
    env.lambda_service.invoke(WORKER_FUNCTION_NAME, _event())
    invocation = env.lambda_service.invocation_log[-1]
    assert invocation.duration_seconds > 0


def test_cold_runs_are_slower(env_with_data):
    env = env_with_data
    cold = env.lambda_service.invoke(WORKER_FUNCTION_NAME, _event(worker_id=0))
    warm = env.lambda_service.invoke(WORKER_FUNCTION_NAME, _event(worker_id=1))
    assert cold.cold_start and not warm.cold_start
    assert cold.duration_seconds > warm.duration_seconds


def test_large_results_spill_to_s3(env_with_data, monkeypatch):
    env = env_with_data
    # Lower the spill threshold so the 1000-row collect result exceeds it and
    # the queue message carries an S3 pointer instead of the payload.
    monkeypatch.setattr("repro.driver.worker.RESULT_SPILL_BYTES", 1024)
    plan = WorkerPlan(files=["s3://data/f.lpq"], columns=["x", "g"])
    event = {
        "worker_id": 7,
        "plan": plan.to_dict(),
        "result_queue": "results",
        "query_id": "q-big",
        "function_name": WORKER_FUNCTION_NAME,
    }
    result = env.lambda_service.invoke(WORKER_FUNCTION_NAME, event)
    assert result.succeeded
    message = env.sqs.receive_messages("results")[0].json()
    assert message["status"] == "ok"
    assert message["result_s3"].startswith(f"s3://{RESULT_BUCKET}/")
    assert env.s3.object_count(RESULT_BUCKET) == 1


def test_handler_without_queue_returns_payload_only(env_with_data):
    env = env_with_data
    event = _event(queue=None)
    event["result_queue"] = None
    result = env.lambda_service.invoke(WORKER_FUNCTION_NAME, event)
    assert result.succeeded
    assert result.payload["status"] == "ok"
