"""Tests for the simulated Lambda (FaaS) service."""

import pytest

from repro.cloud.lambda_service import (
    FunctionConfig,
    LambdaService,
    compute_throughput,
    cpu_share_for_memory,
)
from repro.errors import FunctionNotFoundError


def echo_handler(event, context):
    context.charge(1.0)
    return {"echo": event.get("x")}


@pytest.fixture
def service() -> LambdaService:
    service = LambdaService()
    service.deploy(FunctionConfig(name="echo", memory_mib=2048), echo_handler)
    return service


# -- resource model ---------------------------------------------------------------

def test_cpu_share_one_vcpu_at_1792():
    assert cpu_share_for_memory(1792) == pytest.approx(1.0)


def test_cpu_share_proportional_to_memory():
    assert cpu_share_for_memory(896) == pytest.approx(0.5)
    assert cpu_share_for_memory(3008) == pytest.approx(3008 / 1792)


def test_cpu_share_rejects_nonpositive_memory():
    with pytest.raises(ValueError):
        cpu_share_for_memory(0)


def test_single_thread_capped_at_one_vcpu():
    assert compute_throughput(3008, 1) == pytest.approx(1.0)


def test_two_threads_exploit_large_workers():
    # The paper measures a maximum of ~1.67x at 3008 MiB (Figure 4).
    assert compute_throughput(3008, 2) == pytest.approx(1.678, rel=0.01)


def test_small_workers_limited_regardless_of_threads():
    assert compute_throughput(896, 1) == pytest.approx(0.5)
    assert compute_throughput(896, 2) == pytest.approx(0.5)


def test_compute_throughput_rejects_zero_threads():
    with pytest.raises(ValueError):
        compute_throughput(1792, 0)


# -- function configuration ----------------------------------------------------------

def test_config_rejects_out_of_range_memory():
    with pytest.raises(ValueError):
        FunctionConfig(name="f", memory_mib=64)
    with pytest.raises(ValueError):
        FunctionConfig(name="f", memory_mib=4096)


def test_config_rejects_unknown_region():
    with pytest.raises(ValueError):
        FunctionConfig(name="f", region="mars")


# -- invocation -----------------------------------------------------------------------

def test_invoke_returns_handler_payload(service):
    result = service.invoke("echo", {"x": 42})
    assert result.succeeded
    assert result.payload == {"echo": 42}


def test_invoke_missing_function_raises(service):
    with pytest.raises(FunctionNotFoundError):
        service.invoke("nope", {})


def test_first_invocation_is_cold_then_warm(service):
    first = service.invoke("echo", {})
    second = service.invoke("echo", {})
    assert first.cold_start
    assert not second.cold_start
    assert first.startup_seconds > second.startup_seconds


def test_reset_warm_instances_forces_cold(service):
    service.invoke("echo", {})
    service.reset_warm_instances("echo")
    assert service.invoke("echo", {}).cold_start


def test_handler_exception_is_reported_not_raised(service):
    def broken(event, context):
        raise RuntimeError("boom")

    service.deploy(FunctionConfig(name="broken", memory_mib=1024), broken)
    result = service.invoke("broken", {})
    assert not result.succeeded
    assert "boom" in result.error


def test_duration_is_billed(service):
    result = service.invoke("echo", {})
    assert result.duration_seconds == pytest.approx(1.0)
    assert result.billed_cost > 0
    assert service.ledger.total("lambda", "invocations") == 1
    assert service.ledger.total("lambda", "gib_seconds") == pytest.approx(2.0)


def test_timeout_truncates_and_reports_error():
    service = LambdaService()

    def slow(event, context):
        context.charge(100.0)
        return "done"

    service.deploy(FunctionConfig(name="slow", memory_mib=1024, timeout_seconds=10.0), slow)
    result = service.invoke("slow", {})
    assert not result.succeeded
    assert "Timeout" in result.error
    assert result.duration_seconds == pytest.approx(10.0)


def test_concurrency_limit_rejects_nested_invocations():
    service = LambdaService(concurrency_limit=1)

    def recurse(event, context):
        return service.invoke("recurse", {"depth": event["depth"] + 1}).payload

    service.deploy(FunctionConfig(name="recurse", memory_mib=1024), recurse)
    result = service.invoke("recurse", {"depth": 0})
    # The nested invocation exceeds the limit; its error is captured in the
    # outer handler's result.
    assert not result.succeeded
    assert "TooManyRequests" in result.error


def test_concurrency_limit_allows_nested_within_limit():
    service = LambdaService(concurrency_limit=10)
    calls = []

    def parent(event, context):
        calls.append("parent")
        return service.invoke("child", {}, from_driver=False).payload

    def child(event, context):
        calls.append("child")
        return "leaf"

    service.deploy(FunctionConfig(name="parent", memory_mib=1024), parent)
    service.deploy(FunctionConfig(name="child", memory_mib=1024), child)
    result = service.invoke("parent", {})
    assert result.succeeded
    assert result.payload == "leaf"
    assert calls == ["parent", "child"]


def test_intra_region_invocation_latency_is_lower(service):
    assert service.invocation_latency(from_driver=False) < service.invocation_latency(True)


def test_invocation_rates_match_table1(service):
    assert service.invocation_rate(from_driver=True) == pytest.approx(294.0)
    assert service.invocation_rate(from_driver=False) == pytest.approx(81.0)


def test_invocation_log_and_total_cost(service):
    service.invoke("echo", {})
    service.invoke("echo", {})
    assert service.total_invocations() == 2
    assert service.total_billed_cost() == pytest.approx(
        sum(result.billed_cost for result in service.invocation_log)
    )


def test_delete_function(service):
    service.delete_function("echo")
    assert "echo" not in service.list_functions()


def test_out_of_memory_reporting():
    service = LambdaService()

    def hungry(event, context):
        context.note_memory_use(10 * 1024 * 1024 * 1024)
        return "never"

    service.deploy(FunctionConfig(name="hungry", memory_mib=512), hungry)
    result = service.invoke("hungry", {})
    assert not result.succeeded
    assert "OutOfMemory" in result.error or "used" in result.error
