"""Tests for the price tables (calibrated against the paper's quoted numbers)."""

import pytest

from repro.cloud.pricing import DEFAULT_PRICES, PriceList, WORKER_2GIB_PER_SECOND
from repro.config import GiB, TiB


def test_worker_2gib_price_matches_paper():
    # §4.4.4 quotes $3.3e-5 per second for a 2 GiB worker.
    assert WORKER_2GIB_PER_SECOND == pytest.approx(3.3e-5, rel=0.05)


def test_s3_request_prices_match_paper():
    # §4.4.1: 1M read and write requests cost $0.4 and $5 respectively.
    assert DEFAULT_PRICES.s3_get_cost(1_000_000) == pytest.approx(0.4)
    assert DEFAULT_PRICES.s3_put_cost(1_000_000) == pytest.approx(5.0)


def test_qaas_price_per_tib():
    # §5.4.1: both QaaS systems charge $5 per TiB scanned.
    assert DEFAULT_PRICES.qaas_scan_cost(TiB) == pytest.approx(5.0)


def test_lambda_duration_cost_scales_with_memory():
    small = DEFAULT_PRICES.lambda_duration_cost(1024, 10.0)
    large = DEFAULT_PRICES.lambda_duration_cost(2048, 10.0)
    assert large == pytest.approx(2 * small)


def test_lambda_duration_cost_scales_with_time():
    one = DEFAULT_PRICES.lambda_duration_cost(2048, 1.0)
    ten = DEFAULT_PRICES.lambda_duration_cost(2048, 10.0)
    assert ten == pytest.approx(10 * one)


def test_lambda_invocation_cost():
    assert DEFAULT_PRICES.lambda_invocation_cost(1_000_000) == pytest.approx(0.20)


def test_sqs_cost():
    assert DEFAULT_PRICES.sqs_cost(2_000_000) == pytest.approx(0.80)


def test_dynamodb_cost_reads_cheaper_than_writes():
    reads = DEFAULT_PRICES.dynamodb_cost(1_000_000, 0)
    writes = DEFAULT_PRICES.dynamodb_cost(0, 1_000_000)
    assert reads < writes


def test_vm_cost_scales_with_count_and_hours():
    one = DEFAULT_PRICES.vm_cost("c5n.xlarge", 1.0, 1)
    many = DEFAULT_PRICES.vm_cost("c5n.xlarge", 2.0, 3)
    assert many == pytest.approx(6 * one)


def test_vm_cost_unknown_type_raises():
    with pytest.raises(KeyError):
        DEFAULT_PRICES.vm_cost("m1.tiny", 1.0)


def test_custom_price_list_is_used():
    prices = PriceList(s3_get_per_million=1.0)
    assert prices.s3_get_cost(1_000_000) == pytest.approx(1.0)


def test_zero_usage_costs_nothing():
    assert DEFAULT_PRICES.s3_get_cost(0) == 0.0
    assert DEFAULT_PRICES.lambda_duration_cost(2048, 0.0) == 0.0
    assert DEFAULT_PRICES.qaas_scan_cost(0.0) == 0.0
