"""Unit tests of the overload-control plane.

Covers the circuit-breaker state machine, per-query retry budgets, the
admission controller's typed rejections and budget reconciliation, the
windowed brownout fault rules (clock-driven activation), and the fault-plan
reset/rebind bookkeeping that keeps counters from leaking across queries.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import setup_functional_environment
from repro.cloud.clock import VirtualClock
from repro.cloud.faults import FaultPlan, FaultRule, brownout_plan
from repro.driver.admission import (
    AdmissionConfig,
    AdmissionController,
    CancellationToken,
    TokenBucket,
)
from repro.driver.breakers import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
    RetryBudget,
)
from repro.driver.driver import LambadaDriver
from repro.errors import (
    QueryCancelledError,
    QueryRejectedError,
    RetryBudgetExhaustedError,
    SlowDownError,
    TooManyRequestsError,
)
from repro.workload.queries import q6_plan


# ---------------------------------------------------------------------------
# Circuit breaker state machine
# ---------------------------------------------------------------------------


def test_breaker_opens_at_threshold_and_recovers_through_probes():
    breaker = CircuitBreaker(
        "s3", failure_threshold=3, window_seconds=10.0,
        cooldown_seconds=5.0, half_open_probes=2,
    )
    breaker.record_failure(0.0)
    breaker.record_failure(1.0)
    assert breaker.state == CLOSED
    breaker.record_failure(2.0)
    assert breaker.state == OPEN
    # Cooldown not elapsed: callers are told how long to charge to latency.
    assert breaker.wait_seconds(4.0) == pytest.approx(3.0)
    assert breaker.state == OPEN
    # Cooldown elapsed: this call admits the half-open probe.
    assert breaker.wait_seconds(7.5) == 0.0
    assert breaker.state == HALF_OPEN
    breaker.record_success(8.0)
    assert breaker.state == HALF_OPEN  # one probe is not enough
    breaker.record_success(8.5)
    assert breaker.state == CLOSED
    transitions = [(frm, to) for _, frm, to in breaker.transitions]
    assert transitions == [
        (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
    ]


def test_breaker_probe_failure_reopens():
    breaker = CircuitBreaker(
        "lambda", failure_threshold=1, cooldown_seconds=5.0, half_open_probes=1
    )
    breaker.record_failure(0.0)
    assert breaker.state == OPEN
    assert breaker.wait_seconds(6.0) == 0.0
    assert breaker.state == HALF_OPEN
    breaker.record_failure(6.5)
    assert breaker.state == OPEN
    # The cooldown restarted at the probe failure.
    assert breaker.wait_seconds(7.0) == pytest.approx(4.5)


def test_breaker_window_prunes_old_failures():
    breaker = CircuitBreaker("s3", failure_threshold=3, window_seconds=5.0)
    breaker.record_failure(0.0)
    breaker.record_failure(1.0)
    # Both earlier failures have rolled out of the window by t=10.
    breaker.record_failure(10.0)
    assert breaker.state == CLOSED


def test_breaker_board_classifies_errors_by_service():
    board = BreakerBoard(failure_threshold=1)
    assert board.record_failure(SlowDownError("x"), 0.0) == "s3"
    assert board.record_failure(TooManyRequestsError("x"), 0.0) == "lambda"
    assert board.record_failure(ValueError("x"), 0.0) is None
    assert sorted(board.open_services()) == ["lambda", "s3"]
    assert board.states()["sqs"] == CLOSED
    assert board.transition_count() == 2


# ---------------------------------------------------------------------------
# Retry budget
# ---------------------------------------------------------------------------


def test_retry_budget_exhaustion_is_typed_and_attributed():
    board = BreakerBoard(failure_threshold=1)
    board.record_failure(SlowDownError("x"), 0.0)
    budget = RetryBudget(limit=3, query_id="q-test", breaker_states=board.states)
    budget.charge("backoff_retries")
    budget.charge("wave_retries", amount=2)
    with pytest.raises(RetryBudgetExhaustedError) as info:
        budget.charge("backoff_retries")
    assert info.value.query_id == "q-test"
    assert info.value.spent == {"backoff_retries": 1, "wave_retries": 2}
    assert info.value.breaker_states["s3"] == OPEN
    assert budget.spent_total == 3
    assert budget.remaining == 0


def test_retry_budget_try_charge_never_raises():
    budget = RetryBudget(limit=1)
    assert budget.try_charge("hedges")
    assert not budget.try_charge("hedges")
    assert budget.to_dict() == {
        "limit": 1, "spent_total": 1, "spent": {"hedges": 1},
    }


# ---------------------------------------------------------------------------
# Token buckets and admission
# ---------------------------------------------------------------------------


def test_token_bucket_take_refill_and_debt():
    bucket = TokenBucket(capacity=10.0, refill_per_second=1.0)
    assert bucket.try_take(8.0, now=0.0)
    assert not bucket.try_take(5.0, now=0.0)
    # 3 seconds of refill pay for the next take.
    assert bucket.try_take(5.0, now=3.0)
    # Reconciliation may push the level negative (debt), never refuses.
    bucket.adjust(4.0, now=3.0)
    assert bucket.level == pytest.approx(-4.0)
    assert not bucket.try_take(0.5, now=3.0)
    assert bucket.try_take(0.5, now=8.0)  # refill paid the debt off


def test_admission_rejections_are_typed():
    config = AdmissionConfig(
        max_concurrent_queries=1,
        max_queued_queries=1,
        tenant_invocation_capacity=100.0,
        tenant_dollar_capacity=0.01,
        default_invocation_estimate=10.0,
        default_dollar_estimate=0.001,
    )
    controller = AdmissionController(config)

    first = controller.admit("a")          # in flight
    controller.admit("a")                  # queued
    with pytest.raises(QueryRejectedError) as info:
        controller.admit("a")
    assert info.value.reason == "queue_full"

    controller.finish(first, "completed", actual_invocations=10.0,
                      actual_dollars=0.001)
    with pytest.raises(QueryRejectedError) as info:
        controller.admit("b", dollar_estimate=1.0)
    assert info.value.reason == "dollar_budget"
    # The dollar rejection refunded b's invocation tokens.
    assert controller.tenant_levels("b")["invocations"] == pytest.approx(100.0)

    with pytest.raises(QueryRejectedError) as info:
        controller.admit("c", invocation_estimate=1000.0)
    assert info.value.reason == "invocation_budget"

    stats = controller.stats
    assert stats.rejected == {
        "queue_full": 1, "dollar_budget": 1, "invocation_budget": 1,
    }
    assert stats.admitted == 2
    assert stats.completed == 1


def test_admission_reconciles_actual_spend():
    config = AdmissionConfig(
        tenant_invocation_capacity=100.0, default_invocation_estimate=50.0
    )
    controller = AdmissionController(config)
    permit = controller.admit("t")
    assert controller.tenant_levels("t")["invocations"] == pytest.approx(50.0)
    # The query actually used 8 invocations: 42 estimated tokens come back.
    controller.finish(permit, "completed", actual_invocations=8.0)
    assert controller.tenant_levels("t")["invocations"] == pytest.approx(92.0)
    assert controller.stats.tenants["t"]["invocations_spent"] == pytest.approx(8.0)


def test_cancellation_token_stage_trigger_and_deadline():
    token = CancellationToken(cancel_at_stage="collect")
    token.check("dispatch")  # different stage: no-op
    with pytest.raises(QueryCancelledError) as info:
        token.check("collect")
    assert info.value.stage == "collect"
    assert not info.value.deadline
    assert token.observed_stage == "collect"

    clock = {"now": 0.0}
    deadline = CancellationToken(deadline_seconds=5.0)
    deadline.bind(lambda: clock["now"], query_id="q1")
    deadline.check("collect")
    clock["now"] = 6.0
    with pytest.raises(QueryCancelledError) as info:
        deadline.check("collect")
    assert info.value.deadline
    assert info.value.query_id == "q1"


# ---------------------------------------------------------------------------
# Windowed brownout fault rules
# ---------------------------------------------------------------------------


def test_brownout_storm_is_window_gated():
    clock = VirtualClock()
    plan = brownout_plan(seed=3, storm_start_seconds=10.0, storm_seconds=20.0,
                         storm_rate=1.0)
    plan.bind_clock(clock)

    # Before the window: no injection possible.
    for _ in range(20):
        plan.s3_fault("get", "bucket", "key")
    assert plan.injected_total() == 0

    clock.advance(15.0)  # inside [10, 30)
    with pytest.raises(SlowDownError, match="brownout storm"):
        plan.s3_fault("get", "bucket", "key")

    clock.advance(20.0)  # past the window
    before = plan.injected_total()
    for _ in range(20):
        plan.s3_fault("get", "bucket", "key")
    assert plan.injected_total() == before


def test_windowed_rule_without_clock_never_fires():
    plan = FaultPlan(
        [FaultRule("s3", "throttle_storm", 1.0, window_seconds=60.0)], seed=1
    )
    for _ in range(10):
        plan.s3_fault("get", "bucket", "key")  # fail-safe: inactive
    assert plan.injected_total() == 0


def test_capacity_rule_rejects_only_above_fleet_cap():
    clock = VirtualClock()
    plan = FaultPlan(
        [FaultRule("lambda", "capacity", 1.0, capacity_limit=4,
                   window_seconds=60.0)],
        seed=1,
    )
    plan.bind_clock(clock)
    assert not plan.invocation_capacity("worker", active=3)
    assert plan.invocation_capacity("worker", active=4)
    assert plan.injected["lambda.capacity"] == 1


def test_capacity_brownout_is_retried_not_fatal():
    """A capacity-capped invocation raises TooManyRequestsError, which the
    driver's wrapped dispatch retries with backoff — the query completes.

    Four files build a 2x2 invocation tree: each parent invokes its child
    *while itself active*, so a ``capacity_limit=1`` cap trips on the nested
    invocation deterministically even under serial dispatch.
    """
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=4)
    driver = LambadaDriver(env)
    baseline = driver.execute(q6_plan(dataset.paths))

    env.install_fault_plan(
        FaultPlan(
            [FaultRule("lambda", "capacity", 1.0, capacity_limit=1,
                       max_count=2, window_seconds=3600.0)],
            seed=5,
        )
    )
    try:
        result = driver.execute(q6_plan(dataset.paths))
    finally:
        env.install_fault_plan(None)
    assert result.scalar() == baseline.scalar()
    stats = result.statistics
    assert stats.resilience.faults_injected.get("lambda.capacity", 0) >= 1
    assert stats.resilience.retries >= 1
    assert stats.overload is not None
    assert stats.overload["retry_budget"]["spent_total"] >= 1


# ---------------------------------------------------------------------------
# Fault-plan reset and cross-query bookkeeping (satellite: no state leaks)
# ---------------------------------------------------------------------------


def test_fault_plan_reset_restores_deterministic_schedule():
    plan = FaultPlan(
        [FaultRule("s3", "slowdown", 0.5, max_count=10)], seed=42
    )
    outcomes = []
    for _ in range(2):
        fired = []
        for _ in range(20):
            try:
                plan.s3_fault("get", "bucket", "key")
                fired.append(False)
            except SlowDownError:
                fired.append(True)
        outcomes.append((fired, dict(plan.injected)))
        plan.reset()
    assert outcomes[0] == outcomes[1]
    assert plan.injected == {}  # reset cleared the counters


def test_uninstall_and_reinstall_fully_resets_per_query_delta():
    """Counters armed by one query never leak into the next one's
    ``faults_injected`` delta, across install/uninstall cycles."""
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=2)
    driver = LambadaDriver(env)
    plan_a = FaultPlan(
        [FaultRule("s3", "slowdown", 1.0, max_count=2, match="lineitem")], seed=9
    )
    env.install_fault_plan(plan_a)
    try:
        first = driver.execute(q6_plan(dataset.paths), max_worker_retries=4)
    finally:
        env.install_fault_plan(None)
    assert first.statistics.resilience.faults_injected == {"s3.slowdown": 2}

    # No plan installed: the next query sees a clean delta.
    second = driver.execute(q6_plan(dataset.paths))
    assert second.statistics.resilience.faults_injected == {}
    assert second.statistics.resilience.clean

    # Re-installing the *same exhausted* plan after reset() replays the
    # schedule from scratch — order independence for pytest cases.
    plan_a.reset()
    env.install_fault_plan(plan_a)
    try:
        third = driver.execute(q6_plan(dataset.paths), max_worker_retries=4)
    finally:
        env.install_fault_plan(None)
    assert third.statistics.resilience.faults_injected == {"s3.slowdown": 2}
    assert third.scalar() == first.scalar() == second.scalar()


def test_clean_query_reports_closed_breakers_and_zero_budget():
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=2)
    driver = LambadaDriver(env)
    result = driver.execute(q6_plan(dataset.paths))
    overload = result.statistics.overload
    assert overload is not None
    assert overload["retry_budget"]["spent_total"] == 0
    assert overload["breaker_transitions"] == 0
    assert all(b["state"] == CLOSED for b in overload["breakers"].values())
