"""Overload chaos acceptance suite: concurrent tenants under a brownout.

The PR 9 acceptance bar: at least eight concurrent queries across at least
three tenants run through a :class:`~repro.driver.driver.QuerySession` while
a seeded :func:`~repro.cloud.faults.brownout_plan` storm (S3 throttles plus
a Lambda fleet cap) rages.  Every query must either return a result
**bit-identical** to its fault-free baseline or fail with a *typed*
rejection/cancellation — never hang, never leak ``/dev/shm`` segments — and
the admission/budget/breaker state must be visible in the statistics.

Fault caps are chosen so convergence is provable, not probabilistic: the
storm injects at most ``STORM_MAX_FAULTS`` faults per rule, strictly fewer
than the per-call attempt budget (14) and the per-worker retry budget (13),
so even a worst-case schedule that aims every injection at one victim still
completes.  The breaker state machine is exercised separately under a
deterministic serial storm where the exact transition sequence is asserted.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import setup_functional_environment
from repro.cloud.faults import FaultPlan, FaultRule, brownout_plan
from repro.driver.admission import AdmissionConfig, CancellationToken
from repro.driver.breakers import BreakerBoard
from repro.driver.driver import LambadaDriver, QuerySession
from repro.driver.resilience import ResiliencePolicy
from repro.errors import (
    QueryCancelledError,
    QueryRejectedError,
    RetryBudgetExhaustedError,
)
from repro.workload.queries import q1_plan, q3_plan, q6_plan
from repro.workload.tpch import generate_orders_dataset

from tests.test_mode_parity import assert_bit_identical, leaked_segments

TENANTS = ("acme", "globex", "initech")
QUERIES = ("q1", "q6", "q3")
#: Strictly below both the 14-attempt backoff budget and the 13-round worker
#: retry budget, so every storm provably converges (see module docstring).
STORM_MAX_FAULTS = 12
CHAOS_POLICY = ResiliencePolicy(max_attempts=14)
MAX_WORKER_RETRIES = 13
RESULT_TIMEOUT_SECONDS = 120.0


@pytest.fixture(scope="module")
def stack():
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=8)
    orders = generate_orders_dataset(
        env.s3, scale_factor=0.002, num_files=3, row_group_rows=512, seed=7
    )
    return env, dataset, orders


@pytest.fixture(scope="module")
def plans(stack):
    _, dataset, orders = stack
    return {
        "q1": q1_plan(dataset.paths),
        "q6": q6_plan(dataset.paths),
        "q3": q3_plan(dataset.paths, orders.paths),
    }


@pytest.fixture(scope="module")
def baselines(stack, plans):
    env = stack[0]
    assert env.s3.fault_plan is None
    driver = LambadaDriver(env, result_queue="lambada-result-queue-baseline")
    results = {}
    for query, plan in plans.items():
        result = driver.execute(plan)
        assert result.statistics.resilience.clean, f"{query}: baseline not clean"
        results[query] = result
    return results


def test_concurrent_tenants_survive_brownout(stack, plans, baselines):
    """Nine queries, three tenants, four worker threads, one seeded brownout:
    all results bit-identical, one over-budget submission rejected fast, no
    leaks, budgets and breakers visible in every query's statistics."""
    env = stack[0]
    storm = brownout_plan(
        seed=11, storm_rate=0.2, capacity_limit=6, max_count=STORM_MAX_FAULTS
    )
    env.install_fault_plan(storm)
    completed = 0
    typed = 0
    try:
        with QuerySession(
            env,
            admission=AdmissionConfig(max_concurrent_queries=4, max_queued_queries=8),
            resilience_policy=CHAOS_POLICY,
        ) as session:
            handles = []
            for index in range(9):
                query = QUERIES[index % len(QUERIES)]
                handles.append(
                    (
                        query,
                        session.submit(
                            plans[query],
                            tenant=TENANTS[index % len(TENANTS)],
                            max_worker_retries=MAX_WORKER_RETRIES,
                        ),
                    )
                )

            # A tenant whose estimate alone exceeds its dollar budget is
            # refused synchronously, before touching the shared fleet.
            with pytest.raises(QueryRejectedError) as excinfo:
                session.submit(plans["q6"], tenant="big-spender", dollar_estimate=10.0)
            assert excinfo.value.reason == "dollar_budget"
            assert excinfo.value.tenant == "big-spender"

            for query, handle in handles:
                try:
                    result = handle.result(timeout=RESULT_TIMEOUT_SECONDS)
                except (QueryCancelledError, RetryBudgetExhaustedError):
                    typed += 1
                    continue
                completed += 1
                assert_bit_identical(
                    baselines[query].table, result.table, f"{query}/{handle.tenant}"
                )
                overload = result.statistics.overload
                assert overload is not None, f"{query}: no overload block"
                assert overload["retry_budget"]["limit"] == CHAOS_POLICY.retry_budget
                assert set(overload["breakers"]) == {"s3", "lambda", "sqs"}
            stats = session.stats
    finally:
        env.install_fault_plan(None)

    # With fault caps below every retry budget no query can fail outright —
    # but a typed unwind would still satisfy the acceptance contract.
    assert completed + typed == 9
    assert completed >= 1
    assert sum(storm.to_dict().values()) >= 1, "storm never fired"
    assert stats.submitted == 10
    assert stats.admitted == 9
    assert stats.rejected == {"dollar_budget": 1}
    assert stats.completed + stats.cancelled + stats.failed == 9
    assert stats.peak_in_flight <= 4
    for tenant in TENANTS:
        row = stats.tenants[tenant]
        assert row["admitted"] == 3
        assert row["invocations_spent"] > 0.0
    assert leaked_segments() == []


def test_session_cancellation_is_counted_and_clean(stack, plans, baselines):
    """A query cancelled mid-collect inside a session surfaces the typed
    error from its handle, is tallied as cancelled (not failed), and leaves
    the fleet clean for the next submission."""
    env = stack[0]
    with QuerySession(env) as session:
        token = CancellationToken(cancel_at_stage="collect")
        handle = session.submit(plans["q6"], tenant="acme", cancel=token)
        with pytest.raises(QueryCancelledError) as excinfo:
            handle.result(timeout=RESULT_TIMEOUT_SECONDS)
        assert excinfo.value.stage == "collect"

        rerun = session.submit(plans["q6"], tenant="acme")
        assert_bit_identical(
            baselines["q6"].table,
            rerun.result(timeout=RESULT_TIMEOUT_SECONDS).table,
            "post-cancel session rerun",
        )
        stats = session.stats
    assert stats.cancelled == 1
    assert stats.completed == 1
    assert stats.failed == 0
    assert leaked_segments() == []


def test_slowdown_storm_walks_breaker_through_full_cycle(
    stack, plans, baselines, monkeypatch
):
    """A deterministic serial throttle storm drives the S3 breaker through
    closed → open → half-open → (probe failure) → open → half-open → closed,
    while the query still converges bit-identically.

    The storm targets exactly one *driver-side* request — the GET of worker
    0's spilled result (forced by a tiny spill threshold) — because that is
    the one scan-path S3 read that flows through ``call_with_backoff``'s
    breaker-aware retry loop; worker-side throttles surface as missing
    result messages instead and only *count* failures, never probe."""
    import repro.driver.worker as worker_module

    env, dataset, _ = stack
    monkeypatch.setattr(worker_module, "RESULT_SPILL_BYTES", 64)
    board = BreakerBoard(failure_threshold=2, half_open_probes=1)
    driver = LambadaDriver(
        env,
        breakers=board,
        result_queue="lambada-result-queue-breaker",
        resilience_policy=CHAOS_POLICY,
    )
    env.install_fault_plan(
        FaultPlan(
            [
                FaultRule(
                    "s3", "slowdown", 1.0,
                    match="worker-0.a0", operation="get", max_count=3,
                )
            ],
            seed=5,
        )
    )
    try:
        result = driver.execute(plans["q6"], max_worker_retries=MAX_WORKER_RETRIES)
    finally:
        env.install_fault_plan(None)

    assert_bit_identical(baselines["q6"].table, result.table, "breaker storm")
    breaker = board.breakers["s3"]
    walk = [(frm, to) for _, frm, to in breaker.transitions]
    assert walk == [
        ("closed", "open"),
        ("open", "half_open"),
        ("half_open", "open"),  # the capped probe failed and re-opened
        ("open", "half_open"),
        ("half_open", "closed"),
    ]
    assert breaker.state == "closed"
    overload = result.statistics.overload
    assert overload["breaker_transitions"] == 5
    assert overload["retry_budget"]["spent"].get("backoff_retries", 0) == 3
    # The two full cooldowns the breaker imposed were charged to modelled
    # latency, not slept: the brownout is visible in backoff accounting.
    assert result.statistics.resilience.backoff_seconds >= 2 * breaker.cooldown_seconds
