"""Round-trip and format-compatibility tests for the fast shuffle codec."""

import numpy as np
import pytest

from repro.engine.table import table_num_rows, tables_allclose
from repro.errors import CorruptFileError
from repro.exchange.basic import deserialize_partition, serialize_partition
from repro.exchange.codec import (
    CHECKED_PARTITION_TAG,
    FAST_PARTITION_TAG,
    decode_partition,
    decode_partition_slice,
    encode_partition,
    encode_partition_set,
    is_fast_partition,
)
from repro.exchange.partition import partition_scatter
from repro.formats.compression import Compression


def _case_tables():
    rng = np.random.default_rng(23)
    return {
        "mixed_dtypes": {
            "k": rng.integers(-(2 ** 60), 2 ** 60, 500, dtype=np.int64),
            "v": rng.random(500),
            "n": rng.integers(0, 100, 500).astype(np.int32),
            "b": rng.integers(0, 2, 500).astype(bool),
        },
        "single_row": {"k": np.array([7], dtype=np.int64), "v": np.array([1.25])},
        "strings": {
            "flag": np.array(["A", "N", "R", "A"]),
            "x": np.arange(4, dtype=np.float64),
        },
        "nan_and_inf": {
            "x": np.array([np.nan, np.inf, -np.inf, -0.0, 1.5]),
            "k": np.arange(5, dtype=np.int64),
        },
    }


@pytest.mark.parametrize("case", list(_case_tables()))
@pytest.mark.parametrize("compression", list(Compression))
def test_fast_codec_roundtrip_exact(case, compression):
    table = _case_tables()[case]
    restored = decode_partition(encode_partition(table, compression))
    assert list(restored.keys()) == list(table.keys())
    for name in table:
        assert restored[name].dtype == np.asarray(table[name]).dtype
        np.testing.assert_array_equal(restored[name], table[name])


def test_object_dtype_falls_back_to_json_values():
    table = {"tag": np.asarray(["x", None, ("a", 1)], dtype=object)}
    restored = decode_partition(encode_partition(table))
    assert restored["tag"].dtype == object
    assert restored["tag"].tolist() == ["x", None, ["a", 1]]


def test_decoded_columns_are_writable():
    table = {"k": np.arange(10, dtype=np.int64)}
    restored = decode_partition(encode_partition(table))
    restored["k"][0] = -1  # must not raise: frombuffer views are copied
    assert restored["k"][0] == -1


def test_serialize_partition_uses_fast_codec_by_default():
    table = {"k": np.arange(5, dtype=np.int64)}
    data = serialize_partition(table)
    assert is_fast_partition(data)
    # Checksums are on by default, so the checked frame tag is written; the
    # pre-integrity tag survives with checksum=False.
    assert data[0] == CHECKED_PARTITION_TAG
    unchecked = serialize_partition(table, checksum=False)
    assert is_fast_partition(unchecked)
    assert unchecked[0] == FAST_PARTITION_TAG


def test_legacy_lpq_objects_still_decode():
    table = {"k": np.arange(100, dtype=np.int64), "v": np.linspace(0, 1, 100)}
    legacy = serialize_partition(table, fast=False)
    assert not is_fast_partition(legacy)
    assert legacy[:4] == b"LPQ1"
    assert tables_allclose(deserialize_partition(legacy), table)


def test_empty_partition_roundtrip():
    assert serialize_partition({}) == b""
    assert deserialize_partition(b"") == {}
    empty = {"k": np.zeros(0, dtype=np.int64)}
    assert serialize_partition(empty) == b""


def test_deserialize_sniffs_both_formats():
    table = {"k": np.arange(50, dtype=np.int64), "v": np.arange(50, dtype=np.float64)}
    for fast in (True, False):
        restored = deserialize_partition(serialize_partition(table, fast=fast))
        assert tables_allclose(restored, table)


def test_decode_rejects_non_fast_bytes():
    with pytest.raises(CorruptFileError):
        decode_partition(b"LPQ1 definitely not fast")


def test_decode_rejects_truncated_body():
    data = encode_partition({"k": np.arange(100, dtype=np.int64)}, Compression.NONE)
    with pytest.raises(CorruptFileError):
        decode_partition(data[: len(data) - 40])


def test_decode_rejects_truncated_header():
    data = encode_partition({"k": np.arange(10, dtype=np.int64)})
    with pytest.raises(CorruptFileError):
        decode_partition(data[:8])


@pytest.mark.parametrize("compression", list(Compression))
def test_partition_set_roundtrip_matches_per_partition_encode(compression):
    rng = np.random.default_rng(17)
    table = {
        "k": rng.integers(-(2 ** 60), 2 ** 60, 1000, dtype=np.int64),
        "v": rng.random(1000),
        "n": rng.integers(0, 50, 1000).astype(np.int32),
    }
    P = 16
    reordered, boundaries = partition_scatter(table, ["k"], P)
    payload, offsets = encode_partition_set(reordered, boundaries, compression)
    assert len(offsets) == P + 1
    assert offsets[0] == 0 and offsets[-1] == len(payload)
    for partition in range(P):
        blob = payload[offsets[partition]:offsets[partition + 1]]
        restored = decode_partition_slice(blob)
        start, end = int(boundaries[partition]), int(boundaries[partition + 1])
        assert table_num_rows(restored) == end - start
        for name in table:
            expected = reordered[name][start:end]
            assert restored[name].dtype == expected.dtype
            np.testing.assert_array_equal(restored[name], expected)


def test_partition_set_empty_partitions_occupy_zero_bytes():
    table = {"k": np.array([0, 0, 0], dtype=np.int64), "v": np.ones(3)}
    P = 8
    reordered, boundaries = partition_scatter(table, ["k"], P)
    payload, offsets = encode_partition_set(reordered, boundaries)
    non_empty = [p for p in range(P) if boundaries[p + 1] > boundaries[p]]
    assert len(non_empty) == 1
    for partition in range(P):
        width = offsets[partition + 1] - offsets[partition]
        if partition in non_empty:
            assert width > 0
        else:
            assert width == 0
            # Zero-length slices decode without touching any bytes.
            assert decode_partition_slice(b"") == {}


def test_partition_set_of_empty_table():
    table = {"k": np.zeros(0, dtype=np.int64), "v": np.zeros(0)}
    reordered, boundaries = partition_scatter(table, ["k"], 4)
    payload, offsets = encode_partition_set(reordered, boundaries)
    assert payload == b""
    assert offsets == [0, 0, 0, 0, 0]


def test_partition_set_slices_are_independent_fast_blobs():
    """Each non-empty slice is a self-contained fast-codec object."""
    rng = np.random.default_rng(5)
    table = {"k": rng.integers(0, 100, 300, dtype=np.int64), "v": rng.random(300)}
    reordered, boundaries = partition_scatter(table, ["k"], 4)
    payload, offsets = encode_partition_set(reordered, boundaries)
    for partition in range(4):
        blob = payload[offsets[partition]:offsets[partition + 1]]
        if blob:
            assert is_fast_partition(blob)
            # The slice also round-trips through the generic sniffing decoder.
            assert table_num_rows(deserialize_partition(blob)) > 0


def test_decode_partition_slice_accepts_legacy_lpq_parts():
    table = {"k": np.arange(20, dtype=np.int64), "v": np.linspace(0, 1, 20)}
    legacy_blob = serialize_partition(table, fast=False)
    restored = decode_partition_slice(legacy_blob)
    assert tables_allclose(restored, table)


def test_decode_partition_slice_views_and_copies():
    table = {"k": np.arange(10, dtype=np.int64)}
    blob = encode_partition(table, Compression.NONE)
    view = decode_partition_slice(blob)  # zero-copy default
    assert not view["k"].flags.writeable
    copied = decode_partition_slice(blob, copy=True)
    copied["k"][0] = -1
    assert copied["k"][0] == -1


def test_exchange_roundtrip_with_legacy_sender():
    """A fleet where one sender still writes LPQ interoperates seamlessly."""
    from repro.cloud.s3 import ObjectStore
    from repro.exchange.basic import BasicExchange, ExchangeConfig

    rng = np.random.default_rng(3)
    P = 4
    tables = [
        {"key": rng.integers(0, 100, 50).astype(np.int64), "v": rng.random(50)}
        for _ in range(P)
    ]
    store = ObjectStore()
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    for worker in range(P - 1):
        exchange.write(worker, tables[worker])
    # The last sender is an old worker: rewrite its objects in LPQ form.
    legacy_config = ExchangeConfig(keys=["key"], fast_codec=False)
    legacy = BasicExchange(store, P, legacy_config, naming=exchange._round.naming)
    legacy.write(P - 1, tables[P - 1])
    results = [exchange.read(worker) for worker in range(P)]
    assert sum(table_num_rows(t) for t in results) == sum(
        table_num_rows(t) for t in tables
    )