"""Tests for the driver's thread-pool execution mode."""

import pytest

from repro.analysis.experiments import run_tpch_query, setup_functional_environment
from repro.driver.driver import LambadaDriver
from repro.engine.pipeline import WorkerResult
from repro.engine.table import tables_allclose


@pytest.fixture(scope="module")
def stack():
    return setup_functional_environment(scale_factor=0.002, num_files=8)


def test_unknown_execution_mode_rejected(stack):
    env, _, _ = stack
    with pytest.raises(ValueError):
        LambadaDriver(env, execution_mode="fibers")


def test_threaded_fleet_matches_serial_results(stack):
    env, dataset, serial_driver = stack
    threaded_driver = LambadaDriver(env, execution_mode="threads")
    serial = run_tpch_query(serial_driver, dataset, "q1")
    threaded = run_tpch_query(threaded_driver, dataset, "q1")
    assert tables_allclose(serial.table, threaded.table)
    assert serial.num_rows == threaded.num_rows


def test_threaded_results_ordered_by_worker_id(stack):
    env, dataset, _ = stack
    driver = LambadaDriver(env, execution_mode="threads", max_parallel_invocations=4)
    result = run_tpch_query(driver, dataset, "q6")
    # One result per worker, merged in worker-id order regardless of the
    # arrival order of the queue messages.
    assert len(result.worker_results) == dataset.num_files
    assert all(
        isinstance(worker_result, WorkerResult)
        for worker_result in result.worker_results
    )
    assert result.scalar() == pytest.approx(
        run_tpch_query(LambadaDriver(env), dataset, "q6").scalar()
    )


def test_worker_result_from_payload_ignores_unknown_keys():
    payload = WorkerResult(partial={"x": [1.0]}).to_payload()
    payload["some_future_field"] = {"nested": True}
    restored = WorkerResult.from_payload(payload)
    assert restored.partial == {"x": [1.0]}
    assert not hasattr(restored, "some_future_field")
