"""Tests for in-memory table utilities."""

import numpy as np
import pytest

from repro.engine.table import (
    concat_tables,
    empty_table_like,
    filter_table,
    select_columns,
    sort_table,
    table_from_payload,
    table_num_rows,
    table_to_payload,
    tables_allclose,
    take_rows,
)
from repro.errors import ExecutionError, UnknownColumnError


def test_num_rows(small_table):
    assert table_num_rows(small_table) == 5
    assert table_num_rows({}) == 0


def test_num_rows_ragged_raises():
    with pytest.raises(ExecutionError):
        table_num_rows({"a": np.zeros(2), "b": np.zeros(3)})


def test_select_columns(small_table):
    selected = select_columns(small_table, ["value", "key"])
    assert list(selected.keys()) == ["value", "key"]


def test_select_missing_column_raises(small_table):
    with pytest.raises(UnknownColumnError):
        select_columns(small_table, ["nope"])


def test_filter_table(small_table):
    mask = np.array([True, False, True, False, True])
    filtered = filter_table(small_table, mask)
    np.testing.assert_array_equal(filtered["key"], [1, 3, 5])


def test_filter_table_accepts_int_mask(small_table):
    mask = np.array([1, 0, 0, 0, 1])
    assert table_num_rows(filter_table(small_table, mask)) == 2


def test_filter_wrong_length_raises(small_table):
    with pytest.raises(ExecutionError):
        filter_table(small_table, np.array([True]))


def test_concat_tables(small_table):
    combined = concat_tables([small_table, small_table])
    assert table_num_rows(combined) == 10


def test_concat_skips_empty_and_handles_all_empty(small_table):
    assert table_num_rows(concat_tables([{}, small_table])) == 5
    assert concat_tables([{}, {}]) == {}


def test_concat_mismatched_columns_raises(small_table):
    with pytest.raises(ExecutionError):
        concat_tables([small_table, {"other": np.zeros(2)}])


def test_take_rows(small_table):
    taken = take_rows(small_table, np.array([4, 0]))
    np.testing.assert_array_equal(taken["key"], [5, 1])


def test_empty_table_like():
    table = empty_table_like(["a", "b"])
    assert table_num_rows(table) == 0
    assert set(table.keys()) == {"a", "b"}


def test_payload_roundtrip(small_table):
    payload = table_to_payload(small_table)
    restored = table_from_payload(payload)
    for name in small_table:
        np.testing.assert_array_equal(restored[name], small_table[name])


def test_payload_is_json_compatible(small_table):
    import json

    json.dumps(table_to_payload(small_table))


def test_tables_allclose(small_table):
    assert tables_allclose(small_table, {k: v.copy() for k, v in small_table.items()})
    other = {k: v.copy() for k, v in small_table.items()}
    other["value"] = other["value"] + 1e-3
    assert not tables_allclose(small_table, other)
    assert not tables_allclose(small_table, {"key": small_table["key"]})


def test_sort_table_single_key():
    table = {"k": np.array([3, 1, 2]), "v": np.array([30.0, 10.0, 20.0])}
    result = sort_table(table, ["k"])
    np.testing.assert_array_equal(result["k"], [1, 2, 3])
    np.testing.assert_array_equal(result["v"], [10.0, 20.0, 30.0])


def test_sort_table_multiple_keys_lexicographic():
    table = {
        "a": np.array([1, 0, 1, 0]),
        "b": np.array([1, 1, 0, 0]),
    }
    result = sort_table(table, ["a", "b"])
    np.testing.assert_array_equal(result["a"], [0, 0, 1, 1])
    np.testing.assert_array_equal(result["b"], [0, 1, 0, 1])


def test_sort_table_descending():
    table = {"k": np.array([1, 3, 2])}
    result = sort_table(table, ["k"], descending=True)
    np.testing.assert_array_equal(result["k"], [3, 2, 1])


def test_sort_table_no_keys_is_identity(small_table):
    assert sort_table(small_table, []) is small_table


def test_sort_table_missing_key_raises(small_table):
    with pytest.raises(UnknownColumnError):
        sort_table(small_table, ["missing"])
