"""Tests for the exchange timing simulator (Table 3 / Figure 13)."""

import numpy as np
import pytest

from repro.baselines.external import LAMBADA_PAPER_RESULTS, POCKET_RESULTS
from repro.exchange.simulator import ExchangeSimulator

GB = 1_000_000_000
TB = 1_000_000_000_000


@pytest.fixture
def simulator() -> ExchangeSimulator:
    return ExchangeSimulator()


def test_simulation_is_deterministic(simulator):
    first = simulator.simulate(100, 100 * GB)
    second = simulator.simulate(100, 100 * GB)
    assert first.total_seconds == second.total_seconds


def test_more_workers_is_faster(simulator):
    slow = simulator.simulate(250, 100 * GB)
    fast = simulator.simulate(1000, 100 * GB)
    assert fast.total_seconds < slow.total_seconds


def test_more_data_takes_longer(simulator):
    small = simulator.simulate(1250, 1 * TB)
    large = simulator.simulate(2500, 3 * TB)
    assert large.total_seconds > small.total_seconds


def test_phase_breakdown_shapes(simulator):
    timings = simulator.simulate(100, 100 * GB)
    phases = timings.breakdown.phases()
    assert set(phases.keys()) == {
        "Read input",
        "Round 1 write",
        "Round 1 wait",
        "Round 1 read",
        "Round 2 write",
        "Round 2 wait",
        "Round 2 read",
    }
    for values in phases.values():
        assert len(values) == 100
        assert np.all(values >= 0)


def test_total_is_max_of_per_worker_totals(simulator):
    timings = simulator.simulate(64, 50 * GB)
    assert timings.total_seconds == pytest.approx(
        float(timings.breakdown.total_per_worker().max())
    )
    assert timings.fastest_worker_seconds <= timings.total_seconds


def test_lower_bound_below_fastest_worker(simulator):
    timings = simulator.simulate(100, 100 * GB)
    assert timings.lower_bound_seconds <= timings.fastest_worker_seconds + 1e-9


def test_straggler_tail_grows_with_scale(simulator):
    """Figure 13: the 3 TB / 2500-worker run has a much heavier straggler tail
    (slowest ~4x median) than the 1 TB / 1250-worker run (~1.3x median)."""
    small = simulator.simulate(1250, 1 * TB)
    large = simulator.simulate(2500, 3 * TB)
    small_ratio = small.breakdown.round1_write.max() / np.median(small.breakdown.round1_write)
    large_ratio = large.breakdown.round1_write.max() / np.median(large.breakdown.round1_write)
    assert large_ratio > small_ratio
    assert small_ratio < 2.0
    assert large_ratio > 2.0


def test_waiting_dominates_at_large_scale(simulator):
    """Figure 13b: more than half of the 3 TB execution is waiting/stragglers,
    i.e. the total is more than 2x the lower bound."""
    large = simulator.simulate(2500, 3 * TB)
    assert large.total_seconds > 1.8 * large.lower_bound_seconds
    small = simulator.simulate(1250, 1 * TB)
    assert small.fastest_worker_seconds > 0.6 * small.total_seconds


def test_1tb_total_close_to_paper(simulator):
    """§5.5: the 1 TB exchange takes 56 s with 1250 workers."""
    timings = simulator.simulate(1250, 1 * TB)
    assert 35 <= timings.total_seconds <= 80


def test_table3_shape_against_published_numbers(simulator):
    """Table 3: Lambada on S3 beats Pocket's S3 baseline by a large factor and
    is faster than Pocket-on-VMs at every worker count; times shrink with P."""
    pocket_s3_250 = next(
        r.running_time_seconds for r in POCKET_RESULTS if r.system == "pocket-s3-baseline"
    )
    pocket_vms = {r.workers: r.running_time_seconds for r in POCKET_RESULTS if r.system == "pocket"}
    previous = float("inf")
    for workers in (250, 500, 1000):
        seconds = simulator.table3_running_time(workers, 100 * GB)
        assert seconds < pocket_s3_250 / 2
        assert seconds < pocket_vms[workers]
        assert seconds < previous
        assert seconds == pytest.approx(LAMBADA_PAPER_RESULTS[workers], rel=1.0)
        previous = seconds


def test_invalid_arguments_rejected(simulator):
    with pytest.raises(ValueError):
        simulator.simulate(0, GB)
    with pytest.raises(ValueError):
        simulator.simulate(10, 0)
    with pytest.raises(ValueError):
        simulator.simulate(10, GB, dims=[3, 5])
    with pytest.raises(ValueError):
        ExchangeSimulator(bandwidth_bytes_per_s=0)
