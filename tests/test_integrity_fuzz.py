"""Byte-flip fuzzing for the checksummed on-wire formats.

The integrity guarantee is *detection*: flipping any byte of a checked
artifact must make the decoder raise — it must never silently return a
table that differs from the original.  These tests XOR-flip byte
positions across each format (every position for small artifacts,
stride-sampled for larger ones) and assert exactly that.

The decoder is allowed to raise anything — a flip in a length field can
surface as a struct/JSON/zlib error before the crc check runs — but the
common path should be :class:`CorruptFileError` (of which
:class:`IntegrityError` is a subclass).  What is *never* allowed is a
clean decode of different data.
"""

import json

import numpy as np
import pytest

from repro.driver.integrity import message_intact, sign_message
from repro.engine.payload import decode_table, encode_table
from repro.errors import CorruptFileError
from repro.exchange.codec import decode_partition, encode_partition
from repro.formats.compression import Compression
from repro.formats.parquet import ColumnarFile, write_table


def _fuzz_table():
    rng = np.random.default_rng(91)
    n = 256
    return {
        "k": rng.integers(-(2 ** 40), 2 ** 40, n, dtype=np.int64),
        "v": rng.random(n),
        "n": rng.integers(0, 100, n).astype(np.int32),
    }


def _tables_equal(left, right) -> bool:
    if list(left.keys()) != list(right.keys()):
        return False
    for name in left:
        a, b = np.asarray(left[name]), np.asarray(right[name])
        if a.dtype != b.dtype or a.shape != b.shape:
            return False
        if a.dtype.hasobject:
            if a.tolist() != b.tolist():
                return False
        elif a.tobytes() != b.tobytes():
            return False
    return True


def _positions(length: int, budget: int = 2048):
    """Every byte position when affordable, else an offset-striding sample."""
    if length <= budget:
        return range(length)
    stride = max(1, length // budget)
    return range(0, length, stride)


def _assert_flips_detected(data: bytes, decode, baseline, label: str):
    """Flip sampled bytes of ``data``; ``decode`` must raise or round-trip."""
    raised = 0
    for position in _positions(len(data)):
        for mask in (0x01, 0xFF):
            corrupted = bytearray(data)
            corrupted[position] ^= mask
            try:
                result = decode(bytes(corrupted))
            except Exception:  # noqa: BLE001 - any raise is a detection
                raised += 1
                continue
            assert _tables_equal(baseline, result), (
                f"{label}: silent corruption at byte {position} mask {mask:#x}"
            )
    # The formats carry no slack bytes, so essentially every flip must land.
    assert raised > 0


# -- fast codec frames ------------------------------------------------------------------


@pytest.mark.parametrize("compression", [Compression.NONE, Compression.FAST])
def test_codec_frame_flips_always_detected(compression):
    table = _fuzz_table()
    data = encode_partition(table, compression, checksum=True)
    _assert_flips_detected(
        data,
        lambda blob: decode_partition(blob, verify=True, key="fuzz"),
        table,
        f"codec[{compression.name}]",
    )


def test_codec_frame_clean_roundtrip_and_unchecked_compat():
    table = _fuzz_table()
    assert _tables_equal(table, decode_partition(encode_partition(table)))
    # Pre-integrity frames (no checksums) still decode under a verifying reader.
    unchecked = encode_partition(table, checksum=False)
    assert _tables_equal(table, decode_partition(unchecked, verify=True))


def test_codec_truncations_always_detected():
    table = _fuzz_table()
    data = encode_partition(table, Compression.NONE, checksum=True)
    for cut in _positions(len(data) - 1):
        with pytest.raises(CorruptFileError):
            decode_partition(data[: cut + 1], verify=True)


# -- LPQ columnar files -----------------------------------------------------------------


def test_lpq_file_flips_always_detected():
    table = _fuzz_table()
    data = write_table(table, row_group_rows=64, compression=Compression.GZIP)

    def decode(blob):
        return ColumnarFile.from_bytes(blob, verify=True, name="fuzz.lpq").read_table()

    _assert_flips_detected(data, decode, decode(data), "lpq")


def test_lpq_unchecked_file_still_decodes():
    table = _fuzz_table()
    data = write_table(table, checksum=False)
    assert data[:4] == b"LPQ1" and data[-4:] == b"LPQ1"
    restored = ColumnarFile.from_bytes(data, verify=True).read_table()
    assert set(restored) == set(table)


# -- result payloads inside signed messages ---------------------------------------------


def test_signed_message_flips_always_detected():
    """Flips of the serialised result message never yield a different table.

    The defence is layered the way the real consumer is: JSON parse, then
    the message digest, then the payload's per-column crcs + structural
    digest.  A flip may be caught at any layer; it must be caught somewhere.
    """
    table = _fuzz_table()
    message = sign_message(
        {"worker_id": 3, "status": "ok", "result": encode_table(table, checksum=True)}
    )
    data = json.dumps(message).encode("utf-8")

    def decode(blob):
        payload = json.loads(blob.decode("utf-8"))
        if not message_intact(payload):
            raise CorruptFileError("message digest mismatch", layer="sqs.digest")
        return decode_table(payload["result"], verify=True, key="fuzz")

    _assert_flips_detected(data, decode, table, "message")


def test_payload_digest_covers_structure():
    """Renames/dtype swaps of intact buffers are caught by the digest."""
    table = _fuzz_table()
    payload = encode_table(table, checksum=True)

    renamed = json.loads(json.dumps(payload))
    renamed["columns"][0]["name"] = "kk"
    with pytest.raises(CorruptFileError):
        decode_table(renamed, verify=True)

    retyped = json.loads(json.dumps(payload))
    retyped["columns"][0]["dtype"] = "<u8"
    with pytest.raises(CorruptFileError):
        decode_table(retyped, verify=True)

    rerowed = json.loads(json.dumps(payload))
    rerowed["num_rows"] = rerowed["num_rows"] + 1
    with pytest.raises(CorruptFileError):
        decode_table(rerowed, verify=True)
