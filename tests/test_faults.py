"""Unit tests of the seeded fault-injection plane (`repro.cloud.faults`).

Covers rule validation, seeded determinism, `max_count` caps, and each
service hook's observable effect when a plan is installed into the
environment — plus the guarantee that *no* installed plan leaves every
service bitwise on its fast path.
"""

from __future__ import annotations

import pytest

from repro.cloud.environment import CloudEnvironment
from repro.cloud.faults import FaultPlan, FaultRule, chaos_plan
from repro.cloud.lambda_service import FunctionConfig
from repro.errors import NoSuchKeyError, SlowDownError, WorkerCrashError


@pytest.fixture
def faulty_env():
    return CloudEnvironment.create(region="eu")


# -- rule validation ---------------------------------------------------------


def test_rule_rejects_unknown_service():
    with pytest.raises(ValueError, match="unknown fault service"):
        FaultRule("dynamo", "slowdown", 0.5)


def test_rule_rejects_unknown_fault_for_service():
    with pytest.raises(ValueError, match="unknown fault"):
        FaultRule("s3", "drop", 0.5)


def test_rule_rejects_bad_rate_and_factor():
    with pytest.raises(ValueError, match="rate"):
        FaultRule("s3", "slowdown", 1.5)
    with pytest.raises(ValueError, match="factor"):
        FaultRule("lambda", "straggler", 0.5, factor=0.5)


# -- determinism and caps ----------------------------------------------------


def _slowdown_schedule(seed: int, rolls: int) -> list:
    plan = FaultPlan([FaultRule("s3", "slowdown", 0.5)], seed=seed)
    outcomes = []
    for _ in range(rolls):
        try:
            plan.s3_fault("get", "bucket", "key")
            outcomes.append(False)
        except SlowDownError:
            outcomes.append(True)
    return outcomes


def test_same_seed_injects_identical_schedule():
    assert _slowdown_schedule(42, 64) == _slowdown_schedule(42, 64)
    assert any(_slowdown_schedule(42, 64))


def test_different_seeds_diverge():
    assert _slowdown_schedule(1, 64) != _slowdown_schedule(2, 64)


def test_max_count_caps_injections():
    plan = FaultPlan(
        [FaultRule("s3", "slowdown", 1.0, max_count=3)], seed=0
    )
    fired = 0
    for _ in range(10):
        try:
            plan.s3_fault("get", "bucket", "key")
        except SlowDownError:
            fired += 1
    assert fired == 3
    assert plan.injected == {"s3.slowdown": 3}
    assert plan.injected_total() == 3


def test_match_scopes_rule_to_target():
    plan = FaultPlan(
        [FaultRule("s3", "slowdown", 1.0, match="shuffle-b")], seed=0
    )
    plan.s3_fault("get", "data", "lineitem-0.lpq")  # unmatched: no fault
    with pytest.raises(SlowDownError):
        plan.s3_fault("get", "shuffle-b0", "q/part")


# -- S3 hooks through the object store --------------------------------------


def test_installed_slowdown_throttles_get(faulty_env):
    faulty_env.s3.create_bucket("b")
    faulty_env.s3.put_object("b", "k", b"payload")
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("s3", "slowdown", 1.0, operation="get", max_count=1)])
    )
    with pytest.raises(SlowDownError, match="injected throttle"):
        faulty_env.s3.get_object("b", "k")
    # The cap is spent: the retry goes through.
    assert faulty_env.s3.get_object("b", "k").data == b"payload"


def test_read_after_write_lag_fires_once_per_key(faulty_env):
    faulty_env.s3.create_bucket("b")
    faulty_env.s3.put_object("b", "fresh", b"x")
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("s3", "read_after_write", 1.0, lag_seconds=60.0)])
    )
    with pytest.raises(NoSuchKeyError, match="read-after-write lag"):
        faulty_env.s3.get_object("b", "fresh")
    # Retrying the same key succeeds — visibility converges.
    assert faulty_env.s3.get_object("b", "fresh").data == b"x"


def test_read_after_write_spares_old_objects(faulty_env):
    faulty_env.s3.create_bucket("b")
    faulty_env.s3.put_object("b", "old", b"x")
    faulty_env.clock.advance(120.0)
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("s3", "read_after_write", 1.0, lag_seconds=5.0)])
    )
    assert faulty_env.s3.get_object("b", "old").data == b"x"


def test_crash_after_put_leaves_object_behind(faulty_env):
    faulty_env.s3.create_bucket("b")
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("s3", "crash_after_put", 1.0, max_count=1)])
    )
    with pytest.raises(WorkerCrashError, match="after PUT"):
        faulty_env.s3.put_object("b", "k", b"orphan")
    # The duplicate-write hazard: the object landed before the crash.
    assert faulty_env.s3.get_object("b", "k").data == b"orphan"


# -- Lambda hooks ------------------------------------------------------------


def _deploy_echo(env, duration=1.0):
    def handler(event, context):
        context.charge(duration * context.straggler_factor)
        return {"ran": True}

    env.lambda_service.deploy(FunctionConfig(name="fn", memory_mib=512), handler)


def test_injected_drop_skips_handler_and_bills_nothing(faulty_env):
    _deploy_echo(faulty_env)
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("lambda", "drop", 1.0, max_count=1)])
    )
    dropped = faulty_env.lambda_service.invoke("fn", {})
    assert not dropped.succeeded
    assert "InvocationDropped" in dropped.error
    assert dropped.duration_seconds == 0.0
    # Cap spent: the next invocation runs the handler normally.
    assert faulty_env.lambda_service.invoke("fn", {}).succeeded


def test_injected_timeout_bills_full_timeout(faulty_env):
    def handler(event, context):
        context.charge(1.0)
        return {}

    faulty_env.lambda_service.deploy(
        FunctionConfig(name="fn", memory_mib=512, timeout_seconds=30.0), handler
    )
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("lambda", "timeout", 1.0, max_count=1)])
    )
    result = faulty_env.lambda_service.invoke("fn", {})
    assert "FunctionTimeout" in result.error
    assert result.duration_seconds == pytest.approx(30.0)


def test_straggler_multiplies_reported_duration(faulty_env):
    _deploy_echo(faulty_env, duration=1.0)
    faulty_env.install_fault_plan(
        FaultPlan(
            [FaultRule("lambda", "straggler", 1.0, max_count=1, factor=6.0)]
        )
    )
    slow = faulty_env.lambda_service.invoke("fn", {})
    fast = faulty_env.lambda_service.invoke("fn", {})
    assert slow.succeeded and fast.succeeded
    assert slow.duration_seconds == pytest.approx(6.0 * fast.duration_seconds)


# -- SQS hooks ---------------------------------------------------------------


def test_sqs_duplicate_redelivers_message(faulty_env):
    faulty_env.sqs.create_queue("q")
    faulty_env.sqs.send_message("q", "only")
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("sqs", "duplicate", 1.0, max_count=1)])
    )
    first = faulty_env.sqs.receive_messages("q")
    second = faulty_env.sqs.receive_messages("q")
    assert [m.body for m in first] == ["only"]
    assert [m.body for m in second] == ["only"]  # injected at-least-once


def test_sqs_delay_defers_delivery(faulty_env):
    faulty_env.sqs.create_queue("q")
    faulty_env.sqs.send_message("q", "late")
    faulty_env.install_fault_plan(
        FaultPlan([FaultRule("sqs", "delay", 1.0, max_count=1)])
    )
    assert faulty_env.sqs.receive_messages("q") == []
    assert [m.body for m in faulty_env.sqs.receive_messages("q")] == ["late"]


# -- plan lifecycle ----------------------------------------------------------


def test_install_and_uninstall_fault_plan(faulty_env):
    plan = chaos_plan(seed=1)
    faulty_env.install_fault_plan(plan)
    assert faulty_env.s3.fault_plan is plan
    assert faulty_env.sqs.fault_plan is plan
    assert faulty_env.lambda_service.fault_plan is plan
    faulty_env.install_fault_plan(None)
    assert faulty_env.s3.fault_plan is None
    assert faulty_env.sqs.fault_plan is None
    assert faulty_env.lambda_service.fault_plan is None


def test_chaos_plan_covers_every_service():
    plan = chaos_plan(seed=0, rate=0.2)
    services = {rule.service for rule in plan.rules}
    assert services == {"s3", "lambda", "sqs", "pool"}
    assert all(rule.max_count is not None for rule in plan.rules)


def test_to_dict_snapshots_injected_counts():
    plan = FaultPlan([FaultRule("sqs", "delay", 1.0, max_count=2)], seed=0)
    assert plan.to_dict() == {}
    assert plan.sqs_delay("q")
    snapshot = plan.to_dict()
    assert snapshot == {"sqs.delay": 1}
    assert plan.sqs_delay("q")
    assert snapshot == {"sqs.delay": 1}  # snapshot is a copy
    assert plan.to_dict() == {"sqs.delay": 2}
