"""N-way DAG parity fuzz: five TPC-H join queries x modes x dataset seeds.

Every multi-wave DAG plan (Q5, Q7, Q9, Q10, Q18) must be bit-identical to a
single-pass NumPy reference over the raw generator tables, in every execution
mode (serial, threads, processes) and for more than one dataset seed — the
join order, wave partitioning, and partial-aggregate merge must not leak into
the result.  The measures are exact in float64 (see the fixed-point note in
:mod:`repro.workload.queries`), so "bit-identical" is a hard equality, not a
tolerance.

On top of the clean-run matrix, the DAG scheduler's fault story is pinned on
Q5 (the deepest plan, five stages):

* under :func:`~repro.cloud.faults.chaos_plan`, wave retries must converge to
  the fault-free result and leave zero orphaned exchange objects;
* a cancellation landing mid-DAG — after intermediate stages already emitted
  into the exchange — must garbage-collect every tag's objects and leave the
  next query over the same environment bit-identical to the baseline.
"""

from __future__ import annotations

import pytest

import repro
import repro.driver.shuffle as shuffle_module
from repro.cloud.environment import CloudEnvironment
from repro.cloud.faults import chaos_plan
from repro.driver.admission import CancellationToken
from repro.driver.driver import LambadaDriver
from repro.driver.resilience import ResiliencePolicy
from repro.driver.shuffle import (
    JOIN_RESULT_QUEUE,
    _join_legacy_naming,
    _join_map_naming,
)
from repro.errors import QueryCancelledError
from repro.workload.queries import (
    q5_plan,
    q5_sql,
    q7_plan,
    q7_sql,
    q9_plan,
    q9_sql,
    q10_plan,
    q10_sql,
    q18_plan,
    q18_sql,
    reference_q5,
    reference_q7,
    reference_q9,
    reference_q10,
    reference_q18,
)
from repro.workload.tpch import (
    CustomerGenerator,
    LineitemGenerator,
    NationGenerator,
    OrdersGenerator,
    PartGenerator,
    RegionGenerator,
    SupplierGenerator,
    generate_customer_dataset,
    generate_lineitem_dataset,
    generate_nation_dataset,
    generate_orders_dataset,
    generate_part_dataset,
    generate_region_dataset,
    generate_supplier_dataset,
)

from tests.test_mode_parity import assert_bit_identical, leaked_segments

SF = 0.002
DATA_SEEDS = (7, 11)
QUERIES = ["q5", "q7", "q9", "q10", "q18"]
MODES = ["serial", "threads", "processes"]

CHAOS_SEEDS = (11, 23)
CHAOS_RATE = 0.2
MAX_FAULTS = 2
CHAOS_POLICY = ResiliencePolicy(max_attempts=14)
MAX_WORKER_RETRIES = 13

NUM_BUCKETS = 10  # the join coordinator's default exchange width


def _exchange_object_count(env) -> int:
    """Objects across both join-exchange bucket layouts (query-independent)."""
    buckets = set()
    for naming in (
        _join_map_naming("x", "L", NUM_BUCKETS),
        _join_legacy_naming("x", "L", NUM_BUCKETS),
    ):
        buckets.update(naming.buckets())
    total = 0
    for bucket in sorted(buckets):
        env.s3.ensure_bucket(bucket)
        total += len(env.s3.list_objects(bucket))
    return total


@pytest.fixture(scope="module", params=DATA_SEEDS, ids=lambda s: f"data{s}")
def stack(request):
    """One environment per dataset seed, with all seven TPC-H relations."""
    seed = request.param
    env = CloudEnvironment.create(region="eu")
    datasets = {
        "lineitem": generate_lineitem_dataset(
            env.s3, scale_factor=SF, num_files=4, seed=seed
        ),
        "orders": generate_orders_dataset(
            env.s3, scale_factor=SF, num_files=2, seed=seed
        ),
        "customer": generate_customer_dataset(env.s3, scale_factor=SF, seed=seed),
        "supplier": generate_supplier_dataset(env.s3, scale_factor=SF, seed=seed),
        "part": generate_part_dataset(env.s3, scale_factor=SF, seed=seed),
        "nation": generate_nation_dataset(env.s3, scale_factor=SF, seed=seed),
        "region": generate_region_dataset(env.s3, scale_factor=SF, seed=seed),
    }
    tables = {
        "lineitem": LineitemGenerator(SF, seed=seed).generate(),
        "orders": OrdersGenerator(SF, seed=seed).generate(),
        "customer": CustomerGenerator(SF, seed=seed).generate(),
        "supplier": SupplierGenerator(SF, seed=seed).generate(),
        "part": PartGenerator(SF, seed=seed).generate(),
        "nation": NationGenerator(SF, seed=seed).generate(),
        "region": RegionGenerator(SF, seed=seed).generate(),
    }
    return env, datasets, tables


@pytest.fixture(scope="module")
def plans(stack):
    _, d, _ = stack
    paths = {name: dataset.paths for name, dataset in d.items()}
    return {
        "q5": q5_plan(paths["lineitem"], paths["orders"], paths["customer"],
                      paths["supplier"], paths["nation"], paths["region"]),
        "q7": q7_plan(paths["lineitem"], paths["orders"], paths["customer"],
                      paths["supplier"]),
        "q9": q9_plan(paths["lineitem"], paths["part"], paths["supplier"],
                      paths["orders"], paths["nation"]),
        "q10": q10_plan(paths["lineitem"], paths["orders"], paths["customer"],
                        paths["nation"]),
        "q18": q18_plan(paths["lineitem"], paths["orders"], paths["customer"]),
    }


@pytest.fixture(scope="module")
def references(stack):
    _, _, t = stack
    return {
        "q5": reference_q5(t["lineitem"], t["orders"], t["customer"],
                           t["supplier"], t["nation"], t["region"]),
        "q7": reference_q7(t["lineitem"], t["orders"], t["customer"],
                           t["supplier"]),
        "q9": reference_q9(t["lineitem"], t["part"], t["supplier"],
                           t["orders"], t["nation"]),
        "q10": reference_q10(t["lineitem"], t["orders"], t["customer"],
                             t["nation"]),
        "q18": reference_q18(t["lineitem"], t["orders"], t["customer"]),
    }


@pytest.fixture(scope="module")
def drivers(stack):
    env = stack[0]
    serial = LambadaDriver(env, resilience_policy=CHAOS_POLICY)
    threads = LambadaDriver(
        env, execution_mode="threads", resilience_policy=CHAOS_POLICY
    )
    processes = LambadaDriver(
        env,
        execution_mode="processes",
        max_parallel_invocations=2,
        resilience_policy=CHAOS_POLICY,
    )
    yield {"serial": serial, "threads": threads, "processes": processes}
    processes.close()


# ---------------------------------------------------------------------------
# Clean-run parity matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("query", QUERIES)
def test_dag_parity(stack, plans, references, drivers, query, mode):
    env = stack[0]
    result = drivers[mode].execute(plans[query])

    label = f"{query}/{mode}"
    assert_bit_identical(references[query], result.table, label)

    stats = result.statistics
    assert stats.dag_stages >= 2, f"{label}: expected a multi-stage DAG"
    assert stats.resilience.clean, f"{label}: clean run reported faults"
    # The write-combined exchange discovers inputs through the result-queue
    # barrier; a DAG wave never issues a LIST or HEAD.
    exchange = stats.exchange
    assert exchange.list_requests + exchange.head_requests == 0, (
        f"{label}: {exchange.list_requests} LIST + "
        f"{exchange.head_requests} HEAD discovery requests"
    )
    # End-of-query GC swept every intermediate and scan-side exchange object.
    assert stats.gc_objects_deleted >= 1, f"{label}: nothing was gc'd"
    assert _exchange_object_count(env) == 0, f"{label}: orphaned exchange objects"
    assert leaked_segments() == []


# ---------------------------------------------------------------------------
# The same five queries through the public facade (Session.sql)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def facade(stack):
    env, datasets, _ = stack
    session = repro.connect(env)
    for dataset in datasets.values():
        session.register(dataset)
    return session


@pytest.mark.parametrize("query", QUERIES)
def test_dag_parity_via_session_sql(references, facade, query):
    sql = {
        "q5": q5_sql,
        "q7": q7_sql,
        "q9": q9_sql,
        "q10": q10_sql,
        "q18": q18_sql,
    }[query]()
    result = facade.sql(sql)
    assert_bit_identical(references[query], result.table, f"{query}/session.sql")
    assert result.statistics.dag_stages >= 2
    assert "join order" in result.explain()


# ---------------------------------------------------------------------------
# Q5 under chaos: wave retries converge, no orphans
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def q5_baseline(plans, drivers):
    result = drivers["serial"].execute(plans["q5"])
    assert result.statistics.resilience.clean
    return result


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_q5_chaos_parity(stack, plans, drivers, q5_baseline, seed):
    env = stack[0]
    env.install_fault_plan(
        chaos_plan(seed=seed, rate=CHAOS_RATE, max_count=MAX_FAULTS)
    )
    try:
        result = drivers["serial"].execute(
            plans["q5"], max_worker_retries=MAX_WORKER_RETRIES
        )
    finally:
        env.install_fault_plan(None)

    label = f"q5/chaos-seed{seed}"
    assert_bit_identical(q5_baseline.table, result.table, label)

    resilience = result.statistics.resilience
    assert resilience.faults_injected, f"{label}: no faults injected"
    assert sum(resilience.faults_injected.values()) <= 9 * MAX_FAULTS
    # Retried waves re-emit under bumped attempt prefixes; the end-of-query
    # sweep must still leave the shared exchange buckets empty.
    assert _exchange_object_count(env) == 0, f"{label}: orphaned exchange objects"
    assert leaked_segments() == []


# ---------------------------------------------------------------------------
# Q5 cancellation: mid-DAG unwind garbage-collects every tag
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("stage", ["join map", "join stage 1"])
def test_q5_cancel_mid_dag_gcs_exchange_state(
    stack, plans, drivers, q5_baseline, monkeypatch, stage
):
    """Cancelled after a DAG wave ran — at ``join stage 1`` two join waves
    already re-emitted intermediates into the exchange — every tag's objects
    (scan sides and intermediates alike) are swept, and a rerun over the same
    environment is bit-identical to the baseline."""
    env = stack[0]
    before = _exchange_object_count(env)
    deleted = []
    original = shuffle_module._gc_cancelled_query

    def spy(*args, **kwargs):
        count = original(*args, **kwargs)
        deleted.append(count)
        return count

    monkeypatch.setattr(shuffle_module, "_gc_cancelled_query", spy)

    token = CancellationToken(cancel_at_stage=stage)
    with pytest.raises(QueryCancelledError) as excinfo:
        drivers["serial"].execute(plans["q5"], cancel=token)

    assert excinfo.value.stage == stage
    assert token.observed_stage == stage
    # The cancelled waves had already written exchange objects; GC had work.
    assert deleted and deleted[0] >= 1, f"{stage}: cancellation gc'd nothing"
    assert _exchange_object_count(env) == before
    assert env.sqs.approximate_message_count(JOIN_RESULT_QUEUE) == 0
    assert leaked_segments() == []

    rerun = drivers["serial"].execute(plans["q5"])
    assert_bit_identical(q5_baseline.table, rerun.table, f"post-cancel rerun ({stage})")
