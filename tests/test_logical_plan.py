"""Tests for logical plan nodes."""

import pytest

from repro.errors import InvalidPlanError, PlanError
from repro.plan.expressions import col
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    OrderByNode,
    ProjectNode,
    ScanNode,
)


def _scan():
    return ScanNode(paths=("s3://b/a.lpq", "s3://b/b.lpq"))


def test_scan_requires_paths():
    with pytest.raises(InvalidPlanError):
        ScanNode(paths=())


def test_scan_rejects_unknown_format():
    with pytest.raises(InvalidPlanError):
        ScanNode(paths=("s3://b/x",), format="orc")


def test_chain_is_in_leaf_to_root_order():
    plan = LimitNode(child=FilterNode(child=_scan(), predicate=col("x") > 1), count=5)
    chain = plan.chain()
    assert isinstance(chain[0], ScanNode)
    assert isinstance(chain[1], FilterNode)
    assert isinstance(chain[2], LimitNode)


def test_scan_accessor_returns_leaf():
    plan = FilterNode(child=_scan(), predicate=col("x") > 1)
    assert plan.scan().paths == ("s3://b/a.lpq", "s3://b/b.lpq")


def test_filter_requires_exactly_one_of_predicate_or_udf():
    with pytest.raises(InvalidPlanError):
        FilterNode(child=_scan())
    with pytest.raises(InvalidPlanError):
        FilterNode(child=_scan(), predicate=col("x") > 1, udf=lambda row: True)


def test_project_requires_columns():
    with pytest.raises(InvalidPlanError):
        ProjectNode(child=_scan(), columns=())


def test_map_requires_outputs_or_udf():
    with pytest.raises(InvalidPlanError):
        MapNode(child=_scan())
    MapNode(child=_scan(), outputs=(("v", col("a") * col("b")),))
    MapNode(child=_scan(), udf=lambda row: row[0])


def test_aggregate_spec_validation():
    with pytest.raises(PlanError):
        AggregateSpec("median", col("x"), "m")
    with pytest.raises(PlanError):
        AggregateSpec("sum", None, "s")
    AggregateSpec("count", None, "c")


def test_aggregate_spec_dict_roundtrip():
    spec = AggregateSpec("sum", col("x") * 2, "total")
    restored = AggregateSpec.from_dict(spec.to_dict())
    assert restored.function == "sum"
    assert restored.alias == "total"
    assert restored.expression.equals(spec.expression)


def test_aggregate_node_requires_aggregates():
    with pytest.raises(InvalidPlanError):
        AggregateNode(child=_scan(), group_by=("g",), aggregates=())


def test_aggregate_node_rejects_duplicate_aliases():
    with pytest.raises(InvalidPlanError):
        AggregateNode(
            child=_scan(),
            aggregates=(
                AggregateSpec("sum", col("x"), "v"),
                AggregateSpec("max", col("x"), "v"),
            ),
        )


def test_order_by_requires_keys():
    with pytest.raises(InvalidPlanError):
        OrderByNode(child=_scan(), keys=())


def test_limit_rejects_negative():
    with pytest.raises(InvalidPlanError):
        LimitNode(child=_scan(), count=-1)


def test_join_requires_right_and_keys():
    with pytest.raises(InvalidPlanError):
        JoinNode(child=_scan(), right=None, left_key="a", right_key="b")
    with pytest.raises(InvalidPlanError):
        JoinNode(child=_scan(), right=_scan(), left_key="", right_key="b")
    JoinNode(child=_scan(), right=_scan(), left_key="a", right_key="b")


def test_describe_mentions_all_nodes():
    plan = AggregateNode(
        child=FilterNode(child=_scan(), predicate=col("x") > 1),
        group_by=("g",),
        aggregates=(AggregateSpec("sum", col("x"), "s"),),
    )
    description = plan.describe()
    assert "Scan" in description
    assert "Filter" in description
    assert "Aggregate" in description
