"""Seeded chaos parity suite: every query survives an injected fault storm.

TPC-H Q1/Q6 (scan path) and Q3/Q12/Q14 (distributed joins over the shuffle
plane) run under randomized-but-seeded :func:`~repro.cloud.faults.chaos_plan`
schedules — throttles, read-after-write lag, worker crashes after their
shuffle PUT landed, dropped and timed-out invocations, stragglers, duplicated
and delayed queue deliveries — across all three execution modes.  Acceptance:

* results are **bit-identical** to the fault-free baseline (same columns,
  dtypes, bytes) — in particular no duplicated-object slice is ever read
  twice and no retry partial is double-counted;
* the retry budget converges (``max_count`` caps every fatal fault kind);
* no ``/dev/shm`` segments leak, even when pool children are crashed;
* a mapper whose combined write keeps crashing degrades to the legacy
  exchange format and still produces the exact result.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import setup_functional_environment
from repro.cloud.faults import FaultPlan, FaultRule, chaos_plan
from repro.driver.driver import LambadaDriver
from repro.driver.resilience import ResiliencePolicy
from repro.driver.shuffle import ShuffleAggregateCoordinator
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.workload.queries import q1_plan, q3_plan, q6_plan, q12_plan, q14_plan
from repro.workload.tpch import generate_orders_dataset, generate_part_dataset

from tests.test_mode_parity import assert_bit_identical, leaked_segments

CHAOS_SEEDS = (11, 23)
CHAOS_RATE = 0.2
# Every always-fatal fault kind in chaos_plan is capped at MAX_FAULTS
# injections; six fatal kinds x 2 = at most 12 fatal faults per run, so an
# attempt budget of 14 provably converges even if every fault lands on the
# same worker.
MAX_FAULTS = 2
CHAOS_POLICY = ResiliencePolicy(max_attempts=14)
MAX_WORKER_RETRIES = 13

QUERIES = ["q1", "q6", "q3", "q12", "q14"]
MODES = ["serial", "threads", "processes"]


@pytest.fixture(scope="module")
def stack():
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=8)
    orders = generate_orders_dataset(
        env.s3, scale_factor=0.002, num_files=3, row_group_rows=512, seed=7
    )
    part = generate_part_dataset(
        env.s3, scale_factor=0.002, num_files=2, row_group_rows=512, seed=7
    )
    return env, dataset, orders, part


@pytest.fixture(scope="module")
def plans(stack):
    _, dataset, orders, part = stack
    return {
        "q1": q1_plan(dataset.paths),
        "q6": q6_plan(dataset.paths),
        "q3": q3_plan(dataset.paths, orders.paths),
        "q12": q12_plan(dataset.paths, orders.paths),
        "q14": q14_plan(dataset.paths, part.paths),
    }


@pytest.fixture(scope="module")
def drivers(stack):
    env = stack[0]
    serial = LambadaDriver(env, resilience_policy=CHAOS_POLICY)
    threads = LambadaDriver(
        env, execution_mode="threads", resilience_policy=CHAOS_POLICY
    )
    processes = LambadaDriver(
        env,
        execution_mode="processes",
        max_parallel_invocations=2,
        resilience_policy=CHAOS_POLICY,
    )
    yield {"serial": serial, "threads": threads, "processes": processes}
    processes.close()


@pytest.fixture(scope="module")
def baselines(stack, plans, drivers):
    """Fault-free reference results, one per query, all-zero resilience."""
    env = stack[0]
    assert env.s3.fault_plan is None
    results = {query: drivers["serial"].execute(plan) for query, plan in plans.items()}
    for query, result in results.items():
        assert result.statistics.resilience.clean, f"{query}: baseline not clean"
    return results


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("query", QUERIES)
def test_chaos_parity(stack, plans, drivers, baselines, query, mode, seed):
    env = stack[0]
    env.install_fault_plan(
        chaos_plan(seed=seed, rate=CHAOS_RATE, max_count=MAX_FAULTS)
    )
    try:
        result = drivers[mode].execute(
            plans[query], max_worker_retries=MAX_WORKER_RETRIES
        )
    finally:
        env.install_fault_plan(None)

    label = f"{query}/{mode}/seed{seed}"
    assert_bit_identical(baselines[query].table, result.table, label)

    resilience = result.statistics.resilience
    # The seeded plan must actually have exercised the machinery ...
    assert resilience.faults_injected, f"{label}: no faults injected"
    # ... within its caps (9 rules x MAX_FAULTS), with a bounded recovery.
    assert sum(resilience.faults_injected.values()) <= 9 * MAX_FAULTS
    assert resilience.retries + resilience.wave_retries <= 9 * MAX_FAULTS + 6
    # Retried or hedged attempts waste money but never corrupt cost accounting.
    assert result.statistics.cost_total > 0.0
    assert resilience.wasted_cost_dollars <= result.statistics.cost_total
    # Shared-memory hygiene holds even when pool children were crashed.
    assert leaked_segments() == []


def test_chaos_schedule_is_deterministic(stack, plans, drivers, baselines):
    """Same seed, serial mode: two runs inject the identical fault schedule."""
    env = stack[0]
    outcomes = []
    for _ in range(2):
        env.install_fault_plan(
            chaos_plan(seed=CHAOS_SEEDS[0], rate=CHAOS_RATE, max_count=MAX_FAULTS)
        )
        try:
            result = drivers["serial"].execute(
                plans["q3"], max_worker_retries=MAX_WORKER_RETRIES
            )
        finally:
            env.install_fault_plan(None)
        outcomes.append(result.statistics.resilience.faults_injected)
    assert outcomes[0] == outcomes[1]
    assert outcomes[0]


# ---------------------------------------------------------------------------
# Graceful degradation: combined exchange -> legacy per-receiver objects
# ---------------------------------------------------------------------------


def _group_sum(coordinator, dataset):
    return coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "total_qty")],
        order_by=["l_orderkey"],
    )


def test_repeated_crash_degrades_combined_write_to_legacy(stack):
    """Mapper 0's combined PUT crashes twice (after landing!); attempt 2
    falls back to the legacy format and the result stays bit-identical —
    the orphaned combined objects of attempts 0 and 1 are never read."""
    env, dataset, _, _ = stack
    baseline, _ = _group_sum(
        ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4), dataset
    )

    env.install_fault_plan(
        FaultPlan(
            # "sender-0.off" only appears in worker 0's combined-object key
            # (any attempt), never in legacy keys — so the fallback write
            # itself cannot be crashed.
            [FaultRule("s3", "crash_after_put", 1.0, match="sender-0.off", max_count=2)],
            seed=1,
        )
    )
    try:
        result, statistics = _group_sum(
            ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4), dataset
        )
    finally:
        env.install_fault_plan(None)

    assert_bit_identical(baseline, result, "crash-degrade")
    resilience = statistics.resilience
    assert resilience.faults_injected == {"s3.crash_after_put": 2}
    assert resilience.fallbacks.get("combined_to_legacy", 0) >= 1
    assert resilience.retries >= 2
    assert resilience.wave_retries >= 1
    assert resilience.backoff_seconds > 0.0


def test_crashed_reduce_spill_is_retried(stack, monkeypatch):
    """A reducer crashing after its spill PUT is re-run; the superseded spill
    object is never fetched (the driver reads only the path the accepted
    attempt announced)."""
    import repro.driver.shuffle as shuffle_module

    env, dataset, _, _ = stack
    # Force every reducer to spill so the crash-after-PUT rule has a target.
    monkeypatch.setattr(shuffle_module, "RESULT_SPILL_BYTES", 64)
    baseline, _ = _group_sum(
        ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4), dataset
    )
    env.install_fault_plan(
        FaultPlan(
            [FaultRule("s3", "crash_after_put", 1.0, match="reduce-0.a0", max_count=1)],
            seed=1,
        )
    )
    try:
        result, statistics = _group_sum(
            ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4), dataset
        )
    finally:
        env.install_fault_plan(None)
    assert_bit_identical(baseline, result, "reduce-crash")
    assert statistics.resilience.faults_injected == {"s3.crash_after_put": 1}
    assert statistics.resilience.retries >= 1
