"""Integration tests exercising the full stack together.

These tests combine the pieces the unit tests cover in isolation: data
generation, the SQL and dataflow frontends, the optimizer, the serverless
driver/worker path, the exchange operator, and the cost accounting.
"""

import numpy as np
import pytest

from repro.cloud.environment import CloudEnvironment
from repro.driver.driver import LambadaDriver
from repro.engine.join import hash_join
from repro.engine.table import concat_tables, table_num_rows
from repro.exchange.multilevel import MultiLevelExchange
from repro.frontend.dataframe import LambadaSession
from repro.frontend.sql import SqlCatalog, parse_sql
from repro.workload.queries import q1_plan, q1_sql, reference_q1
from repro.workload.tpch import LineitemGenerator, generate_lineitem_dataset, replicate_dataset


def test_full_stack_q1_over_replicated_dataset():
    """Replicating files (the paper's SF-10k trick) scales counts proportionally
    while leaving averages unchanged."""
    env = CloudEnvironment.create()
    dataset = generate_lineitem_dataset(env.s3, scale_factor=0.0005, num_files=2)
    replicated = replicate_dataset(env.s3, dataset, factor=3)
    driver = LambadaDriver(env, memory_mib=2048)

    base = driver.execute(q1_plan(dataset.paths))
    scaled = driver.execute(q1_plan(replicated.paths))
    np.testing.assert_allclose(scaled.column("count_order"), 3 * base.column("count_order"))
    np.testing.assert_allclose(scaled.column("sum_qty"), 3 * base.column("sum_qty"))
    np.testing.assert_allclose(scaled.column("avg_qty"), base.column("avg_qty"), rtol=1e-9)
    assert scaled.statistics.num_workers == 3 * base.statistics.num_workers


def test_sql_and_dataflow_agree():
    env = CloudEnvironment.create()
    dataset = generate_lineitem_dataset(env.s3, scale_factor=0.0005, num_files=2)
    driver = LambadaDriver(env)
    session = LambadaSession(driver)

    sql_result = driver.execute(parse_sql(q1_sql(), SqlCatalog({"lineitem": dataset.paths})))
    flow_result = driver.execute(q1_plan(dataset.paths))
    np.testing.assert_allclose(sql_result.column("sum_qty"), flow_result.column("sum_qty"))
    np.testing.assert_allclose(sql_result.column("sum_charge"), flow_result.column("sum_charge"))


def test_cost_accounting_consistency():
    """The driver's per-query cost is consistent with the environment ledger."""
    env = CloudEnvironment.create()
    dataset = generate_lineitem_dataset(env.s3, scale_factor=0.0005, num_files=2)
    driver = LambadaDriver(env)
    env.ledger.reset()
    result = driver.execute(q1_plan(dataset.paths))
    # The ledger has metered lambda GiB-seconds for exactly the workers' durations.
    gib_seconds = env.ledger.total("lambda", "gib_seconds")
    expected = sum(result.statistics.worker_durations) * 2048 / 1024
    assert gib_seconds == pytest.approx(expected, rel=1e-6)
    # The S3 GET count in the statistics matches the metered count.
    assert env.ledger.total("s3", "get_requests") >= result.statistics.get_requests


def test_repartitioned_join_through_exchange():
    """A distributed hash join built from the exchange operator: both sides are
    repartitioned on the join key, then joined locally per worker."""
    num_workers = 9
    env = CloudEnvironment.create()
    rng = np.random.default_rng(13)

    orders = {
        "o_orderkey": np.arange(300, dtype=np.int64),
        "o_total": rng.random(300) * 1000,
    }
    items = {
        "l_orderkey": rng.integers(0, 300, 900).astype(np.int64),
        "l_price": rng.random(900) * 100,
    }

    # Split both relations over the workers round-robin (as a scan would).
    def split(table, parts):
        return [
            {name: column[i::parts] for name, column in table.items()} for i in range(parts)
        ]

    left_shards = split(items, num_workers)
    right_shards = split(orders, num_workers)

    left_exchange = MultiLevelExchange(env.s3, num_workers, keys=["l_orderkey"], levels=2, tag="jl")
    right_exchange = MultiLevelExchange(env.s3, num_workers, keys=["o_orderkey"], levels=2, tag="jr")
    left_parts = left_exchange.run(left_shards)
    right_parts = right_exchange.run(right_shards)

    joined_parts = [
        hash_join(left_parts[w] or {"l_orderkey": np.zeros(0), "l_price": np.zeros(0)},
                  right_parts[w] or {"o_orderkey": np.zeros(0), "o_total": np.zeros(0)},
                  "l_orderkey", "o_orderkey")
        for w in range(num_workers)
    ]
    joined = concat_tables([part for part in joined_parts if table_num_rows(part)])

    # Reference: single-node join.
    reference = hash_join(items, orders, "l_orderkey", "o_orderkey")
    assert table_num_rows(joined) == table_num_rows(reference)
    assert joined["l_price"].sum() == pytest.approx(reference["l_price"].sum())
    assert joined["o_total"].sum() == pytest.approx(reference["o_total"].sum())


def test_query_after_exchange_buckets_exist():
    """Creating exchange buckets at installation time does not interfere with queries."""
    env = CloudEnvironment.create()
    dataset = generate_lineitem_dataset(env.s3, scale_factor=0.0005, num_files=2)
    MultiLevelExchange(env.s3, 4, keys=["l_orderkey"], levels=2)  # creates buckets
    driver = LambadaDriver(env)
    result = driver.execute(q1_plan(dataset.paths))
    table = LineitemGenerator(scale_factor=0.0005).generate()
    np.testing.assert_allclose(result.column("sum_qty"), reference_q1(table)["sum_qty"])


def test_multiple_queries_reuse_warm_instances():
    env = CloudEnvironment.create()
    dataset = generate_lineitem_dataset(env.s3, scale_factor=0.0005, num_files=2)
    driver = LambadaDriver(env)
    first = driver.execute(q1_plan(dataset.paths))
    second = driver.execute(q1_plan(dataset.paths))
    # The second (hot) run is at least as fast as the first.
    assert second.statistics.max_worker_seconds <= first.statistics.max_worker_seconds + 1e-9
