"""Tests for the multi-level exchange operator, including placement properties."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.s3 import ObjectStore
from repro.engine.table import table_num_rows
from repro.errors import ExchangeError
from repro.exchange.multilevel import (
    MultiLevelExchange,
    grid_coordinates,
    grid_side,
    worker_from_coordinates,
)
from repro.exchange.partition import partition_assignments


def _make_tables(num_workers: int, rows_per_worker: int = 100, seed: int = 1):
    rng = np.random.default_rng(seed)
    return [
        {
            "key": rng.integers(0, 5000, rows_per_worker).astype(np.int64),
            "value": rng.random(rows_per_worker),
        }
        for _ in range(num_workers)
    ]


# -- grid helpers --------------------------------------------------------------------

def test_grid_side_perfect_square():
    assert grid_side(16, 2) == [4, 4]


def test_grid_side_non_square_factors_exactly():
    dims = grid_side(12, 2)
    assert math.prod(dims) == 12


def test_grid_side_three_levels():
    assert math.prod(grid_side(64, 3)) == 64
    assert grid_side(64, 3) == [4, 4, 4]


def test_grid_side_one_level():
    assert grid_side(7, 1) == [7]


def test_grid_side_prime_degenerates():
    dims = grid_side(7, 2)
    assert math.prod(dims) == 7
    assert 1 in dims


def test_grid_side_rejects_bad_input():
    with pytest.raises(ExchangeError):
        grid_side(0, 2)
    with pytest.raises(ExchangeError):
        grid_side(4, 0)


def test_grid_side_matches_full_scan_reference():
    """The sqrt divisor scan must pick the same dims as the seed's O(P) scan."""

    def reference(num_workers, levels):
        dims, remaining = [], num_workers
        for level in range(levels, 1, -1):
            ideal = remaining ** (1.0 / level)
            best = None
            for candidate in range(1, remaining + 1):
                if remaining % candidate != 0:
                    continue
                if best is None or abs(candidate - ideal) < abs(best - ideal):
                    best = candidate
            dims.append(best)
            remaining //= best
        dims.append(remaining)
        return dims

    for num_workers in range(1, 200):
        for levels in (2, 3):
            assert grid_side(num_workers, levels) == reference(num_workers, levels)


def test_grid_side_handles_large_prime_quickly():
    # The seed's 1..P scan made this O(P) per level; the sqrt scan keeps large
    # degenerate fleets cheap.
    assert grid_side(15_485_863, 2) == [1, 15_485_863]


def test_grid_coordinates_roundtrip():
    dims = [4, 5, 3]
    for worker in range(math.prod(dims)):
        coords = grid_coordinates(worker, dims)
        assert worker_from_coordinates(coords, dims) == worker
        assert all(0 <= c < d for c, d in zip(coords, dims))


# -- functional exchange ---------------------------------------------------------------

@pytest.mark.parametrize("num_workers,levels", [(16, 2), (12, 2), (8, 3), (27, 3)])
def test_multilevel_places_every_row_correctly(num_workers, levels):
    store = ObjectStore()
    tables = _make_tables(num_workers)
    exchange = MultiLevelExchange(store, num_workers, keys=["key"], levels=levels)
    result = exchange.run(tables)
    assert sum(table_num_rows(t) for t in result) == sum(table_num_rows(t) for t in tables)
    for worker, table in enumerate(result):
        if not table:
            continue
        assignment = partition_assignments(table, ["key"], num_workers)
        assert np.all(assignment == worker)


def test_two_level_request_complexity():
    store = ObjectStore()
    P = 16
    exchange = MultiLevelExchange(store, P, keys=["key"], levels=2)
    exchange.run(_make_tables(P, rows_per_worker=20))
    # Table 2: 2·P·sqrt(P) writes and at least as many reads.
    assert exchange.stats.put_requests == 2 * P * int(math.sqrt(P))
    assert exchange.stats.get_requests >= 2 * P * int(math.sqrt(P))


def test_two_level_write_combining_reduces_writes_to_2p():
    store = ObjectStore()
    P = 16
    exchange = MultiLevelExchange(store, P, keys=["key"], levels=2, write_combining=True)
    exchange.run(_make_tables(P, rows_per_worker=20))
    assert exchange.stats.put_requests == 2 * P


def test_multilevel_fewer_writes_than_basic_for_large_p():
    from repro.exchange.basic import BasicExchange, ExchangeConfig

    P = 25
    store_a, store_b = ObjectStore(), ObjectStore()
    tables = _make_tables(P, rows_per_worker=10)
    basic = BasicExchange(store_a, P, ExchangeConfig(keys=["key"]))
    basic.run(tables)
    multi = MultiLevelExchange(store_b, P, keys=["key"], levels=2)
    multi.run(tables)
    assert multi.stats.put_requests < basic.total_stats().put_requests


def test_round_stats_recorded_per_round():
    store = ObjectStore()
    P = 9
    exchange = MultiLevelExchange(store, P, keys=["key"], levels=2)
    exchange.run(_make_tables(P, rows_per_worker=10))
    assert len(exchange.round_stats) == 2
    assert all(len(round_stats) == P for round_stats in exchange.round_stats)


def test_groups_are_cached_per_round():
    store = ObjectStore()
    exchange = MultiLevelExchange(store, 12, keys=["key"], levels=2)
    for dimension in range(2):
        assert exchange._groups_for_round(dimension) is exchange._groups_for_round(
            dimension
        )


def test_groups_match_coordinate_reference():
    """Vectorized group construction equals the seed's grid_coordinates loop."""
    store = ObjectStore()
    for num_workers, levels in [(16, 2), (12, 2), (24, 3), (7, 2)]:
        exchange = MultiLevelExchange(store, num_workers, keys=["key"], levels=levels)
        for dimension in range(levels):
            reference = {}
            for worker in range(num_workers):
                coords = list(grid_coordinates(worker, exchange.dims))
                coords[dimension] = -1
                reference.setdefault(tuple(coords), []).append(worker)
            expected = sorted(sorted(members) for members in reference.values())
            assert sorted(exchange._groups_for_round(dimension)) == expected


def test_route_is_pure_table_lookup():
    """Routing a batch equals the per-row coordinate map, with no Python loop."""
    store = ObjectStore()
    exchange = MultiLevelExchange(store, 24, keys=["key"], levels=2)
    rng = np.random.default_rng(8)
    targets = rng.integers(0, 24, 1000).astype(np.int64)
    for dimension in range(2):
        for group in exchange._groups_for_round(dimension):
            route = exchange._route_for_round(dimension, group)
            routed = route(targets)
            member_by_coord = {
                grid_coordinates(worker, exchange.dims)[dimension]: worker
                for worker in group
            }
            expected = np.array(
                [
                    member_by_coord[grid_coordinates(int(t), exchange.dims)[dimension]]
                    for t in targets
                ],
                dtype=np.int64,
            )
            np.testing.assert_array_equal(routed, expected)
            assert route(np.zeros(0, dtype=np.int64)).shape == (0,)


def test_explicit_dims_validated():
    store = ObjectStore()
    with pytest.raises(ExchangeError):
        MultiLevelExchange(store, 16, keys=["key"], levels=2, dims=[3, 4])
    with pytest.raises(ExchangeError):
        MultiLevelExchange(store, 16, keys=["key"], levels=2, dims=[16])


def test_wrong_table_count_raises():
    store = ObjectStore()
    exchange = MultiLevelExchange(store, 4, keys=["key"], levels=2)
    with pytest.raises(ExchangeError):
        exchange.run(_make_tables(3))


def test_exchange_of_empty_tables():
    store = ObjectStore()
    P = 4
    tables = [{"key": np.zeros(0, dtype=np.int64), "value": np.zeros(0)} for _ in range(P)]
    exchange = MultiLevelExchange(store, P, keys=["key"], levels=2)
    result = exchange.run(tables)
    assert all(table_num_rows(t) == 0 for t in result)


def test_single_worker_exchange_is_identity_like():
    store = ObjectStore()
    tables = _make_tables(1, rows_per_worker=50)
    exchange = MultiLevelExchange(store, 1, keys=["key"], levels=1)
    result = exchange.run(tables)
    assert table_num_rows(result[0]) == 50


@settings(max_examples=15, deadline=None)
@given(
    num_workers=st.sampled_from([4, 6, 8, 9, 12, 16]),
    seed=st.integers(min_value=0, max_value=1000),
    write_combining=st.booleans(),
)
def test_exchange_placement_property(num_workers, seed, write_combining):
    """Property: after the exchange, every row is on the worker its key hashes to,
    and no row is lost or duplicated, regardless of P, seed, or write combining."""
    store = ObjectStore()
    tables = _make_tables(num_workers, rows_per_worker=30, seed=seed)
    exchange = MultiLevelExchange(
        store, num_workers, keys=["key"], levels=2, write_combining=write_combining
    )
    result = exchange.run(tables)
    all_in = np.sort(np.concatenate([t["key"] for t in tables]))
    all_out = np.sort(np.concatenate([t["key"] for t in result if t]))
    np.testing.assert_array_equal(all_in, all_out)
    for worker, table in enumerate(result):
        if not table:
            continue
        assignment = partition_assignments(table, ["key"], num_workers)
        assert np.all(assignment == worker)
