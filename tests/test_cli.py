"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def _run(*argv: str) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


def test_demo_query_default_q6():
    output = _run("demo-query", "--scale-factor", "0.0005", "--files", "4")
    assert "revenue" in output
    assert "workers:" in output
    assert "cost breakdown:" in output


def test_demo_query_custom_sql():
    output = _run(
        "demo-query",
        "--scale-factor", "0.0005",
        "--files", "2",
        "--sql", "SELECT count(*) AS n FROM lineitem",
    )
    assert " n" in output
    assert "result (1 rows)" in output


def test_demo_query_with_catalog_and_cold():
    output = _run(
        "demo-query",
        "--scale-factor", "0.0005",
        "--files", "4",
        "--use-catalog",
        "--cold",
    )
    assert "workers:" in output


def test_exchange_cost_lists_all_variants():
    output = _run("exchange-cost", "--workers", "256")
    for variant in ("1l", "1l-wc", "2l", "2l-wc", "3l", "3l-wc"):
        assert variant in output


def test_invocation_compares_flat_and_tree():
    output = _run("invocation", "--workers", "4096")
    assert "flat (driver only)" in output
    assert "two-level tree" in output
    assert "first generation:     64 workers" in output


def test_qaas_comparison_output():
    output = _run("qaas", "--query", "q1", "--scale-factor", "1000")
    assert "lambada (hot)" in output
    assert "athena" in output
    assert "bigquery (cold)" in output


def test_verify_dataset_clean():
    output = _run("verify-dataset", "--scale-factor", "0.0005", "--files", "3")
    assert output.count("  ok       ") == 3
    assert "verification clean: 3/3 files intact" in output


def test_verify_dataset_detects_flipped_bytes():
    out = io.StringIO()
    code = main(
        ["verify-dataset", "--scale-factor", "0.0005", "--files", "4",
         "--corrupt", "2", "--seed", "3"],
        out=out,
    )
    output = out.getvalue()
    assert code == 1
    assert output.count("  CORRUPT  ") == 2
    assert "layer=" in output
    assert "verification FAILED: 2/4 files intact" in output


def test_unknown_command_exits_with_error():
    with pytest.raises(SystemExit):
        main(["not-a-command"])


def test_missing_command_exits_with_error():
    with pytest.raises(SystemExit):
        main([])
