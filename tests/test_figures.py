"""Tests for the model-driven figure builders (shape checks against the paper)."""

import pytest

from repro.analysis import figures


def test_figure1a_faas_reaches_interactive_iaas_does_not():
    data = figures.figure1a_job_scoped()
    fastest_faas = min(point["seconds"] for point in data["faas"])
    fastest_iaas = min(point["seconds"] for point in data["iaas"])
    cheapest_faas = min(point["dollars"] for point in data["faas"])
    cheapest_iaas = min(point["dollars"] for point in data["iaas"])
    assert fastest_faas < 10
    assert fastest_iaas > 100
    assert cheapest_iaas < cheapest_faas


def test_figure1b_crossover_with_query_rate():
    data = figures.figure1b_always_on()
    faas = {p["queries_per_hour"]: p["dollars_per_hour"] for p in data["FaaS (S3)"]}
    dram = {p["queries_per_hour"]: p["dollars_per_hour"] for p in data["3 VMs (DRAM)"]}
    assert faas[1] < dram[1]
    assert faas[64] > dram[64]
    # Always-on cost is flat; usage-based cost grows linearly.
    assert dram[1] == dram[64]
    assert faas[64] == pytest.approx(64 * faas[1])
    assert data["QaaS (S3)"][0]["dollars_per_hour"] > faas[1]


def test_figure4_shape():
    rows = figures.figure4_compute_performance()
    by_memory = {row["memory_mib"]: row for row in rows}
    # Below 1792 MiB both thread counts are proportional to memory.
    assert by_memory[1024]["threads_1"] == pytest.approx(by_memory[1024]["threads_2"])
    assert by_memory[1024]["threads_1"] == pytest.approx(100 * 1024 / 1792, rel=1e-6)
    # At 1792 MiB the single-thread baseline is 100 %.
    assert by_memory[1792]["threads_1"] == pytest.approx(100.0)
    # Above, one thread stays at 100 % while two threads reach ~167 %.
    assert by_memory[3008]["threads_1"] == pytest.approx(100.0)
    assert by_memory[3008]["threads_2"] == pytest.approx(167.8, rel=0.01)


def test_table1_values_match_config():
    rows = figures.table1_invocation_characteristics()
    by_region = {row["region"]: row for row in rows}
    assert by_region["eu"]["single_invocation_ms"] == pytest.approx(36.0)
    assert by_region["ap"]["single_invocation_ms"] == pytest.approx(536.0)
    assert by_region["eu"]["concurrent_rate_per_s"] == pytest.approx(294.0)
    assert by_region["sa"]["intra_region_rate_per_s"] == pytest.approx(84.0)


def test_figure5_two_level_vs_flat():
    data = figures.figure5_invocation_timeline(4096)
    assert data["first_generation"] == 64
    assert data["all_started_seconds"] < 4.5
    assert data["flat_invocation_seconds"] > 13.0
    # Timeline arrays have one entry per first-generation worker.
    assert len(data["before_own_invocation"]) == 64
    assert max(data["before_own_invocation"]) < 1.0


def test_figure6_shape():
    data = figures.figure6_network_bandwidth()
    large = {row["memory_mib"]: row for row in data["large_files"]}
    small = {row["memory_mib"]: row for row in data["small_files"]}
    # Large files: ~90 MiB/s regardless of connection count for big workers.
    assert 60 <= large[3008]["connections_1_mib_per_s"] <= 95
    assert 60 <= large[3008]["connections_4_mib_per_s"] <= 95
    # Small files: large workers with 4 connections approach 300 MiB/s.
    assert small[3008]["connections_4_mib_per_s"] > 200
    assert small[3008]["connections_1_mib_per_s"] < 100
    # Small workers cannot burst as high.
    assert small[512]["connections_4_mib_per_s"] < small[3008]["connections_4_mib_per_s"]


def test_figure7_shape():
    rows = figures.figure7_chunk_size()
    by_chunk = {row["chunk_mib"]: row for row in rows}
    # A single connection needs 16 MiB chunks to get close to peak bandwidth.
    assert by_chunk[16.0]["connections_1_mb_per_s"] > 2.5 * by_chunk[0.5]["connections_1_mb_per_s"]
    # Four connections reach near-peak bandwidth already at 1 MiB chunks.
    assert by_chunk[1.0]["connections_4_mb_per_s"] > 0.8 * by_chunk[16.0]["connections_4_mb_per_s"]
    # Request cost is inversely proportional to the chunk size and dominates
    # the worker cost for small chunks.
    assert by_chunk[0.5]["request_cost_dollars"] == pytest.approx(
        32 * by_chunk[16.0]["request_cost_dollars"], rel=0.1
    )
    assert by_chunk[0.5]["request_to_worker_cost_ratio"] > 1.0
    assert by_chunk[16.0]["request_to_worker_cost_ratio"] < 0.3


def test_table2_rows_cover_all_variants():
    rows = figures.table2_exchange_models(1024)
    variants = {row["variant"] for row in rows}
    assert variants == {"1l", "1l-wc", "2l", "2l-wc", "3l", "3l-wc"}
    by_variant = {row["variant"]: row for row in rows}
    assert by_variant["1l"]["reads"] == pytest.approx(1024 ** 2)
    assert by_variant["2l"]["reads"] == pytest.approx(2 * 1024 * 32)
    assert by_variant["2l-wc"]["writes"] == pytest.approx(2 * 1024)


def test_figure9_ordering_and_band():
    data = figures.figure9_exchange_cost()
    series = data["series"]
    # At 4096 workers the baseline is far above the optimized variants.
    assert series["1l"][4096] > 100 * series["3l-wc"][4096]
    assert series["2l-wc"][4096] < data["worker_cost_band_high"]
    # Basic exchange cost per worker grows with P; 3-level stays nearly flat.
    assert series["1l"][16384] > series["1l"][64] * 50
    assert series["3l-wc"][16384] < series["3l-wc"][64] * 3


def test_table3_lambada_beats_baselines():
    rows = figures.table3_exchange_comparison()
    lambada = {row["workers"]: row["seconds"] for row in rows if row["system"].startswith("lambada")}
    pocket_s3 = next(r["seconds"] for r in rows if r["system"] == "pocket-s3-baseline")
    pocket_vms = {r["workers"]: r["seconds"] for r in rows if r["system"] == "pocket"}
    locus = min(r["seconds"] for r in rows if r["system"].startswith("locus"))
    # ~5x faster than the S3 baseline of Pocket on 250 workers (paper: 98 s vs 22 s).
    assert lambada[250] < pocket_s3 / 2.5
    # Faster than Pocket on VMs at every fleet size.
    for workers in (250, 500, 1000):
        assert lambada[workers] < pocket_vms[workers]
    # Faster than Locus' fastest configuration.
    assert lambada[250] < locus


def test_figure13_straggler_behaviour():
    data = figures.figure13_exchange_breakdown()
    one_tb = data["1TB"]
    three_tb = data["3TB"]
    # §5.5: 1 TB takes ~56 s end to end; 3 TB takes ~159 s.
    assert 35 <= one_tb["total_seconds"] <= 85
    assert 100 <= three_tb["total_seconds"] <= 260
    # The 1 TB run is close to its lower bound; the 3 TB run is dominated by waiting.
    assert one_tb["fastest_worker_seconds"] > 0.6 * one_tb["total_seconds"]
    assert three_tb["total_seconds"] > 1.8 * three_tb["lower_bound_seconds"]
    # Straggler tails: slowest write 4x the median at 3 TB, mild at 1 TB.
    write_1tb = one_tb["phases"]["Round 1 write"]
    write_3tb = three_tb["phases"]["Round 1 write"]
    assert write_1tb["slowest"] / write_1tb["median"] < 2.0
    assert write_3tb["slowest"] / write_3tb["median"] > 2.0
