"""Tests for the Lambada driver (end-to-end query coordination)."""

import numpy as np
import pytest

from repro.driver.driver import LambadaDriver
from repro.errors import ExecutionError, WorkerFailedError
from repro.plan.expressions import col
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    LimitNode,
    OrderByNode,
    ProjectNode,
    ScanNode,
)
from repro.workload.queries import reference_q1, reference_q6, q1_plan, q6_plan


def test_install_deploys_function_and_queue(env, driver):
    assert driver.function_name in env.lambda_service.list_functions()
    assert driver.result_queue in env.sqs.list_queues()


def test_scalar_aggregate_query(env, driver, dataset, lineitem_table):
    plan = AggregateNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        aggregates=(AggregateSpec("sum", col("l_quantity"), "total_qty"),),
    )
    result = driver.execute(plan)
    assert result.scalar() == pytest.approx(float(lineitem_table["l_quantity"].sum()))


def test_one_worker_per_file_by_default(driver, dataset):
    plan = AggregateNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    result = driver.execute(plan)
    assert result.statistics.num_workers == dataset.num_files
    assert len(result.worker_results) == dataset.num_files


def test_files_per_worker_controls_fleet_size(driver, dataset):
    plan = AggregateNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    result = driver.execute(plan, files_per_worker=2)
    assert result.statistics.num_workers == dataset.num_files // 2


def test_num_workers_capped_by_files(driver, dataset):
    plan = AggregateNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    result = driver.execute(plan, num_workers=1000)
    assert result.statistics.num_workers == dataset.num_files


def test_glob_expansion(driver, dataset):
    plan = AggregateNode(
        child=ScanNode(paths=(dataset.glob,)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    result = driver.execute(plan)
    assert result.scalar() == pytest.approx(dataset.total_rows)


def test_missing_input_raises(driver):
    plan = AggregateNode(
        child=ScanNode(paths=("s3://tpch/nothing/*.lpq",)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    with pytest.raises(ExecutionError):
        driver.execute(plan)


def test_worker_failure_is_surfaced(driver, dataset, env):
    # Point one file at a corrupt object to make a worker fail.
    env.s3.put_object("tpch", "lineitem/part-00000.lpq", b"corrupt bytes")
    plan = AggregateNode(
        child=ScanNode(paths=tuple(dataset.paths)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    with pytest.raises(WorkerFailedError):
        driver.execute(plan)


def test_collect_rows_query(driver, dataset, lineitem_table):
    plan = ProjectNode(
        child=FilterNode(
            child=ScanNode(paths=tuple(dataset.paths)),
            predicate=col("l_quantity") >= 49,
        ),
        columns=("l_quantity", "l_discount"),
    )
    result = driver.execute(plan)
    expected = int((lineitem_table["l_quantity"] >= 49).sum())
    assert result.num_rows == expected
    assert set(result.table.keys()) == {"l_quantity", "l_discount"}


def test_order_by_and_limit(driver, dataset):
    plan = LimitNode(
        child=OrderByNode(
            child=AggregateNode(
                child=ScanNode(paths=tuple(dataset.paths)),
                group_by=("l_returnflag",),
                aggregates=(AggregateSpec("count", None, "n"),),
            ),
            keys=("n",),
            descending=True,
        ),
        count=2,
    )
    result = driver.execute(plan)
    assert result.num_rows == 2
    counts = result.column("n")
    assert counts[0] >= counts[1]


def test_q1_matches_reference(driver, dataset, lineitem_table):
    result = driver.execute(q1_plan(dataset.paths))
    expected = reference_q1(lineitem_table)
    assert result.num_rows == len(expected["sum_qty"])
    for alias in ("sum_qty", "sum_base_price", "sum_disc_price", "sum_charge",
                  "avg_qty", "avg_price", "avg_disc", "count_order"):
        np.testing.assert_allclose(result.column(alias), expected[alias], rtol=1e-9)


def test_q6_matches_reference(driver, dataset, lineitem_table):
    result = driver.execute(q6_plan(dataset.paths))
    assert result.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)


def test_q6_prunes_most_row_groups(driver, dataset):
    result = driver.execute(q6_plan(dataset.paths))
    total_groups = sum(r.row_groups_total for r in result.worker_results)
    pruned = sum(r.row_groups_pruned for r in result.worker_results)
    # Q6 touches one year out of seven; most row groups are pruned (§5.3).
    assert pruned > 0.5 * total_groups


def test_q1_prunes_little(driver, dataset):
    result = driver.execute(q1_plan(dataset.paths))
    total_groups = sum(r.row_groups_total for r in result.worker_results)
    pruned = sum(r.row_groups_pruned for r in result.worker_results)
    assert pruned < 0.2 * total_groups


def test_statistics_populated(driver, dataset):
    result = driver.execute(q6_plan(dataset.paths))
    stats = result.statistics
    assert stats.latency_seconds > 0
    assert stats.invocation_seconds > 0
    assert stats.max_worker_seconds >= stats.median_worker_seconds
    assert stats.cost_total > 0
    assert stats.cost_total == pytest.approx(
        stats.cost_lambda_duration
        + stats.cost_lambda_requests
        + stats.cost_s3_requests
        + stats.cost_sqs_requests
    )
    assert stats.rows_scanned > 0
    assert stats.bytes_read > 0
    assert len(stats.worker_durations) == stats.num_workers


def test_cold_execution_slower_and_pricier(driver, dataset):
    hot = driver.execute(q1_plan(dataset.paths), cold=False)
    cold = driver.execute(q1_plan(dataset.paths), cold=True)
    assert cold.statistics.latency_seconds > hot.statistics.latency_seconds
    assert cold.statistics.cost_lambda_duration >= hot.statistics.cost_lambda_duration
    # Results are identical regardless of cold/hot.
    np.testing.assert_allclose(cold.column("sum_qty"), hot.column("sum_qty"))


def test_more_memory_lowers_latency_raises_cost(env, dataset):
    small = LambadaDriver(env, memory_mib=512, result_queue="q-small")
    large = LambadaDriver(env, memory_mib=1792, result_queue="q-large")
    small_result = small.execute(q1_plan(dataset.paths))
    large_result = large.execute(q1_plan(dataset.paths))
    assert large_result.statistics.max_worker_seconds < small_result.statistics.max_worker_seconds


def test_set_memory_redeploys(driver, env):
    driver.set_memory(3008)
    assert env.lambda_service.get_config(driver.function_name).memory_mib == 3008


def test_tree_invocation_used(driver, dataset, env):
    before = env.lambda_service.total_invocations()
    driver.execute(q6_plan(dataset.paths))
    after = env.lambda_service.total_invocations()
    assert after - before == dataset.num_files


def test_scalar_on_multirow_result_raises(driver, dataset):
    result = driver.execute(q1_plan(dataset.paths))
    with pytest.raises(ExecutionError):
        result.scalar()
