"""Query cancellation hygiene: typed unwind, zero orphaned cloud state.

A cancelled (or deadline-expired, or budget-killed) query must leave the
shared fleet exactly as it found it: no exchange objects under its query
prefix, no spilled result objects, no queued result messages, and no
``/dev/shm`` segments — and the *next* query over the same environment must
still be bit-identical to the fault-free baseline.  ``cancel_at_stage``
tokens hit exact mid-wave pump points deterministically (no thread races):

* ``"shuffle map"`` / ``"shuffle reduce"`` — mid-wave in the aggregate
  coordinator, after the wave's workers ran (exchange objects exist);
* ``"join map"`` — mid-wave in the join coordinator, via the driver;
* ``"collect"`` — scan path, after workers reported (spills forced);
* ``"pooled dispatch"`` / ``"pooled retry"`` — the processes plane, before
  and after shared-memory segments were attached.
"""

from __future__ import annotations

import pytest

import repro.driver.shuffle as shuffle_module
from repro.analysis.experiments import setup_functional_environment
from repro.cloud.faults import FaultPlan, FaultRule
from repro.driver.admission import CancellationToken
from repro.driver.driver import LambadaDriver
from repro.driver.resilience import ResiliencePolicy
from repro.driver.shuffle import (
    SHUFFLE_RESULT_QUEUE,
    ShuffleAggregateCoordinator,
    _legacy_naming,
    _map_naming,
)
from repro.driver.worker import RESULT_BUCKET
from repro.errors import QueryCancelledError, RetryBudgetExhaustedError
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.workload.queries import q3_plan, q6_plan
from repro.workload.tpch import generate_orders_dataset

from tests.test_mode_parity import assert_bit_identical, leaked_segments

NUM_BUCKETS = 4


@pytest.fixture(scope="module")
def stack():
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=4)
    orders = generate_orders_dataset(
        env.s3, scale_factor=0.002, num_files=3, row_group_rows=512, seed=7
    )
    return env, dataset, orders


@pytest.fixture(scope="module")
def driver(stack):
    return LambadaDriver(stack[0])


@pytest.fixture(scope="module")
def pooled_driver(stack):
    driver = LambadaDriver(
        stack[0], execution_mode="processes", max_parallel_invocations=2
    )
    yield driver
    driver.close()


def _shuffle_buckets():
    """Bucket names of both exchange formats (query-independent)."""
    names = []
    for naming in (_map_naming("x", NUM_BUCKETS), _legacy_naming("x", NUM_BUCKETS)):
        names.extend(naming.buckets())
    return sorted(set(names))


def _shuffle_object_count(env) -> int:
    total = 0
    for bucket in _shuffle_buckets():
        env.s3.ensure_bucket(bucket)
        total += len(env.s3.list_objects(bucket))
    return total


def _group_sum(coordinator, dataset, cancel=None):
    env = coordinator.env
    return coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "total_qty")],
        order_by=["l_orderkey"],
        cancel=cancel,
        now_fn=(lambda: env.clock.now) if cancel is not None else None,
    )


def _gc_spy(monkeypatch, module, name):
    """Wrap a GC function, recording how many objects each call deleted."""
    deleted = []
    original = getattr(module, name)

    def wrapper(*args, **kwargs):
        count = original(*args, **kwargs)
        deleted.append(count)
        return count

    monkeypatch.setattr(module, name, wrapper)
    return deleted


# ---------------------------------------------------------------------------
# Shuffle plane: mid-map-wave and mid-reduce-wave cancellation
# ---------------------------------------------------------------------------


def test_cancel_mid_map_wave_gcs_exchange_state(stack, monkeypatch):
    """Cancelled between map dispatch and map collect: the mappers already
    wrote their exchange objects, and all of them are garbage-collected."""
    env, dataset, _ = stack
    before = _shuffle_object_count(env)
    deleted = _gc_spy(monkeypatch, shuffle_module, "_gc_cancelled_query")

    token = CancellationToken(cancel_at_stage="shuffle map")
    coordinator = ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=NUM_BUCKETS)
    with pytest.raises(QueryCancelledError) as excinfo:
        _group_sum(coordinator, dataset, cancel=token)

    assert excinfo.value.stage == "shuffle map"
    assert excinfo.value.query_id  # bound by the coordinator
    assert not excinfo.value.deadline
    assert token.observed_stage == "shuffle map"
    # The map wave ran synchronously during dispatch, so GC had real work.
    assert deleted and deleted[0] >= 1, "map wave wrote no exchange objects"
    assert _shuffle_object_count(env) == before
    assert env.sqs.approximate_message_count(SHUFFLE_RESULT_QUEUE) == 0
    assert leaked_segments() == []


def test_cancel_mid_reduce_wave_gcs_exchange_state(stack, monkeypatch):
    """Cancelled between reduce dispatch and reduce collect: map outputs and
    queued reduce results both vanish, and a rerun over the same environment
    is bit-identical to the fault-free baseline."""
    env, dataset, _ = stack
    baseline, baseline_statistics = _group_sum(
        ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=NUM_BUCKETS),
        dataset,
    )
    assert baseline_statistics.resilience.clean
    before = _shuffle_object_count(env)
    deleted = _gc_spy(monkeypatch, shuffle_module, "_gc_cancelled_query")

    token = CancellationToken(cancel_at_stage="shuffle reduce")
    with pytest.raises(QueryCancelledError) as excinfo:
        _group_sum(
            ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=NUM_BUCKETS),
            dataset,
            cancel=token,
        )

    assert excinfo.value.stage == "shuffle reduce"
    assert deleted and deleted[0] >= 1
    assert _shuffle_object_count(env) == before
    assert env.sqs.approximate_message_count(SHUFFLE_RESULT_QUEUE) == 0

    rerun, statistics = _group_sum(
        ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=NUM_BUCKETS),
        dataset,
    )
    assert_bit_identical(baseline, rerun, "post-cancel rerun")
    assert statistics.resilience.clean


def test_cancel_before_dispatch_writes_nothing(stack):
    """A token already set at dispatch time stops the wave before any
    invocation: no exchange object is ever written."""
    env, dataset, _ = stack
    before = _shuffle_object_count(env)
    token = CancellationToken(cancel_at_stage="shuffle map dispatch")
    with pytest.raises(QueryCancelledError) as excinfo:
        _group_sum(
            ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=NUM_BUCKETS),
            dataset,
            cancel=token,
        )
    assert excinfo.value.stage == "shuffle map dispatch"
    assert _shuffle_object_count(env) == before


def test_join_cancel_mid_map_wave_via_driver(stack, driver, monkeypatch):
    """Driver-level cancellation threads through to the join coordinator's
    waves; the join exchange state is garbage-collected and a rerun matches
    the baseline."""
    env, dataset, orders = stack
    plan = q3_plan(dataset.paths, orders.paths)
    baseline = driver.execute(plan)
    deleted = _gc_spy(monkeypatch, shuffle_module, "_gc_cancelled_query")

    token = CancellationToken(cancel_at_stage="join map")
    with pytest.raises(QueryCancelledError) as excinfo:
        driver.execute(plan, cancel=token)

    assert excinfo.value.stage == "join map"
    assert deleted and deleted[0] >= 1
    rerun = driver.execute(plan)
    assert_bit_identical(baseline.table, rerun.table, "post-cancel join rerun")


# ---------------------------------------------------------------------------
# Scan plane: spilled results, deadlines, retry budgets
# ---------------------------------------------------------------------------


def test_scan_cancel_gcs_spilled_results(stack, driver, monkeypatch):
    """Cancelled at the first collect round after every worker spilled its
    result through S3: the spill objects and their pointer messages are both
    garbage-collected."""
    import repro.driver.worker as worker_module

    env, dataset, _ = stack
    monkeypatch.setattr(worker_module, "RESULT_SPILL_BYTES", 64)
    env.s3.ensure_bucket(RESULT_BUCKET)
    deleted = _gc_spy(monkeypatch, LambadaDriver, "_gc_cancelled_scan")

    token = CancellationToken(cancel_at_stage="collect")
    with pytest.raises(QueryCancelledError) as excinfo:
        driver.execute(q6_plan(dataset.paths), cancel=token)

    assert excinfo.value.stage == "collect"
    # Every worker had reported via a spill by the time the driver polled.
    assert deleted and deleted[0] >= 1
    assert env.s3.list_objects(RESULT_BUCKET) == []
    assert env.sqs.approximate_message_count(driver.result_queue) == 0

    rerun = driver.execute(q6_plan(dataset.paths))
    assert rerun.statistics.resilience.clean
    assert rerun.statistics.overload["retry_budget"]["spent_total"] == 0


def test_deadline_expiry_cancels_mid_retry_storm(stack, driver):
    """Under a slowdown storm the accrued modelled backoff pushes the query
    past its deadline; it unwinds with ``deadline=True`` at the next pump
    point instead of grinding through the brownout."""
    env, dataset, _ = stack
    env.install_fault_plan(
        FaultPlan(
            [FaultRule("s3", "slowdown", 1.0, match="lineitem", max_count=8)],
            seed=3,
        )
    )
    try:
        with pytest.raises(QueryCancelledError) as excinfo:
            driver.execute(
                q6_plan(dataset.paths),
                max_worker_retries=8,
                deadline_seconds=0.01,
            )
    finally:
        env.install_fault_plan(None)

    assert excinfo.value.deadline is True
    assert excinfo.value.stage in {"collect", "retry round"}
    assert env.sqs.approximate_message_count(driver.result_queue) == 0


def test_retry_budget_exhaustion_is_typed_and_gcs(stack):
    """A sustained storm against a tiny retry budget aborts with the typed
    budget error (spend attributed per category, breaker states attached)
    and still leaves the result queue clean."""
    env, dataset, _ = stack
    strict = LambadaDriver(
        env,
        resilience_policy=ResiliencePolicy(retry_budget=2),
        result_queue="lambada-result-queue-strict",
    )
    env.install_fault_plan(
        FaultPlan(
            [FaultRule("s3", "slowdown", 1.0, match="lineitem", max_count=16)],
            seed=3,
        )
    )
    try:
        with pytest.raises(RetryBudgetExhaustedError) as excinfo:
            strict.execute(q6_plan(dataset.paths), max_worker_retries=8)
    finally:
        env.install_fault_plan(None)

    error = excinfo.value
    assert sum(error.spent.values()) == 2
    assert error.spent.get("driver_retries", 0) >= 1
    assert "s3" in error.breaker_states
    assert env.sqs.approximate_message_count(strict.result_queue) == 0

    # The budget is per-query: the same driver recovers fully afterwards.
    result = strict.execute(q6_plan(dataset.paths))
    assert result.statistics.resilience.clean


# ---------------------------------------------------------------------------
# Processes plane: shared-memory hygiene
# ---------------------------------------------------------------------------


def test_pooled_cancel_before_dispatch_touches_no_segments(stack, pooled_driver):
    env, dataset, _ = stack
    token = CancellationToken(cancel_at_stage="pooled dispatch")
    with pytest.raises(QueryCancelledError) as excinfo:
        pooled_driver.execute(q6_plan(dataset.paths), cancel=token)
    assert excinfo.value.stage == "pooled dispatch"
    assert leaked_segments() == []


def test_pooled_cancel_mid_retry_releases_segments(stack, pooled_driver):
    """Pool-child crashes force a retry round; cancelling there unwinds
    through the segment-cleanup path — nothing leaks in ``/dev/shm`` and the
    pool survives for the next query."""
    env, dataset, _ = stack
    baseline = pooled_driver.execute(q6_plan(dataset.paths))
    env.install_fault_plan(
        FaultPlan([FaultRule("pool", "crash", 1.0, max_count=2)], seed=5)
    )
    token = CancellationToken(cancel_at_stage="pooled retry")
    try:
        with pytest.raises(QueryCancelledError) as excinfo:
            pooled_driver.execute(
                q6_plan(dataset.paths), max_worker_retries=4, cancel=token
            )
    finally:
        env.install_fault_plan(None)

    assert excinfo.value.stage == "pooled retry"
    assert leaked_segments() == []

    rerun = pooled_driver.execute(q6_plan(dataset.paths))
    assert_bit_identical(baseline.table, rerun.table, "post-cancel pooled rerun")
