"""Tests for the Python dataflow frontend (Listing 1)."""

import numpy as np
import pytest

from repro.errors import InvalidPlanError
from repro.frontend.dataframe import LambadaSession, from_files
from repro.plan.expressions import col
from repro.plan.logical import AggregateNode, FilterNode, MapNode, ProjectNode, ScanNode


# -- plan construction (no execution) -------------------------------------------------

def test_from_files_builds_scan():
    flow = from_files("s3://b/*.lpq")
    assert isinstance(flow.plan, ScanNode)
    assert flow.plan.paths == ("s3://b/*.lpq",)


def test_from_files_accepts_list():
    flow = from_files(["s3://b/1.lpq", "s3://b/2.lpq"])
    assert len(flow.plan.paths) == 2


def test_filter_with_expression_and_udf():
    base = from_files("s3://b/*.lpq")
    with_expr = base.filter(col("x") > 1)
    assert isinstance(with_expr.plan, FilterNode)
    with_udf = base.filter(lambda row: row[0] > 1)
    assert with_udf.plan.udf is not None


def test_filter_rejects_other_types():
    with pytest.raises(InvalidPlanError):
        from_files("s3://b/*.lpq").filter("x > 1")  # type: ignore[arg-type]


def test_dataflows_are_immutable():
    base = from_files("s3://b/*.lpq")
    derived = base.filter(col("x") > 1)
    assert isinstance(base.plan, ScanNode)
    assert base is not derived


def test_map_with_dict_and_callable():
    base = from_files("s3://b/*.lpq")
    with_exprs = base.map({"v": col("a") * col("b")})
    assert isinstance(with_exprs.plan, MapNode)
    with_udf = base.map(lambda row: row[1] * row[2])
    assert with_udf.plan.udf is not None
    with pytest.raises(InvalidPlanError):
        base.map(42)  # type: ignore[arg-type]


def test_select_builds_projection():
    flow = from_files("s3://b/*.lpq").select("a", "b")
    assert isinstance(flow.plan, ProjectNode)
    assert flow.plan.columns == ("a", "b")


def test_scalar_aggregates_build_aggregate_nodes():
    base = from_files("s3://b/*.lpq")
    for method, alias in (
        (lambda: base.sum(col("x")), "sum"),
        (lambda: base.count(), "count"),
        (lambda: base.min(col("x")), "min"),
        (lambda: base.max(col("x")), "max"),
        (lambda: base.avg(col("x")), "avg"),
    ):
        flow = method()
        assert isinstance(flow.plan, AggregateNode)
        assert flow.plan.aggregates[0].alias == alias


def test_group_by_agg():
    flow = from_files("s3://b/*.lpq").group_by("g").agg(
        ("sum", col("x"), "s"), ("count", None, "n")
    )
    assert isinstance(flow.plan, AggregateNode)
    assert flow.plan.group_by == ("g",)
    assert [spec.alias for spec in flow.plan.aggregates] == ["s", "n"]


def test_explain_lists_operators():
    text = from_files("s3://b/*.lpq").filter(col("x") > 1).sum(col("x")).explain()
    assert "Scan" in text and "Filter" in text and "Aggregate" in text


def test_physical_plan_includes_pending_reduce():
    flow = from_files("s3://b/*.lpq").map(lambda row: row[0]).reduce(lambda a, b: a + b)
    physical = flow.physical_plan()
    assert physical.worker_template.reduce_udf is not None
    assert physical.driver.reduce_udf == physical.worker_template.reduce_udf
    assert not physical.driver.collect_rows


def test_collect_without_session_raises():
    with pytest.raises(InvalidPlanError):
        from_files("s3://b/*.lpq").count().collect()


# -- execution through a session -------------------------------------------------------

@pytest.fixture
def session(driver):
    return LambadaSession(driver)


def test_listing1_style_query(session, dataset, lineitem_table):
    """The paper's Listing 1: filter + map + reduce over record lambdas."""
    # Column order in the file is the LINEITEM schema order; l_extendedprice
    # is index 5 and l_discount index 6.
    result = (
        session.from_parquet(dataset.glob)
        .filter(lambda x: x[6] >= 0.05)
        .map(lambda x: x[5] * x[6])
        .reduce(lambda a, b: a + b)
        .collect()
    )
    mask = lineitem_table["l_discount"] >= 0.05
    expected = float(
        np.sum(lineitem_table["l_extendedprice"][mask] * lineitem_table["l_discount"][mask])
    )
    assert result.reduce_value == pytest.approx(expected, rel=1e-9)


def test_expression_query_through_session(session, dataset, lineitem_table):
    result = (
        session.from_parquet(dataset.glob)
        .filter((col("l_discount") >= 0.05) & (col("l_quantity") < 24))
        .sum(col("l_extendedprice") * col("l_discount"), alias="revenue")
        .collect()
    )
    mask = (lineitem_table["l_discount"] >= 0.05) & (lineitem_table["l_quantity"] < 24)
    expected = float(
        np.sum(lineitem_table["l_extendedprice"][mask] * lineitem_table["l_discount"][mask])
    )
    assert result.column("revenue")[0] == pytest.approx(expected, rel=1e-9)


def test_group_by_through_session(session, dataset, lineitem_table):
    result = (
        session.from_parquet(dataset.glob)
        .group_by("l_linestatus")
        .agg(("count", None, "n"))
        .order_by("l_linestatus")
        .collect()
    )
    statuses, counts = np.unique(lineitem_table["l_linestatus"], return_counts=True)
    np.testing.assert_array_equal(result.column("l_linestatus"), statuses)
    np.testing.assert_allclose(result.column("n"), counts)


def test_avg_through_session(session, dataset, lineitem_table):
    result = session.from_parquet(dataset.glob).avg(col("l_quantity"), alias="m").collect()
    assert result.column("m")[0] == pytest.approx(float(lineitem_table["l_quantity"].mean()))


def test_session_sql_entry_point(session, dataset, lineitem_table):
    result = session.sql(
        "SELECT count(*) AS n FROM lineitem", catalog={"lineitem": dataset.paths}
    ).collect()
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))
