"""Tests for the central statistics catalog and its driver integration."""

import math

import pytest

from repro.driver.catalog import FileStatistics, StatisticsCatalog
from repro.errors import PlanError
from repro.plan.physical import PruneRange
from repro.workload.queries import (
    Q6_SHIPDATE_LOWER_DAYS,
    Q6_SHIPDATE_UPPER_DAYS,
    q1_plan,
    q6_plan,
    reference_q6,
)
from repro.workload.tpch import SHIPDATE_MAX_DAYS


@pytest.fixture
def catalog(env, dataset):
    catalog = StatisticsCatalog(env.dynamodb)
    catalog.register_dataset(env.s3, "lineitem", dataset.paths)
    return catalog


def test_register_records_all_files(env, dataset, catalog):
    assert catalog.dataset_paths("lineitem") == dataset.paths
    for path in dataset.paths:
        statistics = catalog.file_statistics("lineitem", path)
        assert statistics is not None
        assert statistics.num_rows > 0
        assert "l_shipdate" in statistics.column_ranges


def test_unregistered_dataset_raises(env):
    catalog = StatisticsCatalog(env.dynamodb)
    with pytest.raises(PlanError):
        catalog.dataset_paths("missing")


def test_file_statistics_match_data(env, dataset, catalog, lineitem_table):
    ranges = [catalog.file_statistics("lineitem", path).column_ranges["l_shipdate"]
              for path in dataset.paths]
    assert min(low for low, _ in ranges) == lineitem_table["l_shipdate"].min()
    assert max(high for _, high in ranges) == lineitem_table["l_shipdate"].max()


def test_may_match_logic():
    statistics = FileStatistics(
        path="s3://b/f.lpq", num_rows=10, column_ranges={"x": (10.0, 20.0)}
    )
    assert statistics.may_match([PruneRange("x", 15, 25)])
    assert statistics.may_match([PruneRange("x", 5, 12)])
    assert not statistics.may_match([PruneRange("x", 21, 30)])
    assert not statistics.may_match([PruneRange("x", -5, 9)])
    # Unknown columns are conservatively kept.
    assert statistics.may_match([PruneRange("other", 0, 1)])


def test_item_roundtrip():
    statistics = FileStatistics(
        path="s3://b/f.lpq", num_rows=5, column_ranges={"x": (1.0, 2.0), "y": (-3.0, 4.0)}
    )
    restored = FileStatistics.from_item(statistics.to_item())
    assert restored == statistics


def test_files_matching_q6_range(env, dataset, catalog):
    prune = [PruneRange("l_shipdate", Q6_SHIPDATE_LOWER_DAYS, Q6_SHIPDATE_UPPER_DAYS)]
    matching = catalog.files_matching("lineitem", prune)
    # The dataset is sorted by shipdate and split into 4 contiguous files;
    # one year matches at most 2 of them.
    assert 1 <= len(matching) <= 2
    assert set(matching) <= set(dataset.paths)


def test_files_matching_everything_with_wide_range(env, dataset, catalog):
    prune = [PruneRange("l_shipdate", -math.inf, math.inf)]
    assert catalog.files_matching("lineitem", prune) == dataset.paths


def test_prune_paths_keeps_unknown_files(env, dataset, catalog):
    paths = dataset.paths + ["s3://tpch/unknown.lpq"]
    prune = [PruneRange("l_shipdate", SHIPDATE_MAX_DAYS + 1000, SHIPDATE_MAX_DAYS + 2000)]
    kept = catalog.prune_paths(paths, "lineitem", prune)
    assert kept == ["s3://tpch/unknown.lpq"]


def test_prune_paths_no_ranges_is_identity(env, dataset, catalog):
    assert catalog.prune_paths(dataset.paths, "lineitem", []) == dataset.paths


# -- driver integration -----------------------------------------------------------------

def test_driver_skips_pruned_workers_for_q6(env, dataset, driver, catalog, lineitem_table):
    without_catalog = driver.execute(q6_plan(dataset.paths))
    with_catalog = driver.execute(
        q6_plan(dataset.paths), catalog=catalog, dataset_name="lineitem"
    )
    # Same answer, fewer workers started.
    assert with_catalog.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)
    assert with_catalog.statistics.num_workers < without_catalog.statistics.num_workers
    assert with_catalog.statistics.cost_total < without_catalog.statistics.cost_total


def test_driver_with_catalog_unselective_query_unchanged(env, dataset, driver, catalog):
    result = driver.execute(q1_plan(dataset.paths), catalog=catalog, dataset_name="lineitem")
    assert result.statistics.num_workers == dataset.num_files


def test_driver_returns_empty_result_when_all_files_pruned(env, dataset, driver, catalog):
    from repro.plan.expressions import col, lit
    from repro.plan.logical import AggregateNode, AggregateSpec, FilterNode, ScanNode

    plan = AggregateNode(
        child=FilterNode(
            child=ScanNode(paths=tuple(dataset.paths)),
            predicate=col("l_shipdate") >= lit(SHIPDATE_MAX_DAYS + 10_000),
        ),
        aggregates=(AggregateSpec("count", None, "n"),),
    )
    result = driver.execute(plan, catalog=catalog, dataset_name="lineitem")
    assert result.statistics.num_workers == 0
    assert result.statistics.cost_total == 0.0
    assert result.num_rows == 0


def test_registration_cost_is_one_metadata_read_per_file(env, dataset):
    before = env.ledger.total("s3", "get_requests")
    catalog = StatisticsCatalog(env.dynamodb)
    catalog.register_dataset(env.s3, "lineitem", dataset.paths)
    after = env.ledger.total("s3", "get_requests")
    # Footer + tail + HEAD per file: a handful of small requests, no data reads.
    assert after - before <= 4 * dataset.num_files
