"""Tests for the compression codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptFileError
from repro.formats.compression import Compression, compress, decompress


@pytest.mark.parametrize("codec", list(Compression))
def test_roundtrip(codec):
    payload = b"lambada " * 100
    assert decompress(compress(payload, codec), codec) == payload


@pytest.mark.parametrize("codec", list(Compression))
def test_roundtrip_empty(codec):
    assert decompress(compress(b"", codec), codec) == b""


def test_none_is_identity():
    payload = b"\x00\x01\x02" * 10
    assert compress(payload, Compression.NONE) == payload


def test_gzip_compresses_repetitive_data():
    payload = b"a" * 10_000
    assert len(compress(payload, Compression.GZIP)) < len(payload) / 10


def test_gzip_tighter_than_fast_on_text():
    payload = (b"the quick brown fox jumps over the lazy dog " * 500)
    assert len(compress(payload, Compression.GZIP)) <= len(compress(payload, Compression.FAST))


def test_heavyweight_flag():
    assert Compression.GZIP.is_heavyweight
    assert not Compression.FAST.is_heavyweight
    assert not Compression.NONE.is_heavyweight


def test_corrupt_data_raises():
    with pytest.raises(CorruptFileError):
        decompress(b"not-compressed-data", Compression.GZIP)


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(max_size=4096), codec=st.sampled_from(list(Compression)))
def test_roundtrip_property(payload, codec):
    assert decompress(compress(payload, codec), codec) == payload
