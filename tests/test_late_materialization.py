"""Parity tests for encoding-aware predicate evaluation and late materialization.

Pins the encoded-chunk fast paths — :func:`evaluate_comparison`,
:func:`decode_gather`, and the selection-vector scan — to the decoded
``evaluate``-then-mask baseline across PLAIN/RLE/DICTIONARY chunks, every
comparison operator, empty/all-true/all-false selections, and mixed-encoding
row groups.
"""

import numpy as np
import pytest

from repro.cloud.s3 import ObjectStore
from repro.engine.pipeline import execute_worker_plan
from repro.engine.scan import S3ScanOperator, ScanConfig
from repro.engine.table import concat_tables, table_num_rows
from repro.formats.compression import Compression
from repro.formats.encoding import (
    Encoding,
    decode_column,
    decode_gather,
    encode_column,
    evaluate_comparison,
    parse_encoded_chunk,
)
from repro.formats.parquet import ColumnarWriter
from repro.formats.schema import ColumnType, Schema
from repro.plan.expressions import col, compile_predicate, evaluate, lit
from repro.plan.logical import AggregateSpec
from repro.plan.physical import WorkerPlan

ALL_OPS = ["==", "!=", "<", "<=", ">", ">="]
ALL_ENCODINGS = [Encoding.PLAIN, Encoding.RLE, Encoding.DICTIONARY]


def _chunk_datasets(rng):
    """(values, column_type) pairs covering dtypes and degenerate shapes."""
    return [
        (rng.integers(0, 8, 500).astype(np.int32), ColumnType.INT32),
        (np.sort(rng.integers(0, 40, 500)).astype(np.int64), ColumnType.INT64),
        (np.round(rng.uniform(0.0, 0.1, 500), 2), ColumnType.FLOAT64),
        (np.repeat(np.int64(7), 300), ColumnType.INT64),  # one run, one dict entry
        (np.zeros(0, dtype=np.float64), ColumnType.FLOAT64),  # empty chunk
    ]


def _encoded(values, column_type, encoding):
    data = encode_column(values, column_type, encoding)
    return parse_encoded_chunk(data, column_type, encoding, len(values))


# -- evaluate_comparison parity -----------------------------------------------------


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_encoded_comparison_matches_decoded(encoding):
    rng = np.random.default_rng(42)
    ufuncs = {
        "==": np.equal, "!=": np.not_equal,
        "<": np.less, "<=": np.less_equal,
        ">": np.greater, ">=": np.greater_equal,
    }
    for values, column_type in _chunk_datasets(rng):
        chunk = _encoded(values, column_type, encoding)
        decoded = decode_column(
            encode_column(values, column_type, encoding), column_type, encoding, len(values)
        )
        # Thresholds that force empty, full, and partial masks.
        thresholds = [-1.0, 0.0, 3.0, 7, 1e9]
        for op in ALL_OPS:
            for threshold in thresholds:
                expected = ufuncs[op](decoded, threshold)
                observed = evaluate_comparison(chunk, op, threshold)
                np.testing.assert_array_equal(observed, expected)
                assert observed.dtype == np.bool_


# -- decode_gather parity -----------------------------------------------------------


@pytest.mark.parametrize("encoding", ALL_ENCODINGS)
def test_decode_gather_matches_decoded_fancy_index(encoding):
    rng = np.random.default_rng(43)
    for values, column_type in _chunk_datasets(rng):
        chunk = _encoded(values, column_type, encoding)
        decoded = decode_column(
            encode_column(values, column_type, encoding), column_type, encoding, len(values)
        )
        n = len(values)
        selections = [
            np.zeros(0, dtype=np.int64),  # empty selection
            np.arange(n, dtype=np.int64),  # all-true selection
        ]
        if n:
            selections.append(np.flatnonzero(rng.random(n) < 0.05))  # sparse
            selections.append(np.array([0, n - 1], dtype=np.int64))  # boundaries
        for selection in selections:
            gathered = decode_gather(chunk, selection)
            np.testing.assert_array_equal(gathered, decoded[selection])
            assert gathered.dtype == decoded.dtype
        # selection=None is a full decode.
        full = decode_gather(chunk, None)
        np.testing.assert_array_equal(full, decoded)
        assert full.dtype == decoded.dtype


# -- predicate compilation ----------------------------------------------------------


def test_compile_predicate_splits_conjunction():
    predicate = (col("a") >= 3) & (lit(5) > col("b")) & (col("c") != 0)
    compiled = compile_predicate(predicate)
    assert compiled.residual is None
    assert [(c.column, c.op, c.value) for c in compiled.comparisons] == [
        ("a", ">=", 3),
        ("b", "<", 5),  # literal-on-the-left comparison is flipped
        ("c", "!=", 0),
    ]


def test_compile_predicate_extracts_residual():
    predicate = (col("a") < 10) & ((col("b") * 2) > col("c")) & ((col("d") == 1) | (col("d") == 2))
    compiled = compile_predicate(predicate)
    assert [(c.column, c.op) for c in compiled.comparisons] == [("a", "<")]
    assert compiled.residual is not None
    assert compiled.residual_columns == {"b", "c", "d"}


def test_compile_predicate_none_and_pure_residual():
    assert compile_predicate(None).comparisons == ()
    assert compile_predicate(None).residual is None
    disjunction = (col("a") == 1) | (col("a") == 2)
    compiled = compile_predicate(disjunction)
    assert compiled.comparisons == ()
    assert compiled.residual is disjunction


# -- scan parity over mixed-encoding row groups -------------------------------------


@pytest.fixture
def mixed_encoding_store():
    """An LPQ file whose columns force one encoding each, 6 row groups."""
    rng = np.random.default_rng(7)
    n = 6000
    table = {
        "date": np.sort(rng.integers(0, 60, n)).astype(np.int32),  # RLE-friendly
        "disc": np.round(rng.integers(0, 11, n) / 100.0, 2),  # 11 distinct values
        "qty": rng.integers(1, 51, n).astype(np.int64),
        "price": rng.uniform(900.0, 105000.0, n),  # high cardinality
    }
    schema = Schema.from_table(table)
    writer = ColumnarWriter(
        schema,
        row_group_rows=1000,
        compression=Compression.FAST,
        encodings={
            "date": Encoding.RLE,
            "disc": Encoding.DICTIONARY,
            "qty": Encoding.DICTIONARY,
            "price": Encoding.PLAIN,
        },
    )
    store = ObjectStore()
    store.create_bucket("data")
    store.put_object("data", "mixed.lpq", writer.write(table))
    return store, table


PREDICATES = [
    # Q6 shape: band predicates over three encoded columns.
    (col("date") >= 10) & (col("date") < 20) & (col("disc") >= 0.05)
    & (col("disc") <= 0.07) & (col("qty") < 24),
    # All rows pass (full short-circuit in every group).
    col("qty") >= 1,
    # No row passes (empty short-circuit in every group).
    col("price") < 0,
    # Residual-only predicate (disjunction).
    (col("qty") == 1) | (col("qty") == 50),
    # Mixed: comparisons plus arithmetic residual.
    (col("date") < 30) & ((col("price") * (1 - col("disc"))) > 50000.0),
]


def _reference_scan(store, predicate, columns):
    """The seed path: decode everything, evaluate on arrays, mask-copy."""
    scan = S3ScanOperator(store, ["s3://data/mixed.lpq"], columns=None)
    chunks = []
    for chunk in scan.scan():
        mask = np.asarray(evaluate(predicate, chunk), dtype=bool)
        chunks.append({name: chunk[name][mask] for name in columns})
    return concat_tables(chunks), scan


@pytest.mark.parametrize("index", range(len(PREDICATES)))
def test_scan_predicate_parity_across_paths(mixed_encoding_store, index):
    store, _ = mixed_encoding_store
    predicate = PREDICATES[index]
    columns = ["price", "disc"]
    expected, _ = _reference_scan(store, predicate, columns)

    for late in (True, False):
        scan = S3ScanOperator(
            store,
            ["s3://data/mixed.lpq"],
            columns=columns,
            config=ScanConfig(late_materialization=late),
            predicate=predicate,
        )
        observed = concat_tables(list(scan.scan()))
        if table_num_rows(expected) == 0:
            assert table_num_rows(observed) == 0
            continue
        assert list(observed.keys()) == columns
        for name in columns:
            np.testing.assert_array_equal(observed[name], expected[name])
            assert observed[name].dtype == expected[name].dtype


def test_scan_shortcircuit_counters(mixed_encoding_store):
    store, _ = mixed_encoding_store
    # No row anywhere satisfies price < 0: every group short-circuits empty and
    # the projected price/disc chunks are never downloaded.
    scan = S3ScanOperator(
        store,
        ["s3://data/mixed.lpq"],
        columns=["disc"],
        predicate=col("price") < 0,
    )
    assert list(scan.scan()) == []
    assert scan.counters.row_groups_shortcircuit_empty == 6
    assert scan.counters.column_chunks_skipped == 6  # disc, per group
    assert scan.counters.rows_decode_saved == 6000

    # Every row satisfies qty >= 1: full short-circuit, no gather, no saving.
    full = S3ScanOperator(
        store,
        ["s3://data/mixed.lpq"],
        columns=["price"],
        predicate=col("qty") >= 1,
    )
    result = concat_tables(list(full.scan()))
    assert table_num_rows(result) == 6000
    assert full.counters.row_groups_shortcircuit_full == 6
    assert full.counters.rows_decode_saved == 0


def test_empty_selection_downloads_fewer_bytes(mixed_encoding_store):
    store, _ = mixed_encoding_store
    # The projected column (disc) is not a predicate column, so when every
    # selection comes out empty its chunks are never downloaded at all.
    selective = S3ScanOperator(
        store, ["s3://data/mixed.lpq"], columns=["disc"], predicate=col("price") < 0
    )
    list(selective.scan())
    full = S3ScanOperator(
        store, ["s3://data/mixed.lpq"], columns=["disc"], predicate=col("price") >= 0
    )
    list(full.scan())
    assert selective.statistics.bytes_read < full.statistics.bytes_read
    assert selective.statistics.get_requests < full.statistics.get_requests


def test_scan_reads_predicate_columns_not_in_projection(mixed_encoding_store):
    store, table = mixed_encoding_store
    scan = S3ScanOperator(
        store,
        ["s3://data/mixed.lpq"],
        columns=["price"],
        predicate=(col("qty") < 24) & (col("disc") >= 0.05),
    )
    observed = concat_tables(list(scan.scan()))
    mask = (table["qty"] < 24) & (table["disc"] >= 0.05)
    np.testing.assert_array_equal(observed["price"], table["price"][mask])
    assert list(observed.keys()) == ["price"]


# -- pipeline integration ------------------------------------------------------------


def test_pipeline_filter_consumes_scan_selection(mixed_encoding_store):
    store, table = mixed_encoding_store
    predicate = (col("date") >= 10) & (col("date") < 40) & (col("qty") < 10)
    plan = WorkerPlan(
        files=["s3://data/mixed.lpq"],
        columns=["price", "date", "qty"],
        predicate=predicate,
        aggregates=[AggregateSpec("sum", col("price"), "s"), AggregateSpec("count", None, "n")],
    )
    result = execute_worker_plan(plan, store)
    mask = (table["date"] >= 10) & (table["date"] < 40) & (table["qty"] < 10)
    assert result.rows_after_filter == int(mask.sum())
    assert result.rows_scanned == 6000
    assert result.rows_decode_saved > 0
    from repro.engine.table import table_from_payload

    partial = table_from_payload(result.partial)
    assert partial["n"][0] == pytest.approx(mask.sum())
    assert partial["s"][0] == pytest.approx(table["price"][mask].sum())
    # The new counters survive the result payload round-trip.
    from repro.engine.pipeline import WorkerResult

    restored = WorkerResult.from_payload(result.to_payload())
    assert restored.rows_decode_saved == result.rows_decode_saved
    assert restored.row_groups_shortcircuited == result.row_groups_shortcircuited
    assert restored.column_chunks_skipped == result.column_chunks_skipped


def test_expression_and_udf_predicates_conjoin(mixed_encoding_store):
    """A plan with both predicate kinds applies BOTH: the scan consumes the
    expression's selection vector, the UDF conjunct filters on top."""
    store, table = mixed_encoding_store
    from repro.plan.physical import register_udf

    udf_ref = register_udf(lambda row: row[1] < 30)  # row = (price, date, qty)
    plan = WorkerPlan(
        files=["s3://data/mixed.lpq"],
        columns=["price", "date", "qty"],
        predicate=col("qty") < 10,
        predicate_udf=udf_ref,
        aggregates=[AggregateSpec("count", None, "n")],
    )
    result = execute_worker_plan(plan, store)
    from repro.engine.table import table_from_payload

    partial = table_from_payload(result.partial)
    expected = int(((table["qty"] < 10) & (table["date"] < 30)).sum())
    assert partial["n"][0] == pytest.approx(expected)
    assert result.rows_after_filter == expected


def test_integer_builtin_reduce_keeps_arbitrary_precision():
    """add/mul of integer values must not wrap through a fixed-width ufunc."""
    import operator

    from repro.cloud.s3 import ObjectStore
    from repro.formats.parquet import write_table
    from repro.plan.physical import register_udf

    store = ObjectStore()
    store.create_bucket("big")
    table = {"v": np.full(64, 2, dtype=np.int64)}
    store.put_object("big", "t.lpq", write_table(table))
    plan = WorkerPlan(
        files=["s3://big/t.lpq"],
        columns=["v"],
        reduce_udf=register_udf(operator.mul),
    )
    result = execute_worker_plan(plan, store)
    assert result.reduce_value == 2 ** 64  # wraps to 0 under int64


def test_builtin_reduce_is_vectorized_and_exact(mixed_encoding_store):
    import operator

    store, table = mixed_encoding_store
    from repro.plan.physical import register_udf

    ref = register_udf(operator.add)
    assert ref == "builtin-reduce:add"
    plan = WorkerPlan(
        files=["s3://data/mixed.lpq"],
        columns=["qty"],
        map_outputs=[("value", col("qty") * 1)],
        reduce_udf=ref,
    )
    result = execute_worker_plan(plan, store)
    assert result.reduce_value == pytest.approx(float(table["qty"].sum()))
    assert not isinstance(result.reduce_value, np.generic)  # JSON-safe scalar

    max_plan = WorkerPlan(
        files=["s3://data/mixed.lpq"],
        columns=["price"],
        map_outputs=[("value", col("price") * 1)],
        reduce_udf=register_udf(max),
    )
    max_result = execute_worker_plan(max_plan, store)
    assert max_result.reduce_value == pytest.approx(float(table["price"].max()))


def test_dense_group_factorization_matches_sort_path():
    from repro.engine.aggregates import (
        DENSE_FACTORIZE_MAX_CARDINALITY,
        _dense_factorize,
        _group_indices,
    )

    rng = np.random.default_rng(5)
    combined = rng.integers(0, 1000, 20000)
    expected_codes, expected_inverse = np.unique(combined, return_inverse=True)
    codes, inverse = _dense_factorize(combined, 1000)
    np.testing.assert_array_equal(codes, expected_codes)
    np.testing.assert_array_equal(inverse, expected_inverse)

    # End-to-end through the multi-key group-by (cardinality 12*9 << dense max).
    table = {
        "a": rng.integers(0, 12, 5000),
        "b": rng.integers(0, 9, 5000),
        "v": rng.random(5000),
    }
    assert 12 * 9 <= DENSE_FACTORIZE_MAX_CARDINALITY
    key_table, inverse, num_groups = _group_indices(table, ["a", "b"])
    stacked = np.rec.fromarrays([table["a"], table["b"]], names=["k0", "k1"])
    expected_unique, expected_inverse = np.unique(stacked, return_inverse=True)
    assert num_groups == len(expected_unique)
    np.testing.assert_array_equal(inverse, expected_inverse)
    np.testing.assert_array_equal(key_table["a"], expected_unique["k0"])
    np.testing.assert_array_equal(key_table["b"], expected_unique["k1"])


# -- randomized fuzz over mixed encodings and predicates ----------------------------


def test_fuzz_scan_parity_random_predicates():
    rng = np.random.default_rng(99)
    for trial in range(8):
        n = int(rng.integers(500, 3000))
        table = {
            "r": np.sort(rng.integers(0, int(rng.integers(2, 30)), n)).astype(np.int64),
            "d": rng.integers(0, int(rng.integers(2, 12)), n).astype(np.int32),
            "p": rng.uniform(-1.0, 1.0, n),
        }
        writer = ColumnarWriter(
            Schema.from_table(table),
            row_group_rows=int(rng.integers(200, 900)),
            compression=Compression.NONE,
            encodings={"r": Encoding.RLE, "d": Encoding.DICTIONARY, "p": Encoding.PLAIN},
        )
        data = writer.write(table)
        store = ObjectStore()
        store.create_bucket("f")
        store.put_object("f", "t.lpq", data)

        column, op = ("r", "d", "p")[trial % 3], ALL_OPS[trial % len(ALL_OPS)]
        threshold = float(np.round(rng.uniform(-1, 15), 2))
        ops = {
            "==": np.equal, "!=": np.not_equal,
            "<": np.less, "<=": np.less_equal,
            ">": np.greater, ">=": np.greater_equal,
        }
        predicate = getattr(col(column), {
            "==": "__eq__", "!=": "__ne__", "<": "__lt__",
            "<=": "__le__", ">": "__gt__", ">=": "__ge__",
        }[op])(threshold)
        mask = ops[op](table[column], threshold)

        scan = S3ScanOperator(
            store, ["s3://f/t.lpq"], columns=["p", "r", "d"], predicate=predicate
        )
        observed = concat_tables(list(scan.scan()))
        if not mask.any():
            assert table_num_rows(observed) == 0
            continue
        for name in ("p", "r", "d"):
            np.testing.assert_array_equal(observed[name], table[name][mask])
            assert observed[name].dtype == table[name].dtype
