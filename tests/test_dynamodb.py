"""Tests for the simulated DynamoDB key-value store."""

import pytest

from repro.cloud.dynamodb import KeyValueStore
from repro.errors import ConditionalCheckFailedError, NoSuchTableError


@pytest.fixture
def kv() -> KeyValueStore:
    store = KeyValueStore()
    store.create_table("state")
    return store


def test_put_and_get(kv):
    kv.put_item("state", "worker-1", {"status": "running"})
    assert kv.get_item("state", "worker-1") == {"status": "running"}


def test_get_missing_returns_none(kv):
    assert kv.get_item("state", "missing") is None


def test_missing_table_raises(kv):
    with pytest.raises(NoSuchTableError):
        kv.get_item("nope", "a")


def test_put_overwrites(kv):
    kv.put_item("state", "k", {"v": 1})
    kv.put_item("state", "k", {"v": 2})
    assert kv.get_item("state", "k") == {"v": 2}


def test_conditional_put_fails_if_exists(kv):
    kv.put_item("state", "leader", {"id": 1}, if_not_exists=True)
    with pytest.raises(ConditionalCheckFailedError):
        kv.put_item("state", "leader", {"id": 2}, if_not_exists=True)
    assert kv.get_item("state", "leader") == {"id": 1}


def test_delete_item_and_missing_delete_is_noop(kv):
    kv.put_item("state", "k", {"v": 1})
    kv.delete_item("state", "k")
    kv.delete_item("state", "k")
    assert kv.get_item("state", "k") is None


def test_scan_returns_copy(kv):
    kv.put_item("state", "a", {"v": 1})
    items = kv.scan("state")
    items["a"]["v"] = 99
    assert kv.get_item("state", "a") == {"v": 1}


def test_get_returns_copy(kv):
    kv.put_item("state", "a", {"v": [1, 2]})
    item = kv.get_item("state", "a")
    item["v"].append(3)
    assert kv.get_item("state", "a") == {"v": [1, 2]}


def test_increment_creates_and_adds(kv):
    assert kv.increment("state", "counter", "n") == 1
    assert kv.increment("state", "counter", "n", 4) == 5


def test_item_count(kv):
    kv.put_item("state", "a", {})
    kv.put_item("state", "b", {})
    assert kv.item_count("state") == 2


def test_item_too_large_rejected(kv):
    with pytest.raises(ValueError):
        kv.put_item("state", "big", {"blob": "x" * 500_000})


def test_create_table_idempotent(kv):
    kv.put_item("state", "a", {"v": 1})
    kv.create_table("state")
    assert kv.get_item("state", "a") == {"v": 1}


def test_delete_table(kv):
    kv.delete_table("state")
    assert "state" not in kv.list_tables()


def test_requests_are_metered(kv):
    kv.put_item("state", "a", {"v": 1})
    kv.get_item("state", "a")
    assert kv.ledger.total("dynamodb", "write_units") == 1
    assert kv.ledger.total("dynamodb", "read_units") == 1
