"""Tests for the scalar expression IR, including property-based evaluation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError, UnknownColumnError
from repro.plan.expressions import (
    Arithmetic,
    BooleanExpr,
    Comparison,
    Literal,
    col,
    evaluate,
    expression_from_dict,
    expression_to_dict,
    extract_column_ranges,
    lit,
    referenced_columns,
)


@pytest.fixture
def table():
    return {
        "a": np.array([1.0, 2.0, 3.0, 4.0]),
        "b": np.array([10.0, 20.0, 30.0, 40.0]),
        "c": np.array([0, 1, 0, 1], dtype=np.int64),
    }


# -- construction --------------------------------------------------------------------

def test_operator_overloads_build_trees():
    expr = (col("a") + 1) * col("b")
    assert isinstance(expr, Arithmetic)
    assert expr.op == "*"
    assert isinstance(expr.left, Arithmetic)


def test_reverse_operators():
    expr = 2 * col("a")
    assert isinstance(expr, Arithmetic)
    assert isinstance(expr.left, Literal)
    assert expr.left.value == 2


def test_comparison_operators():
    expr = col("a") >= 5
    assert isinstance(expr, Comparison)
    assert expr.op == ">="


def test_boolean_connectives():
    expr = (col("a") > 1) & (col("b") < 2) | ~(col("c") == 0)
    assert isinstance(expr, BooleanExpr)
    assert expr.op == "or"


def test_invalid_operand_type_rejected():
    with pytest.raises(PlanError):
        col("a") + "text"  # type: ignore[operator]


def test_expressions_cannot_be_used_as_booleans():
    with pytest.raises(PlanError):
        bool(col("a") == 1)


def test_invalid_operator_names_rejected():
    with pytest.raises(PlanError):
        Arithmetic("%", col("a"), lit(1))
    with pytest.raises(PlanError):
        Comparison("~=", col("a"), lit(1))
    with pytest.raises(PlanError):
        BooleanExpr("xor", (col("a") > 1, col("b") > 2))
    with pytest.raises(PlanError):
        BooleanExpr("not", (col("a") > 1, col("b") > 2))


def test_structural_equality_helper():
    assert (col("a") + 1).equals(col("a") + 1)
    assert not (col("a") + 1).equals(col("a") + 2)


# -- evaluation -------------------------------------------------------------------------

def test_evaluate_column_and_literal(table):
    np.testing.assert_array_equal(evaluate(col("a"), table), table["a"])
    np.testing.assert_array_equal(evaluate(lit(7), table), np.full(4, 7))


def test_evaluate_unknown_column(table):
    with pytest.raises(UnknownColumnError):
        evaluate(col("zzz"), table)


def test_evaluate_arithmetic(table):
    result = evaluate(col("a") * col("b") + 1, table)
    np.testing.assert_allclose(result, table["a"] * table["b"] + 1)


def test_evaluate_division(table):
    result = evaluate(col("b") / col("a"), table)
    np.testing.assert_allclose(result, table["b"] / table["a"])


def test_evaluate_comparisons(table):
    np.testing.assert_array_equal(
        evaluate(col("a") >= 3, table), np.array([False, False, True, True])
    )
    np.testing.assert_array_equal(
        evaluate(col("c") != 0, table), np.array([False, True, False, True])
    )


def test_evaluate_boolean_logic(table):
    expr = (col("a") > 1) & (col("a") < 4)
    np.testing.assert_array_equal(evaluate(expr, table), np.array([False, True, True, False]))
    expr = (col("a") == 1) | (col("a") == 4)
    np.testing.assert_array_equal(evaluate(expr, table), np.array([True, False, False, True]))
    np.testing.assert_array_equal(
        evaluate(~(col("c") == 0), table), np.array([False, True, False, True])
    )


# -- analysis -------------------------------------------------------------------------------

def test_referenced_columns():
    expr = (col("a") + col("b") * 2 > 1) & (col("c") == 0)
    assert referenced_columns(expr) == {"a", "b", "c"}


def test_referenced_columns_literal_only():
    assert referenced_columns(lit(1) + 2) == set()


def test_extract_ranges_simple_conjunction():
    predicate = (col("x") >= 5) & (col("x") <= 10) & (col("y") < 3)
    ranges = extract_column_ranges(predicate)
    assert ranges["x"] == (5, 10)
    assert ranges["y"][1] == 3
    assert ranges["y"][0] == -math.inf


def test_extract_ranges_equality():
    ranges = extract_column_ranges(col("x") == 7)
    assert ranges["x"] == (7, 7)


def test_extract_ranges_flipped_literal_side():
    ranges = extract_column_ranges(lit(5) <= col("x"))
    assert ranges["x"] == (5, math.inf)


def test_extract_ranges_ignores_disjunction():
    predicate = (col("x") >= 5) | (col("x") <= 1)
    assert extract_column_ranges(predicate) == {}


def test_extract_ranges_ignores_column_to_column():
    assert extract_column_ranges(col("x") >= col("y")) == {}


def test_extract_ranges_none_predicate():
    assert extract_column_ranges(None) == {}


# -- serialisation -----------------------------------------------------------------------------

def test_serialisation_roundtrip():
    expr = ((col("a") * 2 + col("b")) >= 5) & ~(col("c") == 0)
    restored = expression_from_dict(expression_to_dict(expr))
    assert restored.equals(expr)


def test_serialise_none():
    assert expression_to_dict(None) is None
    assert expression_from_dict(None) is None


def test_deserialise_unknown_kind():
    with pytest.raises(PlanError):
        expression_from_dict({"kind": "mystery"})


# -- property-based ------------------------------------------------------------------------------

_SCALARS = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


@st.composite
def arithmetic_expressions(draw, depth=0):
    """Random arithmetic expressions over columns a/b and literals."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return col(draw(st.sampled_from(["a", "b"]))), None
        value = draw(_SCALARS)
        return lit(value), None
    left, _ = draw(arithmetic_expressions(depth=depth + 1))
    right, _ = draw(arithmetic_expressions(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return Arithmetic(op, left, right), None


@settings(max_examples=60, deadline=None)
@given(expr_and_none=arithmetic_expressions(), values=st.lists(_SCALARS, min_size=1, max_size=20))
def test_serialisation_preserves_evaluation(expr_and_none, values):
    expr, _ = expr_and_none
    table = {
        "a": np.array(values),
        "b": np.array(values[::-1]),
    }
    restored = expression_from_dict(expression_to_dict(expr))
    np.testing.assert_allclose(evaluate(restored, table), evaluate(expr, table))


@settings(max_examples=60, deadline=None)
@given(
    lower=st.integers(min_value=-100, max_value=100),
    upper=st.integers(min_value=-100, max_value=100),
    values=st.lists(st.integers(min_value=-200, max_value=200), min_size=1, max_size=50),
)
def test_extracted_ranges_are_sound(lower, upper, values):
    """Rows satisfying the predicate always lie inside the extracted range."""
    predicate = (col("x") >= lower) & (col("x") <= upper)
    ranges = extract_column_ranges(predicate)
    table = {"x": np.array(values, dtype=np.float64)}
    mask = evaluate(predicate, table)
    satisfied = table["x"][mask]
    range_lower, range_upper = ranges["x"]
    assert np.all(satisfied >= range_lower)
    assert np.all(satisfied <= range_upper)
