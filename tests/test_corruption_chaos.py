"""Seeded corruption chaos suite: verify-and-recover under data corruption.

TPC-H Q1/Q6 (scan path) and Q3/Q12/Q14 (distributed joins over the shuffle
plane) run under randomized-but-seeded
:func:`~repro.cloud.faults.corruption_chaos_plan` storms — served S3 bodies
with flipped bytes, truncated responses, stale previous versions, and SQS
payloads with rewritten characters — across all three execution modes.
Acceptance:

* results are **bit-identical** to the corruption-free baseline: a corrupted
  byte is either detected and recovered from or the query fails loudly —
  there is no silent-wrong-answer path;
* recovery is bounded: re-reads plus re-executions never exceed the injection
  budget (``max_count`` caps every corruption kind);
* clean runs report clean integrity statistics (no false positives), and
  shuffle reads are actually verified (``verified_bytes`` advances);
* the seeded schedule is deterministic, and no ``/dev/shm`` segments leak.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import setup_functional_environment
from repro.cloud.faults import FaultPlan, FaultRule, corruption_chaos_plan
from repro.driver.driver import LambadaDriver
from repro.driver.resilience import ResiliencePolicy
from repro.driver.shuffle import ShuffleAggregateCoordinator
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.workload.queries import q1_plan, q3_plan, q6_plan, q12_plan, q14_plan
from repro.workload.tpch import generate_orders_dataset, generate_part_dataset

from tests.test_mode_parity import assert_bit_identical, leaked_segments

CHAOS_SEEDS = (11, 23)
CHAOS_RATE = 0.2
# Each of the four corruption kinds is capped at MAX_FAULTS injections; a
# detected corruption costs at most one re-read or one re-execution, so an
# attempt budget of 14 provably converges even if every injection lands on
# the same worker's reads.
MAX_FAULTS = 2
CHAOS_POLICY = ResiliencePolicy(max_attempts=14)
MAX_WORKER_RETRIES = 13
#: Rules in corruption_chaos_plan (bitflip, truncate, stale_body, corrupt_payload).
NUM_RULES = 4

QUERIES = ["q1", "q6", "q3", "q12", "q14"]
MODES = ["serial", "threads", "processes"]


@pytest.fixture(scope="module")
def stack():
    env, dataset, _ = setup_functional_environment(scale_factor=0.002, num_files=8)
    orders = generate_orders_dataset(
        env.s3, scale_factor=0.002, num_files=3, row_group_rows=512, seed=7
    )
    part = generate_part_dataset(
        env.s3, scale_factor=0.002, num_files=2, row_group_rows=512, seed=7
    )
    return env, dataset, orders, part


@pytest.fixture(scope="module")
def plans(stack):
    _, dataset, orders, part = stack
    return {
        "q1": q1_plan(dataset.paths),
        "q6": q6_plan(dataset.paths),
        "q3": q3_plan(dataset.paths, orders.paths),
        "q12": q12_plan(dataset.paths, orders.paths),
        "q14": q14_plan(dataset.paths, part.paths),
    }


@pytest.fixture(scope="module")
def drivers(stack):
    env = stack[0]
    serial = LambadaDriver(env, resilience_policy=CHAOS_POLICY)
    threads = LambadaDriver(
        env, execution_mode="threads", resilience_policy=CHAOS_POLICY
    )
    processes = LambadaDriver(
        env,
        execution_mode="processes",
        max_parallel_invocations=2,
        resilience_policy=CHAOS_POLICY,
    )
    yield {"serial": serial, "threads": threads, "processes": processes}
    processes.close()


@pytest.fixture(scope="module")
def baselines(stack, plans, drivers):
    """Corruption-free reference results; integrity must report clean."""
    env = stack[0]
    assert env.s3.fault_plan is None
    results = {query: drivers["serial"].execute(plan) for query, plan in plans.items()}
    for query, result in results.items():
        integrity = result.statistics.integrity
        assert integrity.clean, f"{query}: clean run flagged corruption"
    # Join queries pull shuffle slices through the verifying read path.
    assert results["q3"].statistics.integrity.verified_bytes > 0
    return results


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("query", QUERIES)
def test_corruption_parity(stack, plans, drivers, baselines, query, mode, seed):
    env = stack[0]
    env.install_fault_plan(
        corruption_chaos_plan(seed=seed, rate=CHAOS_RATE, max_count=MAX_FAULTS)
    )
    try:
        result = drivers[mode].execute(
            plans[query], max_worker_retries=MAX_WORKER_RETRIES
        )
    finally:
        env.install_fault_plan(None)

    label = f"{query}/{mode}/seed{seed}"
    # The gate: corrupted bytes never surface as a different answer.
    assert_bit_identical(baselines[query].table, result.table, label)

    resilience = result.statistics.resilience
    injected = sum(resilience.faults_injected.values())
    assert injected <= NUM_RULES * MAX_FAULTS, f"{label}: injection cap violated"
    for kind in resilience.faults_injected:
        assert kind in (
            "s3.bitflip", "s3.truncate", "s3.stale_body", "sqs.corrupt_payload"
        ), f"{label}: unexpected fault kind {kind}"
    # Bounded recovery: each detected corruption costs at most one re-read
    # (a cured in-flight read) or one re-execution (a re-run worker).
    integrity = result.statistics.integrity
    assert integrity.re_reads + integrity.re_executions <= injected, label
    assert result.statistics.cost_total > 0.0
    assert leaked_segments() == []


def test_corruption_schedule_is_deterministic(stack, plans, drivers, baselines):
    """Same seed, serial mode: two runs inject the identical schedule."""
    env = stack[0]
    outcomes = []
    for _ in range(2):
        env.install_fault_plan(
            corruption_chaos_plan(
                seed=CHAOS_SEEDS[0], rate=CHAOS_RATE, max_count=MAX_FAULTS
            )
        )
        try:
            result = drivers["serial"].execute(
                plans["q3"], max_worker_retries=MAX_WORKER_RETRIES
            )
        finally:
            env.install_fault_plan(None)
        outcomes.append(result.statistics.resilience.faults_injected)
    assert outcomes[0] == outcomes[1]
    assert outcomes[0]


# ---------------------------------------------------------------------------
# Targeted recovery paths: one corruption kind, one site, deterministic
# ---------------------------------------------------------------------------


def _group_sum(coordinator, dataset):
    return coordinator.execute(
        dataset.paths,
        group_by=["l_orderkey"],
        aggregates=[AggregateSpec("sum", col("l_quantity"), "total_qty")],
        order_by=["l_orderkey"],
    )


def test_shuffle_slice_bitflip_is_cured_by_one_reread(stack):
    """An in-flight bitflip on a combined-object slice GET is caught by the
    per-slice crc and cured by a single re-GET — no worker re-runs."""
    env, dataset, _, _ = stack
    baseline, _ = _group_sum(
        ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4), dataset
    )
    env.install_fault_plan(
        FaultPlan(
            # "sender-" appears only in combined shuffle object keys, so the
            # flip lands on a reducer's ranged slice read.
            [FaultRule("s3", "bitflip", 1.0, operation="get", match="sender-",
                       max_count=1)],
            seed=3,
        )
    )
    try:
        result, statistics = _group_sum(
            ShuffleAggregateCoordinator(env, memory_mib=2048, num_buckets=4), dataset
        )
    finally:
        env.install_fault_plan(None)

    assert_bit_identical(baseline, result, "slice-bitflip")
    assert statistics.resilience.faults_injected == {"s3.bitflip": 1}
    integrity = statistics.integrity
    assert integrity.re_reads == 1
    assert integrity.re_executions == 0
    assert sum(integrity.mismatches.values()) == 1
    assert all(site.startswith("slice.") for site in integrity.mismatches)


def test_corrupt_result_message_is_dropped_and_reexecuted(stack, plans, drivers):
    """A corrupted SQS result payload never contributes rows: the driver
    drops it (parse failure or digest mismatch) and re-invokes the worker."""
    env = stack[0]
    baseline = drivers["serial"].execute(plans["q6"])
    env.install_fault_plan(
        FaultPlan(
            [FaultRule("sqs", "corrupt_payload", 1.0, max_count=1)], seed=5
        )
    )
    try:
        result = drivers["serial"].execute(
            plans["q6"], max_worker_retries=MAX_WORKER_RETRIES
        )
    finally:
        env.install_fault_plan(None)

    assert_bit_identical(baseline.table, result.table, "sqs-corrupt")
    assert result.statistics.resilience.faults_injected == {"sqs.corrupt_payload": 1}
    integrity = result.statistics.integrity
    assert integrity.re_executions >= 1
    assert any(site.startswith("sqs.") for site in integrity.mismatches)


def test_scan_truncation_fails_loudly_and_is_retried(stack, plans, drivers):
    """A truncated dataset GET surfaces as a worker error (never a short
    table); the driver retries the worker and the result is exact."""
    env = stack[0]
    baseline = drivers["serial"].execute(plans["q1"])
    env.install_fault_plan(
        FaultPlan(
            [FaultRule("s3", "truncate", 1.0, operation="get", match="part-0",
                       max_count=1)],
            seed=7,
        )
    )
    try:
        result = drivers["serial"].execute(
            plans["q1"], max_worker_retries=MAX_WORKER_RETRIES
        )
    finally:
        env.install_fault_plan(None)

    assert_bit_identical(baseline.table, result.table, "scan-truncate")
    assert result.statistics.resilience.faults_injected == {"s3.truncate": 1}
    assert result.statistics.resilience.retries >= 1


def test_stale_body_serves_previous_version_and_is_detected(stack):
    """stale_body replays the retained previous version of an overwritten
    key; a checksum-verified consumer sees the mismatch, a second GET is
    served fresh."""
    env = stack[0]
    from repro.exchange.codec import decode_partition, encode_partition
    import numpy as np

    env.s3.ensure_bucket("stale-test")
    old = encode_partition({"k": np.arange(8, dtype=np.int64)}, checksum=True)
    new = encode_partition({"k": np.arange(100, 108, dtype=np.int64)}, checksum=True)

    # Previous versions are only retained while a fault plan is installed
    # (the lagging-replica model), so install before the overwrite.
    env.install_fault_plan(
        FaultPlan(
            [FaultRule("s3", "stale_body", 1.0, operation="get", match="stale-test",
                       max_count=1)],
            seed=9,
        )
    )
    try:
        env.s3.put_object("stale-test", "obj", old)
        env.s3.put_object("stale-test", "obj", new)
        served = env.s3.get_object("stale-test", "obj").data
        # The stale body is the *old* object — internally consistent, so the
        # frame checksum alone cannot flag it ...
        stale = decode_partition(served, verify=True)
        assert stale["k"].tolist() == list(range(8))
        # ... which is why shuffle keys are attempt-suffixed and never
        # overwritten: uniqueness, not just checksums, is the defence.
        fresh = env.s3.get_object("stale-test", "obj").data
    finally:
        env.install_fault_plan(None)
    assert decode_partition(fresh, verify=True)["k"].tolist() == list(range(100, 108))
    assert env.fault_plan is None
