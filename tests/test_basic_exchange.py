"""Tests for the one-level (basic) exchange operator."""

import numpy as np
import pytest

from repro.cloud.s3 import ObjectStore
from repro.engine.table import table_num_rows
from repro.errors import ExchangeError
from repro.exchange.basic import (
    BasicExchange,
    ExchangeConfig,
    deserialize_partition,
    serialize_partition,
)
from repro.exchange.partition import partition_assignments


def _make_tables(num_workers: int, rows_per_worker: int = 200, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [
        {
            "key": rng.integers(0, 10_000, rows_per_worker).astype(np.int64),
            "value": rng.random(rows_per_worker),
        }
        for _ in range(num_workers)
    ]


@pytest.fixture
def store():
    return ObjectStore()


def test_serialize_roundtrip():
    table = {"a": np.arange(10, dtype=np.int64), "b": np.random.default_rng(0).random(10)}
    restored = deserialize_partition(serialize_partition(table))
    np.testing.assert_array_equal(restored["a"], table["a"])
    np.testing.assert_allclose(restored["b"], table["b"])


def test_serialize_empty_is_empty_bytes():
    assert serialize_partition({}) == b""
    assert deserialize_partition(b"") == {}


def test_exchange_preserves_all_rows(store):
    P = 4
    tables = _make_tables(P)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    result = exchange.run(tables)
    total_in = sum(table_num_rows(t) for t in tables)
    total_out = sum(table_num_rows(t) for t in result)
    assert total_in == total_out


def test_exchange_places_rows_on_their_partition(store):
    P = 5
    tables = _make_tables(P)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    result = exchange.run(tables)
    for worker, table in enumerate(result):
        if not table:
            continue
        assignment = partition_assignments(table, ["key"], P)
        assert np.all(assignment == worker)


def test_exchange_request_counts_are_quadratic(store):
    P = 6
    tables = _make_tables(P, rows_per_worker=50)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    exchange.run(tables)
    stats = exchange.total_stats()
    # Algorithm 1: every worker writes P files and reads P files.
    assert stats.put_requests == P * P
    assert stats.get_requests >= P * P


def test_exchange_with_write_combining_reduces_writes(store):
    P = 6
    tables = _make_tables(P, rows_per_worker=50)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"], write_combining=True))
    result = exchange.run(tables)
    stats = exchange.total_stats()
    assert stats.put_requests == P  # one combined object per sender
    assert stats.list_requests >= P
    assert sum(table_num_rows(t) for t in result) == sum(table_num_rows(t) for t in tables)


def test_write_combining_preserves_placement(store):
    P = 4
    tables = _make_tables(P)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"], write_combining=True))
    result = exchange.run(tables)
    for worker, table in enumerate(result):
        if not table:
            continue
        assignment = partition_assignments(table, ["key"], P)
        assert np.all(assignment == worker)


def test_exchange_files_spread_over_buckets(store):
    P = 8
    tables = _make_tables(P, rows_per_worker=20)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"], num_buckets=4))
    exchange.run(tables)
    buckets_used = [b for b in store.list_buckets() if store.object_count(b) > 0]
    assert len(buckets_used) == 4


def test_exchange_empty_input_tables(store):
    P = 3
    tables = [{"key": np.zeros(0, dtype=np.int64), "value": np.zeros(0)} for _ in range(P)]
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    result = exchange.run(tables)
    assert all(table_num_rows(t) == 0 for t in result)


def test_exchange_wrong_table_count_raises(store):
    exchange = BasicExchange(store, 4, ExchangeConfig(keys=["key"]))
    with pytest.raises(ExchangeError):
        exchange.run(_make_tables(3))


def test_exchange_rejects_nonpositive_worker_count(store):
    with pytest.raises(ExchangeError):
        BasicExchange(store, 0)


def test_read_before_write_eventually_fails(store):
    exchange = BasicExchange(store, 2, ExchangeConfig(keys=["key"], max_poll_attempts=3))
    with pytest.raises(ExchangeError):
        exchange.read(0)


def test_read_discovery_is_metadata_based(store):
    """Receivers locate sender objects with LIST/HEAD, never failed GETs:
    every GET issued fetches an object that is known to exist."""
    P = 4
    tables = _make_tables(P, rows_per_worker=40)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    exchange.run(tables)
    stats = exchange.total_stats()
    # One GET per (sender, receiver) pair — no exception-driven retry GETs.
    assert stats.get_requests == P * P
    # Discovery: at least one LIST round per receiver, counted in the stats.
    assert stats.list_requests >= P
    # All objects existed by read time, so no straggler HEADs were needed.
    assert stats.head_requests == 0


def test_read_discovery_heads_stragglers(store):
    """A sender that has not written yet is polled via HEAD, not via GET."""
    P = 2
    tables = _make_tables(P, rows_per_worker=20)
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"], max_poll_attempts=5))
    exchange.write(0, tables[0])
    with pytest.raises(ExchangeError):
        exchange.read(1)
    stats = exchange.total_stats()
    assert stats.head_requests > 0
    assert stats.get_requests == 0  # no GET was wasted on a missing object


def test_combined_read_counts_ranged_gets_and_elisions(store):
    P = 4
    # Single-group tables: every sender routes all rows to one receiver, so
    # most combined-object slices are empty and their GETs are elided.
    tables = [
        {"key": np.full(30, 7, dtype=np.int64), "value": np.random.default_rng(s).random(30)}
        for s in range(P)
    ]
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"], write_combining=True))
    result = exchange.run(tables)
    stats = exchange.total_stats()
    assert stats.put_requests == P
    assert stats.combined_put_requests == P
    assert stats.ranged_get_requests == P  # one non-empty slice per sender
    assert stats.empty_parts_elided == P * P - P
    assert stats.bytes_touched >= stats.bytes_read
    assert sum(table_num_rows(t) for t in result) == 30 * P


def test_per_worker_stats_available(store):
    P = 3
    exchange = BasicExchange(store, P, ExchangeConfig(keys=["key"]))
    exchange.run(_make_tables(P, rows_per_worker=30))
    per_worker = exchange.stats_per_worker()
    assert set(per_worker.keys()) == {0, 1, 2}
    assert all(stats.put_requests == P for stats in per_worker.values())
