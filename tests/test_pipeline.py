"""Tests for worker-plan pipeline execution."""

import numpy as np
import pytest

from repro.cloud.s3 import ObjectStore
from repro.engine.pipeline import WorkerResult, execute_worker_plan
from repro.engine.table import table_from_payload
from repro.formats.parquet import write_table
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.plan.physical import PruneRange, WorkerPlan, register_udf


@pytest.fixture
def store():
    store = ObjectStore()
    store.create_bucket("data")
    n = 2000
    table = {
        "k": (np.arange(n) % 4).astype(np.int64),
        "x": np.arange(n, dtype=np.float64),
        "y": np.ones(n, dtype=np.float64) * 2,
    }
    store.put_object("data", "f.lpq", write_table(table, row_group_rows=500))
    return store


def test_aggregate_plan(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["k", "x"],
        group_by=["k"],
        aggregates=[AggregateSpec("sum", col("x"), "s"), AggregateSpec("count", None, "n")],
    )
    result = execute_worker_plan(plan, store)
    partial = table_from_payload(result.partial)
    assert result.rows_scanned == 2000
    assert result.rows_output == 4
    assert partial["n"].sum() == pytest.approx(2000)
    assert partial["s"].sum() == pytest.approx(np.arange(2000).sum())


def test_filter_expression_plan(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        predicate=col("x") < 100,
        aggregates=[AggregateSpec("count", None, "n")],
    )
    result = execute_worker_plan(plan, store)
    partial = table_from_payload(result.partial)
    assert partial["n"][0] == pytest.approx(100)
    assert result.rows_after_filter == 100


def test_prune_ranges_reduce_scanned_rows(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        predicate=col("x") < 100,
        prune_ranges=[PruneRange("x", -1e18, 100)],
        aggregates=[AggregateSpec("count", None, "n")],
    )
    result = execute_worker_plan(plan, store)
    assert result.row_groups_pruned == 3
    assert result.rows_scanned == 500
    partial = table_from_payload(result.partial)
    assert partial["n"][0] == pytest.approx(100)


def test_map_expression_plan(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x", "y"],
        map_outputs=[("product", col("x") * col("y"))],
        aggregates=[AggregateSpec("sum", col("product"), "total")],
    )
    result = execute_worker_plan(plan, store)
    partial = table_from_payload(result.partial)
    assert partial["total"][0] == pytest.approx(2 * np.arange(2000).sum())


def test_collect_rows_plan(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        predicate=col("x") < 5,
    )
    result = execute_worker_plan(plan, store)
    rows = table_from_payload(result.partial)
    np.testing.assert_array_equal(np.sort(rows["x"]), [0, 1, 2, 3, 4])
    assert result.rows_output == 5


def test_filter_udf_plan(store):
    ref = register_udf(lambda row: row[1] < 10)  # row = (k, x, y); x is index 1
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["k", "x", "y"],
        predicate_udf=ref,
        aggregates=[AggregateSpec("count", None, "n")],
    )
    result = execute_worker_plan(plan, store)
    partial = table_from_payload(result.partial)
    assert partial["n"][0] == pytest.approx(10)


def test_map_udf_and_reduce(store):
    map_ref = register_udf(lambda row: row[0] * row[1])  # x * y over columns [x, y]
    reduce_ref = register_udf(lambda a, b: a + b)
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x", "y"],
        map_udf=map_ref,
        reduce_udf=reduce_ref,
    )
    result = execute_worker_plan(plan, store)
    assert result.reduce_value == pytest.approx(2 * np.arange(2000).sum())
    assert result.rows_output == 1


def test_reduce_over_expression_map(store):
    reduce_ref = register_udf(lambda a, b: max(a, b))
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        map_outputs=[("value", col("x") * 1)],
        reduce_udf=reduce_ref,
    )
    result = execute_worker_plan(plan, store)
    assert result.reduce_value == pytest.approx(1999.0)


def test_empty_result_when_everything_pruned(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        prune_ranges=[PruneRange("x", 1e9, 2e9)],
        aggregates=[AggregateSpec("sum", col("x"), "s")],
    )
    result = execute_worker_plan(plan, store)
    assert result.rows_scanned == 0
    assert result.rows_output == 0
    assert result.duration_seconds > 0  # metadata still read


def test_statistics_populated(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        aggregates=[AggregateSpec("sum", col("x"), "s")],
    )
    result = execute_worker_plan(plan, store)
    assert result.get_requests > 0
    assert result.bytes_read > 0
    assert result.duration_seconds > 0
    assert result.metadata_seconds > 0
    assert result.compute_seconds > 0


def test_worker_result_payload_roundtrip(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        aggregates=[AggregateSpec("sum", col("x"), "s")],
    )
    result = execute_worker_plan(plan, store)
    restored = WorkerResult.from_payload(result.to_payload())
    assert restored.rows_scanned == result.rows_scanned
    assert restored.partial == result.partial


def test_more_memory_is_faster(store):
    plan = WorkerPlan(
        files=["s3://data/f.lpq"],
        columns=["x"],
        aggregates=[AggregateSpec("sum", col("x"), "s")],
    )
    slow = execute_worker_plan(plan, store, memory_mib=512)
    fast = execute_worker_plan(plan, store, memory_mib=1792)
    assert fast.compute_seconds < slow.compute_seconds
