"""Tests for driver-side retries of failed workers."""

import numpy as np
import pytest

from repro.errors import WorkerFailedError
from repro.plan.logical import AggregateNode, AggregateSpec, FilterNode, ScanNode
from repro.plan.expressions import col
from repro.workload.queries import reference_q6, q6_plan


class FlakyPredicate:
    """A predicate UDF that fails the first ``failures`` times it is called."""

    def __init__(self, failures: int):
        self.remaining_failures = failures

    def __call__(self, row):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise RuntimeError("transient failure injected by the test")
        return True


def _flaky_plan(dataset, failures: int):
    return AggregateNode(
        child=FilterNode(child=ScanNode(paths=tuple(dataset.paths)), udf=FlakyPredicate(failures)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )


def test_transient_worker_failure_is_retried(driver, dataset, lineitem_table):
    result = driver.execute(_flaky_plan(dataset, failures=1), max_worker_retries=1)
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))


def test_persistent_failure_raises_after_retries(driver, dataset):
    with pytest.raises(WorkerFailedError):
        driver.execute(_flaky_plan(dataset, failures=10_000), max_worker_retries=1)


def test_no_retries_surfaces_first_failure(driver, dataset):
    with pytest.raises(WorkerFailedError):
        driver.execute(_flaky_plan(dataset, failures=1), max_worker_retries=0)


def test_retry_does_not_duplicate_results(driver, dataset, lineitem_table):
    """Retried workers replace their failed attempt; partials are not double-counted."""
    result = driver.execute(_flaky_plan(dataset, failures=2), max_worker_retries=2)
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))
    assert len(result.worker_results) == result.statistics.num_workers


def test_retries_do_not_affect_healthy_queries(driver, dataset, lineitem_table):
    result = driver.execute(q6_plan(dataset.paths), max_worker_retries=3)
    assert result.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)
