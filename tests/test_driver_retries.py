"""Tests for driver-side retries of failed workers."""

import pytest

from repro.errors import WorkerFailedError
from repro.plan.logical import AggregateNode, AggregateSpec, FilterNode, ScanNode
from repro.workload.queries import reference_q6, q6_plan


class FlakyPredicate:
    """A predicate UDF that fails the first ``failures`` times it is called."""

    def __init__(self, failures: int):
        self.remaining_failures = failures

    def __call__(self, row):
        if self.remaining_failures > 0:
            self.remaining_failures -= 1
            raise RuntimeError("transient failure injected by the test")
        return True


def _flaky_plan(dataset, failures: int):
    return AggregateNode(
        child=FilterNode(child=ScanNode(paths=tuple(dataset.paths)), udf=FlakyPredicate(failures)),
        aggregates=(AggregateSpec("count", None, "n"),),
    )


def test_transient_worker_failure_is_retried(driver, dataset, lineitem_table):
    result = driver.execute(_flaky_plan(dataset, failures=1), max_worker_retries=1)
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))


def test_persistent_failure_raises_after_retries(driver, dataset):
    with pytest.raises(WorkerFailedError):
        driver.execute(_flaky_plan(dataset, failures=10_000), max_worker_retries=1)


def test_no_retries_surfaces_first_failure(driver, dataset):
    with pytest.raises(WorkerFailedError):
        driver.execute(_flaky_plan(dataset, failures=1), max_worker_retries=0)


def test_retry_does_not_duplicate_results(driver, dataset, lineitem_table):
    """Retried workers replace their failed attempt; partials are not double-counted."""
    result = driver.execute(_flaky_plan(dataset, failures=2), max_worker_retries=2)
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))
    assert len(result.worker_results) == result.statistics.num_workers


def test_retries_do_not_affect_healthy_queries(driver, dataset, lineitem_table):
    result = driver.execute(q6_plan(dataset.paths), max_worker_retries=3)
    assert result.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)


# ---------------------------------------------------------------------------
# _collect_messages timeout paths
# ---------------------------------------------------------------------------

def test_collect_messages_times_out_on_empty_queue(driver):
    """No worker ever reports: the poll loop gives up with QueryTimeoutError."""
    from repro.errors import QueryTimeoutError

    with pytest.raises(QueryTimeoutError, match="0 of 3"):
        driver._collect_messages("no-such-query", expected=3)


def test_dropped_worker_message_times_out(driver, dataset, monkeypatch):
    """A worker whose result message is lost triggers the timeout path."""
    import json

    from repro.errors import QueryTimeoutError
    from repro.workload.queries import q6_plan

    original = driver.env.sqs.send_message
    dropped = {"count": 0}

    def dropping_send_message(queue, body):
        payload = json.loads(body)
        if (
            queue == driver.result_queue
            and payload.get("worker_id") == 0
            and dropped["count"] == 0
        ):
            dropped["count"] += 1
            return None  # swallow exactly one result message
        return original(queue, body)

    monkeypatch.setattr(driver.env.sqs, "send_message", dropping_send_message)
    with pytest.raises(QueryTimeoutError):
        driver.execute(q6_plan(dataset.paths), max_worker_retries=0)
    assert dropped["count"] == 1


def test_stale_messages_from_other_queries_are_ignored(driver, dataset, lineitem_table):
    """Results of an earlier query id do not satisfy the current collection."""
    from repro.workload.queries import q6_plan, reference_q6

    driver.env.sqs.send_json(
        driver.result_queue,
        {"query_id": "stale-query", "worker_id": 0, "status": "ok", "result": {}},
    )
    result = driver.execute(q6_plan(dataset.paths))
    assert result.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)


# ---------------------------------------------------------------------------
# _retry_failures merging
# ---------------------------------------------------------------------------

def test_retry_failures_reinvokes_only_failed_workers(driver, monkeypatch):
    """_retry_failures re-invokes exactly the failed workers, flat (without
    the tree children), and merges their fresh results over the failures."""
    query_id = "unit-retry-query"
    payloads = [
        {
            "worker_id": worker_id,
            "plan": {"files": [], "columns": []},
            "result_queue": driver.result_queue,
            "query_id": query_id,
            "children": [{"worker_id": 99}] if worker_id == 0 else [],
        }
        for worker_id in range(3)
    ]
    by_worker = {
        0: {"worker_id": 0, "status": "ok", "result": {"partial": {}}},
        1: {"worker_id": 1, "status": "error", "error": "injected"},
        2: {"worker_id": 2, "status": "error", "error": "injected"},
    }
    invoked = []

    def fake_invoke(name, payload, from_driver=False):
        invoked.append(dict(payload))
        driver.env.sqs.send_json(
            driver.result_queue,
            {
                "query_id": query_id,
                "worker_id": payload["worker_id"],
                "status": "ok",
                "result": {"partial": {}, "rows_scanned": 7},
            },
        )

    monkeypatch.setattr(driver.env.lambda_service, "invoke", fake_invoke)
    merged = driver._retry_failures(by_worker, payloads, query_id, max_worker_retries=2)

    assert sorted(payload["worker_id"] for payload in invoked) == [1, 2]
    assert all("children" not in payload for payload in invoked)
    assert all(message["status"] == "ok" for message in merged.values())
    # The healthy worker's original result is untouched; retried workers
    # carry their fresh results.
    assert merged[1]["result"]["rows_scanned"] == 7
    assert merged[0]["result"] == {"partial": {}}


def test_retry_failures_merges_partials_without_double_count(driver, dataset,
                                                             lineitem_table):
    """Retried workers' partials merge with the healthy ones exactly once."""
    result = driver.execute(_flaky_plan(dataset, failures=3), max_worker_retries=3)
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))


def test_recovery_on_the_last_retry_round(driver, dataset, lineitem_table):
    """With W workers failing twice each, two retry rounds recover exactly."""
    workers = len(dataset.paths)
    result = driver.execute(
        _flaky_plan(dataset, failures=2 * workers), max_worker_retries=2
    )
    assert result.column("n")[0] == pytest.approx(len(lineitem_table["l_quantity"]))


def test_retry_budget_exhausted_mid_recovery(driver, dataset):
    """One failure more than the retry budget covers still aborts the query."""
    workers = len(dataset.paths)
    with pytest.raises(WorkerFailedError):
        driver.execute(
            _flaky_plan(dataset, failures=2 * workers + 1), max_worker_retries=2
        )
