"""Tests for the numeric CSV reader/writer."""

import numpy as np
import pytest

from repro.errors import SchemaMismatchError
from repro.formats.csvfmt import read_csv, write_csv
from repro.formats.schema import ColumnType, Schema


def test_roundtrip_with_schema():
    schema = Schema.from_pairs([("a", ColumnType.INT64), ("b", ColumnType.FLOAT64)])
    table = {"a": np.array([1, 2, 3], dtype=np.int64), "b": np.array([0.5, 1.5, 2.5])}
    data = write_csv(table, schema)
    result = read_csv(data, schema)
    np.testing.assert_array_equal(result["a"], table["a"])
    np.testing.assert_allclose(result["b"], table["b"])
    assert result["a"].dtype == np.dtype("int64")


def test_roundtrip_without_schema_reads_floats():
    table = {"x": np.array([1.25, 2.5])}
    result = read_csv(write_csv(table))
    np.testing.assert_allclose(result["x"], table["x"])


def test_header_row_present():
    table = {"alpha": np.array([1], dtype=np.int64)}
    text = write_csv(table).decode("utf-8")
    assert text.splitlines()[0] == "alpha"


def test_empty_input_returns_empty_dict():
    assert read_csv(b"") == {}


def test_unknown_csv_column_raises():
    schema = Schema.from_pairs([("a", ColumnType.INT64)])
    with pytest.raises(SchemaMismatchError):
        read_csv(b"a,b\n1,2\n", schema)


def test_float_precision_preserved():
    table = {"v": np.array([0.1234567890123456])}
    result = read_csv(write_csv(table))
    assert result["v"][0] == pytest.approx(0.1234567890123456, abs=0)


def test_write_validates_against_schema():
    schema = Schema.from_pairs([("a", ColumnType.INT64), ("b", ColumnType.INT64)])
    with pytest.raises(SchemaMismatchError):
        write_csv({"a": np.array([1])}, schema)
