"""Tests for the hash join kernel."""

import numpy as np
import pytest

from repro.engine.join import hash_join
from repro.engine.table import table_num_rows
from repro.errors import UnknownColumnError


def test_inner_join_matches_expected_pairs():
    left = {"k": np.array([1, 2, 3, 4]), "lv": np.array([10.0, 20.0, 30.0, 40.0])}
    right = {"k": np.array([2, 4, 5]), "rv": np.array([200.0, 400.0, 500.0])}
    result = hash_join(left, right, "k", "k")
    order = np.argsort(result["k"])
    np.testing.assert_array_equal(result["k"][order], [2, 4])
    np.testing.assert_array_equal(result["lv"][order], [20.0, 40.0])
    np.testing.assert_array_equal(result["rv"][order], [200.0, 400.0])


def test_join_handles_duplicate_build_keys():
    left = {"k": np.array([1]), "lv": np.array([1.0])}
    right = {"k": np.array([1, 1, 1]), "rv": np.array([1.0, 2.0, 3.0])}
    result = hash_join(left, right, "k", "k")
    assert table_num_rows(result) == 3
    np.testing.assert_array_equal(np.sort(result["rv"]), [1.0, 2.0, 3.0])


def test_join_handles_duplicate_probe_keys():
    left = {"k": np.array([7, 7]), "lv": np.array([1.0, 2.0])}
    right = {"k": np.array([7]), "rv": np.array([70.0])}
    result = hash_join(left, right, "k", "k")
    assert table_num_rows(result) == 2


def test_join_no_matches_returns_empty():
    left = {"k": np.array([1, 2]), "lv": np.array([1.0, 2.0])}
    right = {"k": np.array([3]), "rv": np.array([3.0])}
    result = hash_join(left, right, "k", "k")
    assert table_num_rows(result) == 0


def test_join_empty_inputs_have_all_columns():
    left = {"k": np.zeros(0), "lv": np.zeros(0)}
    right = {"k": np.zeros(0), "rv": np.zeros(0)}
    result = hash_join(left, right, "k", "k")
    assert set(result.keys()) == {"k", "lv", "rv"}


def test_join_different_key_names():
    left = {"a": np.array([1, 2]), "lv": np.array([1.0, 2.0])}
    right = {"b": np.array([2]), "rv": np.array([20.0])}
    result = hash_join(left, right, "a", "b")
    np.testing.assert_array_equal(result["a"], [2])
    assert "b" not in result


def test_join_renames_colliding_columns():
    left = {"k": np.array([1]), "v": np.array([1.0])}
    right = {"k": np.array([1]), "v": np.array([2.0])}
    result = hash_join(left, right, "k", "k")
    np.testing.assert_array_equal(result["v"], [1.0])
    np.testing.assert_array_equal(result["v_right"], [2.0])


def test_join_missing_key_raises():
    with pytest.raises(UnknownColumnError):
        hash_join({"a": np.array([1])}, {"b": np.array([1])}, "x", "b")
    with pytest.raises(UnknownColumnError):
        hash_join({"a": np.array([1])}, {"b": np.array([1])}, "a", "x")


def test_join_matches_numpy_reference():
    rng = np.random.default_rng(5)
    left = {"k": rng.integers(0, 50, 300), "lv": rng.random(300)}
    right = {"k": rng.integers(0, 50, 200), "rv": rng.random(200)}
    result = hash_join(left, right, "k", "k")
    expected = sum(
        int((right["k"] == key).sum()) for key in left["k"]
    )
    assert table_num_rows(result) == expected
