"""Tests for exchange file-naming schemes."""

import pytest

from repro.errors import ExchangeError
from repro.exchange.naming import (
    MultiBucketNaming,
    SingleBucketNaming,
    WriteCombiningNaming,
)


def test_single_bucket_path_contains_sender_and_receiver():
    naming = SingleBucketNaming(bucket="x")
    path = naming.path(3, 7)
    assert path.startswith("s3://x/")
    assert "sender-3" in path
    assert "receiver-7" in path
    assert naming.buckets() == ["x"]


def test_multi_bucket_spreads_by_receiver():
    naming = MultiBucketNaming(num_buckets=10, bucket_prefix="b")
    assert naming.bucket_for(7) == "b7"
    assert naming.bucket_for(17) == "b7"
    assert naming.bucket_for(23) == "b3"
    assert len(naming.buckets()) == 10


def test_multi_bucket_same_receiver_same_bucket_for_all_senders():
    naming = MultiBucketNaming(num_buckets=4)
    paths = {naming.path(sender, 5).split("/")[2] for sender in range(20)}
    assert len(paths) == 1


def test_multi_bucket_rejects_zero_buckets():
    with pytest.raises(ValueError):
        MultiBucketNaming(num_buckets=0)


def test_write_combining_offsets_roundtrip():
    naming = WriteCombiningNaming(bucket="wc", prefix="r0/g1/")
    offsets = [0, 100, 250, 250, 400]
    path = naming.combined_path(6, offsets)
    key = path.split("/", 3)[3]
    sender, parsed = WriteCombiningNaming.parse_offsets(key)
    assert sender == 6
    assert parsed == offsets


def test_write_combining_key_length_limit():
    naming = WriteCombiningNaming(bucket="wc")
    # A few hundred receivers with large offsets overflow the 1 KiB key limit,
    # which is why write combining is limited to multi-level group sizes.
    offsets = list(range(0, 10 ** 9, 10 ** 9 // 200))
    with pytest.raises(ExchangeError):
        naming.combined_key(1, offsets)


def test_write_combining_parse_rejects_garbage():
    with pytest.raises(ExchangeError):
        WriteCombiningNaming.parse_offsets("not-a-combined-key")


def test_write_combining_multi_bucket_by_sender():
    naming = WriteCombiningNaming(bucket="wc", num_buckets=3)
    assert naming.bucket_for(0) == "wc-0"
    assert naming.bucket_for(4) == "wc-1"
    assert len(naming.buckets()) == 3


def test_write_combining_list_prefix_matches_combined_key():
    naming = WriteCombiningNaming(bucket="wc", prefix="r1/g2/")
    key = naming.combined_key(9, [0, 10])
    assert key.startswith(naming.list_prefix(9))
