"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.environment import CloudEnvironment
from repro.driver.driver import LambadaDriver
from repro.workload.tpch import LineitemGenerator, generate_lineitem_dataset


@pytest.fixture
def env() -> CloudEnvironment:
    """A fresh cloud environment (clock, ledger, S3, SQS, DynamoDB, Lambda)."""
    return CloudEnvironment.create(region="eu")


@pytest.fixture
def small_table() -> dict:
    """A tiny in-memory table used by engine-level tests."""
    return {
        "key": np.array([1, 2, 3, 4, 5], dtype=np.int64),
        "value": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
        "flag": np.array([0, 1, 0, 1, 0], dtype=np.int32),
    }


@pytest.fixture(scope="session")
def lineitem_table() -> dict:
    """The generated LINEITEM relation at a tiny scale factor (in memory)."""
    return LineitemGenerator(scale_factor=0.001, seed=7).generate()


@pytest.fixture
def dataset(env):
    """A LINEITEM dataset written into the environment's object store."""
    return generate_lineitem_dataset(
        env.s3, scale_factor=0.001, num_files=4, row_group_rows=512, seed=7
    )


@pytest.fixture
def driver(env) -> LambadaDriver:
    """A driver installed into the environment."""
    return LambadaDriver(env, memory_mib=2048)
