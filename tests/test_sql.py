"""Tests for the mini-SQL frontend."""

import numpy as np
import pytest

from repro.errors import SqlSyntaxError
from repro.frontend.sql import SqlCatalog, date_to_days, parse_sql
from repro.plan.expressions import evaluate
from repro.plan.logical import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    ProjectNode,
    ScanNode,
)
from repro.workload.queries import q1_sql, q6_sql, reference_q1, reference_q6


@pytest.fixture
def catalog():
    return SqlCatalog({"lineitem": ["s3://tpch/lineitem/*.lpq"], "t": ["s3://b/t.lpq"]})


def test_simple_projection(catalog):
    plan = parse_sql("SELECT a, b FROM t", catalog)
    assert isinstance(plan, ProjectNode)
    assert plan.columns == ("a", "b")
    assert isinstance(plan.child, ScanNode)


def test_where_clause_becomes_filter(catalog):
    plan = parse_sql("SELECT a FROM t WHERE a > 5 AND b <= 3", catalog)
    chain = plan.chain()
    assert any(isinstance(node, FilterNode) for node in chain)


def test_aggregates_with_group_by(catalog):
    plan = parse_sql(
        "SELECT g, sum(v) AS total, count(*) AS n FROM t GROUP BY g", catalog
    )
    agg = next(node for node in plan.chain() if isinstance(node, AggregateNode))
    assert agg.group_by == ("g",)
    assert [spec.alias for spec in agg.aggregates] == ["total", "n"]


def test_order_by_and_limit(catalog):
    plan = parse_sql("SELECT a FROM t ORDER BY a DESC LIMIT 5", catalog)
    chain = plan.chain()
    order = next(node for node in chain if isinstance(node, OrderByNode))
    limit = next(node for node in chain if isinstance(node, LimitNode))
    assert order.descending
    assert limit.count == 5


def test_expression_arithmetic_parsed(catalog):
    plan = parse_sql("SELECT sum(a * (1 - b)) AS s FROM t", catalog)
    agg = next(node for node in plan.chain() if isinstance(node, AggregateNode))
    expr = agg.aggregates[0].expression
    table = {"a": np.array([2.0, 4.0]), "b": np.array([0.5, 0.25])}
    np.testing.assert_allclose(evaluate(expr, table), [1.0, 3.0])


def test_between_is_rewritten_as_range(catalog):
    plan = parse_sql("SELECT a FROM t WHERE a BETWEEN 2 AND 4", catalog)
    predicate = next(node for node in plan.chain() if isinstance(node, FilterNode)).predicate
    table = {"a": np.array([1.0, 2.0, 3.0, 4.0, 5.0])}
    np.testing.assert_array_equal(
        evaluate(predicate, table), [False, True, True, True, False]
    )


def test_date_literals_become_day_numbers(catalog):
    plan = parse_sql("SELECT a FROM t WHERE d >= DATE '1994-01-01'", catalog)
    predicate = next(node for node in plan.chain() if isinstance(node, FilterNode)).predicate
    table = {"a": np.zeros(2), "d": np.array([date_to_days(1993, 12, 31), date_to_days(1994, 1, 1)])}
    np.testing.assert_array_equal(evaluate(predicate, table), [False, True])


def test_or_and_not_supported(catalog):
    plan = parse_sql("SELECT a FROM t WHERE a < 1 OR NOT b = 2", catalog)
    predicate = next(node for node in plan.chain() if isinstance(node, FilterNode)).predicate
    table = {"a": np.array([0.0, 5.0, 5.0]), "b": np.array([2.0, 2.0, 3.0])}
    np.testing.assert_array_equal(evaluate(predicate, table), [True, False, True])


def test_case_insensitive_keywords(catalog):
    plan = parse_sql("select a from t where a > 1", catalog)
    assert isinstance(plan, ProjectNode)


def test_unknown_table_raises(catalog):
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELECT a FROM missing", catalog)


def test_syntax_errors_raise(catalog):
    for statement in (
        "SELEC a FROM t",
        "SELECT a t",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t LIMIT x",
        "SELECT a FROM t GROUP BY",
        "SELECT a FROM t trailing garbage !!!",
        "SELECT sum(a FROM t",
    ):
        with pytest.raises(SqlSyntaxError):
            parse_sql(statement, catalog)


def test_non_grouped_plain_column_with_aggregate_rejected(catalog):
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELECT a, sum(b) AS s FROM t", catalog)


def test_group_by_without_aggregate_rejected(catalog):
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELECT a FROM t GROUP BY a", catalog)


def test_catalog_register_and_lookup():
    catalog = SqlCatalog()
    catalog.register("Orders", ["s3://b/orders/*.lpq"])
    assert catalog.paths_of("orders") == ("s3://b/orders/*.lpq",)
    with pytest.raises(SqlSyntaxError):
        catalog.paths_of("lineitem")


def test_q1_sql_parses_and_matches_plan_builder(catalog):
    plan = parse_sql(q1_sql(), catalog)
    agg = next(node for node in plan.chain() if isinstance(node, AggregateNode))
    assert agg.group_by == ("l_returnflag", "l_linestatus")
    assert len(agg.aggregates) == 8


def test_q6_sql_parses(catalog):
    plan = parse_sql(q6_sql(), catalog)
    agg = next(node for node in plan.chain() if isinstance(node, AggregateNode))
    assert agg.aggregates[0].alias == "revenue"


def test_sql_q1_executes_correctly(driver, dataset, lineitem_table):
    catalog = SqlCatalog({"lineitem": dataset.paths})
    result = driver.execute(parse_sql(q1_sql(), catalog))
    expected = reference_q1(lineitem_table)
    np.testing.assert_allclose(result.column("sum_qty"), expected["sum_qty"], rtol=1e-9)
    np.testing.assert_allclose(result.column("avg_disc"), expected["avg_disc"], rtol=1e-9)


def test_sql_q6_executes_correctly(driver, dataset, lineitem_table):
    catalog = SqlCatalog({"lineitem": dataset.paths})
    result = driver.execute(parse_sql(q6_sql(), catalog))
    assert result.column("revenue")[0] == pytest.approx(
        reference_q6(lineitem_table), rel=1e-9
    )


# ---------------------------------------------------------------------------
# JOIN ... ON parsing
# ---------------------------------------------------------------------------

@pytest.fixture
def join_catalog():
    catalog = SqlCatalog()
    catalog.register("lineitem", ["s3://tpch/lineitem/*.lpq"],
                     columns=["l_orderkey", "l_shipdate", "l_extendedprice"])
    catalog.register("orders", ["s3://tpch/orders/*.lpq"],
                     columns=["o_orderkey", "o_orderdate"])
    return catalog


def _join_of(plan):
    node = plan
    while node is not None and not isinstance(node, JoinNode):
        node = node.child
    assert node is not None, "plan contains no JoinNode"
    return node


def test_join_on_parses_into_join_node(join_catalog):
    plan = parse_sql(
        "SELECT count(*) AS n FROM lineitem JOIN orders ON l_orderkey = o_orderkey",
        join_catalog,
    )
    join = _join_of(plan)
    assert join.left_key == "l_orderkey"
    assert join.right_key == "o_orderkey"
    assert join.child.schema_columns == ("l_orderkey", "l_shipdate", "l_extendedprice")
    assert join.right.schema_columns == ("o_orderkey", "o_orderdate")


def test_join_on_qualified_references(join_catalog):
    plan = parse_sql(
        "SELECT count(*) AS n FROM lineitem JOIN orders "
        "ON orders.o_orderkey = lineitem.l_orderkey",
        join_catalog,
    )
    join = _join_of(plan)
    # Qualifiers decide the sides regardless of textual order.
    assert join.left_key == "l_orderkey"
    assert join.right_key == "o_orderkey"


def test_join_keys_resolved_via_catalog_columns(join_catalog):
    plan = parse_sql(
        "SELECT count(*) AS n FROM lineitem JOIN orders ON o_orderkey = l_orderkey",
        join_catalog,
    )
    join = _join_of(plan)
    assert join.left_key == "l_orderkey"
    assert join.right_key == "o_orderkey"


def test_join_where_stays_above_join_for_optimizer_split(join_catalog):
    plan = parse_sql(
        "SELECT count(*) AS n FROM lineitem JOIN orders ON l_orderkey = o_orderkey "
        "WHERE l_shipdate > 9000 AND o_orderdate < 9000",
        join_catalog,
    )
    chain = plan.chain()
    join_index = next(i for i, node in enumerate(chain) if isinstance(node, JoinNode))
    assert isinstance(chain[join_index + 1], FilterNode)

    from repro.plan.optimizer import optimize

    _, report = optimize(plan)
    assert report.left_pushed_predicates == 1
    assert report.right_pushed_predicates == 1
    assert report.residual_predicates == 0


def test_join_condition_same_side_rejected(join_catalog):
    with pytest.raises(SqlSyntaxError):
        parse_sql(
            "SELECT count(*) AS n FROM lineitem JOIN orders "
            "ON lineitem.l_orderkey = lineitem.l_shipdate",
            join_catalog,
        )


def test_join_unknown_qualifier_rejected(join_catalog):
    with pytest.raises(SqlSyntaxError):
        parse_sql(
            "SELECT count(*) AS n FROM lineitem JOIN orders "
            "ON customer.c_custkey = o_orderkey",
            join_catalog,
        )


def test_join_unknown_table_rejected(join_catalog):
    with pytest.raises(SqlSyntaxError):
        parse_sql(
            "SELECT count(*) AS n FROM lineitem JOIN nosuch ON a = b", join_catalog
        )


def test_qualified_columns_in_select_and_where(join_catalog):
    plan = parse_sql(
        "SELECT lineitem.l_orderkey, sum(lineitem.l_extendedprice) AS total "
        "FROM lineitem JOIN orders ON l_orderkey = o_orderkey "
        "WHERE orders.o_orderdate < 9000 "
        "GROUP BY lineitem.l_orderkey",
        join_catalog,
    )
    node = plan
    while not isinstance(node, AggregateNode):
        node = node.child
    assert node.group_by == ("l_orderkey",)
