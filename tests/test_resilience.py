"""Tests of the driver-side resilience primitives and their e2e wiring.

Unit-level: decorrelated jitter, `call_with_backoff`, straggler picking,
`ResilienceStats` accounting, `AttemptLog` → `WorkerFailedError` history.
End-to-end: clean runs report all-zero resilience stats; injected drops are
retried to a correct result; injected stragglers are hedged.
"""

from __future__ import annotations

import random

import pytest

from repro.cloud.faults import FaultPlan, FaultRule
from repro.driver.resilience import (
    DEFAULT_RESILIENCE_POLICY,
    AttemptLog,
    ResiliencePolicy,
    ResilienceStats,
    call_with_backoff,
    decorrelated_jitter,
    pick_stragglers,
)
from repro.errors import SlowDownError, WorkerFailedError
from repro.workload.queries import q1_plan, q6_plan, reference_q6


# -- decorrelated jitter -----------------------------------------------------


def test_jitter_stays_within_base_and_cap():
    rng = random.Random(7)
    sleep = 0.0
    for _ in range(200):
        sleep = decorrelated_jitter(sleep, rng, base_seconds=0.05, cap_seconds=2.0)
        assert 0.05 <= sleep <= 2.0


def test_jitter_clamps_to_cap_for_large_previous():
    rng = random.Random(7)
    sleeps = [
        decorrelated_jitter(100.0, rng, base_seconds=0.05, cap_seconds=2.0)
        for _ in range(50)
    ]
    assert max(sleeps) == 2.0


def test_jitter_grows_from_base():
    """Expected sleep grows round over round (decorrelated exponential)."""
    rng = random.Random(3)
    first_round, fifth_round = [], []
    for _ in range(300):
        sleep = 0.0
        history = []
        for _ in range(5):
            sleep = decorrelated_jitter(sleep, rng, 0.05, 60.0)
            history.append(sleep)
        first_round.append(history[0])
        fifth_round.append(history[4])
    assert sum(fifth_round) / len(fifth_round) > sum(first_round) / len(first_round)


# -- call_with_backoff -------------------------------------------------------


def _fail_n_times(n, exc=SlowDownError):
    state = {"left": n}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise exc("transient")
        return "done"

    return fn


def test_backoff_retries_transient_errors():
    stats = ResilienceStats()
    result = call_with_backoff(_fail_n_times(2), stats=stats)
    assert result == "done"
    assert stats.retries == 2
    assert stats.backoff_seconds > 0.0


def test_backoff_exhausts_attempt_budget():
    policy = ResiliencePolicy(max_attempts=3)
    with pytest.raises(SlowDownError):
        call_with_backoff(_fail_n_times(99), policy=policy)


def test_backoff_does_not_catch_fatal_errors():
    stats = ResilienceStats()
    with pytest.raises(ValueError):
        call_with_backoff(_fail_n_times(1, exc=ValueError), stats=stats)
    assert stats.retries == 0


# -- pick_stragglers ---------------------------------------------------------


def test_small_fleets_never_hedge():
    durations = {0: 0.1, 1: 0.1, 2: 99.0}
    assert pick_stragglers(durations, DEFAULT_RESILIENCE_POLICY) == []


def test_hedging_can_be_disabled():
    durations = {i: 0.1 for i in range(8)}
    durations[7] = 99.0
    policy = ResiliencePolicy(hedge_enabled=False)
    assert pick_stragglers(durations, policy) == []


def test_clear_straggler_is_picked():
    durations = {0: 0.1, 1: 0.1, 2: 0.1, 3: 10.0}
    assert pick_stragglers(durations, DEFAULT_RESILIENCE_POLICY) == [3]


def test_uniform_fleet_has_no_stragglers():
    durations = {i: 0.1 for i in range(8)}
    assert pick_stragglers(durations, DEFAULT_RESILIENCE_POLICY) == []


def test_absolute_floor_suppresses_tiny_hedges():
    """4x the median but under hedge_min_seconds: not worth a hedge."""
    durations = {0: 0.01, 1: 0.01, 2: 0.01, 3: 0.3}
    assert pick_stragglers(durations, DEFAULT_RESILIENCE_POLICY) == []


def test_hedge_budget_caps_fraction_of_fleet():
    durations = {i: 0.1 for i in range(8)}
    durations.update({5: 30.0, 6: 20.0, 7: 40.0})
    picked = pick_stragglers(durations, DEFAULT_RESILIENCE_POLICY)
    # 25% of 8 = 2 hedges, slowest first.
    assert picked == [7, 5]


# -- ResilienceStats ---------------------------------------------------------


def test_fresh_stats_are_clean():
    stats = ResilienceStats()
    assert stats.clean
    stats.retries += 1
    assert not stats.clean


def test_note_fallback_counts_events():
    stats = ResilienceStats()
    stats.note_fallback("combined_to_legacy")
    stats.note_fallback("combined_to_legacy")
    stats.note_fallback("processes_to_serial")
    assert stats.fallbacks == {"combined_to_legacy": 2, "processes_to_serial": 1}
    assert not stats.clean


def test_merge_folds_counters_and_dicts():
    a = ResilienceStats(retries=1, backoff_seconds=0.5, wave_retries=2)
    a.fallbacks["combined_to_legacy"] = 1
    a.faults_injected["s3.slowdown"] = 3
    b = ResilienceStats(retries=2, hedges_launched=1, hedges_won=1)
    b.fallbacks["combined_to_legacy"] = 2
    b.faults_injected["lambda.drop"] = 1
    a.merge(b)
    assert a.retries == 3
    assert a.hedges_launched == 1
    assert a.backoff_seconds == 0.5
    assert a.wave_retries == 2
    assert a.fallbacks == {"combined_to_legacy": 3}
    assert a.faults_injected == {"s3.slowdown": 3, "lambda.drop": 1}


def test_to_dict_is_a_full_snapshot():
    stats = ResilienceStats(retries=2, stale_messages_ignored=1)
    snapshot = stats.to_dict()
    assert snapshot["retries"] == 2
    assert snapshot["stale_messages_ignored"] == 1
    snapshot["fallbacks"]["x"] = 1
    assert stats.fallbacks == {}  # dicts are copies


# -- AttemptLog and WorkerFailedError ----------------------------------------


def test_attempt_log_records_per_worker_history():
    log = AttemptLog()
    log.record(3, attempt=0, error="SlowDownError: throttled")
    log.record(3, attempt=1, error="", backoff_seconds=0.25)
    assert log.for_worker(3) == [
        {"attempt": 0, "error": "SlowDownError: throttled"},
        {"attempt": 1, "error": "", "backoff_seconds": 0.25},
    ]
    assert log.for_worker(99) == []


def test_worker_failed_error_shows_full_history():
    log = AttemptLog()
    log.record(5, attempt=0, error="InvocationDropped")
    log.record(5, attempt=1, error="SlowDownError: throttle", backoff_seconds=0.1)
    error = WorkerFailedError(5, "gave up", attempts=log.for_worker(5))
    text = str(error)
    assert "worker 5 failed" in text
    assert "attempt 0: InvocationDropped" in text
    assert "attempt 1: SlowDownError: throttle (backoff 0.100s)" in text


# -- end-to-end: clean runs stay clean ---------------------------------------


def test_clean_run_reports_zero_resilience_stats(driver, dataset, lineitem_table):
    result = driver.execute(q1_plan(dataset.paths))
    resilience = result.statistics.resilience
    assert resilience.clean
    assert resilience.to_dict()["retries"] == 0
    assert resilience.wasted_cost_dollars == 0.0


# -- end-to-end: injected faults are survived --------------------------------


def test_dropped_invocation_is_retried_to_correct_result(driver, dataset, lineitem_table):
    driver.env.install_fault_plan(
        FaultPlan([FaultRule("lambda", "drop", 1.0, max_count=1)], seed=5)
    )
    try:
        result = driver.execute(q6_plan(dataset.paths), max_worker_retries=2)
    finally:
        driver.env.install_fault_plan(None)
    assert result.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)
    resilience = result.statistics.resilience
    assert resilience.retries >= 1
    assert resilience.faults_injected.get("lambda.drop") == 1
    assert resilience.backoff_seconds > 0.0
    assert resilience.wasted_cost_dollars > 0.0


def test_straggler_is_hedged(driver, dataset, lineitem_table):
    """One worker slowed 400x gets a speculative duplicate invocation."""
    driver.env.install_fault_plan(
        FaultPlan(
            [FaultRule("lambda", "straggler", 1.0, max_count=1, factor=400.0)],
            seed=5,
        )
    )
    try:
        result = driver.execute(q6_plan(dataset.paths))
    finally:
        driver.env.install_fault_plan(None)
    assert result.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)
    resilience = result.statistics.resilience
    assert resilience.faults_injected.get("lambda.straggler") == 1
    assert resilience.hedges_launched >= 1
    assert (
        resilience.hedges_won + resilience.hedges_lost == resilience.hedges_launched
    )


def test_injected_faults_do_not_leak_across_queries(driver, dataset, lineitem_table):
    """The per-query faults_injected delta resets between executions."""
    driver.env.install_fault_plan(
        FaultPlan([FaultRule("lambda", "drop", 1.0, max_count=1)], seed=5)
    )
    try:
        faulted = driver.execute(q6_plan(dataset.paths), max_worker_retries=2)
        clean = driver.execute(q6_plan(dataset.paths), max_worker_retries=2)
    finally:
        driver.env.install_fault_plan(None)
    assert faulted.statistics.resilience.faults_injected == {"lambda.drop": 1}
    assert clean.statistics.resilience.faults_injected == {}
    assert clean.scalar() == pytest.approx(reference_q6(lineitem_table), rel=1e-9)
