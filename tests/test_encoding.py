"""Tests for column encodings, including property-based round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CorruptFileError
from repro.formats.encoding import (
    Encoding,
    choose_encoding,
    decode_column,
    encode_column,
)
from repro.formats.schema import ColumnType


def _roundtrip(values: np.ndarray, ctype: ColumnType, encoding: Encoding) -> np.ndarray:
    encoded = encode_column(values, ctype, encoding)
    return decode_column(encoded, ctype, encoding, len(values))


# -- plain examples ------------------------------------------------------------------

@pytest.mark.parametrize("encoding", list(Encoding))
@pytest.mark.parametrize(
    "ctype,values",
    [
        (ColumnType.INT64, np.array([1, 2, 3, 3, 3, -5], dtype=np.int64)),
        (ColumnType.INT32, np.array([7, 7, 7, 0], dtype=np.int32)),
        (ColumnType.FLOAT64, np.array([0.5, 0.5, 2.25, -1.75])),
    ],
)
def test_roundtrip_examples(encoding, ctype, values):
    decoded = _roundtrip(values, ctype, encoding)
    np.testing.assert_array_equal(decoded, values)
    assert decoded.dtype == ctype.numpy_dtype


@pytest.mark.parametrize("encoding", list(Encoding))
def test_roundtrip_empty(encoding):
    values = np.zeros(0, dtype=np.int64)
    decoded = _roundtrip(values, ColumnType.INT64, encoding)
    assert len(decoded) == 0


def test_rle_compresses_runs():
    values = np.repeat(np.arange(10, dtype=np.int64), 1000)
    plain = encode_column(values, ColumnType.INT64, Encoding.PLAIN)
    rle = encode_column(values, ColumnType.INT64, Encoding.RLE)
    assert len(rle) < len(plain) / 50


def test_dictionary_compresses_low_cardinality():
    values = np.array([3, 1, 3, 1, 3] * 1000, dtype=np.int64)
    plain = encode_column(values, ColumnType.INT64, Encoding.PLAIN)
    dictionary = encode_column(values, ColumnType.INT64, Encoding.DICTIONARY)
    assert len(dictionary) < len(plain)


# -- corruption handling --------------------------------------------------------------

def test_plain_wrong_length_raises():
    with pytest.raises(CorruptFileError):
        decode_column(b"\x00" * 7, ColumnType.INT64, Encoding.PLAIN, 1)


def test_rle_truncated_raises():
    values = np.array([1, 1, 2, 2], dtype=np.int64)
    encoded = encode_column(values, ColumnType.INT64, Encoding.RLE)
    with pytest.raises(CorruptFileError):
        decode_column(encoded[:-2], ColumnType.INT64, Encoding.RLE, 4)


def test_rle_wrong_count_raises():
    values = np.array([1, 1, 2], dtype=np.int64)
    encoded = encode_column(values, ColumnType.INT64, Encoding.RLE)
    with pytest.raises(CorruptFileError):
        decode_column(encoded, ColumnType.INT64, Encoding.RLE, 5)


def test_dictionary_truncated_raises():
    values = np.array([1, 2, 1], dtype=np.int64)
    encoded = encode_column(values, ColumnType.INT64, Encoding.DICTIONARY)
    with pytest.raises(CorruptFileError):
        decode_column(encoded[:-1], ColumnType.INT64, Encoding.DICTIONARY, 3)


def test_too_short_headers_raise():
    with pytest.raises(CorruptFileError):
        decode_column(b"\x01", ColumnType.INT64, Encoding.RLE, 1)
    with pytest.raises(CorruptFileError):
        decode_column(b"\x01", ColumnType.INT64, Encoding.DICTIONARY, 1)


# -- encoding choice heuristic ----------------------------------------------------------

def test_choose_encoding_prefers_dictionary_for_low_cardinality():
    values = np.array([1, 2, 3] * 10_000, dtype=np.int64)
    assert choose_encoding(values) is Encoding.DICTIONARY


def test_choose_encoding_prefers_rle_for_sorted_runs():
    values = np.repeat(np.arange(2000, dtype=np.int64), 50)
    assert choose_encoding(values) in (Encoding.RLE, Encoding.DICTIONARY)


def test_choose_encoding_plain_for_random_floats():
    rng = np.random.default_rng(0)
    values = rng.random(10_000)
    assert choose_encoding(values) is Encoding.PLAIN


def test_choose_encoding_empty_is_plain():
    assert choose_encoding(np.zeros(0)) is Encoding.PLAIN


# -- property-based round trips ----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-(2 ** 62), max_value=2 ** 62), max_size=300),
    encoding=st.sampled_from(list(Encoding)),
)
def test_int64_roundtrip_property(values, encoding):
    array = np.array(values, dtype=np.int64)
    decoded = _roundtrip(array, ColumnType.INT64, encoding)
    np.testing.assert_array_equal(decoded, array)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=64), max_size=300
    ),
    encoding=st.sampled_from([Encoding.PLAIN, Encoding.RLE, Encoding.DICTIONARY]),
)
def test_float64_roundtrip_property(values, encoding):
    array = np.array(values, dtype=np.float64)
    decoded = _roundtrip(array, ColumnType.FLOAT64, encoding)
    np.testing.assert_array_equal(decoded, array)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=500),
)
def test_chosen_encoding_always_roundtrips(values):
    array = np.array(values, dtype=np.int32)
    encoding = choose_encoding(array)
    decoded = _roundtrip(array, ColumnType.INT32, encoding)
    np.testing.assert_array_equal(decoded, array)
