"""Tier-1 guard for the committed benchmark baselines.

Runs ``scripts/check_bench_regression.py`` as a pytest so a stale, malformed,
or floor-violating committed trajectory (``BENCH_hot_paths.json`` or
``BENCH_tpch.json`` — the checker merges both, exactly as its CLI default
does) fails the ordinary test suite instead of only a manually-invoked CI
script.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_hot_paths.json"
TPCH_BASELINE_PATH = REPO_ROOT / "BENCH_tpch.json"
CHECKER_PATH = REPO_ROOT / "scripts" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("check_bench_regression", CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def baseline():
    with BASELINE_PATH.open(encoding="utf-8") as handle:
        document = json.load(handle)
    with TPCH_BASELINE_PATH.open(encoding="utf-8") as handle:
        document["results"].update(json.load(handle)["results"])
    return document


def test_baseline_file_is_valid_trajectory(baseline):
    assert isinstance(baseline.get("results"), dict)
    assert baseline["results"], "committed baseline has no measurements"


def test_baseline_has_all_guarded_sections(checker, baseline):
    results = baseline["results"]
    for section, field in checker.ABSOLUTE_FLOORS:
        assert section in results, f"baseline is missing the {section!r} section"
        assert field in results[section], (
            f"baseline section {section!r} is missing the {field!r} field"
        )


def test_baseline_sections_record_their_scale(baseline):
    """Every floor-guarded section must say what it measured."""
    results = baseline["results"]
    for section in (
        "payload_roundtrip",
        "partition_scatter",
        "join_probe",
        "shuffle_codec",
        "encoded_eval",
        "scan_filter",
    ):
        assert results[section]["num_rows"] >= 1_000_000
    assert results["exchange_route"]["num_targets"] >= 1_000_000


def test_baseline_scan_filter_matches_acceptance_shape(baseline):
    """The scan-filter section must record a Q6-style selective scan."""
    scan_filter = baseline["results"]["scan_filter"]
    assert 0.0 < scan_filter["selectivity"] <= 0.05
    assert scan_filter["row_groups_shortcircuited"] > 0
    assert scan_filter["late_get_requests"] <= scan_filter["baseline_get_requests"]


def test_baseline_shuffle_requests_matches_acceptance_shape(baseline):
    """The shuffle-request section must record the O(P²)→O(P) collapse."""
    shuffle = baseline["results"]["shuffle_requests"]
    assert shuffle["num_rows"] >= 1_000_000
    assert shuffle["num_workers"] >= 32
    assert shuffle["legacy_put_requests"] == shuffle["num_workers"] ** 2
    assert shuffle["combined_put_requests"] == shuffle["num_workers"]
    assert (
        shuffle["combined_ranged_get_requests"]
        == shuffle["num_workers"] ** 2 - shuffle["empty_slices_elided"]
    )
    assert shuffle["bytes_touched"] >= shuffle["bytes_shipped"]


def test_baseline_passes_request_ceilings(checker, baseline):
    results = baseline["results"]
    for (section, field), ceiling in checker.ABSOLUTE_REQUEST_CEILINGS.items():
        assert results[section][field] <= ceiling


def test_checker_flags_request_ceiling_violation(checker, baseline, tmp_path):
    doctored = json.loads(json.dumps(baseline))
    # A silent fallback to the O(P²) path: one PUT per mapper×reducer pair.
    doctored["results"]["shuffle_requests"]["combined_put_requests"] = 1024
    doctored["results"]["shuffle_requests"]["put_collapse"] = 32.0
    fallback = tmp_path / "fallback.json"
    fallback.write_text(json.dumps(doctored), encoding="utf-8")
    assert checker.check(fallback, None, tolerance=0.6) != 0


def test_baseline_passes_ratio_ceilings(checker, baseline):
    results = baseline["results"]
    for (section, field), ceiling in checker.ABSOLUTE_RATIO_CEILINGS.items():
        assert results[section][field] <= ceiling


def test_checker_flags_ratio_ceiling_violation(checker, baseline, tmp_path):
    # Fault hooks taxing the fault-free path by 50% must fail the guard.
    doctored = json.loads(json.dumps(baseline))
    doctored["results"]["end_to_end_q1"]["faultfree_overhead_ratio"] = 1.5
    taxed = tmp_path / "taxed.json"
    taxed.write_text(json.dumps(doctored), encoding="utf-8")
    assert checker.check(taxed, None, tolerance=0.6) != 0


def test_baseline_passes_absolute_floors(checker):
    assert (
        checker.check([BASELINE_PATH, TPCH_BASELINE_PATH], None, tolerance=0.6)
        == 0
    )


def test_checker_rejects_malformed_trajectory(checker, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{\"not_results\": 1}", encoding="utf-8")
    with pytest.raises(SystemExit):
        checker.check(bad, None, tolerance=0.6)


def test_checker_flags_floor_violation(checker, baseline, tmp_path):
    doctored = json.loads(json.dumps(baseline))
    doctored["results"]["join_probe"]["speedup"] = 1.0
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps(doctored), encoding="utf-8")
    assert checker.check(slow, None, tolerance=0.6) != 0


def test_checker_flags_relative_regression(checker, baseline, tmp_path):
    doctored = json.loads(json.dumps(baseline))
    # Above every absolute floor but far below the committed baseline.
    doctored["results"]["partition_scatter"]["speedup"] = 5.01
    current = tmp_path / "current.json"
    current.write_text(json.dumps(doctored), encoding="utf-8")
    assert checker.check(BASELINE_PATH, current, tolerance=0.9) != 0


def test_baseline_has_conditional_floor_inputs(checker, baseline):
    """Each conditional floor needs its gate field recorded in the baseline."""
    results = baseline["results"]
    for (section, field), spec in checker.CONDITIONAL_FLOORS.items():
        gate_field, _ = spec["requires"]
        assert section in results
        assert field in results[section]
        assert gate_field in results[section]


def _doctored(baseline, tmp_path, **end_to_end_fields):
    doctored = json.loads(json.dumps(baseline))
    doctored["results"]["end_to_end_q1"].update(end_to_end_fields)
    path = tmp_path / "doctored.json"
    path.write_text(json.dumps(doctored), encoding="utf-8")
    return path


def test_conditional_floor_skipped_with_notice_on_small_host(
    checker, baseline, tmp_path, capsys
):
    # Hardware precondition unmet: not a pass, an explicit skip notice.
    path = _doctored(baseline, tmp_path, cpu_count=1, wall_speedup=0.5)
    assert checker.check(path, None, tolerance=0.6) == 0
    out = capsys.readouterr().out
    assert "skipped" in out
    assert "wall_speedup" in out


def test_conditional_floor_enforced_on_capable_host(checker, baseline, tmp_path):
    path = _doctored(baseline, tmp_path, cpu_count=8, wall_speedup=1.2)
    assert checker.check(path, None, tolerance=0.6) != 0


def test_conditional_floor_passes_on_capable_host(checker, baseline, tmp_path):
    path = _doctored(baseline, tmp_path, cpu_count=8, wall_speedup=2.4)
    assert checker.check(path, None, tolerance=0.6) == 0


def test_conditional_floor_requires_gate_field(checker, baseline, tmp_path):
    doctored = json.loads(json.dumps(baseline))
    doctored["results"]["end_to_end_q1"].pop("cpu_count", None)
    path = tmp_path / "no_gate.json"
    path.write_text(json.dumps(doctored), encoding="utf-8")
    assert checker.check(path, None, tolerance=0.6) != 0


def test_sections_flag_scopes_the_checks(checker, baseline, tmp_path):
    doctored = json.loads(json.dumps(baseline))
    doctored["results"]["join_probe"]["speedup"] = 1.0  # out-of-scope violation
    path = tmp_path / "scoped.json"
    path.write_text(json.dumps(doctored), encoding="utf-8")
    assert checker.check(path, None, tolerance=0.6, sections=["end_to_end_q1"]) == 0
    assert checker.check(path, None, tolerance=0.6, sections=["join_probe"]) != 0