"""Parity tests: old-vs-new hot-path implementations must agree.

The PR's acceptance criteria require the vectorized data plane to be
*semantically byte-identical* to the seed implementation: the single-pass
partition scatter must produce the same partitions as the mask-per-partition
loop, and the binary payload codec must round-trip the same tables as the
JSON ``.tolist()`` form — across empty, single-row, high-cardinality, and
negative/NaN-containing tables.
"""

import json

import numpy as np
import pytest

from repro.engine.payload import decode_table, encode_table
from repro.engine.table import (
    table_from_payload,
    table_num_rows,
    table_to_payload,
    tables_allclose,
)
from repro.exchange.partition import (
    hash_partition,
    hash_partition_masked,
    partition_scatter,
    slice_partition,
)


def _case_tables():
    rng = np.random.default_rng(42)
    high_cardinality = {
        "k": rng.integers(-(2 ** 60), 2 ** 60, 5000, dtype=np.int64),
        "v": rng.random(5000),
    }
    negatives_and_nans = {
        "k": np.array([-5, -5, 0, 3, -(2 ** 40), 3, -5, 0], dtype=np.int64),
        "x": np.array([np.nan, -1.5, 0.0, np.nan, np.inf, -0.0, 2.5, -np.inf]),
    }
    return {
        "empty": {"k": np.zeros(0, dtype=np.int64), "v": np.zeros(0)},
        "single_row": {"k": np.array([7], dtype=np.int64), "v": np.array([1.25])},
        "high_cardinality": high_cardinality,
        "negatives_and_nans": negatives_and_nans,
        "duplicate_heavy": {"k": np.repeat(np.arange(4, dtype=np.int64), 250)},
    }


@pytest.fixture(params=list(_case_tables()))
def case_table(request):
    return _case_tables()[request.param]


@pytest.mark.parametrize("num_partitions", [1, 3, 16])
def test_scatter_matches_mask_loop(case_table, num_partitions):
    new = hash_partition(case_table, ["k"], num_partitions)
    old = hash_partition_masked(case_table, ["k"], num_partitions)
    assert set(new) == set(old)
    for partition in old:
        assert tables_allclose(new[partition], old[partition])
        # Row order within a partition must match exactly too (stable scatter).
        for name in old[partition]:
            np.testing.assert_array_equal(
                new[partition][name], old[partition][name]
            )


def test_scatter_slices_cover_table_in_partition_order():
    table = _case_tables()["high_cardinality"]
    num_partitions = 8
    reordered, boundaries = partition_scatter(table, ["k"], num_partitions)
    assert boundaries[0] == 0
    assert boundaries[-1] == table_num_rows(table)
    pieces = [
        slice_partition(reordered, boundaries, p) for p in range(num_partitions)
    ]
    recovered = np.concatenate([piece["k"] for piece in pieces])
    np.testing.assert_array_equal(np.sort(recovered), np.sort(table["k"]))


def test_payload_roundtrip_matches_json_roundtrip(case_table):
    through_json = table_from_payload(
        json.loads(json.dumps(table_to_payload(case_table)))
    )
    through_binary = decode_table(
        json.loads(json.dumps(encode_table(case_table, force_binary=True)))
    )
    assert tables_allclose(through_json, through_binary)


def test_payload_roundtrip_matches_original(case_table):
    restored = decode_table(
        json.loads(json.dumps(encode_table(case_table, force_binary=True)))
    )
    assert tables_allclose(restored, case_table)


def test_tables_allclose_handles_nan_columns():
    table = _case_tables()["negatives_and_nans"]
    assert tables_allclose(table, {name: col.copy() for name, col in table.items()})
