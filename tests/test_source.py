"""Tests for random-access byte sources."""

import pytest

from repro.formats.source import BytesSource, LocalFileSource


def test_bytes_source_size_and_read():
    source = BytesSource(b"0123456789")
    assert source.size() == 10
    assert source.read_at(2, 3) == b"234"


def test_bytes_source_read_past_end_clamped():
    source = BytesSource(b"0123")
    assert source.read_at(2, 100) == b"23"
    assert source.read_at(10, 5) == b""


def test_bytes_source_read_all():
    assert BytesSource(b"abc").read_all() == b"abc"


def test_bytes_source_rejects_negative():
    source = BytesSource(b"abc")
    with pytest.raises(ValueError):
        source.read_at(-1, 2)
    with pytest.raises(ValueError):
        source.read_at(0, -2)


def test_local_file_source(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(b"hello world")
    source = LocalFileSource(str(path))
    assert source.size() == 11
    assert source.read_at(6, 5) == b"world"
    assert source.read_all() == b"hello world"


def test_local_file_source_rejects_negative(tmp_path):
    path = tmp_path / "data.bin"
    path.write_bytes(b"abc")
    source = LocalFileSource(str(path))
    with pytest.raises(ValueError):
        source.read_at(-1, 1)
