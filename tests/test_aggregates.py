"""Tests for partial/merge/finalize aggregation, checked against NumPy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.aggregates import finalize_aggregates, merge_partials, partial_aggregate
from repro.engine.table import table_num_rows
from repro.errors import ExecutionError
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec


@pytest.fixture
def grouped_table():
    return {
        "g": np.array([0, 1, 0, 1, 2], dtype=np.int64),
        "v": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
    }


def test_scalar_sum(grouped_table):
    result = partial_aggregate(grouped_table, [], [AggregateSpec("sum", col("v"), "s")])
    assert result["s"][0] == pytest.approx(15.0)
    assert table_num_rows(result) == 1


def test_grouped_sum_and_count(grouped_table):
    result = partial_aggregate(
        grouped_table,
        ["g"],
        [AggregateSpec("sum", col("v"), "s"), AggregateSpec("count", None, "n")],
    )
    order = np.argsort(result["g"])
    np.testing.assert_array_equal(result["g"][order], [0, 1, 2])
    np.testing.assert_allclose(result["s"][order], [4.0, 6.0, 5.0])
    np.testing.assert_allclose(result["n"][order], [2, 2, 1])


def test_min_max(grouped_table):
    result = partial_aggregate(
        grouped_table,
        ["g"],
        [AggregateSpec("min", col("v"), "lo"), AggregateSpec("max", col("v"), "hi")],
    )
    order = np.argsort(result["g"])
    np.testing.assert_allclose(result["lo"][order], [1.0, 2.0, 5.0])
    np.testing.assert_allclose(result["hi"][order], [3.0, 4.0, 5.0])


def test_aggregate_over_expression(grouped_table):
    result = partial_aggregate(
        grouped_table, [], [AggregateSpec("sum", col("v") * 2, "s")]
    )
    assert result["s"][0] == pytest.approx(30.0)


def test_empty_input_produces_empty_result():
    result = partial_aggregate({}, ["g"], [AggregateSpec("sum", col("v"), "s")])
    assert table_num_rows(result) == 0
    assert set(result.keys()) == {"g", "s"}


def test_multiple_group_keys():
    table = {
        "a": np.array([0, 0, 1, 1]),
        "b": np.array([0, 1, 0, 1]),
        "v": np.array([1.0, 2.0, 3.0, 4.0]),
    }
    result = partial_aggregate(table, ["a", "b"], [AggregateSpec("sum", col("v"), "s")])
    assert table_num_rows(result) == 4


def test_merge_partials_sums_and_mins(grouped_table):
    specs = [
        AggregateSpec("sum", col("v"), "s"),
        AggregateSpec("count", None, "n"),
        AggregateSpec("min", col("v"), "lo"),
    ]
    part = partial_aggregate(grouped_table, ["g"], specs)
    merged = merge_partials([part, part], ["g"], specs)
    order = np.argsort(merged["g"])
    np.testing.assert_allclose(merged["s"][order], [8.0, 12.0, 10.0])
    np.testing.assert_allclose(merged["n"][order], [4, 4, 2])
    np.testing.assert_allclose(merged["lo"][order], [1.0, 2.0, 5.0])


def test_merge_with_empty_partials(grouped_table):
    specs = [AggregateSpec("sum", col("v"), "s")]
    part = partial_aggregate(grouped_table, ["g"], specs)
    empty = partial_aggregate({}, ["g"], specs)
    merged = merge_partials([empty, part, empty], ["g"], specs)
    assert table_num_rows(merged) == 3


def test_merge_all_empty():
    specs = [AggregateSpec("sum", col("v"), "s")]
    merged = merge_partials([], ["g"], specs)
    assert table_num_rows(merged) == 0


def test_finalize_avg():
    merged = {
        "g": np.array([0, 1]),
        "__m_sum": np.array([10.0, 6.0]),
        "__m_count": np.array([2.0, 3.0]),
    }
    result = finalize_aggregates(merged, ["g"], [AggregateSpec("avg", col("v"), "m")])
    np.testing.assert_allclose(result["m"], [5.0, 2.0])


def test_finalize_avg_missing_partials_raises():
    with pytest.raises(ExecutionError):
        finalize_aggregates({"g": np.array([0])}, ["g"], [AggregateSpec("avg", col("v"), "m")])


def test_finalize_passthrough_missing_column_raises():
    with pytest.raises(ExecutionError):
        finalize_aggregates({"g": np.array([0])}, ["g"], [AggregateSpec("sum", col("v"), "s")])


def test_finalize_preserves_group_columns():
    merged = {"g": np.array([7, 8]), "s": np.array([1.0, 2.0])}
    result = finalize_aggregates(merged, ["g"], [AggregateSpec("sum", col("v"), "s")])
    np.testing.assert_array_equal(result["g"], [7, 8])


# -- property-based: distributed aggregation equals single-node aggregation -----------

@settings(max_examples=50, deadline=None)
@given(
    groups=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=200),
    num_splits=st.integers(min_value=1, max_value=5),
)
def test_partial_merge_equals_global_sum(groups, num_splits):
    """Splitting the data over workers never changes the aggregate result."""
    rng = np.random.default_rng(42)
    values = rng.random(len(groups))
    table = {"g": np.array(groups, dtype=np.int64), "v": values}
    specs = [
        AggregateSpec("sum", col("v"), "s"),
        AggregateSpec("count", None, "n"),
        AggregateSpec("min", col("v"), "lo"),
        AggregateSpec("max", col("v"), "hi"),
    ]
    # Global (single-node) aggregation.
    expected = partial_aggregate(table, ["g"], specs)
    # Distributed: split into chunks, partial per chunk, merge.
    boundaries = np.linspace(0, len(groups), num_splits + 1, dtype=int)
    partials = [
        partial_aggregate(
            {name: column[start:end] for name, column in table.items()}, ["g"], specs
        )
        for start, end in zip(boundaries[:-1], boundaries[1:])
    ]
    merged = merge_partials(partials, ["g"], specs)
    expected_order = np.argsort(expected["g"])
    merged_order = np.argsort(merged["g"])
    for alias in ("s", "n", "lo", "hi"):
        np.testing.assert_allclose(
            merged[alias][merged_order], expected[alias][expected_order], rtol=1e-9
        )


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
def test_avg_finalisation_matches_numpy(values):
    table = {"v": np.array(values)}
    partial = partial_aggregate(
        table,
        [],
        [
            AggregateSpec("sum", col("v"), "__m_sum"),
            AggregateSpec("count", col("v"), "__m_count"),
        ],
    )
    result = finalize_aggregates(partial, [], [AggregateSpec("avg", col("v"), "m")])
    assert result["m"][0] == pytest.approx(float(np.mean(values)), rel=1e-9)
