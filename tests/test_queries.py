"""Tests for the TPC-H query definitions and reference implementations."""

import numpy as np

from repro.plan.optimizer import optimize
from repro.workload.queries import (
    Q1_SHIPDATE_CUTOFF_DAYS,
    Q6_SHIPDATE_LOWER_DAYS,
    Q6_SHIPDATE_UPPER_DAYS,
    q1_plan,
    q1_sql,
    q6_plan,
    q6_sql,
    reference_q1,
    reference_q6,
)


def test_date_constants_are_consistent():
    # 1998-12-01 minus 90 days is in September 1998.
    assert Q1_SHIPDATE_CUTOFF_DAYS == 10561 - 90
    assert Q6_SHIPDATE_UPPER_DAYS - Q6_SHIPDATE_LOWER_DAYS == 365


def test_q1_selectivity_is_high(lineitem_table):
    mask = lineitem_table["l_shipdate"] <= Q1_SHIPDATE_CUTOFF_DAYS
    assert mask.mean() > 0.9


def test_q6_selectivity_is_low(lineitem_table):
    mask = (
        (lineitem_table["l_shipdate"] >= Q6_SHIPDATE_LOWER_DAYS)
        & (lineitem_table["l_shipdate"] < Q6_SHIPDATE_UPPER_DAYS)
        & (lineitem_table["l_discount"] >= 0.05)
        & (lineitem_table["l_discount"] <= 0.07)
        & (lineitem_table["l_quantity"] < 24)
    )
    assert 0.001 < mask.mean() < 0.05


def test_reference_q1_group_count(lineitem_table):
    result = reference_q1(lineitem_table)
    # Three (returnflag, linestatus) combinations survive the date filter:
    # (A,F), (R,F), and N rows are mostly after the cutoff but some (N,O) remain.
    assert 2 <= len(result["sum_qty"]) <= 4
    assert np.all(result["count_order"] > 0)


def test_reference_q1_internal_consistency(lineitem_table):
    result = reference_q1(lineitem_table)
    np.testing.assert_allclose(
        result["avg_qty"], result["sum_qty"] / result["count_order"], rtol=1e-12
    )
    # Discounted price is never above the base price (discounts are >= 0).
    assert np.all(result["sum_disc_price"] <= result["sum_base_price"] + 1e-9)
    # Charges include tax, so they are at least the discounted price.
    assert np.all(result["sum_charge"] >= result["sum_disc_price"])


def test_reference_q6_nonzero(lineitem_table):
    assert reference_q6(lineitem_table) > 0


def test_q1_plan_structure():
    physical, _ = optimize(q1_plan(["s3://b/f.lpq"]))
    assert physical.driver.group_by == ["l_returnflag", "l_linestatus"]
    assert len(physical.driver.final_aggregates) == 8
    assert physical.driver.order_by == ["l_returnflag", "l_linestatus"]


def test_q6_plan_structure():
    physical, _ = optimize(q6_plan(["s3://b/f.lpq"]))
    assert physical.driver.group_by == []
    assert [spec.alias for spec in physical.driver.final_aggregates] == ["revenue"]


def test_sql_strings_mention_all_predicates():
    assert "l_shipdate" in q1_sql()
    assert "BETWEEN" in q6_sql()
    assert "l_quantity" in q6_sql()
    assert "lineitem" in q1_sql()
    assert q1_sql("other_table").count("other_table") == 1
