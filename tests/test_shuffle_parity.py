"""Parity fuzz tests for the shuffle I/O plane.

The shuffle-aggregate result must be *bit-for-bit* identical whether the map
wave writes write-combined objects (the O(P)-request default), legacy
one-object-per-receiver objects (the parity baseline), or a mix of both —
and identical to the driver-merge reference (per-mapper partial aggregates
merged and finalised centrally).  The fuzz sweep covers random tables across
dtypes, NaN group keys, string keys, and group counts small enough that most
mapper×reducer partitions are empty.
"""

import numpy as np
import pytest

from repro.driver.shuffle import ShuffleAggregateCoordinator, ShuffleConfig
from repro.engine.aggregates import finalize_aggregates, merge_partials, partial_aggregate
from repro.engine.table import sort_table
from repro.formats.compression import Compression
from repro.formats.parquet import write_table
from repro.plan.expressions import col
from repro.plan.logical import AggregateSpec
from repro.plan.optimizer import _decompose_aggregates


class _MixedCoordinator(ShuffleAggregateCoordinator):
    def _map_mode(self, worker_id: int) -> bool:
        return worker_id % 2 == 0


def _random_table(rng: np.random.Generator, num_rows: int, num_groups: int, nan_keys: bool):
    key = rng.integers(0, num_groups, num_rows).astype(np.int64)
    fkey = np.round(rng.integers(0, max(num_groups // 2, 1), num_rows) * 0.5, 1)
    if nan_keys:
        fkey[rng.random(num_rows) < 0.1] = np.nan
    return {
        "key": key,
        "fkey": fkey,
        # The LPQ format is numeric-only (the paper modifies dbgen likewise),
        # so the low-cardinality flag is an int32 code like l_returnflag.
        "flag": rng.integers(0, 3, num_rows).astype(np.int32),
        "value": rng.normal(0.0, 100.0, num_rows),
        "qty": rng.integers(1, 50, num_rows).astype(np.int64),
    }


def _write_dataset(env, rng: np.random.Generator, num_files: int, nan_keys: bool):
    """Random LPQ files, one row group each (so map-wave chunking is fixed)."""
    env.s3.ensure_bucket("fuzz")
    paths, tables = [], []
    for index in range(num_files):
        num_rows = int(rng.integers(5, 120))
        num_groups = int(rng.integers(2, 25))
        table = _random_table(rng, num_rows, num_groups, nan_keys)
        data = write_table(table, row_group_rows=4096, compression=Compression.FAST)
        key = f"fuzz-{index}.lpq"
        env.s3.put_object("fuzz", key, data)
        paths.append(f"s3://fuzz/{key}")
        tables.append(table)
    return paths, tables


def _driver_merge_reference(tables, group_by, aggregates):
    """The driver-merge path: per-mapper partials, merged and finalised
    centrally, with one mapper per file in mapper order."""
    partial_specs, final_specs = _decompose_aggregates(list(aggregates))
    mapper_partials = [
        merge_partials(
            [partial_aggregate(table, group_by, partial_specs)], group_by, partial_specs
        )
        for table in tables
    ]
    merged = merge_partials(mapper_partials, group_by, partial_specs)
    result = finalize_aggregates(merged, list(group_by), list(final_specs))
    return sort_table(result, list(group_by))


def _assert_tables_identical(actual, expected, context, strict_dtypes=True):
    """Bit-for-bit column equality.

    ``strict_dtypes=False`` widens integer columns to int64 first: the result
    *transport* (JSON payload for tiny tables) widens small ints identically
    on every execution path, so value equality is the meaningful check when
    comparing against an in-memory reference that never travelled.
    """
    assert list(actual.keys()) == list(expected.keys()), context
    for name in expected:
        left, right = np.asarray(actual[name]), np.asarray(expected[name])
        if not strict_dtypes:
            if left.dtype.kind in "iu":
                left = left.astype(np.int64)
            if right.dtype.kind in "iu":
                right = right.astype(np.int64)
        assert left.dtype == right.dtype, f"{context}: dtype of {name!r}"
        np.testing.assert_array_equal(left, right, err_msg=f"{context}: column {name!r}")


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_shuffle_parity_fuzz(env, seed):
    rng = np.random.default_rng(seed)
    num_files = int(rng.integers(3, 9))
    nan_keys = bool(rng.integers(0, 2))
    paths, tables = _write_dataset(env, rng, num_files, nan_keys)

    key_choices = [["key"], ["fkey"], ["flag"], ["key", "flag"], ["fkey", "flag"]]
    group_by = key_choices[int(rng.integers(0, len(key_choices)))]
    aggregates = [
        AggregateSpec("sum", col("value"), "total"),
        AggregateSpec("count", None, "n"),
        AggregateSpec("min", col("qty"), "lo"),
        AggregateSpec("max", col("qty"), "hi"),
        AggregateSpec("avg", col("value"), "mean"),
    ]
    reference = _driver_merge_reference(tables, group_by, aggregates)

    coordinators = {
        "combined": ShuffleAggregateCoordinator(env, num_buckets=4),
        "legacy": ShuffleAggregateCoordinator(
            env, num_buckets=4, config=ShuffleConfig(write_combining=False)
        ),
        "mixed": _MixedCoordinator(env, num_buckets=4),
    }
    results = {}
    for mode, coordinator in coordinators.items():
        result, statistics = coordinator.execute(
            paths, group_by=group_by, aggregates=aggregates, order_by=group_by
        )
        results[mode] = result
        _assert_tables_identical(
            result, reference, f"seed {seed}, mode {mode}", strict_dtypes=False
        )
        assert statistics.map_workers == num_files
        if mode == "combined":
            assert statistics.exchange.put_requests == num_files
            assert statistics.exchange.combined_put_requests == num_files
    # The three formats must agree bit-for-bit including dtypes.
    _assert_tables_identical(results["legacy"], results["combined"], f"seed {seed}")
    _assert_tables_identical(results["mixed"], results["combined"], f"seed {seed}")


def test_shuffle_parity_legacy_lpq_codec(env):
    """The legacy baseline with the LPQ file codec still matches exactly."""
    rng = np.random.default_rng(99)
    paths, tables = _write_dataset(env, rng, 4, nan_keys=True)
    group_by = ["key"]
    aggregates = [
        AggregateSpec("sum", col("value"), "total"),
        AggregateSpec("count", None, "n"),
    ]
    reference = _driver_merge_reference(tables, group_by, aggregates)
    coordinator = ShuffleAggregateCoordinator(
        env,
        num_buckets=4,
        config=ShuffleConfig(write_combining=False, fast_codec=False),
    )
    result, statistics = coordinator.execute(
        paths, group_by=group_by, aggregates=aggregates, order_by=group_by
    )
    _assert_tables_identical(result, reference, "legacy LPQ codec", strict_dtypes=False)
    assert statistics.exchange.combined_put_requests == 0
