"""Stable public facade: ``repro.connect(env)`` -> :class:`Session`.

The facade is the one entry point applications are expected to build on:

>>> import repro
>>> session = repro.connect()                       # fresh simulated cloud
>>> session.register(dataset)                       # a generated DatasetInfo
>>> result = session.sql("SELECT count(*) AS n FROM lineitem")
>>> result.rows
[{'n': 6005}]
>>> print(result.explain())                         # join order + wave plan
>>> result.statistics.cost_total                    # modelled dollars

Everything else — the dataflow DSL, the driver, the optimizer — stays
importable, but only this module promises a stable surface: ``connect``,
``Session.register``/``register_table``, ``Session.sql`` returning a
:class:`~repro.driver.driver.QueryResult` with ``rows``, ``statistics`` and
``explain()``, and ``Session.dataflow`` for the Listing-1 interface.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.cloud.environment import CloudEnvironment
from repro.driver.driver import LambadaDriver, QueryResult
from repro.frontend.dataframe import DataFlow, from_files
from repro.frontend.sql import SqlCatalog, parse_sql

__all__ = ["Session", "connect"]


class Session:
    """A connection to a (simulated) serverless cloud: driver + table catalog.

    Queries are issued as SQL text against tables previously registered with
    :meth:`register` / :meth:`register_table`; N-way joins lower to the
    multi-wave shuffle-DAG schedule automatically.
    """

    def __init__(self, driver: LambadaDriver, catalog: Optional[SqlCatalog] = None):
        self.driver = driver
        self.catalog = catalog if catalog is not None else SqlCatalog()

    # -- catalog -----------------------------------------------------------------

    @property
    def env(self) -> CloudEnvironment:
        """The cloud environment this session runs against."""
        return self.driver.env

    def register(self, dataset) -> "Session":
        """Register a generated dataset (anything with name/paths/schema)."""
        self.catalog.register_dataset(dataset)
        return self

    def register_table(
        self,
        name: str,
        paths: Union[str, Sequence[str]],
        columns: Optional[Sequence[str]] = None,
    ) -> "Session":
        """Register a table by name and file paths (optionally with columns)."""
        if isinstance(paths, str):
            paths = (paths,)
        self.catalog.register(name, paths, columns=columns)
        return self

    def tables(self) -> Sequence[str]:
        """Names of the registered tables."""
        return sorted(self.catalog.tables)

    # -- querying ----------------------------------------------------------------

    def sql(self, text: str, **execute_kwargs) -> QueryResult:
        """Parse, plan, and execute a SQL statement.

        The returned :class:`~repro.driver.driver.QueryResult` carries the
        result (``rows`` / ``table`` / ``column``), the modelled
        ``statistics``, and ``explain()`` — the optimizer's join order and
        the wave-by-wave physical schedule that actually ran.  Keyword
        arguments (``num_workers``, ``cold``, ``deadline_seconds``, ...)
        pass through to :meth:`LambadaDriver.execute`.
        """
        plan = parse_sql(text, self.catalog)
        return self.driver.execute(plan, **execute_kwargs)

    def explain(self, text: str) -> str:
        """Plan a SQL statement and describe its schedule without running it."""
        from repro.plan.optimizer import optimize

        physical, report = optimize(parse_sql(text, self.catalog))
        parts = [report.describe()] if report is not None else []
        parts.append(physical.explain())
        return "\n".join(parts)

    def dataflow(self, paths: Union[str, Sequence[str]], format: str = "lpq") -> DataFlow:
        """Start a Listing-1 dataflow over files, bound to this session's driver."""
        from repro.frontend.dataframe import LambadaSession

        return from_files(paths, format=format).bind(LambadaSession(self.driver))

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release driver resources (worker pools, queues)."""
        self.driver.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    env: Optional[CloudEnvironment] = None,
    *,
    region: str = "eu",
    **driver_kwargs,
) -> Session:
    """Open a :class:`Session` against a cloud environment.

    With no arguments a fresh simulated environment is created (``region``
    selects its pricing/latency profile).  Driver keyword arguments —
    ``memory_mib``, ``execution_mode``, ``resilience_policy``, ... — pass
    through to :class:`~repro.driver.driver.LambadaDriver`.
    """
    if env is None:
        env = CloudEnvironment.create(region=region)
    return Session(LambadaDriver(env, **driver_kwargs))
