"""Python dataflow frontend (the paper's Listing 1).

A :class:`DataFlow` is an immutable description of a query; every method
returns a new dataflow with one more logical operator.  Dataflows can be
built either against expressions (``col("l_discount") >= 0.05``), which the
optimizer can push down and prune with, or against opaque Python lambdas over
record tuples (``lambda x: x[1] >= 0.05``), mirroring the UDF interface of the
paper — those are shipped to the workers by reference (the "dependency
layer").

A :class:`LambadaSession` binds dataflows to a driver so that
``.collect()`` / ``.reduce(...).collect()`` execute on the serverless fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.driver.driver import LambadaDriver, QueryResult
from repro.errors import InvalidPlanError
from repro.plan.expressions import Expression
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    LimitNode,
    LogicalPlan,
    MapNode,
    OrderByNode,
    ProjectNode,
    ScanNode,
)
from repro.plan.optimizer import optimize
from repro.plan.physical import PhysicalPlan, register_udf


def from_files(paths: Union[str, Sequence[str]], format: str = "lpq") -> "DataFlow":
    """Start a dataflow from columnar files (accepts a glob pattern)."""
    if isinstance(paths, str):
        paths = (paths,)
    return DataFlow(plan=ScanNode(paths=tuple(paths), format=format))


@dataclass(frozen=True)
class DataFlow:
    """An immutable, composable query description."""

    plan: LogicalPlan
    session: Optional["LambadaSession"] = None
    #: A pending UDF reduce (set by :meth:`reduce`, applied at execution).
    _reduce_udf: Optional[Callable] = None

    # -- transformations ---------------------------------------------------------

    def filter(self, predicate: Union[Expression, Callable]) -> "DataFlow":
        """Keep rows satisfying ``predicate`` (expression or record lambda)."""
        if isinstance(predicate, Expression):
            node = FilterNode(child=self.plan, predicate=predicate)
        elif callable(predicate):
            node = FilterNode(child=self.plan, udf=predicate)
        else:
            raise InvalidPlanError("filter takes an expression or a callable")
        return replace(self, plan=node)

    def map(self, mapping: Union[Callable, Dict[str, Expression]], replace_columns: bool = True) -> "DataFlow":
        """Compute new columns.

        ``mapping`` is either a record lambda producing a single value (the
        paper's ``map(lambda x: x[1] * x[2])``) or a dict of
        ``alias -> expression``.
        """
        if callable(mapping):
            node = MapNode(child=self.plan, outputs=(), udf=mapping, replace=replace_columns)
        elif isinstance(mapping, dict):
            node = MapNode(
                child=self.plan,
                outputs=tuple(mapping.items()),
                replace=replace_columns,
            )
        else:
            raise InvalidPlanError("map takes a callable or a dict of expressions")
        return replace(self, plan=node)

    def select(self, *columns: str) -> "DataFlow":
        """Keep only the given columns."""
        return replace(self, plan=ProjectNode(child=self.plan, columns=tuple(columns)))

    def group_by(self, *keys: str) -> "GroupedDataFlow":
        """Group by key columns; follow with :meth:`GroupedDataFlow.agg`."""
        return GroupedDataFlow(parent=self, keys=tuple(keys))

    # -- aggregations ----------------------------------------------------------------

    def _scalar_aggregate(self, function: str, expression: Optional[Expression], alias: str) -> "DataFlow":
        node = AggregateNode(
            child=self.plan,
            group_by=(),
            aggregates=(AggregateSpec(function, expression, alias),),
        )
        return replace(self, plan=node)

    def sum(self, expression: Expression, alias: str = "sum") -> "DataFlow":
        """Scalar sum aggregate."""
        return self._scalar_aggregate("sum", expression, alias)

    def count(self, alias: str = "count") -> "DataFlow":
        """Scalar row count."""
        return self._scalar_aggregate("count", None, alias)

    def min(self, expression: Expression, alias: str = "min") -> "DataFlow":
        """Scalar minimum."""
        return self._scalar_aggregate("min", expression, alias)

    def max(self, expression: Expression, alias: str = "max") -> "DataFlow":
        """Scalar maximum."""
        return self._scalar_aggregate("max", expression, alias)

    def avg(self, expression: Expression, alias: str = "avg") -> "DataFlow":
        """Scalar average."""
        return self._scalar_aggregate("avg", expression, alias)

    def reduce(self, function: Callable) -> "DataFlow":
        """Fold all values with an associative binary Python function.

        Follows the paper's Listing 1: the values being folded are the output
        of the preceding :meth:`map`.  Workers fold their own values and the
        driver folds the per-worker partials, so ``function`` must be
        associative.
        """
        return replace(self, _reduce_udf=function)

    # -- result shaping ------------------------------------------------------------------

    def order_by(self, *keys: str, descending: bool = False) -> "DataFlow":
        """Sort the (small) result on the driver."""
        return replace(self, plan=OrderByNode(child=self.plan, keys=tuple(keys), descending=descending))

    def limit(self, count: int) -> "DataFlow":
        """Keep only the first ``count`` result rows."""
        return replace(self, plan=LimitNode(child=self.plan, count=count))

    # -- planning and execution ------------------------------------------------------------

    def logical_plan(self) -> LogicalPlan:
        """The logical plan built so far."""
        return self.plan

    def physical_plan(self) -> PhysicalPlan:
        """Optimize into a physical plan (including a pending UDF reduce)."""
        physical, _ = optimize(self.plan)
        if self._reduce_udf is not None:
            ref = register_udf(self._reduce_udf)
            physical.worker_template.reduce_udf = ref
            physical.driver.reduce_udf = ref
            physical.driver.collect_rows = False
        return physical

    def explain(self) -> str:
        """Human-readable description of the logical plan."""
        return self.plan.describe()

    def bind(self, session: "LambadaSession") -> "DataFlow":
        """Attach a session so that :meth:`collect` can execute the query."""
        return replace(self, session=session)

    def collect(self, **execute_kwargs) -> QueryResult:
        """Execute on the bound session's driver and return the result."""
        if self.session is None:
            raise InvalidPlanError(
                "dataflow is not bound to a session; use session.from_parquet(...) "
                "or .bind(session)"
            )
        return self.session.driver.execute(self.physical_plan(), **execute_kwargs)


@dataclass(frozen=True)
class GroupedDataFlow:
    """A dataflow with pending group-by keys."""

    parent: DataFlow
    keys: Tuple[str, ...]

    def agg(self, *specs: Tuple[str, Optional[Expression], str]) -> DataFlow:
        """Aggregate the groups.

        Each spec is a ``(function, expression, alias)`` tuple, e.g.
        ``("sum", col("l_quantity"), "sum_qty")``.
        """
        aggregates = tuple(AggregateSpec(function, expression, alias) for function, expression, alias in specs)
        node = AggregateNode(child=self.parent.plan, group_by=self.keys, aggregates=aggregates)
        return replace(self.parent, plan=node)


class LambadaSession:
    """Binds the dataflow frontend to a driver (and thus a cloud environment)."""

    def __init__(self, driver: LambadaDriver):
        self.driver = driver

    def from_parquet(self, paths: Union[str, Sequence[str]]) -> DataFlow:
        """Start a dataflow over columnar files, bound to this session."""
        return from_files(paths, format="lpq").bind(self)

    def from_csv(self, paths: Union[str, Sequence[str]]) -> DataFlow:
        """Start a dataflow over CSV files, bound to this session."""
        return from_files(paths, format="csv").bind(self)

    def sql(self, statement: str, catalog: Optional[Dict[str, Sequence[str]]] = None) -> DataFlow:
        """Parse a SQL statement into a bound dataflow."""
        from repro.frontend.sql import SqlCatalog, parse_sql

        plan = parse_sql(statement, SqlCatalog(catalog or {}))
        return DataFlow(plan=plan, session=self)
