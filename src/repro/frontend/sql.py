"""Mini-SQL frontend.

Supports the analytical subset needed for the paper's evaluation queries
(TPC-H Q1/Q6 and the multi-relation join queries Q3/Q5/Q7/Q9/Q10/Q18)::

    SELECT <exprs and aggregates> FROM <table>
    [JOIN <table> ON <col> = <col>]...
    [WHERE <conjunctions/disjunctions of comparisons, BETWEEN>]
    [GROUP BY <columns>] [ORDER BY <columns> [DESC]] [LIMIT <n>]

Any number of ``JOIN ... ON a = b`` clauses chain into a left-deep join
tree; the optimizer reorders and lowers the tree onto shuffle waves.
Aggregates: ``SUM``, ``COUNT(*)``, ``AVG``, ``MIN``, ``MAX``.  ``DATE
'YYYY-MM-DD'`` literals are converted to integer days since 1970-01-01, the
encoding used by the numeric TPC-H generator.  Table names resolve to object
store paths through a :class:`SqlCatalog`.

Parse failures raise :class:`~repro.errors.SqlParseError` carrying the
0-based character ``position`` (plus derived 1-based ``line``/``column``)
of the offending token.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, field
from typing import Dict, List, NoReturn, Optional, Sequence, Tuple

from repro.errors import SqlParseError, SqlSyntaxError
from repro.plan.expressions import Column, Expression, col, lit
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    JoinNode,
    LimitNode,
    LogicalPlan,
    OrderByNode,
    ProjectNode,
    ScanNode,
)

_AGGREGATE_NAMES = {"sum", "count", "avg", "min", "max"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<date>date\s*'(\d{4})-(\d{2})-(\d{2})')
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|\(|\)|,|\.)
    """,
    re.VERBOSE | re.IGNORECASE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    #: 0-based character offset of the token in the original statement.
    position: int = -1

    def __str__(self) -> str:  # referenced in error messages
        return f"{self.value!r}"


def _tokenize(statement: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(statement):
        match = _TOKEN_RE.match(statement, position)
        if match is None:
            raise SqlParseError(
                f"unexpected character {statement[position]!r}",
                statement=statement,
                position=position,
            )
        start = match.start()
        position = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "date":
            date_match = re.search(r"(\d{4})-(\d{2})-(\d{2})", match.group("date"))
            assert date_match is not None
            year, month, day = date_match.groups()
            days = (_dt.date(int(year), int(month), int(day)) - _dt.date(1970, 1, 1)).days
            tokens.append(_Token("number", str(days), start))
        elif match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number"), start))
        elif match.lastgroup == "ident":
            tokens.append(_Token("ident", match.group("ident"), start))
        else:
            tokens.append(_Token("op", match.group("op"), start))
    return tokens


def date_to_days(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 of a calendar date (the ``l_shipdate`` encoding)."""
    return (_dt.date(year, month, day) - _dt.date(1970, 1, 1)).days


@dataclass
class SqlCatalog:
    """Maps table names to the object-store paths (or globs) of their files.

    Tables may optionally be registered with their column names; the schema
    hint lets the planner decide which side of a join owns an unqualified
    column (per-side predicate and projection push-down).
    """

    tables: Dict[str, Sequence[str]] = field(default_factory=dict)
    columns: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def register(
        self, name: str, paths: Sequence[str], columns: Optional[Sequence[str]] = None
    ) -> None:
        """Register (or replace) a table, optionally with its column names."""
        self.tables[name.lower()] = list(paths)
        if columns is not None:
            self.columns[name.lower()] = tuple(columns)
        else:
            self.columns.pop(name.lower(), None)

    def register_dataset(self, dataset) -> None:
        """Register a generated dataset (anything with name/paths/schema)."""
        self.register(dataset.name, dataset.paths, columns=dataset.schema.names)

    def paths_of(self, name: str) -> Tuple[str, ...]:
        """Paths of a registered table."""
        key = name.lower()
        if key not in self.tables:
            raise SqlSyntaxError(f"unknown table {name!r}")
        paths = self.tables[key]
        if isinstance(paths, str):
            return (paths,)
        return tuple(paths)

    def columns_of(self, name: str) -> Tuple[str, ...]:
        """Registered column names of a table (empty when unknown)."""
        return self.columns.get(name.lower(), ())


@dataclass
class _SelectItem:
    expression: Optional[Expression]
    aggregate: Optional[AggregateSpec]
    alias: str


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token], statement: str = ""):
        self.tokens = tokens
        self.statement = statement
        self.position = 0

    # -- token helpers -----------------------------------------------------------

    def _error(self, message: str, token: Optional[_Token] = None) -> NoReturn:
        """Raise a :class:`SqlParseError` located at ``token`` (or the current
        token, or the end of the statement when the stream is exhausted)."""
        where = token if token is not None else self._peek()
        offset = where.position if where is not None else len(self.statement)
        raise SqlParseError(message, statement=self.statement, position=offset)

    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            self._error("unexpected end of statement")
        self.position += 1
        return token

    def _accept_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "ident" and token.value.lower() in keywords:
            self.position += 1
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            self._error(
                f"expected {keyword.upper()}, found "
                f"{token if token is not None else 'end of statement'}"
            )

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == op:
            self.position += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            self._error(
                f"expected {op!r}, found "
                f"{token if token is not None else 'end of statement'}"
            )

    # -- expression grammar ---------------------------------------------------------

    def parse_scalar(self) -> Expression:
        """additive := term (('+'|'-') term)*"""
        left = self._parse_term()
        while True:
            if self._accept_op("+"):
                left = left + self._parse_term()
            elif self._accept_op("-"):
                left = left - self._parse_term()
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            if self._accept_op("*"):
                left = left * self._parse_factor()
            elif self._accept_op("/"):
                left = left / self._parse_factor()
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token is None:
            self._error("unexpected end of expression")
        if token.kind == "op" and token.value == "(":
            self._next()
            inner = self.parse_scalar()
            self._expect_op(")")
            return inner
        if token.kind == "op" and token.value == "-":
            self._next()
            return lit(0) - self._parse_factor()
        if token.kind == "number":
            self._next()
            value = float(token.value)
            return lit(int(value)) if value.is_integer() and "." not in token.value else lit(value)
        if token.kind == "ident":
            self._next()
            name = token.value.lower()
            if self._accept_op("."):
                # Qualified reference (table.column): column names are unique
                # across the numeric TPC-H relations, so the qualifier only
                # disambiguates for the reader and is dropped here.
                column_token = self._next()
                if column_token.kind != "ident":
                    self._error(
                        f"expected a column name after '.', found {column_token}",
                        token=column_token,
                    )
                name = column_token.value.lower()
            return col(name)
        self._error(f"unexpected token {token}", token=token)

    def parse_column_ref(self) -> Tuple[Optional[str], str]:
        """A possibly qualified column reference: ``(qualifier, column)``."""
        token = self._next()
        if token.kind != "ident":
            self._error(f"expected a column name, found {token}", token=token)
        first = token.value.lower()
        if self._accept_op("."):
            column_token = self._next()
            if column_token.kind != "ident":
                self._error(
                    f"expected a column name after '.', found {column_token}",
                    token=column_token,
                )
            return first, column_token.value.lower()
        return None, first

    def parse_predicate(self) -> Expression:
        """or_expr := and_expr (OR and_expr)*"""
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = left | self._parse_and()
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self._accept_keyword("and"):
            left = left & self._parse_comparison()
        return left

    def _parse_comparison(self) -> Expression:
        if self._accept_keyword("not"):
            return ~self._parse_comparison()
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == "(":
            # Could be a parenthesised predicate; try it, fall back to scalar.
            saved = self.position
            self._next()
            try:
                inner = self.parse_predicate()
                self._expect_op(")")
                return inner
            except SqlSyntaxError:
                self.position = saved
        left = self.parse_scalar()
        if self._accept_keyword("between"):
            low = self.parse_scalar()
            self._expect_keyword("and")
            high = self.parse_scalar()
            return (left >= low) & (left <= high)
        operators = {"=": "==", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in operators:
            self._next()
            right = self.parse_scalar()
            mapped = operators[token.value]
            return getattr(left, {"==": "__eq__", "!=": "__ne__", "<": "__lt__",
                                  "<=": "__le__", ">": "__gt__", ">=": "__ge__"}[mapped])(right)
        self._error(
            f"expected a comparison operator, found "
            f"{token if token is not None else 'end of statement'}"
        )

    # -- select list ---------------------------------------------------------------------

    def parse_select_item(self, index: int) -> _SelectItem:
        token = self._peek()
        aggregate: Optional[AggregateSpec] = None
        expression: Optional[Expression] = None
        default_alias = f"col{index}"
        if (
            token is not None
            and token.kind == "ident"
            and token.value.lower() in _AGGREGATE_NAMES
            and self.position + 1 < len(self.tokens)
            and self.tokens[self.position + 1].value == "("
        ):
            function = self._next().value.lower()
            self._expect_op("(")
            if function == "count" and self._accept_op("*"):
                argument: Optional[Expression] = None
            else:
                argument = self.parse_scalar()
            self._expect_op(")")
            aggregate = AggregateSpec(function, argument, default_alias)
        else:
            expression = self.parse_scalar()
            if isinstance(expression, Column):
                default_alias = expression.name
        alias = default_alias
        if self._accept_keyword("as"):
            alias_token = self._next()
            if alias_token.kind != "ident":
                self._error(f"expected an alias, found {alias_token}", token=alias_token)
            alias = alias_token.value.lower()
        if aggregate is not None:
            aggregate = AggregateSpec(aggregate.function, aggregate.expression, alias)
        return _SelectItem(expression=expression, aggregate=aggregate, alias=alias)


#: Join syntax the mini-SQL frontend deliberately does not support; naming
#: them produces a targeted parse error instead of a generic one.
_UNSUPPORTED_JOIN_KINDS = ("left", "right", "full", "outer", "cross", "semi", "anti")


def parse_sql(statement: str, catalog: SqlCatalog) -> LogicalPlan:
    """Parse a SQL statement into a logical plan."""
    parser = _Parser(_tokenize(statement), statement)
    parser._expect_keyword("select")

    items: List[_SelectItem] = [parser.parse_select_item(0)]
    while parser._accept_op(","):
        items.append(parser.parse_select_item(len(items)))

    parser._expect_keyword("from")
    table_token = parser._next()
    if table_token.kind != "ident":
        parser._error(f"expected a table name, found {table_token}", token=table_token)
    left_table = table_token.value.lower()
    paths = catalog.paths_of(left_table)

    # Any number of INNER JOIN clauses chain into a left-deep join tree; the
    # n-th ON clause must connect the new table to one already in scope.
    join_clauses: List[Tuple[str, str, str]] = []  # (right_table, left_key, right_key)
    joined_tables: List[str] = [left_table]
    while True:
        kind_token = parser._peek()
        if (
            kind_token is not None
            and kind_token.kind == "ident"
            and kind_token.value.lower() in _UNSUPPORTED_JOIN_KINDS
        ):
            parser._error(
                f"unsupported join syntax {kind_token.value.upper()!r}: only "
                f"inner equi-joins (JOIN table ON a = b) are supported",
                token=kind_token,
            )
        if parser._accept_keyword("inner"):
            parser._expect_keyword("join")
        elif not parser._accept_keyword("join"):
            break
        right_token = parser._next()
        if right_token.kind != "ident":
            parser._error(
                f"expected a table name after JOIN, found {right_token}",
                token=right_token,
            )
        right_table = right_token.value.lower()
        if right_table in joined_tables:
            parser._error(
                f"table {right_table!r} already joined (self-joins are not "
                f"supported)",
                token=right_token,
            )
        catalog.paths_of(right_table)  # validate early
        parser._expect_keyword("on")
        condition_token = parser._peek()
        first_ref = parser.parse_column_ref()
        if not parser._accept_op("="):
            found = parser._peek()
            parser._error(
                f"unsupported join condition: expected '=' between two column "
                f"references, found "
                f"{found if found is not None else 'end of statement'}"
            )
        second_ref = parser.parse_column_ref()
        try:
            left_key, right_key = _resolve_join_keys(
                catalog, joined_tables, right_table, first_ref, second_ref
            )
        except SqlParseError:
            raise
        except SqlSyntaxError as exc:
            parser._error(str(exc), token=condition_token)
        join_clauses.append((right_table, left_key, right_key))
        joined_tables.append(right_table)

    predicate: Optional[Expression] = None
    if parser._accept_keyword("where"):
        predicate = parser.parse_predicate()

    group_by: List[str] = []
    if parser._accept_keyword("group"):
        parser._expect_keyword("by")
        group_by.append(_expect_column(parser))
        while parser._accept_op(","):
            group_by.append(_expect_column(parser))

    order_by: List[str] = []
    descending = False
    if parser._accept_keyword("order"):
        parser._expect_keyword("by")
        order_by.append(_expect_column(parser))
        while parser._accept_op(","):
            order_by.append(_expect_column(parser))
        if parser._accept_keyword("desc"):
            descending = True
        else:
            parser._accept_keyword("asc")

    limit: Optional[int] = None
    if parser._accept_keyword("limit"):
        limit_token = parser._next()
        if limit_token.kind != "number":
            parser._error(
                f"expected a number after LIMIT, found {limit_token}",
                token=limit_token,
            )
        limit = int(float(limit_token.value))

    if parser._peek() is not None:
        parser._error(f"unexpected trailing tokens starting at {parser._peek()}")

    # -- build the logical plan -------------------------------------------------------
    plan: LogicalPlan = ScanNode(
        paths=paths, schema_columns=catalog.columns_of(left_table)
    )
    for right_table, left_key, right_key in join_clauses:
        right_scan = ScanNode(
            paths=catalog.paths_of(right_table),
            schema_columns=catalog.columns_of(right_table),
        )
        plan = JoinNode(
            child=plan, right=right_scan, left_key=left_key, right_key=right_key
        )
    # The whole WHERE clause sits above the joins; the optimizer pushes each
    # conjunct down to the side whose schema covers it.
    if predicate is not None:
        plan = FilterNode(child=plan, predicate=predicate)

    aggregates = [item.aggregate for item in items if item.aggregate is not None]
    plain = [item for item in items if item.aggregate is None]
    if aggregates:
        for item in plain:
            if not isinstance(item.expression, Column) or item.expression.name not in group_by:
                raise SqlSyntaxError(
                    f"non-aggregated select item {item.alias!r} must be a GROUP BY column"
                )
        plan = AggregateNode(child=plan, group_by=tuple(group_by), aggregates=tuple(aggregates))
    else:
        if group_by:
            raise SqlSyntaxError("GROUP BY without aggregates is not supported")
        columns = []
        for item in plain:
            if not isinstance(item.expression, Column):
                raise SqlSyntaxError("computed select items require an aggregate or a plain column")
            columns.append(item.expression.name)
        plan = ProjectNode(child=plan, columns=tuple(columns))

    if order_by:
        plan = OrderByNode(child=plan, keys=tuple(order_by), descending=descending)
    if limit is not None:
        plan = LimitNode(child=plan, count=limit)
    return plan


def _expect_column(parser: _Parser) -> str:
    return parser.parse_column_ref()[1]


def _resolve_join_keys(
    catalog: SqlCatalog,
    left_tables: Sequence[str],
    right_table: str,
    first_ref: Tuple[Optional[str], str],
    second_ref: Tuple[Optional[str], str],
) -> Tuple[str, str]:
    """Assign the two ON-clause columns to the join sides.

    The "left" side of the n-th join is every table already in scope
    (``left_tables``).  A ``table.column`` qualifier decides directly;
    unqualified columns are looked up in the catalog's registered schemas;
    when neither source resolves a column, the textual order (left key
    first) is assumed.
    """

    def side_of(qualifier: Optional[str], column: str) -> Optional[str]:
        if qualifier is not None:
            if qualifier in left_tables:
                return "left"
            if qualifier == right_table:
                return "right"
            raise SqlSyntaxError(
                f"unknown table {qualifier!r} in join condition "
                f"(expected one of {sorted(left_tables)} or {right_table!r})"
            )
        if any(column in catalog.columns_of(table) for table in left_tables):
            return "left"
        if column in catalog.columns_of(right_table):
            return "right"
        return None

    first_side = side_of(*first_ref)
    second_side = side_of(*second_ref)
    if first_side is None and second_side is None:
        first_side, second_side = "left", "right"
    elif first_side is None:
        first_side = "left" if second_side == "right" else "right"
    elif second_side is None:
        second_side = "left" if first_side == "right" else "right"
    if first_side == second_side:
        raise SqlSyntaxError(
            "join condition must reference one column of each table"
        )
    left_key = first_ref[1] if first_side == "left" else second_ref[1]
    right_key = second_ref[1] if second_side == "right" else first_ref[1]
    return left_key, right_key
