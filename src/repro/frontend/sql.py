"""Mini-SQL frontend.

Supports the single-table analytical subset needed for the paper's evaluation
queries (TPC-H Q1 and Q6 and similar scan-heavy queries)::

    SELECT <exprs and aggregates> FROM <table>
    [WHERE <conjunctions/disjunctions of comparisons, BETWEEN>]
    [GROUP BY <columns>] [ORDER BY <columns> [DESC]] [LIMIT <n>]

Aggregates: ``SUM``, ``COUNT(*)``, ``AVG``, ``MIN``, ``MAX``.  ``DATE
'YYYY-MM-DD'`` literals are converted to integer days since 1970-01-01, the
encoding used by the numeric TPC-H generator.  Table names resolve to object
store paths through a :class:`SqlCatalog`.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SqlSyntaxError
from repro.plan.expressions import BooleanExpr, Column, Expression, Literal, col, lit
from repro.plan.logical import (
    AggregateNode,
    AggregateSpec,
    FilterNode,
    LimitNode,
    LogicalPlan,
    OrderByNode,
    ProjectNode,
    ScanNode,
)

_AGGREGATE_NAMES = {"sum", "count", "avg", "min", "max"}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<date>date\s*'(\d{4})-(\d{2})-(\d{2})')
  | (?P<number>\d+\.\d*|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|\(|\)|,|\.)
    """,
    re.VERBOSE | re.IGNORECASE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str


def _tokenize(statement: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(statement):
        match = _TOKEN_RE.match(statement, position)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {statement[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        if match.lastgroup == "date":
            date_match = re.search(r"(\d{4})-(\d{2})-(\d{2})", match.group("date"))
            assert date_match is not None
            year, month, day = date_match.groups()
            days = (_dt.date(int(year), int(month), int(day)) - _dt.date(1970, 1, 1)).days
            tokens.append(_Token("number", str(days)))
        elif match.lastgroup == "number":
            tokens.append(_Token("number", match.group("number")))
        elif match.lastgroup == "ident":
            tokens.append(_Token("ident", match.group("ident")))
        else:
            tokens.append(_Token("op", match.group("op")))
    return tokens


def date_to_days(year: int, month: int, day: int) -> int:
    """Days since 1970-01-01 of a calendar date (the ``l_shipdate`` encoding)."""
    return (_dt.date(year, month, day) - _dt.date(1970, 1, 1)).days


@dataclass
class SqlCatalog:
    """Maps table names to the object-store paths (or globs) of their files."""

    tables: Dict[str, Sequence[str]] = field(default_factory=dict)

    def register(self, name: str, paths: Sequence[str]) -> None:
        """Register (or replace) a table."""
        self.tables[name.lower()] = list(paths)

    def paths_of(self, name: str) -> Tuple[str, ...]:
        """Paths of a registered table."""
        key = name.lower()
        if key not in self.tables:
            raise SqlSyntaxError(f"unknown table {name!r}")
        paths = self.tables[key]
        if isinstance(paths, str):
            return (paths,)
        return tuple(paths)


@dataclass
class _SelectItem:
    expression: Optional[Expression]
    aggregate: Optional[AggregateSpec]
    alias: str


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[_Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of statement")
        self.position += 1
        return token

    def _accept_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "ident" and token.value.lower() in keywords:
            self.position += 1
            return True
        return False

    def _expect_keyword(self, keyword: str) -> None:
        if not self._accept_keyword(keyword):
            token = self._peek()
            raise SqlSyntaxError(f"expected {keyword.upper()}, found {token}")

    def _accept_op(self, op: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == op:
            self.position += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            raise SqlSyntaxError(f"expected {op!r}, found {token}")

    # -- expression grammar ---------------------------------------------------------

    def parse_scalar(self) -> Expression:
        """additive := term (('+'|'-') term)*"""
        left = self._parse_term()
        while True:
            if self._accept_op("+"):
                left = left + self._parse_term()
            elif self._accept_op("-"):
                left = left - self._parse_term()
            else:
                return left

    def _parse_term(self) -> Expression:
        left = self._parse_factor()
        while True:
            if self._accept_op("*"):
                left = left * self._parse_factor()
            elif self._accept_op("/"):
                left = left / self._parse_factor()
            else:
                return left

    def _parse_factor(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SqlSyntaxError("unexpected end of expression")
        if token.kind == "op" and token.value == "(":
            self._next()
            inner = self.parse_scalar()
            self._expect_op(")")
            return inner
        if token.kind == "op" and token.value == "-":
            self._next()
            return lit(0) - self._parse_factor()
        if token.kind == "number":
            self._next()
            value = float(token.value)
            return lit(int(value)) if value.is_integer() and "." not in token.value else lit(value)
        if token.kind == "ident":
            self._next()
            return col(token.value.lower())
        raise SqlSyntaxError(f"unexpected token {token}")

    def parse_predicate(self) -> Expression:
        """or_expr := and_expr (OR and_expr)*"""
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = left | self._parse_and()
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self._accept_keyword("and"):
            left = left & self._parse_comparison()
        return left

    def _parse_comparison(self) -> Expression:
        if self._accept_keyword("not"):
            return ~self._parse_comparison()
        token = self._peek()
        if token is not None and token.kind == "op" and token.value == "(":
            # Could be a parenthesised predicate; try it, fall back to scalar.
            saved = self.position
            self._next()
            try:
                inner = self.parse_predicate()
                self._expect_op(")")
                return inner
            except SqlSyntaxError:
                self.position = saved
        left = self.parse_scalar()
        if self._accept_keyword("between"):
            low = self.parse_scalar()
            self._expect_keyword("and")
            high = self.parse_scalar()
            return (left >= low) & (left <= high)
        operators = {"=": "==", "<>": "!=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in operators:
            self._next()
            right = self.parse_scalar()
            mapped = operators[token.value]
            return getattr(left, {"==": "__eq__", "!=": "__ne__", "<": "__lt__",
                                  "<=": "__le__", ">": "__gt__", ">=": "__ge__"}[mapped])(right)
        raise SqlSyntaxError(f"expected a comparison operator, found {token}")

    # -- select list ---------------------------------------------------------------------

    def parse_select_item(self, index: int) -> _SelectItem:
        token = self._peek()
        aggregate: Optional[AggregateSpec] = None
        expression: Optional[Expression] = None
        default_alias = f"col{index}"
        if (
            token is not None
            and token.kind == "ident"
            and token.value.lower() in _AGGREGATE_NAMES
            and self.position + 1 < len(self.tokens)
            and self.tokens[self.position + 1].value == "("
        ):
            function = self._next().value.lower()
            self._expect_op("(")
            if function == "count" and self._accept_op("*"):
                argument: Optional[Expression] = None
            else:
                argument = self.parse_scalar()
            self._expect_op(")")
            aggregate = AggregateSpec(function, argument, default_alias)
        else:
            expression = self.parse_scalar()
            if isinstance(expression, Column):
                default_alias = expression.name
        alias = default_alias
        if self._accept_keyword("as"):
            alias_token = self._next()
            if alias_token.kind != "ident":
                raise SqlSyntaxError(f"expected an alias, found {alias_token}")
            alias = alias_token.value.lower()
        if aggregate is not None:
            aggregate = AggregateSpec(aggregate.function, aggregate.expression, alias)
        return _SelectItem(expression=expression, aggregate=aggregate, alias=alias)


def parse_sql(statement: str, catalog: SqlCatalog) -> LogicalPlan:
    """Parse a SQL statement into a logical plan."""
    parser = _Parser(_tokenize(statement))
    parser._expect_keyword("select")

    items: List[_SelectItem] = [parser.parse_select_item(0)]
    while parser._accept_op(","):
        items.append(parser.parse_select_item(len(items)))

    parser._expect_keyword("from")
    table_token = parser._next()
    if table_token.kind != "ident":
        raise SqlSyntaxError(f"expected a table name, found {table_token}")
    paths = catalog.paths_of(table_token.value)

    predicate: Optional[Expression] = None
    if parser._accept_keyword("where"):
        predicate = parser.parse_predicate()

    group_by: List[str] = []
    if parser._accept_keyword("group"):
        parser._expect_keyword("by")
        group_by.append(_expect_column(parser))
        while parser._accept_op(","):
            group_by.append(_expect_column(parser))

    order_by: List[str] = []
    descending = False
    if parser._accept_keyword("order"):
        parser._expect_keyword("by")
        order_by.append(_expect_column(parser))
        while parser._accept_op(","):
            order_by.append(_expect_column(parser))
        if parser._accept_keyword("desc"):
            descending = True
        else:
            parser._accept_keyword("asc")

    limit: Optional[int] = None
    if parser._accept_keyword("limit"):
        limit_token = parser._next()
        if limit_token.kind != "number":
            raise SqlSyntaxError(f"expected a number after LIMIT, found {limit_token}")
        limit = int(float(limit_token.value))

    if parser._peek() is not None:
        raise SqlSyntaxError(f"unexpected trailing tokens starting at {parser._peek()}")

    # -- build the logical plan -------------------------------------------------------
    plan: LogicalPlan = ScanNode(paths=paths)
    if predicate is not None:
        plan = FilterNode(child=plan, predicate=predicate)

    aggregates = [item.aggregate for item in items if item.aggregate is not None]
    plain = [item for item in items if item.aggregate is None]
    if aggregates:
        for item in plain:
            if not isinstance(item.expression, Column) or item.expression.name not in group_by:
                raise SqlSyntaxError(
                    f"non-aggregated select item {item.alias!r} must be a GROUP BY column"
                )
        plan = AggregateNode(child=plan, group_by=tuple(group_by), aggregates=tuple(aggregates))
    else:
        if group_by:
            raise SqlSyntaxError("GROUP BY without aggregates is not supported")
        columns = []
        for item in plain:
            if not isinstance(item.expression, Column):
                raise SqlSyntaxError("computed select items require an aggregate or a plain column")
            columns.append(item.expression.name)
        plan = ProjectNode(child=plan, columns=tuple(columns))

    if order_by:
        plan = OrderByNode(child=plan, keys=tuple(order_by), descending=descending)
    if limit is not None:
        plan = LimitNode(child=plan, count=limit)
    return plan


def _expect_column(parser: _Parser) -> str:
    token = parser._next()
    if token.kind != "ident":
        raise SqlSyntaxError(f"expected a column name, found {token}")
    return token.value.lower()
