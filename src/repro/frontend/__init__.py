"""Query frontends.

Two frontends build logical plans:

* :class:`~repro.frontend.dataframe.DataFlow` — the UDF-based Python library
  interface of the paper's Listing 1
  (``from_parquet(...).filter(...).map(...).reduce(...)``);
* :func:`~repro.frontend.sql.parse_sql` — a mini-SQL dialect sufficient for
  the TPC-H queries used in the evaluation (SELECT / WHERE / GROUP BY /
  ORDER BY / LIMIT over one table).
"""

from repro.frontend.dataframe import DataFlow, LambadaSession, from_files
from repro.frontend.session import Session, connect
from repro.frontend.sql import parse_sql, SqlCatalog

__all__ = [
    "DataFlow",
    "LambadaSession",
    "Session",
    "connect",
    "from_files",
    "parse_sql",
    "SqlCatalog",
]
