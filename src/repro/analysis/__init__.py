"""Analysis helpers that regenerate the paper's figures and tables.

:mod:`~repro.analysis.figures` contains the model-driven figures (1, 4–7, 9,
13 and Tables 1–3); :mod:`~repro.analysis.experiments` contains the
query-driven experiments (Figures 10–12) that execute TPC-H queries end to end
on the simulated serverless stack.  The benchmark harness under
``benchmarks/`` is a thin layer over these functions that prints the series
the paper reports.
"""

from repro.analysis import figures
from repro.analysis import experiments

__all__ = ["figures", "experiments"]
