"""Query-driven experiments (Figures 10, 11, and 12).

These experiments separate two concerns, as described in ``DESIGN.md``:

* **Functional scale** — TPC-H Q1/Q6 actually execute end to end on real
  generated data (small scale factors) through the full stack: driver, tree
  invocation, serverless workers, scan with pruning, partial aggregation, SQS
  result collection.  :func:`setup_functional_environment` and
  :func:`run_tpch_query` drive this path; the tests verify the answers against
  the NumPy reference implementations.

* **Paper scale** — the latency/cost numbers of the figures are produced by
  the calibrated performance model applied at the paper's data volumes
  (SF 1000 = 320 files of ~500 MB Parquet, SF 10000 = 3200 files), using the
  pruning fractions and selectivities measured on the functional runs.
  :class:`PaperScaleModel` implements this layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.baselines.qaas import AthenaModel, BigQueryModel
from repro.cloud.environment import CloudEnvironment
from repro.cloud.lambda_service import cpu_share_for_memory
from repro.cloud.pricing import DEFAULT_PRICES, PriceList
from repro.config import (
    LINEITEM_ROWS_PER_SF,
    LINEITEM_SF1000_FILES,
    LINEITEM_SF1000_PARQUET_BYTES,
    MB,
    MiB,
    S3_REQUEST_LATENCY_SECONDS,
    S3_STEADY_BANDWIDTH_BYTES_PER_S,
    VCPU_ROWS_PER_SECOND,
)
from repro.driver.driver import LambadaDriver, QueryResult
from repro.driver.invocation import TreeInvocationModel
from repro.driver.worker import COLD_EXECUTION_PENALTY
from repro.workload.queries import (
    Q1_SHIPDATE_CUTOFF_DAYS,
    Q6_SHIPDATE_LOWER_DAYS,
    Q6_SHIPDATE_UPPER_DAYS,
    q1_plan,
    q6_plan,
)
from repro.workload.tpch import (
    LINEITEM_SCHEMA,
    SHIPDATE_MAX_DAYS,
    SHIPDATE_MIN_DAYS,
    DatasetInfo,
    generate_lineitem_dataset,
)

#: Columns touched by each query (projection push-down result).
QUERY_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "q1": (
        "l_returnflag",
        "l_linestatus",
        "l_quantity",
        "l_extendedprice",
        "l_discount",
        "l_tax",
        "l_shipdate",
    ),
    "q6": ("l_extendedprice", "l_discount", "l_quantity", "l_shipdate"),
}


def column_byte_fraction(columns: Sequence[str]) -> float:
    """Fraction of the LINEITEM byte volume occupied by ``columns``."""
    total = sum(field.type.item_size for field in LINEITEM_SCHEMA)
    selected = sum(LINEITEM_SCHEMA.field(name).type.item_size for name in columns)
    return selected / total


def shipdate_prune_fraction(query: str) -> float:
    """Fraction of a shipdate-sorted dataset's files that min/max pruning skips.

    With the relation sorted by ``l_shipdate`` and files covering contiguous
    date ranges, a file is pruned exactly when its range misses the query's
    shipdate interval.
    """
    span = SHIPDATE_MAX_DAYS - SHIPDATE_MIN_DAYS
    if query == "q1":
        kept = (min(Q1_SHIPDATE_CUTOFF_DAYS, SHIPDATE_MAX_DAYS) - SHIPDATE_MIN_DAYS) / span
    elif query == "q6":
        kept = (Q6_SHIPDATE_UPPER_DAYS - Q6_SHIPDATE_LOWER_DAYS) / span
    else:
        raise ValueError(f"unknown query {query!r}")
    return 1.0 - max(0.0, min(1.0, kept))


# ---------------------------------------------------------------------------
# Functional-scale execution
# ---------------------------------------------------------------------------

def setup_functional_environment(
    scale_factor: float = 0.002,
    num_files: int = 8,
    memory_mib: int = 2048,
    region: str = "eu",
    row_group_rows: int = 1024,
) -> Tuple[CloudEnvironment, DatasetInfo, LambadaDriver]:
    """Create an environment with a generated LINEITEM dataset and a driver."""
    env = CloudEnvironment.create(region=region)
    dataset = generate_lineitem_dataset(
        env.s3,
        scale_factor=scale_factor,
        num_files=num_files,
        row_group_rows=row_group_rows,
    )
    driver = LambadaDriver(env, memory_mib=memory_mib)
    return env, dataset, driver


def run_tpch_query(
    driver: LambadaDriver,
    dataset: DatasetInfo,
    query: str = "q1",
    **execute_kwargs,
) -> QueryResult:
    """Run TPC-H Q1 or Q6 end to end on the serverless stack."""
    if query == "q1":
        plan = q1_plan(dataset.paths)
    elif query == "q6":
        plan = q6_plan(dataset.paths)
    else:
        raise ValueError(f"unknown query {query!r}")
    return driver.execute(plan, **execute_kwargs)


# ---------------------------------------------------------------------------
# Paper-scale model
# ---------------------------------------------------------------------------

@dataclass
class PaperScaleModel:
    """Latency/cost model of a TPC-H query at the paper's data volumes."""

    query: str = "q1"
    scale_factor: int = 1000
    memory_mib: int = 1792
    files_per_worker: int = 1
    cold: bool = False
    region: str = "eu"
    prices: PriceList = field(default_factory=lambda: DEFAULT_PRICES)

    # -- dataset geometry -----------------------------------------------------------

    @property
    def num_files(self) -> int:
        """Number of ~500 MB Parquet files at this scale factor."""
        return int(LINEITEM_SF1000_FILES * self.scale_factor / 1000)

    @property
    def num_workers(self) -> int:
        """Fleet size implied by the files-per-worker setting."""
        return math.ceil(self.num_files / self.files_per_worker)

    @property
    def file_bytes(self) -> float:
        """Compressed size of one Parquet file."""
        return LINEITEM_SF1000_PARQUET_BYTES / LINEITEM_SF1000_FILES

    @property
    def rows_per_file(self) -> float:
        """Rows stored in one file."""
        return LINEITEM_ROWS_PER_SF * 1000 / LINEITEM_SF1000_FILES

    # -- per-worker model ------------------------------------------------------------

    def worker_duration_seconds(self, pruned: bool) -> float:
        """Modelled execution time of one worker.

        ``pruned`` workers read only the footer of their files, find that every
        row group misses the predicate, and return immediately; the others
        download and process the projected columns of all their files.
        """
        metadata_seconds = self.files_per_worker * (2 * S3_REQUEST_LATENCY_SECONDS + 0.05)
        if pruned:
            duration = metadata_seconds + 0.1
        else:
            fraction = column_byte_fraction(QUERY_COLUMNS[self.query])
            download_bytes = self.files_per_worker * self.file_bytes * fraction
            download_seconds = download_bytes / S3_STEADY_BANDWIDTH_BYTES_PER_S
            cpu_share = cpu_share_for_memory(self.memory_mib)
            usable = min(cpu_share, 2.0) if cpu_share > 1.0 else cpu_share
            rows = self.files_per_worker * self.rows_per_file
            compute_seconds = rows / (VCPU_ROWS_PER_SECOND * usable)
            duration = metadata_seconds + max(download_seconds, compute_seconds)
        if self.cold:
            duration *= COLD_EXECUTION_PENALTY
        return duration

    def worker_durations(self) -> np.ndarray:
        """Durations of the whole fleet (pruned and non-pruned workers)."""
        prune_fraction = shipdate_prune_fraction(self.query)
        num_pruned = int(round(self.num_workers * prune_fraction))
        durations = np.empty(self.num_workers)
        durations[:num_pruned] = self.worker_duration_seconds(pruned=True)
        durations[num_pruned:] = self.worker_duration_seconds(pruned=False)
        return durations

    # -- query-level model --------------------------------------------------------------

    #: Slow-down of the slowest worker relative to the typical one (stragglers,
    #: retried requests); the paper observes noticeable tails at fleet scale.
    straggler_multiplier: float = 1.3
    #: Per-worker cost of collecting results from the SQS queue (the driver
    #: receives messages in batches of ten).
    result_collection_seconds_per_worker: float = 0.002

    def latency_seconds(self) -> float:
        """Modelled end-to-end query latency."""
        invocation = TreeInvocationModel(region=self.region)
        start_times = invocation.worker_start_times(self.num_workers, cold=self.cold)
        durations = self.worker_durations()
        # Workers that prune everything finish early regardless of start time;
        # pair the slowest starts with the longest durations for a conservative
        # (straggler-aware) estimate, and slow the very slowest worker down by
        # the straggler multiplier.
        durations = np.sort(durations)
        durations[-1] *= self.straggler_multiplier
        completion = np.sort(start_times) + durations
        result_poll_seconds = 0.3 + self.result_collection_seconds_per_worker * self.num_workers
        return float(completion.max()) + result_poll_seconds

    def cost_dollars(self) -> Dict[str, float]:
        """Dollar cost breakdown of one query execution."""
        durations = self.worker_durations()
        duration_cost = float(
            sum(self.prices.lambda_duration_cost(self.memory_mib, d) for d in durations)
        )
        invocation_cost = self.prices.lambda_invocation_cost(self.num_workers)
        fraction = column_byte_fraction(QUERY_COLUMNS[self.query])
        prune_fraction = shipdate_prune_fraction(self.query)
        # Requests: footer + one request per column chunk read (16 MiB chunks).
        data_requests_per_file = max(
            1, int(self.file_bytes * fraction / (16 * MiB))
        )
        num_scanning = self.num_workers * (1 - prune_fraction)
        get_requests = (
            self.num_files * 2  # footer + tail reads
            + num_scanning * self.files_per_worker * data_requests_per_file
        )
        s3_cost = self.prices.s3_get_cost(int(get_requests))
        sqs_cost = self.prices.sqs_cost(self.num_workers * 2)
        total = duration_cost + invocation_cost + s3_cost + sqs_cost
        return {
            "lambda_duration": duration_cost,
            "lambda_requests": invocation_cost,
            "s3_requests": s3_cost,
            "sqs_requests": sqs_cost,
            "total": total,
        }


# ---------------------------------------------------------------------------
# Figure builders
# ---------------------------------------------------------------------------

def figure10_worker_configurations(
    memory_sizes: Sequence[int] = (512, 1024, 1792, 2048, 3008),
    files_per_worker: Sequence[int] = (1, 2, 4),
) -> Dict[str, List[Dict]]:
    """Cost/latency of TPC-H Q1 under varying worker configurations (Figure 10)."""
    result: Dict[str, List[Dict]] = {"varying_memory": [], "varying_files": [], "grid": []}
    for memory in memory_sizes:
        for cold in (False, True):
            model = PaperScaleModel(query="q1", memory_mib=memory, files_per_worker=1, cold=cold)
            result["varying_memory"].append(
                {
                    "memory_mib": memory,
                    "files_per_worker": 1,
                    "cold": cold,
                    "latency_seconds": model.latency_seconds(),
                    "cost_cents": model.cost_dollars()["total"] * 100,
                }
            )
    for files in files_per_worker:
        for cold in (False, True):
            model = PaperScaleModel(query="q1", memory_mib=1792, files_per_worker=files, cold=cold)
            result["varying_files"].append(
                {
                    "memory_mib": 1792,
                    "files_per_worker": files,
                    "cold": cold,
                    "latency_seconds": model.latency_seconds(),
                    "cost_cents": model.cost_dollars()["total"] * 100,
                }
            )
    for memory in memory_sizes:
        for files in files_per_worker:
            model = PaperScaleModel(query="q1", memory_mib=memory, files_per_worker=files)
            result["grid"].append(
                {
                    "memory_mib": memory,
                    "files_per_worker": files,
                    "cold": False,
                    "latency_seconds": model.latency_seconds(),
                    "cost_cents": model.cost_dollars()["total"] * 100,
                }
            )
    return result


def figure11_processing_time_distribution(num_workers: int = 320) -> Dict[str, List[float]]:
    """Per-worker processing-time distribution of Q1 and Q6 (Figure 11)."""
    result: Dict[str, List[float]] = {}
    for query in ("q1", "q6"):
        model = PaperScaleModel(query=query, memory_mib=1792, files_per_worker=1)
        durations = np.sort(model.worker_durations())[: num_workers]
        result[query] = durations.tolist()
    return result


def figure12_qaas_comparison(
    scale_factors: Sequence[int] = (1000, 10000),
    memory_sizes: Sequence[int] = (1024, 1792, 3008),
) -> List[Dict]:
    """Lambada vs Athena vs BigQuery latency and cost (Figure 12)."""
    athena = AthenaModel()
    bigquery = BigQueryModel()
    rows: List[Dict] = []
    for query in ("q1", "q6"):
        for scale_factor in scale_factors:
            for memory in memory_sizes:
                for cold in (False, True):
                    model = PaperScaleModel(
                        query=query,
                        scale_factor=scale_factor,
                        memory_mib=memory,
                        files_per_worker=1,
                        cold=cold,
                    )
                    rows.append(
                        {
                            "system": "lambada",
                            "query": query,
                            "scale_factor": scale_factor,
                            "memory_mib": memory,
                            "cold": cold,
                            "latency_seconds": model.latency_seconds(),
                            "cost_dollars": model.cost_dollars()["total"],
                        }
                    )
            athena_estimate = athena.estimate(query, scale_factor)
            rows.append(
                {
                    "system": "athena",
                    "query": query,
                    "scale_factor": scale_factor,
                    "memory_mib": None,
                    "cold": False,
                    "latency_seconds": athena_estimate.latency_seconds,
                    "cost_dollars": athena_estimate.cost_dollars,
                }
            )
            for cold in (False, True):
                bigquery_estimate = bigquery.estimate(query, scale_factor, cold=cold)
                rows.append(
                    {
                        "system": "bigquery",
                        "query": query,
                        "scale_factor": scale_factor,
                        "memory_mib": None,
                        "cold": cold,
                        "latency_seconds": bigquery_estimate.cold_latency_seconds,
                        "cost_dollars": bigquery_estimate.cost_dollars,
                    }
                )
    return rows
