"""Model-driven figure and table data.

Each function returns plain Python data structures (lists of dicts) holding
exactly the series plotted in the corresponding figure of the paper, so that
benchmarks can print them and tests can assert their qualitative shape.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.external import LAMBADA_PAPER_RESULTS, LOCUS_RESULTS, POCKET_RESULTS
from repro.baselines.iaas import (
    ALWAYS_ON_CONFIGURATIONS,
    AlwaysOnIaasModel,
    JobScopedFaasModel,
    JobScopedIaasModel,
)
from repro.cloud.lambda_service import compute_throughput
from repro.cloud.network import BandwidthModel, TransferPlan
from repro.cloud.pricing import DEFAULT_PRICES
from repro.config import (
    GB,
    INVOCATION_LATENCY_SECONDS,
    INVOCATION_RATE_DRIVER,
    INVOCATION_RATE_INTRA_REGION,
    MB,
    MiB,
    TB,
)
from repro.driver.invocation import FlatInvocationModel, TreeInvocationModel
from repro.exchange.cost_model import (
    EXCHANGE_VARIANTS,
    ExchangeCostModel,
    worker_cost_band,
)
from repro.exchange.simulator import ExchangeSimulator


# ---------------------------------------------------------------------------
# Figure 1 — comparison of cloud architectures
# ---------------------------------------------------------------------------

def figure1a_job_scoped(
    vm_counts: Sequence[int] = (1, 4, 16, 64, 256),
    faas_counts: Sequence[int] = (8, 64, 512, 4096),
    data_bytes: float = TB,
) -> Dict[str, List[Dict]]:
    """Cost/latency curves of job-scoped IaaS vs FaaS (Figure 1a)."""
    iaas = JobScopedIaasModel()
    faas = JobScopedFaasModel()
    return {
        "iaas": [
            {"workers": point.workers, "seconds": point.running_time_seconds, "dollars": point.cost_dollars}
            for point in iaas.sweep(vm_counts, data_bytes)
        ],
        "faas": [
            {"workers": point.workers, "seconds": point.running_time_seconds, "dollars": point.cost_dollars}
            for point in faas.sweep(faas_counts, data_bytes)
        ],
    }


def figure1b_always_on(
    queries_per_hour: Sequence[float] = (1, 2, 4, 8, 16, 32, 64),
    data_bytes: float = TB,
) -> Dict[str, List[Dict]]:
    """Hourly cost of always-on IaaS vs FaaS vs QaaS (Figure 1b)."""
    model = AlwaysOnIaasModel()
    series: Dict[str, List[Dict]] = {}
    for configuration in ALWAYS_ON_CONFIGURATIONS:
        series[configuration.label] = [
            {"queries_per_hour": rate, "dollars_per_hour": model.hourly_cost(configuration, rate)}
            for rate in queries_per_hour
        ]
    series["FaaS (S3)"] = [
        {"queries_per_hour": rate, "dollars_per_hour": model.faas_hourly_cost(rate, data_bytes)}
        for rate in queries_per_hour
    ]
    series["QaaS (S3)"] = [
        {"queries_per_hour": rate, "dollars_per_hour": model.qaas_hourly_cost(rate, data_bytes)}
        for rate in queries_per_hour
    ]
    return series


# ---------------------------------------------------------------------------
# Figure 4 — intra-worker compute performance
# ---------------------------------------------------------------------------

def figure4_compute_performance(
    memory_sizes: Sequence[int] = (256, 512, 1024, 1792, 2048, 2560, 3008),
) -> List[Dict]:
    """Relative compute throughput vs memory size for 1 and 2 threads (Figure 4)."""
    rows = []
    for memory in memory_sizes:
        rows.append(
            {
                "memory_mib": memory,
                "threads_1": 100.0 * compute_throughput(memory, 1),
                "threads_2": 100.0 * compute_throughput(memory, 2),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 1 — invocation characteristics
# ---------------------------------------------------------------------------

def table1_invocation_characteristics() -> List[Dict]:
    """Per-region invocation latency and rates (Table 1)."""
    rows = []
    for region in ("eu", "us", "sa", "ap"):
        rows.append(
            {
                "region": region,
                "single_invocation_ms": INVOCATION_LATENCY_SECONDS[region] * 1000.0,
                "concurrent_rate_per_s": INVOCATION_RATE_DRIVER[region],
                "intra_region_rate_per_s": INVOCATION_RATE_INTRA_REGION[region],
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — two-level invocation timeline
# ---------------------------------------------------------------------------

def figure5_invocation_timeline(num_workers: int = 4096, region: str = "eu") -> Dict:
    """Timeline of the two-level invocation of ``num_workers`` (Figure 5)."""
    tree = TreeInvocationModel(region=region)
    flat = FlatInvocationModel(region=region)
    timeline = tree.timeline(num_workers, cold=True)
    return {
        "num_workers": num_workers,
        "first_generation": len(timeline.before_own_invocation),
        "before_own_invocation": timeline.before_own_invocation.tolist(),
        "own_invocation": timeline.own_invocation.tolist(),
        "invoking_workers": timeline.invoking_workers.tolist(),
        "all_started_seconds": tree.time_to_start_all(num_workers),
        "flat_invocation_seconds": flat.time_to_start_all(num_workers),
    }


# ---------------------------------------------------------------------------
# Figures 6 and 7 — S3 scan characteristics
# ---------------------------------------------------------------------------

def figure6_network_bandwidth(
    memory_sizes: Sequence[int] = (512, 1024, 2048, 3008),
    connections: Sequence[int] = (1, 2, 4),
) -> Dict[str, List[Dict]]:
    """Scan bandwidth vs worker memory for large and small files (Figure 6)."""
    model = BandwidthModel()
    result: Dict[str, List[Dict]] = {"large_files": [], "small_files": []}
    for label, file_bytes in (("large_files", GB), ("small_files", 100 * MB)):
        for memory in memory_sizes:
            row = {"memory_mib": memory}
            for conn in connections:
                bandwidth = model.scan_bandwidth(
                    total_bytes=file_bytes,
                    chunk_bytes=16 * MiB,
                    connections=conn,
                    memory_mib=memory,
                )
                row[f"connections_{conn}_mib_per_s"] = bandwidth / MiB
            result[label].append(row)
    return result


def figure7_chunk_size(
    chunk_sizes_mib: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    connections: Sequence[int] = (1, 2, 4),
    file_bytes: int = GB,
    memory_mib: int = 3008,
    repetitions: int = 1000,
) -> List[Dict]:
    """Bandwidth and request cost vs chunk size (Figure 7).

    The request-cost line is, as in the paper, the cost of running the
    experiment ``repetitions`` times, annotated with the ratio of request cost
    to worker running cost.
    """
    model = BandwidthModel()
    prices = DEFAULT_PRICES
    worker_price_per_second = 3.3e-5  # 2 GiB worker, §4.4.4
    rows = []
    for chunk_mib in chunk_sizes_mib:
        chunk_bytes = int(chunk_mib * MiB)
        row: Dict = {"chunk_mib": chunk_mib}
        requests = -(-file_bytes // chunk_bytes)
        for conn in connections:
            plan = TransferPlan(
                total_bytes=file_bytes,
                chunk_bytes=chunk_bytes,
                connections=conn,
                memory_mib=memory_mib,
            )
            seconds = model.transfer_seconds(plan)
            row[f"connections_{conn}_mb_per_s"] = file_bytes / seconds / 1e6
        request_cost = prices.s3_get_cost(requests) * repetitions
        scan_seconds = model.transfer_seconds(
            TransferPlan(file_bytes, chunk_bytes, max(connections), memory_mib)
        )
        worker_cost = scan_seconds * worker_price_per_second * repetitions
        row["request_cost_dollars"] = request_cost
        row["requests_per_scan"] = requests
        row["request_to_worker_cost_ratio"] = request_cost / worker_cost if worker_cost else 0.0
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Table 2 and Figure 9 — exchange cost models
# ---------------------------------------------------------------------------

def table2_exchange_models(num_workers: int = 1024) -> List[Dict]:
    """Request counts of every exchange variant at ``num_workers`` (Table 2)."""
    model = ExchangeCostModel()
    rows = []
    for variant in EXCHANGE_VARIANTS:
        counts = model.requests(variant, num_workers)
        rows.append({"variant": variant, **counts})
    return rows


def figure9_exchange_cost(
    worker_counts: Sequence[int] = (64, 256, 1024, 4096, 16384),
) -> Dict:
    """Per-worker request cost of every exchange variant (Figure 9)."""
    model = ExchangeCostModel()
    series = model.figure9_series(tuple(worker_counts))
    low, high = worker_cost_band("2l")
    return {
        "series": series,
        "worker_cost_band_low": low,
        "worker_cost_band_high": high,
    }


# ---------------------------------------------------------------------------
# Table 3 and Figure 13 — exchange at scale
# ---------------------------------------------------------------------------

def table3_exchange_comparison() -> List[Dict]:
    """Running times of the 100 GB exchange vs Pocket and Locus (Table 3)."""
    simulator = ExchangeSimulator()
    rows: List[Dict] = []
    for result in POCKET_RESULTS:
        rows.append(
            {
                "system": result.system,
                "workers": result.workers,
                "storage": result.storage_layer,
                "seconds": result.running_time_seconds,
            }
        )
    for result in LOCUS_RESULTS:
        if result.data_bytes == 100 * 1_000_000_000:
            rows.append(
                {
                    "system": result.system,
                    "workers": result.workers,
                    "storage": result.storage_layer,
                    "seconds": result.running_time_seconds,
                }
            )
    for workers in (250, 500, 1000):
        rows.append(
            {
                "system": "lambada (simulated)",
                "workers": workers,
                "storage": "s3",
                "seconds": simulator.table3_running_time(workers, 100 * 1_000_000_000),
                "paper_seconds": LAMBADA_PAPER_RESULTS[workers],
            }
        )
    return rows


def figure13_exchange_breakdown() -> Dict[str, Dict]:
    """Phase breakdown of the 1 TB and 3 TB exchanges (Figure 13)."""
    simulator = ExchangeSimulator()
    result: Dict[str, Dict] = {}
    for label, data_bytes, workers in (("1TB", TB, 1250), ("3TB", 3 * TB, 2500)):
        timings = simulator.simulate(workers, data_bytes)
        phases = {
            name: {
                "fastest": float(values.min()),
                "median": float(sorted(values)[len(values) // 2]),
                "p95": float(sorted(values)[int(len(values) * 0.95)]),
                "slowest": float(values.max()),
            }
            for name, values in timings.breakdown.phases().items()
        }
        result[label] = {
            "workers": workers,
            "total_seconds": timings.total_seconds,
            "fastest_worker_seconds": timings.fastest_worker_seconds,
            "lower_bound_seconds": timings.lower_bound_seconds,
            "waiting_fraction": timings.waiting_fraction,
            "phases": phases,
        }
    return result
