"""Baseline systems the paper compares against.

* :mod:`~repro.baselines.iaas` — the VM-based alternatives of Figure 1:
  job-scoped clusters (started per query) and always-on clusters (DRAM, NVMe,
  or S3 resident data).
* :mod:`~repro.baselines.qaas` — the Query-as-a-Service systems of Figure 12:
  Amazon Athena and Google BigQuery, modelled through their published pricing
  rules and the scaling behaviour the paper reports.
* :mod:`~repro.baselines.external` — published numbers of the serverless
  shuffle systems (Pocket, Locus) used in Table 3.
"""

from repro.baselines.iaas import (
    JobScopedIaasModel,
    JobScopedFaasModel,
    AlwaysOnConfiguration,
    AlwaysOnIaasModel,
    ALWAYS_ON_CONFIGURATIONS,
)
from repro.baselines.qaas import AthenaModel, BigQueryModel, QaasEstimate
from repro.baselines.external import POCKET_RESULTS, LOCUS_RESULTS, ExternalResult

__all__ = [
    "JobScopedIaasModel",
    "JobScopedFaasModel",
    "AlwaysOnConfiguration",
    "AlwaysOnIaasModel",
    "ALWAYS_ON_CONFIGURATIONS",
    "AthenaModel",
    "BigQueryModel",
    "QaasEstimate",
    "POCKET_RESULTS",
    "LOCUS_RESULTS",
    "ExternalResult",
]
