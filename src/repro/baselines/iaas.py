"""IaaS (VM-based) baseline models for the introduction's simulation (Figure 1).

Figure 1a ("job-scoped resources") compares starting a VM cluster per query
against invoking a fleet of serverless functions, for a query scanning 1 TB
from S3.  Figure 1b ("always-on resources") compares keeping a cluster running
(with the data resident in DRAM, on NVMe, or read from S3) against the
usage-based pricing of FaaS and QaaS as a function of the query rate.

Both figures are produced by simulation in the paper as well, so these models
are a faithful re-implementation rather than a substitution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cloud.pricing import DEFAULT_PRICES, PriceList
from repro.config import (
    FAAS_STARTUP_SECONDS,
    IAAS_STARTUP_SECONDS,
    S3_STEADY_BANDWIDTH_BYTES_PER_S,
    TB,
    VM_DRAM_BANDWIDTH_BYTES_PER_S,
    VM_NVME_BANDWIDTH_BYTES_PER_S,
    VM_S3_BANDWIDTH_BYTES_PER_S,
)


@dataclass(frozen=True)
class CostLatencyPoint:
    """One point of a cost/latency trade-off curve."""

    workers: int
    running_time_seconds: float
    cost_dollars: float


class JobScopedIaasModel:
    """Start a VM cluster per query, scan from S3, tear it down."""

    def __init__(
        self,
        instance_type: str = "c5n.xlarge",
        prices: PriceList = DEFAULT_PRICES,
        startup_seconds: float = IAAS_STARTUP_SECONDS,
    ):
        self.instance_type = instance_type
        self.prices = prices
        self.startup_seconds = startup_seconds
        self.bandwidth = VM_S3_BANDWIDTH_BYTES_PER_S[instance_type]

    def point(self, num_instances: int, data_bytes: float = TB) -> CostLatencyPoint:
        """Running time and cost of scanning ``data_bytes`` with a fresh cluster."""
        if num_instances <= 0:
            raise ValueError("num_instances must be positive")
        scan_seconds = data_bytes / (num_instances * self.bandwidth)
        total_seconds = self.startup_seconds + scan_seconds
        # VMs are billed per second while they run (including startup).
        cost = self.prices.vm_cost(
            self.instance_type, hours=total_seconds / 3600.0, count=num_instances
        )
        return CostLatencyPoint(num_instances, total_seconds, cost)

    def sweep(self, instance_counts: Sequence[int], data_bytes: float = TB) -> List[CostLatencyPoint]:
        """Cost/latency curve over a range of cluster sizes (Figure 1a, IaaS)."""
        return [self.point(count, data_bytes) for count in instance_counts]


class JobScopedFaasModel:
    """Invoke a fleet of serverless functions per query, scan from S3."""

    def __init__(
        self,
        memory_mib: int = 2048,
        prices: PriceList = DEFAULT_PRICES,
        startup_seconds: float = FAAS_STARTUP_SECONDS,
        bandwidth_bytes_per_s: float = S3_STEADY_BANDWIDTH_BYTES_PER_S,
    ):
        self.memory_mib = memory_mib
        self.prices = prices
        self.startup_seconds = startup_seconds
        self.bandwidth = bandwidth_bytes_per_s

    def point(self, num_workers: int, data_bytes: float = TB) -> CostLatencyPoint:
        """Running time and cost of scanning ``data_bytes`` with ``num_workers``."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        scan_seconds = data_bytes / (num_workers * self.bandwidth)
        total_seconds = self.startup_seconds + scan_seconds
        duration_cost = num_workers * self.prices.lambda_duration_cost(
            self.memory_mib, scan_seconds + self.startup_seconds
        )
        request_cost = self.prices.lambda_invocation_cost(num_workers)
        return CostLatencyPoint(num_workers, total_seconds, duration_cost + request_cost)

    def sweep(self, worker_counts: Sequence[int], data_bytes: float = TB) -> List[CostLatencyPoint]:
        """Cost/latency curve over a range of fleet sizes (Figure 1a, FaaS)."""
        return [self.point(count, data_bytes) for count in worker_counts]


@dataclass(frozen=True)
class AlwaysOnConfiguration:
    """An always-on cluster sized to answer the 1 TB query in under 10 s."""

    label: str
    instance_type: str
    num_instances: int
    storage_level: str  # "dram", "nvme", or "s3"


#: The three configurations the paper derives (§1): 3 VMs reading from DRAM,
#: 7 from NVMe, 13 directly from S3.
ALWAYS_ON_CONFIGURATIONS = (
    AlwaysOnConfiguration("3 VMs (DRAM)", "r5.12xlarge", 3, "dram"),
    AlwaysOnConfiguration("7 VMs (NVMe)", "i3.16xlarge", 7, "nvme"),
    AlwaysOnConfiguration("13 VMs (S3)", "c5n.18xlarge", 13, "s3"),
)


class AlwaysOnIaasModel:
    """Hourly cost of keeping a cluster running versus pay-per-query services."""

    def __init__(self, prices: PriceList = DEFAULT_PRICES):
        self.prices = prices

    def scan_seconds(self, configuration: AlwaysOnConfiguration, data_bytes: float = TB) -> float:
        """Latency of one scan in the given configuration."""
        per_instance = {
            "dram": VM_DRAM_BANDWIDTH_BYTES_PER_S,
            "nvme": VM_NVME_BANDWIDTH_BYTES_PER_S,
            "s3": VM_S3_BANDWIDTH_BYTES_PER_S["c5n.18xlarge"],
        }[configuration.storage_level]
        return data_bytes / (configuration.num_instances * per_instance)

    def hourly_cost(self, configuration: AlwaysOnConfiguration, queries_per_hour: float = 0.0) -> float:
        """Hourly cost of an always-on cluster (independent of the query rate)."""
        return self.prices.vm_cost(configuration.instance_type, 1.0, configuration.num_instances)

    def faas_hourly_cost(
        self,
        queries_per_hour: float,
        data_bytes: float = TB,
        memory_mib: int = 2048,
        num_workers: int = 512,
    ) -> float:
        """Hourly cost of answering the same query rate with serverless workers."""
        per_query_seconds = data_bytes / (num_workers * S3_STEADY_BANDWIDTH_BYTES_PER_S)
        per_query_cost = num_workers * self.prices.lambda_duration_cost(
            memory_mib, per_query_seconds
        ) + self.prices.lambda_invocation_cost(num_workers)
        return queries_per_hour * per_query_cost

    def qaas_hourly_cost(self, queries_per_hour: float, data_bytes: float = TB) -> float:
        """Hourly cost of answering the same query rate with a QaaS system."""
        return queries_per_hour * self.prices.qaas_scan_cost(data_bytes)
