"""Query-as-a-Service baselines: Amazon Athena and Google BigQuery (Figure 12).

Both systems charge $5 per TiB of input scanned, but they apply the rule
differently (§5.4.1/§5.4.3):

* **BigQuery** counts *all referenced columns in their entirety*, on its own
  loaded format (which for the paper's LINEITEM is ~5.4× larger than the
  Parquet files); it additionally requires an ETL load step whose duration the
  paper reports (40 min at SF 1k, 6.7 h at SF 10k).
* **Athena** counts only the *selected rows* of the referenced columns
  ("selections are pushed into the cost model") and queries the same Parquet
  files in place.

Latency scaling follows the paper's observations: Athena's running time grows
roughly linearly with the scale factor (it does not appear to add resources),
BigQuery's grows sub-linearly, and the paper's absolute anchor points at SF 1k
are used for calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import DEFAULT_PRICES, PriceList
from repro.config import LINEITEM_SF1000_BIGQUERY_BYTES, LINEITEM_SF1000_PARQUET_BYTES


@dataclass(frozen=True)
class QaasEstimate:
    """Latency and cost estimate of one QaaS query."""

    system: str
    query: str
    scale_factor: int
    latency_seconds: float
    cost_dollars: float
    #: Loading (ETL) time included in the "cold" latency, seconds.
    load_seconds: float = 0.0

    @property
    def cold_latency_seconds(self) -> float:
        """Latency including any one-off loading step."""
        return self.latency_seconds + self.load_seconds


def _schema_column_fraction(columns) -> float:
    """Fraction of the LINEITEM byte volume occupied by ``columns``."""
    from repro.workload.tpch import LINEITEM_SCHEMA

    total = sum(item.type.item_size for item in LINEITEM_SCHEMA)
    return sum(LINEITEM_SCHEMA.field(name).type.item_size for name in columns) / total


#: Fraction of the LINEITEM byte volume occupied by the columns each query
#: touches (Q1 uses 7 of 15 mostly-wide columns, Q6 uses 4); derived from the
#: schema so the QaaS models and the Lambada scan model agree.
_COLUMN_FRACTION = {
    "q1": _schema_column_fraction(
        ["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
         "l_discount", "l_tax", "l_shipdate"]
    ),
    "q6": _schema_column_fraction(
        ["l_extendedprice", "l_discount", "l_quantity", "l_shipdate"]
    ),
}

#: Selectivity of each query's predicate (paper §5.3).
_SELECTIVITY = {"q1": 0.98, "q6": 0.02}

#: Athena running time anchors at SF 1000 (derived from the paper's reported
#: speed-ups: Lambada ~8s is "about 4x faster" on Q1 and "on par" on Q6).
_ATHENA_SF1000_SECONDS = {"q1": 32.0, "q6": 10.0}

#: BigQuery hot running time anchors at SF 1000 (paper: 3.9 s and 1.6 s).
_BIGQUERY_SF1000_SECONDS = {"q1": 3.9, "q6": 1.6}

#: BigQuery load times: 40 min at SF 1k, 6.7 h at SF 10k.
_BIGQUERY_LOAD_SECONDS = {1000: 40 * 60.0, 10000: 6.7 * 3600.0}


class AthenaModel:
    """Amazon Athena: in-situ Parquet scans, selection-aware pricing."""

    def __init__(self, prices: PriceList = DEFAULT_PRICES):
        self.prices = prices

    def estimate(self, query: str, scale_factor: int = 1000) -> QaasEstimate:
        """Latency and cost of running ``query`` ("q1" or "q6") at a scale factor."""
        query = query.lower()
        if query not in _COLUMN_FRACTION:
            raise ValueError(f"unknown query {query!r}; expected 'q1' or 'q6'")
        dataset_bytes = LINEITEM_SF1000_PARQUET_BYTES * scale_factor / 1000.0
        scanned = dataset_bytes * _COLUMN_FRACTION[query] * _SELECTIVITY[query]
        cost = self.prices.qaas_scan_cost(scanned)
        # Athena's latency grows linearly with the dataset (paper §5.4.2).
        latency = _ATHENA_SF1000_SECONDS[query] * scale_factor / 1000.0
        return QaasEstimate(
            system="athena",
            query=query,
            scale_factor=scale_factor,
            latency_seconds=latency,
            cost_dollars=cost,
        )


class BigQueryModel:
    """Google BigQuery: loaded proprietary format, column-volume pricing."""

    def __init__(self, prices: PriceList = DEFAULT_PRICES):
        self.prices = prices

    def load_seconds(self, scale_factor: int) -> float:
        """Duration of the ETL load of LINEITEM at ``scale_factor``."""
        if scale_factor in _BIGQUERY_LOAD_SECONDS:
            return _BIGQUERY_LOAD_SECONDS[scale_factor]
        # Interpolate linearly in the data volume.
        return _BIGQUERY_LOAD_SECONDS[1000] * scale_factor / 1000.0

    def estimate(self, query: str, scale_factor: int = 1000, cold: bool = False) -> QaasEstimate:
        """Latency and cost of running ``query`` at a scale factor.

        ``cold=True`` includes the load time in the latency (the paper's
        "BigQuery (cold)" series).
        """
        query = query.lower()
        if query not in _COLUMN_FRACTION:
            raise ValueError(f"unknown query {query!r}; expected 'q1' or 'q6'")
        dataset_bytes = LINEITEM_SF1000_BIGQUERY_BYTES * scale_factor / 1000.0
        # All referenced columns are charged in full, regardless of selectivity.
        scanned = dataset_bytes * _COLUMN_FRACTION[query]
        cost = self.prices.qaas_scan_cost(scanned)
        # Latency grows sub-linearly (paper observes ~sqrt-like growth).
        latency = _BIGQUERY_SF1000_SECONDS[query] * (scale_factor / 1000.0) ** 0.6
        return QaasEstimate(
            system="bigquery",
            query=query,
            scale_factor=scale_factor,
            latency_seconds=latency,
            cost_dollars=cost,
            load_seconds=self.load_seconds(scale_factor) if cold else 0.0,
        )
