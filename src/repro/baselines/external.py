"""Published results of external serverless shuffle systems (Table 3).

The paper compares its exchange operator against the numbers published for
Pocket [Klimovic et al., OSDI'18] and Locus [Pu et al., NSDI'19] on a 100 GB
shuffle.  As in the paper, these are reference constants, not re-executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class ExternalResult:
    """One published data point of an external system."""

    system: str
    workers: Optional[int]
    storage_layer: str
    data_bytes: float
    running_time_seconds: float


_GB = 1_000_000_000

#: Pocket's published 100 GB sort/shuffle times (their Figure/Table), both the
#: VM-based Pocket storage layer and their S3 baseline.
POCKET_RESULTS: Tuple[ExternalResult, ...] = (
    ExternalResult("pocket", 250, "vms", 100 * _GB, 58.0),
    ExternalResult("pocket", 500, "vms", 100 * _GB, 28.0),
    ExternalResult("pocket", 1000, "vms", 100 * _GB, 18.0),
    ExternalResult("pocket-s3-baseline", 250, "s3", 100 * _GB, 98.0),
)

#: Locus' published range for the 100 GB shuffle (dynamic worker count) and
#: its 1 TB configuration with VM-based fast storage.
LOCUS_RESULTS: Tuple[ExternalResult, ...] = (
    ExternalResult("locus", None, "s3+redis", 100 * _GB, 80.0),
    ExternalResult("locus-slow", None, "s3+redis", 100 * _GB, 140.0),
    ExternalResult("locus-1tb", None, "s3+redis", 1000 * _GB, 39.0),
)

#: Lambada's own published Table 3 rows, used by the benchmark to check that
#: the simulated exchange reproduces the right ballpark and ordering.
LAMBADA_PAPER_RESULTS: Dict[int, float] = {250: 22.0, 500: 15.0, 1000: 13.0}
