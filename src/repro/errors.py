"""Exception hierarchy for the Lambada reproduction.

Every error raised by the library derives from :class:`LambadaError` so that
callers can catch a single base class.  Sub-hierarchies mirror the major
subsystems: the simulated cloud services, the columnar file format, query
planning, and query execution.
"""

from __future__ import annotations


class LambadaError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Cloud substrate errors
# ---------------------------------------------------------------------------

class CloudError(LambadaError):
    """Base class for errors raised by the simulated cloud services."""


class NoSuchBucketError(CloudError):
    """A request referenced a bucket that does not exist."""


class NoSuchKeyError(CloudError):
    """A GET/HEAD request referenced an object key that does not exist."""


class BucketAlreadyExistsError(CloudError):
    """A bucket with the requested name already exists."""


class InvalidRangeError(CloudError):
    """A ranged GET requested bytes outside of the object."""


class SlowDownError(CloudError):
    """The object store throttled the request (HTTP 503 SlowDown on AWS).

    Raised when the per-bucket request rate limit is exceeded.  Callers are
    expected to back off and retry, exactly as against the real service.
    """


class NoSuchQueueError(CloudError):
    """A queue operation referenced a queue that does not exist."""


class NoSuchTableError(CloudError):
    """A key-value operation referenced a table that does not exist."""


class ConditionalCheckFailedError(CloudError):
    """A conditional put on the key-value store failed its precondition."""


class FunctionNotFoundError(CloudError):
    """An invocation referenced a Lambda function that was never deployed."""


class TooManyRequestsError(CloudError):
    """The function service rejected an invocation (concurrency limit)."""


class FunctionTimeoutError(CloudError):
    """A function invocation exceeded its configured timeout."""


class FunctionOutOfMemoryError(CloudError):
    """A function invocation exceeded its configured memory limit."""


class WorkerCrashError(CloudError):
    """The execution environment died mid-invocation (injected by a FaultPlan).

    Unlike ordinary handler exceptions this models the *instance* crashing —
    the worker's catch-all error reporting deliberately re-raises it, so no
    result message is ever posted and the driver only notices the worker is
    missing at the wave deadline.
    """


class PayloadTooLargeError(CloudError):
    """An invocation payload or message exceeded the service limit."""


# ---------------------------------------------------------------------------
# File format errors
# ---------------------------------------------------------------------------

class FormatError(LambadaError):
    """Base class for errors in the columnar file format."""


def _integrity_context(
    key=None, layer=None, offset=None, expected=None, actual=None
) -> str:
    """Render the structured corruption context shared by the integrity errors."""
    parts = []
    if key:
        parts.append(f"object={key}")
    if layer:
        parts.append(f"layer={layer}")
    if offset is not None:
        parts.append(f"offset={offset}")
    if expected is not None:
        parts.append(f"expected=0x{expected:08x}")
    if actual is not None:
        parts.append(f"actual=0x{actual:08x}")
    return f" [{', '.join(parts)}]" if parts else ""


class CorruptFileError(FormatError):
    """The file footer or a page failed validation.

    Carries optional structured context so a corruption report names the
    object it came from: ``key`` (object key or path), ``layer`` (which
    validation failed, e.g. ``"lpq.chunk"``), ``offset`` (byte offset of the
    corrupt region within the object, when known), and the ``expected`` /
    ``actual`` crc32 digests for checksum mismatches.
    """

    def __init__(
        self,
        message: str,
        key=None,
        layer=None,
        offset=None,
        expected=None,
        actual=None,
    ):
        super().__init__(
            message + _integrity_context(key, layer, offset, expected, actual)
        )
        self.key = key
        self.layer = layer
        self.offset = offset
        self.expected = expected
        self.actual = actual


class UnsupportedTypeError(FormatError):
    """A column type is not supported by the format or an encoding."""


class SchemaMismatchError(FormatError):
    """Data supplied to a writer does not match the declared schema."""


# ---------------------------------------------------------------------------
# Planning and execution errors
# ---------------------------------------------------------------------------

class PlanError(LambadaError):
    """Base class for query planning errors."""


class UnknownColumnError(PlanError):
    """An expression referenced a column that is not in scope."""


class InvalidPlanError(PlanError):
    """A plan failed structural validation."""


class SqlSyntaxError(PlanError):
    """The mini-SQL frontend could not parse a statement."""


class SqlParseError(SqlSyntaxError):
    """A statement failed to parse at a known position.

    Also a :class:`SqlSyntaxError`, so existing ``except SqlSyntaxError``
    handlers keep working.  Carries the offending location so tooling can
    point at the exact character: ``position`` is the 0-based character
    offset into ``statement``; ``line`` and ``column`` are 1-based and
    derived from it (``None`` when no position is known).
    """

    def __init__(self, message: str, statement: str = "", position=None):
        self.statement = statement
        self.position = position
        if statement and position is not None:
            clamped = min(position, len(statement))
            prefix = statement[:clamped]
            self.line = prefix.count("\n") + 1
            self.column = clamped - (prefix.rfind("\n") + 1) + 1
            message = f"{message} (line {self.line}, column {self.column})"
        else:
            self.line = None
            self.column = None
        super().__init__(message)


class ExecutionError(LambadaError):
    """Base class for runtime execution errors."""


class WorkerFailedError(ExecutionError):
    """A serverless worker reported a failure to the driver.

    ``attempts`` optionally carries the full attempt history — a list of
    ``{"attempt": int, "error": str, "backoff_seconds": float}`` dicts — so
    the exception text shows every attempt, not just the first failure.
    """

    def __init__(self, worker_id: int, message: str, attempts=None):
        text = f"worker {worker_id} failed: {message}"
        if attempts:
            lines = [
                f"  attempt {a.get('attempt', i)}: "
                f"{a.get('error', '') or 'ok'}"
                + (
                    f" (backoff {a['backoff_seconds']:.3f}s)"
                    if a.get("backoff_seconds")
                    else ""
                )
                for i, a in enumerate(attempts)
            ]
            text += "\nattempt history:\n" + "\n".join(lines)
        super().__init__(text)
        self.worker_id = worker_id
        self.message = message
        self.attempts = list(attempts) if attempts else []


class QueryTimeoutError(ExecutionError):
    """The driver gave up waiting for worker results."""


class QueryRejectedError(ExecutionError):
    """The admission controller refused a query submission outright.

    Raised *before* any fleet resource is spent: the admission queue is
    full (``reason="queue_full"``), the tenant's invocation token bucket is
    empty (``reason="invocation_budget"``), or its modelled-dollar bucket is
    (``reason="dollar_budget"``).  Failing fast here is the point — an
    over-budget tenant degrades only itself, never the shared fleet.
    """

    def __init__(self, message: str, tenant: str = "", reason: str = ""):
        super().__init__(message)
        self.tenant = tenant
        self.reason = reason


class QueryCancelledError(ExecutionError):
    """A query was cancelled (explicitly or by its deadline) mid-flight.

    ``stage`` names where the cancellation was observed (e.g.
    ``"map-wave"``, ``"collect"``); ``deadline`` is True when the trigger
    was deadline expiry rather than an explicit ``cancel()``.  By the time
    this propagates, in-flight attempts have been drained: shared-memory
    segments released, the query's shuffle prefixes and queue messages
    garbage-collected.
    """

    def __init__(self, message: str, query_id: str = "", stage: str = "",
                 deadline: bool = False):
        super().__init__(message)
        self.query_id = query_id
        self.stage = stage
        self.deadline = deadline


class RetryBudgetExhaustedError(ExecutionError):
    """A query spent its whole per-query retry budget and was aborted.

    Converts the sustained-brownout failure mode from "slow, expensive,
    and invisible" into a fast, attributed failure: ``spent`` spells out
    how the budget went (retries, wave retries, hedges) and
    ``breaker_states`` records which service breakers were open at abort.
    """

    def __init__(self, message: str, query_id: str = "", spent=None,
                 breaker_states=None):
        super().__init__(message)
        self.query_id = query_id
        self.spent = dict(spent) if spent else {}
        self.breaker_states = dict(breaker_states) if breaker_states else {}


class BreakerOpenError(ExecutionError):
    """A request was refused because its service's circuit breaker is open.

    Raised by breaker-aware call sites that cannot degrade (everything that
    can degrade — combined→legacy, processes→serial — does so instead of
    raising).  ``service`` is ``"s3"``/``"lambda"``/``"sqs"``.
    """

    def __init__(self, message: str, service: str = ""):
        super().__init__(message)
        self.service = service


class ExchangeError(ExecutionError):
    """An exchange operator failed (missing partition files, bad offsets...)."""


class IntegrityError(ExecutionError, CorruptFileError):
    """A content checksum failed verification on read.

    Also a :class:`CorruptFileError`: callers that already treat structural
    corruption as fatal-or-retryable handle checksum mismatches identically
    without naming the new class.

    Raised by every integrity-checking consumer — the LPQ scan, the exchange
    slice decode, the reduce wave's ranged-GET length validation, and the
    driver's message-digest check.  Carries full provenance so the recovery
    escalation (re-GET, then re-execute the producing attempt, then fail)
    can report exactly what was corrupt and where:

    ``key``
        The object key / path / queue the corrupt bytes were served from.
    ``layer``
        The verification site, e.g. ``"codec.body"``, ``"lpq.chunk"``,
        ``"slice.length"``, ``"sqs.digest"``.
    ``offset``
        Byte offset of the corrupt region within the object, when known.
    ``expected`` / ``actual``
        The crc32 digests (or byte lengths, for truncation checks) that
        disagreed.
    """

    def __init__(
        self,
        message: str,
        key=None,
        layer=None,
        offset=None,
        expected=None,
        actual=None,
    ):
        super().__init__(
            message + _integrity_context(key, layer, offset, expected, actual)
        )
        self.key = key
        self.layer = layer
        self.offset = offset
        self.expected = expected
        self.actual = actual
