"""Basic (one-level) S3 exchange and the group-exchange building block.

``BasicGroupExchange`` implements the paper's Algorithm 1 generalised with a
routing function (Algorithm 2's ``BasicGroupExchange``): every sender
partitions its rows by the hash of the key columns, maps each row's *target
partition* to a receiver inside the group, writes one object per receiver
(or, with write combining, a single combined object), and every receiver
polls for and reads the objects addressed to it.

``BasicExchange`` is the one-level special case where the group is the whole
worker set and the routing is the identity, i.e. the O(P²)-request baseline
of the paper's cost analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.s3 import ObjectStore, parse_s3_path
from repro.engine.table import Table, concat_tables, table_num_rows
from repro.errors import ExchangeError, NoSuchKeyError
from repro.exchange.codec import decode_partition, encode_partition, is_fast_partition
from repro.exchange.naming import FileNaming, MultiBucketNaming, WriteCombiningNaming
from repro.exchange.partition import (
    partition_assignments,
    scatter_by_assignment,
    slice_partition,
)
from repro.formats.compression import Compression
from repro.formats.parquet import ColumnarFile, write_table


@dataclass
class ExchangeConfig:
    """Configuration of an exchange operation."""

    #: Key columns whose hash determines the target partition.
    keys: List[str] = field(default_factory=list)
    #: Combine all partitions of one sender into a single object.
    write_combining: bool = False
    #: Number of buckets to spread files over (rate-limit bypass, §4.4.1).
    num_buckets: int = 10
    #: Compression of the partition files (FAST keeps CPU cost low).
    compression: Compression = Compression.FAST
    #: Serialise partitions with the single-pass fast codec
    #: (:mod:`repro.exchange.codec`) instead of the full LPQ file writer.
    #: Readers accept both formats regardless of this flag.
    fast_codec: bool = True
    #: How often a receiver re-checks for a missing sender file before failing.
    max_poll_attempts: int = 100


@dataclass
class ExchangeStats:
    """Request and byte counters accumulated by an exchange."""

    put_requests: int = 0
    get_requests: int = 0
    list_requests: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def merge(self, other: "ExchangeStats") -> None:
        """Fold another counter set into this one."""
        self.put_requests += other.put_requests
        self.get_requests += other.get_requests
        self.list_requests += other.list_requests
        self.bytes_written += other.bytes_written
        self.bytes_read += other.bytes_read

    @property
    def total_requests(self) -> int:
        """All requests issued by the exchange."""
        return self.put_requests + self.get_requests + self.list_requests


def serialize_partition(
    table: Table,
    compression: Compression = Compression.FAST,
    fast: bool = True,
) -> bytes:
    """Serialise a partition table into bytes (empty table -> empty bytes).

    By default the single-pass fast codec of :mod:`repro.exchange.codec` is
    used; ``fast=False`` writes a full LPQ columnar file instead (the seed
    behaviour, kept for durable outputs and legacy-format tests).
    """
    if table_num_rows(table) == 0:
        return b""
    if fast:
        return encode_partition(table, compression)
    return write_table(table, compression=compression)


def deserialize_partition(data: bytes) -> Table:
    """Inverse of :func:`serialize_partition` (empty bytes -> empty table).

    Sniffs the leading format byte, so fast-codec objects and legacy LPQ
    objects (including parts of old write-combined objects) both decode.
    """
    if not data:
        return {}
    if is_fast_partition(data):
        return decode_partition(data)
    return ColumnarFile.from_bytes(data).read_table()


class BasicGroupExchange:
    """One exchange round among a group of workers.

    Parameters
    ----------
    store:
        The shared object store.
    group:
        Global worker ids participating in this round, in a fixed order that
        all participants agree on (receiver slots in combined objects follow
        this order).
    total_partitions:
        Number of global partitions ``P`` (the total worker count).
    route:
        Maps an array of global target-partition ids to an array of global
        worker ids *within the group* that should receive those rows in this
        round.
    naming:
        File naming scheme.
    config:
        Exchange configuration.
    """

    def __init__(
        self,
        store: ObjectStore,
        group: Sequence[int],
        total_partitions: int,
        route: Callable[[np.ndarray], np.ndarray],
        naming: FileNaming,
        config: ExchangeConfig,
    ):
        if not group:
            raise ExchangeError("exchange group cannot be empty")
        self.store = store
        self.group = list(group)
        self.group_index = {worker: position for position, worker in enumerate(self.group)}
        self.total_partitions = total_partitions
        self.route = route
        self.naming = naming
        self.config = config
        self.stats_per_worker: Dict[int, ExchangeStats] = {}
        for bucket in naming.buckets():
            store.ensure_bucket(bucket)

    def _stats(self, worker: int) -> ExchangeStats:
        return self.stats_per_worker.setdefault(worker, ExchangeStats())

    # -- write phase -----------------------------------------------------------

    def write(self, worker: int, table: Table) -> None:
        """Partition ``table`` and write this sender's exchange objects."""
        if worker not in self.group_index:
            raise ExchangeError(f"worker {worker} is not part of this exchange group")
        stats = self._stats(worker)
        targets = partition_assignments(table, self.config.keys, self.total_partitions)
        receivers = np.asarray(self.route(targets)) if len(targets) else targets
        # Map receiver worker ids to group slots in one vectorized lookup, then
        # scatter the rows once so each receiver's part is a contiguous slice
        # (rows routed outside the group land in an overflow slot and are
        # dropped, as the per-receiver mask loop did implicitly).
        num_slots = len(self.group)
        group_array = np.asarray(self.group, dtype=np.int64)
        group_order = np.argsort(group_array, kind="stable")
        sorted_group = group_array[group_order]
        slots = np.full(len(receivers), num_slots, dtype=np.int64)
        if len(receivers):
            positions = np.minimum(
                np.searchsorted(sorted_group, receivers), num_slots - 1
            )
            in_group = sorted_group[positions] == receivers
            slots[in_group] = group_order[positions[in_group]]
        reordered, boundaries = scatter_by_assignment(table, slots, num_slots + 1)
        parts: Dict[int, Table] = {
            receiver: slice_partition(reordered, boundaries, slot)
            for slot, receiver in enumerate(self.group)
        }

        if self.config.write_combining:
            self._write_combined(worker, parts, stats)
        else:
            for receiver in self.group:
                data = serialize_partition(
                    parts[receiver], self.config.compression, fast=self.config.fast_codec
                )
                path = self.naming.path(worker, receiver)
                self.store.put_path(path, data)
                stats.put_requests += 1
                stats.bytes_written += len(data)

    def _write_combined(self, worker: int, parts: Dict[int, Table], stats: ExchangeStats) -> None:
        if not isinstance(self.naming, WriteCombiningNaming):
            raise ExchangeError("write combining requires WriteCombiningNaming")
        blobs = [
            serialize_partition(
                parts[receiver], self.config.compression, fast=self.config.fast_codec
            )
            for receiver in self.group
        ]
        offsets = [0]
        for blob in blobs:
            offsets.append(offsets[-1] + len(blob))
        payload = b"".join(blobs)
        path = self.naming.combined_path(worker, offsets)
        self.store.put_path(path, payload)
        stats.put_requests += 1
        stats.bytes_written += len(payload)

    # -- read phase -------------------------------------------------------------

    def read(self, worker: int) -> Table:
        """Read and concatenate all parts addressed to ``worker``."""
        if worker not in self.group_index:
            raise ExchangeError(f"worker {worker} is not part of this exchange group")
        stats = self._stats(worker)
        if self.config.write_combining:
            return self._read_combined(worker, stats)

        pieces: List[Table] = []
        for sender in self.group:
            path = self.naming.path(sender, worker)
            data = self._poll_get(path, stats)
            stats.get_requests += 1
            stats.bytes_read += len(data)
            piece = deserialize_partition(data)
            if table_num_rows(piece):
                pieces.append(piece)
        return concat_tables(pieces)

    def _read_combined(self, worker: int, stats: ExchangeStats) -> Table:
        naming = self.naming
        assert isinstance(naming, WriteCombiningNaming)
        my_slot = self.group_index[worker]
        # Discover all senders' combined objects with LIST requests, repeating
        # until every sender's object is visible.
        found: Dict[int, str] = {}
        attempts = 0
        senders = set(self.group)
        while len(found) < len(senders):
            attempts += 1
            if attempts > self.config.max_poll_attempts:
                missing = sorted(senders - set(found))
                raise ExchangeError(f"missing combined objects from senders {missing}")
            stats.list_requests += 1
            for bucket in naming.buckets():
                for meta in self.store.list_objects(bucket, naming.prefix):
                    try:
                        sender, _ = WriteCombiningNaming.parse_offsets(meta.key)
                    except ExchangeError:
                        continue
                    if sender in senders:
                        found[sender] = f"s3://{meta.bucket}/{meta.key}"

        pieces: List[Table] = []
        for sender in self.group:
            path = found[sender]
            _, key = parse_s3_path(path)
            _, offsets = WriteCombiningNaming.parse_offsets(key)
            if len(offsets) != len(self.group) + 1:
                raise ExchangeError(
                    f"combined object {path!r} has {len(offsets) - 1} parts, "
                    f"expected {len(self.group)}"
                )
            start, end = offsets[my_slot], offsets[my_slot + 1]
            if end > start:
                result = self.store.get_path(path, start, end)
                stats.get_requests += 1
                stats.bytes_read += len(result.data)
                piece = deserialize_partition(result.data)
                if table_num_rows(piece):
                    pieces.append(piece)
            else:
                # Zero-length part: no request needed.
                pass
        return concat_tables(pieces)

    def _poll_get(self, path: str, stats: ExchangeStats) -> bytes:
        """GET with retries: the sender may not have written the file yet."""
        for _ in range(self.config.max_poll_attempts):
            try:
                return self.store.get_path(path).data
            except NoSuchKeyError:
                stats.get_requests += 1  # failed polls are billed too
                continue
        raise ExchangeError(f"gave up waiting for exchange file {path!r}")

    # -- aggregate statistics -----------------------------------------------------

    def total_stats(self) -> ExchangeStats:
        """Sum of the per-worker request counters."""
        total = ExchangeStats()
        for stats in self.stats_per_worker.values():
            total.merge(stats)
        return total


class BasicExchange:
    """The one-level exchange: every worker exchanges with every other worker."""

    def __init__(
        self,
        store: ObjectStore,
        num_workers: int,
        config: Optional[ExchangeConfig] = None,
        naming: Optional[FileNaming] = None,
        tag: str = "exchange",
    ):
        if num_workers <= 0:
            raise ExchangeError("num_workers must be positive")
        self.num_workers = num_workers
        self.config = config or ExchangeConfig()
        if naming is None:
            if self.config.write_combining:
                naming = WriteCombiningNaming(bucket=tag, prefix="r0/")
            else:
                naming = MultiBucketNaming(
                    num_buckets=self.config.num_buckets, bucket_prefix=f"{tag}-b", prefix="r0/"
                )
        self._round = BasicGroupExchange(
            store=store,
            group=list(range(num_workers)),
            total_partitions=num_workers,
            route=lambda targets: targets,
            naming=naming,
            config=self.config,
        )

    def write(self, worker: int, table: Table) -> None:
        """Write phase for one worker."""
        self._round.write(worker, table)

    def read(self, worker: int) -> Table:
        """Read phase for one worker."""
        return self._round.read(worker)

    def run(self, tables: Sequence[Table]) -> List[Table]:
        """Run the full exchange for all workers (write all, then read all)."""
        if len(tables) != self.num_workers:
            raise ExchangeError(
                f"expected {self.num_workers} input tables, got {len(tables)}"
            )
        for worker, table in enumerate(tables):
            self.write(worker, table)
        return [self.read(worker) for worker in range(self.num_workers)]

    def total_stats(self) -> ExchangeStats:
        """Request counters summed over all workers."""
        return self._round.total_stats()

    def stats_per_worker(self) -> Dict[int, ExchangeStats]:
        """Per-worker request counters."""
        return dict(self._round.stats_per_worker)
