"""Basic (one-level) S3 exchange and the group-exchange building block.

``BasicGroupExchange`` implements the paper's Algorithm 1 generalised with a
routing function (Algorithm 2's ``BasicGroupExchange``): every sender
partitions its rows by the hash of the key columns, maps each row's *target
partition* to a receiver inside the group, writes one object per receiver
(or, with write combining, a single combined object), and every receiver
polls for and reads the objects addressed to it.

``BasicExchange`` is the one-level special case where the group is the whole
worker set and the routing is the identity, i.e. the O(P²)-request baseline
of the paper's cost analysis.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.s3 import ObjectMetadata, ObjectStore, parse_s3_path
from repro.config import IntegrityConfig
from repro.engine.table import Table, concat_tables, table_num_rows
from repro.errors import ExchangeError, IntegrityError, NoSuchBucketError, NoSuchKeyError
from repro.exchange.codec import (
    decode_partition,
    decode_partition_slice,
    encode_partition,
    encode_partition_set,
    is_fast_partition,
)
from repro.exchange.naming import FileNaming, MultiBucketNaming, WriteCombiningNaming
from repro.exchange.partition import (
    partition_assignments,
    scatter_by_assignment,
    slice_partition,
)
from repro.formats.compression import Compression
from repro.formats.parquet import ColumnarFile, write_table


@dataclass
class ExchangeConfig:
    """Configuration of an exchange operation."""

    #: Key columns whose hash determines the target partition.
    keys: List[str] = field(default_factory=list)
    #: Combine all partitions of one sender into a single object.
    write_combining: bool = False
    #: Number of buckets to spread files over (rate-limit bypass, §4.4.1).
    num_buckets: int = 10
    #: Compression of the partition files (FAST keeps CPU cost low).
    compression: Compression = Compression.FAST
    #: Serialise partitions with the single-pass fast codec
    #: (:mod:`repro.exchange.codec`) instead of the full LPQ file writer.
    #: Readers accept both formats regardless of this flag.
    fast_codec: bool = True
    #: How often a receiver re-checks for a missing sender file before failing.
    max_poll_attempts: int = 100
    #: Content-checksum generation/verification knobs (both default on).
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)


@dataclass
class ExchangeStats:
    """Request and byte counters accumulated by an exchange.

    ``combined_put_requests`` and ``ranged_get_requests`` are subsets of
    ``put_requests`` / ``get_requests`` that went through the write-combined
    I/O plane (one combined object per sender, one ranged GET per non-empty
    slice).  ``empty_parts_elided`` counts the requests *avoided* because a
    (sender, receiver) part was empty — a PUT skipped on the write side or a
    GET skipped on the read side.  ``bytes_touched`` is the total size of the
    objects that slice reads were served from; comparing it with
    ``bytes_read`` (the bytes actually shipped) shows how much transfer the
    ranged reads avoided.
    """

    put_requests: int = 0
    get_requests: int = 0
    list_requests: int = 0
    head_requests: int = 0
    combined_put_requests: int = 0
    ranged_get_requests: int = 0
    empty_parts_elided: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    bytes_touched: int = 0

    def merge(self, other: "ExchangeStats") -> None:
        """Fold another counter set into this one."""
        self.put_requests += other.put_requests
        self.get_requests += other.get_requests
        self.list_requests += other.list_requests
        self.head_requests += other.head_requests
        self.combined_put_requests += other.combined_put_requests
        self.ranged_get_requests += other.ranged_get_requests
        self.empty_parts_elided += other.empty_parts_elided
        self.bytes_written += other.bytes_written
        self.bytes_read += other.bytes_read
        self.bytes_touched += other.bytes_touched

    @property
    def total_requests(self) -> int:
        """All requests issued by the exchange."""
        return (
            self.put_requests
            + self.get_requests
            + self.list_requests
            + self.head_requests
        )

    def to_dict(self) -> Dict[str, int]:
        """JSON-compatible form for worker result payloads."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, int]]) -> "ExchangeStats":
        """Inverse of :meth:`to_dict`; unknown keys are ignored."""
        if not payload:
            return cls()
        known = {f.name for f in dataclass_fields(cls)}
        return cls(**{key: int(value) for key, value in payload.items() if key in known})


def discover_combined_objects(
    store: ObjectStore,
    naming: WriteCombiningNaming,
    senders: Sequence[int],
    max_poll_attempts: int,
    stats: ExchangeStats,
) -> Dict[int, Tuple[ObjectMetadata, List[int]]]:
    """Find every sender's combined object — and its offsets — with LISTs.

    One poll round LISTs each bucket of the naming scheme once; the offset
    directories ride in the object keys, so discovery needs no GET/HEAD at
    all and each sender's offsets are parsed exactly once.  Shared by the
    exchange read phase and the shuffle reduce wave.
    """
    found: Dict[int, Tuple[ObjectMetadata, List[int]]] = {}
    pending = set(senders)
    attempts = 0
    while pending:
        attempts += 1
        if attempts > max_poll_attempts:
            raise ExchangeError(
                f"missing combined objects from senders {sorted(pending)}"
            )
        # Only the buckets that still owe a pending sender are listed (LISTs
        # are billed and rate-limited like writes); satisfied buckets are not
        # re-listed on retry rounds.
        for bucket in sorted({naming.bucket_for(sender) for sender in pending}):
            stats.list_requests += 1
            try:
                listing = store.list_objects(bucket, naming.prefix)
            except NoSuchBucketError:
                continue
            for meta in listing:
                try:
                    sender, offsets = WriteCombiningNaming.parse_offsets(meta.key)
                except ExchangeError:
                    continue
                if sender in pending:
                    found[sender] = (meta, offsets)
        pending -= set(found)
    return found


def serialize_partition(
    table: Table,
    compression: Compression = Compression.FAST,
    fast: bool = True,
    checksum: bool = True,
) -> bytes:
    """Serialise a partition table into bytes (empty table -> empty bytes).

    By default the single-pass fast codec of :mod:`repro.exchange.codec` is
    used; ``fast=False`` writes a full LPQ columnar file instead (the seed
    behaviour, kept for durable outputs and legacy-format tests).
    ``checksum=False`` emits the pre-integrity format without embedded crcs.
    """
    if table_num_rows(table) == 0:
        return b""
    if fast:
        return encode_partition(table, compression, checksum=checksum)
    return write_table(table, compression=compression, checksum=checksum)


def deserialize_partition(
    data: bytes, verify: bool = True, key: Optional[str] = None
) -> Table:
    """Inverse of :func:`serialize_partition` (empty bytes -> empty table).

    Sniffs the leading format byte, so fast-codec objects and legacy LPQ
    objects (including parts of old write-combined objects) both decode.
    Embedded checksums (when present) are verified unless ``verify=False``;
    ``key`` names the object in corruption reports.
    """
    if not data:
        return {}
    if is_fast_partition(data):
        return decode_partition(data, verify=verify, key=key)
    return ColumnarFile.from_bytes(data, verify=verify, name=key).read_table()


class BasicGroupExchange:
    """One exchange round among a group of workers.

    Parameters
    ----------
    store:
        The shared object store.
    group:
        Global worker ids participating in this round, in a fixed order that
        all participants agree on (receiver slots in combined objects follow
        this order).
    total_partitions:
        Number of global partitions ``P`` (the total worker count).
    route:
        Maps an array of global target-partition ids to an array of global
        worker ids *within the group* that should receive those rows in this
        round.
    naming:
        File naming scheme.
    config:
        Exchange configuration.
    """

    def __init__(
        self,
        store: ObjectStore,
        group: Sequence[int],
        total_partitions: int,
        route: Callable[[np.ndarray], np.ndarray],
        naming: FileNaming,
        config: ExchangeConfig,
    ):
        if not group:
            raise ExchangeError("exchange group cannot be empty")
        self.store = store
        self.group = list(group)
        self.group_index = {worker: position for position, worker in enumerate(self.group)}
        self.total_partitions = total_partitions
        self.route = route
        self.naming = naming
        self.config = config
        self.stats_per_worker: Dict[int, ExchangeStats] = {}
        for bucket in naming.buckets():
            store.ensure_bucket(bucket)

    def _stats(self, worker: int) -> ExchangeStats:
        return self.stats_per_worker.setdefault(worker, ExchangeStats())

    # -- write phase -----------------------------------------------------------

    def write(self, worker: int, table: Table) -> None:
        """Partition ``table`` and write this sender's exchange objects."""
        if worker not in self.group_index:
            raise ExchangeError(f"worker {worker} is not part of this exchange group")
        stats = self._stats(worker)
        targets = partition_assignments(table, self.config.keys, self.total_partitions)
        receivers = np.asarray(self.route(targets)) if len(targets) else targets
        # Map receiver worker ids to group slots in one vectorized lookup, then
        # scatter the rows once so each receiver's part is a contiguous slice
        # (rows routed outside the group land in an overflow slot and are
        # dropped, as the per-receiver mask loop did implicitly).
        num_slots = len(self.group)
        group_array = np.asarray(self.group, dtype=np.int64)
        group_order = np.argsort(group_array, kind="stable")
        sorted_group = group_array[group_order]
        slots = np.full(len(receivers), num_slots, dtype=np.int64)
        if len(receivers):
            positions = np.minimum(
                np.searchsorted(sorted_group, receivers), num_slots - 1
            )
            in_group = sorted_group[positions] == receivers
            slots[in_group] = group_order[positions[in_group]]
        reordered, boundaries = scatter_by_assignment(table, slots, num_slots + 1)

        if self.config.write_combining:
            self._write_combined(worker, reordered, boundaries, stats)
        else:
            for slot, receiver in enumerate(self.group):
                data = serialize_partition(
                    slice_partition(reordered, boundaries, slot),
                    self.config.compression,
                    fast=self.config.fast_codec,
                    checksum=self.config.integrity.generate,
                )
                path = self.naming.path(worker, receiver)
                self.store.put_path(path, data)
                stats.put_requests += 1
                stats.bytes_written += len(data)

    def _write_combined(
        self,
        worker: int,
        reordered: Table,
        boundaries: np.ndarray,
        stats: ExchangeStats,
    ) -> None:
        if not isinstance(self.naming, WriteCombiningNaming):
            raise ExchangeError("write combining requires WriteCombiningNaming")
        num_slots = len(self.group)
        generate = self.config.integrity.generate
        if self.config.fast_codec:
            payload, offsets = encode_partition_set(
                reordered,
                boundaries[: num_slots + 1],
                self.config.compression,
                checksum=generate,
            )
        else:
            # Legacy LPQ parts: frame each non-empty slot with the full
            # columnar-file writer (old combined objects looked like this).
            blobs = [
                serialize_partition(
                    slice_partition(reordered, boundaries, slot),
                    self.config.compression,
                    fast=False,
                    checksum=generate,
                )
                for slot in range(num_slots)
            ]
            offsets = [0]
            for blob in blobs:
                offsets.append(offsets[-1] + len(blob))
            payload = b"".join(blobs)
        # Per-slice crcs ride in the key next to the offsets: receivers verify
        # their ranged GET against the directory they already hold, for free.
        crcs = (
            [
                zlib.crc32(payload[offsets[slot]:offsets[slot + 1]])
                for slot in range(num_slots)
            ]
            if generate
            else None
        )
        path = self.naming.combined_path(worker, offsets, crcs)
        self.store.put_path(path, payload)
        stats.put_requests += 1
        stats.combined_put_requests += 1
        stats.bytes_written += len(payload)

    # -- read phase -------------------------------------------------------------

    def read(self, worker: int) -> Table:
        """Read and concatenate all parts addressed to ``worker``."""
        if worker not in self.group_index:
            raise ExchangeError(f"worker {worker} is not part of this exchange group")
        stats = self._stats(worker)
        if self.config.write_combining:
            return self._read_combined(worker, stats)

        self._discover_objects(worker, stats)
        pieces: List[Table] = []
        for sender in self.group:
            path = self.naming.path(sender, worker)
            result = self.store.get_path(path)
            stats.get_requests += 1
            stats.bytes_read += len(result.data)
            stats.bytes_touched += result.metadata.size
            piece = deserialize_partition(
                result.data, verify=self.config.integrity.verify, key=path
            )
            if table_num_rows(piece):
                pieces.append(piece)
        return concat_tables(pieces)

    def _discover_objects(self, worker: int, stats: ExchangeStats) -> None:
        """Metadata-based discovery of this receiver's per-sender objects.

        Instead of the seed's exception-driven GET polling (issue the GET,
        catch ``NoSuchKey``, retry — every miss billed as a failed request),
        each poll round issues one LIST per bucket that still owes us objects
        and then point-checks the stragglers with HEAD; data is only ever
        fetched with a GET once the object is known to exist.
        """
        expected: Dict[int, Tuple[str, str]] = {
            sender: parse_s3_path(self.naming.path(sender, worker))
            for sender in self.group
        }
        prefix = getattr(self.naming, "prefix", "")
        missing = set(self.group)
        attempts = 0
        while missing:
            attempts += 1
            if attempts > self.config.max_poll_attempts:
                raise ExchangeError(
                    f"missing exchange objects from senders {sorted(missing)}"
                )
            listed: set = set()
            for bucket in sorted({expected[sender][0] for sender in missing}):
                stats.list_requests += 1
                for meta in self.store.list_objects(bucket, prefix):
                    listed.add((meta.bucket, meta.key))
            missing = {
                sender for sender in missing if expected[sender] not in listed
            }
            # Stragglers may have landed between the LIST and now: point-check
            # their exact keys before the next (rate-limited) LIST round.
            still_missing = set()
            for sender in sorted(missing):
                stats.head_requests += 1
                try:
                    self.store.head_object(*expected[sender])
                except NoSuchKeyError:
                    still_missing.add(sender)
            missing = still_missing

    def _read_combined(self, worker: int, stats: ExchangeStats) -> Table:
        naming = self.naming
        assert isinstance(naming, WriteCombiningNaming)
        my_slot = self.group_index[worker]
        found = discover_combined_objects(
            self.store, naming, self.group, self.config.max_poll_attempts, stats
        )

        verify = self.config.integrity.verify
        pieces: List[Table] = []
        for sender in self.group:
            meta, offsets = found[sender]
            if len(offsets) != len(self.group) + 1:
                raise ExchangeError(
                    f"combined object {meta.path!r} has {len(offsets) - 1} parts, "
                    f"expected {len(self.group)}"
                )
            try:
                _, _, crcs = WriteCombiningNaming.parse_directory(meta.key)
            except ExchangeError:
                crcs = None
            start, end = offsets[my_slot], offsets[my_slot + 1]
            if end > start:
                result = self.store.get_path(meta.path, start, end)
                stats.get_requests += 1
                stats.ranged_get_requests += 1
                stats.bytes_read += len(result.data)
                stats.bytes_touched += meta.size
                if verify and len(result.data) != end - start:
                    raise IntegrityError(
                        "ranged GET returned wrong slice length",
                        key=meta.path, layer="slice.length", offset=start,
                        expected=end - start, actual=len(result.data),
                    )
                if verify and crcs is not None:
                    actual = zlib.crc32(result.data)
                    if actual != crcs[my_slot]:
                        raise IntegrityError(
                            f"slice of receiver {worker} failed its directory crc",
                            key=meta.path, layer="slice.crc", offset=start,
                            expected=crcs[my_slot], actual=actual,
                        )
                piece = decode_partition_slice(
                    result.data, verify=verify, key=meta.path
                )
                if table_num_rows(piece):
                    pieces.append(piece)
            else:
                # Zero-length part: the empty partition costs no request.
                stats.empty_parts_elided += 1
        return concat_tables(pieces)

    # -- aggregate statistics -----------------------------------------------------

    def total_stats(self) -> ExchangeStats:
        """Sum of the per-worker request counters."""
        total = ExchangeStats()
        for stats in self.stats_per_worker.values():
            total.merge(stats)
        return total


class BasicExchange:
    """The one-level exchange: every worker exchanges with every other worker."""

    def __init__(
        self,
        store: ObjectStore,
        num_workers: int,
        config: Optional[ExchangeConfig] = None,
        naming: Optional[FileNaming] = None,
        tag: str = "exchange",
    ):
        if num_workers <= 0:
            raise ExchangeError("num_workers must be positive")
        self.num_workers = num_workers
        self.config = config or ExchangeConfig()
        if naming is None:
            if self.config.write_combining:
                naming = WriteCombiningNaming(bucket=tag, prefix="r0/")
            else:
                naming = MultiBucketNaming(
                    num_buckets=self.config.num_buckets, bucket_prefix=f"{tag}-b", prefix="r0/"
                )
        self._round = BasicGroupExchange(
            store=store,
            group=list(range(num_workers)),
            total_partitions=num_workers,
            route=lambda targets: targets,
            naming=naming,
            config=self.config,
        )

    def write(self, worker: int, table: Table) -> None:
        """Write phase for one worker."""
        self._round.write(worker, table)

    def read(self, worker: int) -> Table:
        """Read phase for one worker."""
        return self._round.read(worker)

    def run(self, tables: Sequence[Table]) -> List[Table]:
        """Run the full exchange for all workers (write all, then read all)."""
        if len(tables) != self.num_workers:
            raise ExchangeError(
                f"expected {self.num_workers} input tables, got {len(tables)}"
            )
        for worker, table in enumerate(tables):
            self.write(worker, table)
        return [self.read(worker) for worker in range(self.num_workers)]

    def total_stats(self) -> ExchangeStats:
        """Request counters summed over all workers."""
        return self._round.total_stats()

    def stats_per_worker(self) -> Dict[int, ExchangeStats]:
        """Per-worker request counters."""
        return dict(self._round.stats_per_worker)
