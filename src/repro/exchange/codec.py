"""Fast codec for shuffle-internal partition objects.

Every shuffle hop used to round-trip each partition through the full LPQ
columnar-file writer (:mod:`repro.formats.parquet`): per-row-group encoding
choice, min/max statistics, chunk bookkeeping, and a JSON footer — machinery
a *durable* file needs, but pure overhead for a partition object whose only
reader is the exchange peer a few hundred milliseconds later.

This codec ships a partition the way :mod:`repro.engine.payload` ships worker
results: one dtype-tagged raw buffer per column, written and read with a
single ``tobytes`` / ``np.frombuffer`` pass.  Layout::

    +------+------------+-------------+----------------------------------+
    | 0x01 | hdr length | JSON header | column buffers (one compressed   |
    | tag  | uint32 LE  |             |  block, codec named in header)   |
    +------+------------+-------------+----------------------------------+

with a JSON header of the form::

    {"num_rows": 1234, "compression": "fast",
     "columns": [{"name": "k", "dtype": "<i8", "nbytes": 9872},
                 {"name": "tag", "dtype": "object", "values": [...]}]}

The leading *format byte* ``0x01`` distinguishes fast-codec objects from
legacy LPQ files (which start with ``b"LPQ1"``, i.e. ``0x4C``), so
:func:`repro.exchange.basic.deserialize_partition` decodes old partition
objects — including the parts of write-combined objects — unchanged.
Columns holding Python objects cannot be shipped as raw buffers and fall
back to a JSON list inside the header, mirroring the payload codec.

**Multi-partition framing.**  :func:`encode_partition_set` serialises *all*
partitions of one sender into a single buffer in receiver order, returning
the byte-offset directory alongside it: partition ``p`` occupies
``offsets[p]:offsets[p + 1]`` and empty partitions occupy zero bytes.  Each
slice is a self-contained fast-codec blob, so a receiver decodes its share
with :func:`decode_partition_slice` straight from a ranged GET of its slice,
without downloading (or even touching) any other receiver's bytes.  This is
the write-combining layout of the paper's §4.4 cost analysis: one PUT per
sender, one ranged GET per non-empty (sender, receiver) pair.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.table import Table, table_num_rows
from repro.errors import CorruptFileError, IntegrityError
from repro.formats.compression import Compression, compress, decompress

#: Format byte of fast-codec partition objects (legacy LPQ starts with 0x4C).
FAST_PARTITION_TAG = 0x01

#: Format byte of *checksummed* fast-codec partition objects.  Same layout as
#: :data:`FAST_PARTITION_TAG` frames, except the prefix also carries a crc32
#: of the header bytes, the header carries a ``body_crc`` over the framed
#: (compressed) body, and every raw column entry carries a ``crc`` over its
#: decompressed buffer — complete byte coverage, so any flipped bit in the
#: frame fails either the prefix parse or one of the three checksum layers.
CHECKED_PARTITION_TAG = 0x02

#: Framing prefix: format byte + uint32 header length, little endian.
_PREFIX = struct.Struct("<BI")

#: Checksummed framing prefix: format byte + uint32 header length + uint32
#: crc32 of the header bytes, little endian.
_CHECKED_PREFIX = struct.Struct("<BII")


def is_fast_partition(data: Union[bytes, bytearray, memoryview]) -> bool:
    """Whether ``data`` is a fast-codec partition object (either tag)."""
    return len(data) >= _PREFIX.size and data[0] in (
        FAST_PARTITION_TAG,
        CHECKED_PARTITION_TAG,
    )


def _encode_blob(
    names: Sequence[str],
    arrays: Sequence[np.ndarray],
    num_rows: int,
    compression: Compression,
    checksum: bool = True,
) -> bytes:
    """Frame one partition's columns as a self-contained fast-codec blob."""
    columns: List[Dict] = []
    buffers: List[bytes] = []
    for name, array in zip(names, arrays):
        if array.dtype.hasobject:
            columns.append({"name": name, "dtype": "object", "values": array.tolist()})
        else:
            raw = array.tobytes()
            column = {"name": name, "dtype": array.dtype.str, "nbytes": len(raw)}
            if checksum:
                column["crc"] = zlib.crc32(raw)
            columns.append(column)
            buffers.append(raw)
    body = compress(b"".join(buffers), compression)
    payload = {
        "num_rows": int(num_rows), "compression": compression.value, "columns": columns
    }
    if checksum:
        payload["body_crc"] = zlib.crc32(body)
        header = json.dumps(payload).encode("utf-8")
        prefix = _CHECKED_PREFIX.pack(
            CHECKED_PARTITION_TAG, len(header), zlib.crc32(header)
        )
        return prefix + header + body
    header = json.dumps(payload).encode("utf-8")
    return _PREFIX.pack(FAST_PARTITION_TAG, len(header)) + header + body


def encode_partition(
    table: Table,
    compression: Compression = Compression.FAST,
    checksum: bool = True,
) -> bytes:
    """Serialise a partition table into the fast single-pass format.

    ``checksum`` (default on, per :class:`~repro.config.IntegrityConfig`)
    embeds header/body/per-column crc32 digests; pass ``False`` to emit the
    pre-integrity ``0x01`` frame.
    """
    names = list(table.keys())
    arrays = [np.ascontiguousarray(table[name]) for name in names]
    return _encode_blob(
        names, arrays, table_num_rows(table), compression, checksum=checksum
    )


def encode_partition_set(
    reordered: Table,
    boundaries: Union[Sequence[int], np.ndarray],
    compression: Compression = Compression.FAST,
    checksum: bool = True,
) -> Tuple[bytes, List[int]]:
    """Serialise every partition of a scattered table into one buffer.

    ``reordered``/``boundaries`` are the output of
    :func:`repro.exchange.partition.scatter_by_assignment`: partition ``p``
    occupies rows ``boundaries[p]:boundaries[p + 1]`` of every column.
    Returns ``(payload, offsets)`` where ``offsets`` has one entry per
    partition plus a final total length, i.e. partition ``p``'s slice is
    ``payload[offsets[p]:offsets[p + 1]]`` — a self-contained blob that
    :func:`decode_partition_slice` reads from a ranged GET.  Empty partitions
    occupy zero bytes and are never serialised at all, so a sender pays
    nothing — no framing, no compression call — for receivers it has no rows
    for.
    """
    num_partitions = len(boundaries) - 1
    names = list(reordered.keys())
    # One contiguity pass per column for the whole set; partition slices of a
    # contiguous array are themselves contiguous, so the per-partition
    # ``tobytes`` below copies each row range exactly once.
    arrays = [np.ascontiguousarray(reordered[name]) for name in names]
    blobs: List[bytes] = []
    offsets: List[int] = [0]
    for partition in range(num_partitions):
        start, end = int(boundaries[partition]), int(boundaries[partition + 1])
        if end <= start:
            offsets.append(offsets[-1])
            continue
        blob = _encode_blob(
            names,
            [array[start:end] for array in arrays],
            end - start,
            compression,
            checksum=checksum,
        )
        blobs.append(blob)
        offsets.append(offsets[-1] + len(blob))
    return b"".join(blobs), offsets


def decode_partition_slice(
    data: Union[bytes, bytearray, memoryview],
    copy: bool = False,
    verify: bool = True,
    key: Optional[str] = None,
) -> Table:
    """Decode one receiver's slice of a combined partition object.

    Zero-length slices (empty partitions) decode to an empty table without
    any parsing.  The slice format is sniffed per blob, so combined objects
    whose parts were written by an old LPQ sender still decode.  By default
    the columns are read-only zero-copy views of the slice bytes (the reduce
    side folds them straight into a merge); pass ``copy=True`` for mutable
    columns.  ``key`` names the object in corruption reports.
    """
    if not data:
        return {}
    if is_fast_partition(data):
        return decode_partition(data, copy=copy, verify=verify, key=key)
    from repro.formats.parquet import ColumnarFile

    return ColumnarFile.from_bytes(bytes(data), name=key).read_table()


def decode_partition(
    data: Union[bytes, bytearray, memoryview],
    copy: bool = True,
    verify: bool = True,
    key: Optional[str] = None,
) -> Table:
    """Inverse of :func:`encode_partition`.

    ``copy=False`` returns read-only ``frombuffer`` views of the body where
    possible instead of materialising fresh arrays.  Checksummed (``0x02``)
    frames are verified on read unless ``verify=False``; a mismatch raises
    :class:`~repro.errors.IntegrityError` with ``key`` as the provenance.
    Pre-integrity ``0x01`` frames always decode without verification.
    """
    if not is_fast_partition(data):
        raise CorruptFileError(
            "not a fast-codec partition object", key=key, layer="codec.prefix"
        )
    checked = data[0] == CHECKED_PARTITION_TAG
    prefix = _CHECKED_PREFIX if checked else _PREFIX
    if len(data) < prefix.size:
        raise CorruptFileError(
            "truncated fast partition prefix", key=key, layer="codec.prefix"
        )
    header_crc: Optional[int] = None
    if checked:
        _, header_length, header_crc = prefix.unpack_from(data)
    else:
        _, header_length = prefix.unpack_from(data)
    header_end = prefix.size + header_length
    if len(data) < header_end:
        raise CorruptFileError(
            "truncated fast partition header", key=key, layer="codec.header"
        )
    header_bytes = bytes(data[prefix.size:header_end])
    if verify and header_crc is not None:
        actual = zlib.crc32(header_bytes)
        if actual != header_crc:
            raise IntegrityError(
                "fast partition header checksum mismatch",
                key=key, layer="codec.header",
                expected=header_crc, actual=actual,
            )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptFileError(
            f"invalid fast partition header: {exc}", key=key, layer="codec.header"
        ) from exc
    body_crc = header.get("body_crc")
    if verify and body_crc is not None:
        actual = zlib.crc32(bytes(data[header_end:]))
        if actual != body_crc:
            raise IntegrityError(
                "fast partition body checksum mismatch",
                key=key, layer="codec.body",
                expected=body_crc, actual=actual,
            )
    compression = Compression(header["compression"])
    if compression is Compression.NONE:
        # Zero-copy hot path: an uncompressed body is sliced, not copied, so a
        # partition living in a shared-memory segment decodes into views of
        # the segment itself (``memoryview`` slices reference the same buffer).
        body = data[header_end:] if isinstance(data, (bytes, memoryview)) else bytes(data[header_end:])
    else:
        body = decompress(bytes(data[header_end:]), compression)

    table: Table = {}
    num_rows = int(header["num_rows"])
    offset = 0
    for column in header["columns"]:
        name = column["name"]
        if column["dtype"] == "object":
            table[name] = np.asarray(column["values"], dtype=object)
        else:
            dtype = np.dtype(column["dtype"])
            nbytes = int(column["nbytes"])
            if offset + nbytes > len(body) or nbytes % dtype.itemsize:
                raise CorruptFileError(
                    f"truncated column buffer for {name!r}",
                    key=key, layer="codec.column", offset=offset,
                )
            expected_crc = column.get("crc")
            if verify and expected_crc is not None:
                actual = zlib.crc32(bytes(body[offset:offset + nbytes]))
                if actual != expected_crc:
                    raise IntegrityError(
                        f"column {name!r} buffer checksum mismatch",
                        key=key, layer="codec.column", offset=offset,
                        expected=expected_crc, actual=actual,
                    )
            # frombuffer is a read-only view of the body; copy (by default) so
            # callers can sort/mutate the columns like any other table.
            view = np.frombuffer(
                body, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
            )
            table[name] = view.copy() if copy else view
            offset += nbytes
        if len(table[name]) != num_rows:
            raise CorruptFileError(
                f"column {name!r} has {len(table[name])} values, expected {num_rows}",
                key=key, layer="codec.column",
            )
    return table
