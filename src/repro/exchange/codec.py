"""Fast codec for shuffle-internal partition objects.

Every shuffle hop used to round-trip each partition through the full LPQ
columnar-file writer (:mod:`repro.formats.parquet`): per-row-group encoding
choice, min/max statistics, chunk bookkeeping, and a JSON footer — machinery
a *durable* file needs, but pure overhead for a partition object whose only
reader is the exchange peer a few hundred milliseconds later.

This codec ships a partition the way :mod:`repro.engine.payload` ships worker
results: one dtype-tagged raw buffer per column, written and read with a
single ``tobytes`` / ``np.frombuffer`` pass.  Layout::

    +------+------------+-------------+----------------------------------+
    | 0x01 | hdr length | JSON header | column buffers (one compressed   |
    | tag  | uint32 LE  |             |  block, codec named in header)   |
    +------+------------+-------------+----------------------------------+

with a JSON header of the form::

    {"num_rows": 1234, "compression": "fast",
     "columns": [{"name": "k", "dtype": "<i8", "nbytes": 9872},
                 {"name": "tag", "dtype": "object", "values": [...]}]}

The leading *format byte* ``0x01`` distinguishes fast-codec objects from
legacy LPQ files (which start with ``b"LPQ1"``, i.e. ``0x4C``), so
:func:`repro.exchange.basic.deserialize_partition` decodes old partition
objects — including the parts of write-combined objects — unchanged.
Columns holding Python objects cannot be shipped as raw buffers and fall
back to a JSON list inside the header, mirroring the payload codec.

**Multi-partition framing.**  :func:`encode_partition_set` serialises *all*
partitions of one sender into a single buffer in receiver order, returning
the byte-offset directory alongside it: partition ``p`` occupies
``offsets[p]:offsets[p + 1]`` and empty partitions occupy zero bytes.  Each
slice is a self-contained fast-codec blob, so a receiver decodes its share
with :func:`decode_partition_slice` straight from a ranged GET of its slice,
without downloading (or even touching) any other receiver's bytes.  This is
the write-combining layout of the paper's §4.4 cost analysis: one PUT per
sender, one ranged GET per non-empty (sender, receiver) pair.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.engine.table import Table, table_num_rows
from repro.errors import CorruptFileError
from repro.formats.compression import Compression, compress, decompress

#: Format byte of fast-codec partition objects (legacy LPQ starts with 0x4C).
FAST_PARTITION_TAG = 0x01

#: Framing prefix: format byte + uint32 header length, little endian.
_PREFIX = struct.Struct("<BI")


def is_fast_partition(data: Union[bytes, bytearray, memoryview]) -> bool:
    """Whether ``data`` is a fast-codec partition object."""
    return len(data) >= _PREFIX.size and data[0] == FAST_PARTITION_TAG


def _encode_blob(
    names: Sequence[str],
    arrays: Sequence[np.ndarray],
    num_rows: int,
    compression: Compression,
) -> bytes:
    """Frame one partition's columns as a self-contained fast-codec blob."""
    columns: List[Dict] = []
    buffers: List[bytes] = []
    for name, array in zip(names, arrays):
        if array.dtype.hasobject:
            columns.append({"name": name, "dtype": "object", "values": array.tolist()})
        else:
            raw = array.tobytes()
            columns.append({"name": name, "dtype": array.dtype.str, "nbytes": len(raw)})
            buffers.append(raw)
    body = compress(b"".join(buffers), compression)
    header = json.dumps(
        {"num_rows": int(num_rows), "compression": compression.value, "columns": columns}
    ).encode("utf-8")
    return _PREFIX.pack(FAST_PARTITION_TAG, len(header)) + header + body


def encode_partition(table: Table, compression: Compression = Compression.FAST) -> bytes:
    """Serialise a partition table into the fast single-pass format."""
    names = list(table.keys())
    arrays = [np.ascontiguousarray(table[name]) for name in names]
    return _encode_blob(names, arrays, table_num_rows(table), compression)


def encode_partition_set(
    reordered: Table,
    boundaries: Union[Sequence[int], np.ndarray],
    compression: Compression = Compression.FAST,
) -> Tuple[bytes, List[int]]:
    """Serialise every partition of a scattered table into one buffer.

    ``reordered``/``boundaries`` are the output of
    :func:`repro.exchange.partition.scatter_by_assignment`: partition ``p``
    occupies rows ``boundaries[p]:boundaries[p + 1]`` of every column.
    Returns ``(payload, offsets)`` where ``offsets`` has one entry per
    partition plus a final total length, i.e. partition ``p``'s slice is
    ``payload[offsets[p]:offsets[p + 1]]`` — a self-contained blob that
    :func:`decode_partition_slice` reads from a ranged GET.  Empty partitions
    occupy zero bytes and are never serialised at all, so a sender pays
    nothing — no framing, no compression call — for receivers it has no rows
    for.
    """
    num_partitions = len(boundaries) - 1
    names = list(reordered.keys())
    # One contiguity pass per column for the whole set; partition slices of a
    # contiguous array are themselves contiguous, so the per-partition
    # ``tobytes`` below copies each row range exactly once.
    arrays = [np.ascontiguousarray(reordered[name]) for name in names]
    blobs: List[bytes] = []
    offsets: List[int] = [0]
    for partition in range(num_partitions):
        start, end = int(boundaries[partition]), int(boundaries[partition + 1])
        if end <= start:
            offsets.append(offsets[-1])
            continue
        blob = _encode_blob(
            names, [array[start:end] for array in arrays], end - start, compression
        )
        blobs.append(blob)
        offsets.append(offsets[-1] + len(blob))
    return b"".join(blobs), offsets


def decode_partition_slice(data: Union[bytes, bytearray, memoryview], copy: bool = False) -> Table:
    """Decode one receiver's slice of a combined partition object.

    Zero-length slices (empty partitions) decode to an empty table without
    any parsing.  The slice format is sniffed per blob, so combined objects
    whose parts were written by an old LPQ sender still decode.  By default
    the columns are read-only zero-copy views of the slice bytes (the reduce
    side folds them straight into a merge); pass ``copy=True`` for mutable
    columns.
    """
    if not data:
        return {}
    if is_fast_partition(data):
        return decode_partition(data, copy=copy)
    from repro.formats.parquet import ColumnarFile

    return ColumnarFile.from_bytes(bytes(data)).read_table()


def decode_partition(data: Union[bytes, bytearray, memoryview], copy: bool = True) -> Table:
    """Inverse of :func:`encode_partition`.

    ``copy=False`` returns read-only ``frombuffer`` views of the body where
    possible instead of materialising fresh arrays.
    """
    if not is_fast_partition(data):
        raise CorruptFileError("not a fast-codec partition object")
    _, header_length = _PREFIX.unpack_from(data)
    header_end = _PREFIX.size + header_length
    if len(data) < header_end:
        raise CorruptFileError("truncated fast partition header")
    try:
        header = json.loads(bytes(data[_PREFIX.size:header_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptFileError(f"invalid fast partition header: {exc}") from exc
    compression = Compression(header["compression"])
    if compression is Compression.NONE:
        # Zero-copy hot path: an uncompressed body is sliced, not copied, so a
        # partition living in a shared-memory segment decodes into views of
        # the segment itself (``memoryview`` slices reference the same buffer).
        body = data[header_end:] if isinstance(data, (bytes, memoryview)) else bytes(data[header_end:])
    else:
        body = decompress(bytes(data[header_end:]), compression)

    table: Table = {}
    num_rows = int(header["num_rows"])
    offset = 0
    for column in header["columns"]:
        name = column["name"]
        if column["dtype"] == "object":
            table[name] = np.asarray(column["values"], dtype=object)
        else:
            dtype = np.dtype(column["dtype"])
            nbytes = int(column["nbytes"])
            if offset + nbytes > len(body) or nbytes % dtype.itemsize:
                raise CorruptFileError(f"truncated column buffer for {name!r}")
            # frombuffer is a read-only view of the body; copy (by default) so
            # callers can sort/mutate the columns like any other table.
            view = np.frombuffer(
                body, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
            )
            table[name] = view.copy() if copy else view
            offset += nbytes
        if len(table[name]) != num_rows:
            raise CorruptFileError(
                f"column {name!r} has {len(table[name])} values, expected {num_rows}"
            )
    return table
