"""Fast codec for shuffle-internal partition objects.

Every shuffle hop used to round-trip each partition through the full LPQ
columnar-file writer (:mod:`repro.formats.parquet`): per-row-group encoding
choice, min/max statistics, chunk bookkeeping, and a JSON footer — machinery
a *durable* file needs, but pure overhead for a partition object whose only
reader is the exchange peer a few hundred milliseconds later.

This codec ships a partition the way :mod:`repro.engine.payload` ships worker
results: one dtype-tagged raw buffer per column, written and read with a
single ``tobytes`` / ``np.frombuffer`` pass.  Layout::

    +------+------------+-------------+----------------------------------+
    | 0x01 | hdr length | JSON header | column buffers (one compressed   |
    | tag  | uint32 LE  |             |  block, codec named in header)   |
    +------+------------+-------------+----------------------------------+

with a JSON header of the form::

    {"num_rows": 1234, "compression": "fast",
     "columns": [{"name": "k", "dtype": "<i8", "nbytes": 9872},
                 {"name": "tag", "dtype": "object", "values": [...]}]}

The leading *format byte* ``0x01`` distinguishes fast-codec objects from
legacy LPQ files (which start with ``b"LPQ1"``, i.e. ``0x4C``), so
:func:`repro.exchange.basic.deserialize_partition` decodes old partition
objects — including the parts of write-combined objects — unchanged.
Columns holding Python objects cannot be shipped as raw buffers and fall
back to a JSON list inside the header, mirroring the payload codec.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Union

import numpy as np

from repro.engine.table import Table, table_num_rows
from repro.errors import CorruptFileError
from repro.formats.compression import Compression, compress, decompress

#: Format byte of fast-codec partition objects (legacy LPQ starts with 0x4C).
FAST_PARTITION_TAG = 0x01

#: Framing prefix: format byte + uint32 header length, little endian.
_PREFIX = struct.Struct("<BI")


def is_fast_partition(data: Union[bytes, bytearray]) -> bool:
    """Whether ``data`` is a fast-codec partition object."""
    return len(data) >= _PREFIX.size and data[0] == FAST_PARTITION_TAG


def encode_partition(table: Table, compression: Compression = Compression.FAST) -> bytes:
    """Serialise a partition table into the fast single-pass format."""
    columns: List[Dict] = []
    buffers: List[bytes] = []
    for name, column in table.items():
        array = np.ascontiguousarray(column)
        if array.dtype.hasobject:
            columns.append({"name": name, "dtype": "object", "values": array.tolist()})
        else:
            raw = array.tobytes()
            columns.append({"name": name, "dtype": array.dtype.str, "nbytes": len(raw)})
            buffers.append(raw)
    body = compress(b"".join(buffers), compression)
    header = json.dumps(
        {
            "num_rows": int(table_num_rows(table)),
            "compression": compression.value,
            "columns": columns,
        }
    ).encode("utf-8")
    return _PREFIX.pack(FAST_PARTITION_TAG, len(header)) + header + body


def decode_partition(data: Union[bytes, bytearray]) -> Table:
    """Inverse of :func:`encode_partition`."""
    if not is_fast_partition(data):
        raise CorruptFileError("not a fast-codec partition object")
    _, header_length = _PREFIX.unpack_from(data)
    header_end = _PREFIX.size + header_length
    if len(data) < header_end:
        raise CorruptFileError("truncated fast partition header")
    try:
        header = json.loads(bytes(data[_PREFIX.size:header_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptFileError(f"invalid fast partition header: {exc}") from exc
    body = decompress(bytes(data[header_end:]), Compression(header["compression"]))

    table: Table = {}
    num_rows = int(header["num_rows"])
    offset = 0
    for column in header["columns"]:
        name = column["name"]
        if column["dtype"] == "object":
            table[name] = np.asarray(column["values"], dtype=object)
        else:
            dtype = np.dtype(column["dtype"])
            nbytes = int(column["nbytes"])
            if offset + nbytes > len(body) or nbytes % dtype.itemsize:
                raise CorruptFileError(f"truncated column buffer for {name!r}")
            # frombuffer is a read-only view of the body; copy so callers can
            # sort/mutate the columns like any other table.
            table[name] = np.frombuffer(
                body, dtype=dtype, count=nbytes // dtype.itemsize, offset=offset
            ).copy()
            offset += nbytes
        if len(table[name]) != num_rows:
            raise CorruptFileError(
                f"column {name!r} has {len(table[name])} values, expected {num_rows}"
            )
    return table
