"""File naming schemes for S3-based exchange.

The ``FormatFileName`` function of the paper's Algorithm 1 decides where a
sender writes the partition destined for a receiver.  Three schemes are
provided:

* :class:`SingleBucketNaming` — everything in one bucket (the naive baseline,
  subject to per-bucket rate limits);
* :class:`MultiBucketNaming` — the receiver id selects one of B buckets,
  multiplying the aggregate rate limit by B (the paper's
  ``s3://bucket-{r%10}/...`` trick);
* :class:`WriteCombiningNaming` — all partitions of a sender go into a single
  object; the per-receiver offsets are encoded into the object key so that
  receivers discover them with a LIST request instead of extra GETs.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

from repro.config import S3_MAX_KEY_LENGTH
from repro.errors import ExchangeError


class FileNaming(abc.ABC):
    """Maps (sender, receiver) pairs to object-store paths."""

    @abc.abstractmethod
    def path(self, sender: int, receiver: int) -> str:
        """Path of the object carrying data from ``sender`` to ``receiver``."""

    @abc.abstractmethod
    def buckets(self) -> List[str]:
        """All bucket names this scheme can produce (created at install time)."""


class SingleBucketNaming(FileNaming):
    """All exchange files in one bucket."""

    def __init__(self, bucket: str = "exchange", prefix: str = ""):
        self.bucket = bucket
        self.prefix = prefix

    def path(self, sender: int, receiver: int) -> str:
        return f"s3://{self.bucket}/{self.prefix}sender-{sender}/receiver-{receiver}"

    def buckets(self) -> List[str]:
        return [self.bucket]


class MultiBucketNaming(FileNaming):
    """Spread receivers over ``num_buckets`` buckets to multiply rate limits."""

    def __init__(self, num_buckets: int = 10, bucket_prefix: str = "exchange-b", prefix: str = ""):
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        self.num_buckets = num_buckets
        self.bucket_prefix = bucket_prefix
        self.prefix = prefix

    def bucket_for(self, receiver: int) -> str:
        """Bucket that holds all files destined for ``receiver``."""
        return f"{self.bucket_prefix}{receiver % self.num_buckets}"

    def path(self, sender: int, receiver: int) -> str:
        return (
            f"s3://{self.bucket_for(receiver)}/"
            f"{self.prefix}sender-{sender}/receiver-{receiver}"
        )

    def buckets(self) -> List[str]:
        return [f"{self.bucket_prefix}{index}" for index in range(self.num_buckets)]


class WriteCombiningNaming(FileNaming):
    """One combined object per sender, offsets encoded in the key.

    The combined object concatenates the partitions for all receivers in
    receiver order; the key ends with an encoded offset list, so receivers
    obtain every sender's offsets from a single LIST request.  Keys are
    limited to :data:`~repro.config.S3_MAX_KEY_LENGTH` bytes, which bounds the
    number of receivers this scheme supports — enough for the group sizes of
    the multi-level exchange (paper §4.4.3).
    """

    def __init__(self, bucket: str = "exchange", prefix: str = "", num_buckets: int = 1):
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        self.bucket = bucket
        self.prefix = prefix
        self.num_buckets = num_buckets

    def bucket_for(self, sender: int) -> str:
        """Bucket that holds the combined object written by ``sender``."""
        if self.num_buckets == 1:
            return self.bucket
        return f"{self.bucket}-{sender % self.num_buckets}"

    # The combined key ignores the receiver (all receivers share the object).
    def path(self, sender: int, receiver: int) -> str:
        return f"s3://{self.bucket_for(sender)}/{self.prefix}sender-{sender}"

    def combined_key(
        self,
        sender: int,
        offsets: Sequence[int],
        crcs: Optional[Sequence[int]] = None,
    ) -> str:
        """Key for the combined object, with ``offsets`` encoded at the end.

        ``offsets`` has one entry per receiver slot plus a final total length,
        i.e. ``offsets[r]`` is the first byte of receiver ``r``'s part and
        ``offsets[r+1]`` its end.  ``crcs`` optionally appends a ``.crc-``
        segment with one crc32 (hex, 8 chars) per receiver slice, so a
        receiver can verify its ranged GET against the directory it already
        holds — no extra request, and truncated or bit-flipped slices are
        caught before decode.
        """
        encoded = "-".join(str(value) for value in offsets)
        key = f"{self.prefix}sender-{sender}.off-{encoded}"
        if crcs is not None:
            key += ".crc-" + "-".join(f"{value:08x}" for value in crcs)
        if len(key) > S3_MAX_KEY_LENGTH:
            raise ExchangeError(
                f"encoded offsets of {len(offsets)} receivers exceed the "
                f"{S3_MAX_KEY_LENGTH}-byte key limit; use fewer receivers per group"
            )
        return key

    def combined_path(
        self,
        sender: int,
        offsets: Sequence[int],
        crcs: Optional[Sequence[int]] = None,
    ) -> str:
        """Full path of the combined object."""
        return (
            f"s3://{self.bucket_for(sender)}/"
            f"{self.combined_key(sender, offsets, crcs)}"
        )

    def list_prefix(self, sender: int) -> str:
        """Prefix that matches the combined object of ``sender``."""
        return f"{self.prefix}sender-{sender}.off-"

    @staticmethod
    def parse_directory(key: str) -> Tuple[int, List[int], Optional[List[int]]]:
        """Extract ``(sender, offsets, slice crcs or None)`` from a key.

        Keys written before the integrity plane carry no ``.crc-`` segment
        and parse with ``crcs=None`` — verification is simply skipped.
        """
        try:
            head, encoded = key.rsplit(".off-", 1)
            sender = int(head.rsplit("sender-", 1)[1])
            encoded, _, crc_part = encoded.partition(".crc-")
            offsets = [int(value) for value in encoded.split("-")]
            crcs = (
                [int(value, 16) for value in crc_part.split("-")]
                if crc_part
                else None
            )
        except (ValueError, IndexError) as exc:
            raise ExchangeError(f"cannot parse combined key {key!r}") from exc
        return sender, offsets, crcs

    @staticmethod
    def parse_offsets(key: str) -> Tuple[int, List[int]]:
        """Extract ``(sender, offsets)`` from a combined-object key."""
        sender, offsets, _ = WriteCombiningNaming.parse_directory(key)
        return sender, offsets

    def buckets(self) -> List[str]:
        if self.num_buckets == 1:
            return [self.bucket]
        return [f"{self.bucket}-{index}" for index in range(self.num_buckets)]
