"""In-memory (DRAM) partitioning of tables.

Each worker splits its share of the relation into P partitions by hashing the
key column(s) — the ``DramPartitioning`` routine of the paper's Algorithm 1.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.engine.table import Table, table_num_rows, take_rows
from repro.errors import UnknownColumnError

#: Multiplier of the Knuth/Fibonacci multiplicative hash for 64-bit keys.
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def hash_values(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit hash of a numeric column."""
    as_int = np.asarray(values).astype(np.float64).view(np.uint64)
    with np.errstate(over="ignore"):
        mixed = as_int * _HASH_MULTIPLIER
        mixed ^= mixed >> np.uint64(29)
        mixed = mixed * _HASH_MULTIPLIER
        mixed ^= mixed >> np.uint64(32)
    return mixed


def partition_assignments(
    table: Table, keys: Sequence[str], num_partitions: int
) -> np.ndarray:
    """Partition index (0..P-1) of every row, by hash of the key columns."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    num_rows = table_num_rows(table)
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64)
    if not keys:
        # Round-robin partitioning when no keys are given.
        return np.arange(num_rows, dtype=np.int64) % num_partitions
    missing = [key for key in keys if key not in table]
    if missing:
        raise UnknownColumnError(", ".join(missing))
    combined = np.zeros(num_rows, dtype=np.uint64)
    for key in keys:
        combined ^= hash_values(table[key])
    return (combined % np.uint64(num_partitions)).astype(np.int64)


def hash_partition(
    table: Table, keys: Sequence[str], num_partitions: int
) -> Dict[int, Table]:
    """Split a table into per-partition tables.

    Only non-empty partitions appear in the result, mirroring the fact that a
    sender only writes files for receivers it has data for.
    """
    assignment = partition_assignments(table, keys, num_partitions)
    partitions: Dict[int, Table] = {}
    for partition in np.unique(assignment):
        mask = assignment == partition
        partitions[int(partition)] = take_rows(table, np.flatnonzero(mask))
    return partitions
