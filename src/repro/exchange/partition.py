"""In-memory (DRAM) partitioning of tables.

Each worker splits its share of the relation into P partitions by hashing the
key column(s) — the ``DramPartitioning`` routine of the paper's Algorithm 1.

The split is a *single-pass scatter*: rows are reordered once by a stable
argsort of their partition assignment, after which every partition is one
contiguous slice of the reordered columns.  That costs O(N log N) plus one
gather per column, instead of the O(N·P) full-array mask scans of the naive
per-partition loop (kept as :func:`hash_partition_masked` as the reference
implementation for parity tests and benchmarks).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.engine.table import Table, table_num_rows, take_rows
from repro.errors import UnknownColumnError

#: Multiplier of the Knuth/Fibonacci multiplicative hash for 64-bit keys.
_HASH_MULTIPLIER = np.uint64(0x9E3779B97F4A7C15)


def _as_uint64_bits(values: np.ndarray) -> np.ndarray:
    """Reinterpret a numeric column as uint64 words without losing key bits.

    Integer and boolean dtypes are widened to 64 bits and bit-cast directly:
    the seed implementation routed *everything* through ``astype(np.float64)``,
    which collapses int64 keys above 2^53 onto the same float (and therefore
    the same hash), skewing partitions for high-magnitude keys.  Floats keep
    the legacy bit-cast behaviour.

    Consequently a key column must use one dtype *kind* consistently across
    all senders of an exchange: ``5`` (int64) and ``5.0`` (float64) hash
    differently.  Dataset schemas guarantee this for scanned columns; derived
    key columns must be computed with a deterministic dtype.
    """
    array = np.asarray(values)
    kind = array.dtype.kind
    if kind == "u":
        return array.astype(np.uint64, copy=False)
    if kind in "ib":
        return array.astype(np.int64, copy=False).view(np.uint64)
    return array.astype(np.float64, copy=False).view(np.uint64)


def hash_values(values: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit hash of a numeric column."""
    as_int = _as_uint64_bits(values)
    with np.errstate(over="ignore"):
        mixed = as_int * _HASH_MULTIPLIER
        mixed ^= mixed >> np.uint64(29)
        mixed = mixed * _HASH_MULTIPLIER
        mixed ^= mixed >> np.uint64(32)
    return mixed


def partition_assignments(
    table: Table, keys: Sequence[str], num_partitions: int
) -> np.ndarray:
    """Partition index (0..P-1) of every row, by hash of the key columns."""
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    num_rows = table_num_rows(table)
    if num_rows == 0:
        return np.zeros(0, dtype=np.int64)
    if not keys:
        # Round-robin partitioning when no keys are given.
        return np.arange(num_rows, dtype=np.int64) % num_partitions
    missing = [key for key in keys if key not in table]
    if missing:
        raise UnknownColumnError(", ".join(missing))
    combined = np.zeros(num_rows, dtype=np.uint64)
    for key in keys:
        combined ^= hash_values(table[key])
    return (combined % np.uint64(num_partitions)).astype(np.int64)


def scatter_by_assignment(
    table: Table, assignment: np.ndarray, num_partitions: int
) -> Tuple[Table, np.ndarray]:
    """Reorder rows so that every partition is one contiguous slice.

    Returns ``(reordered, boundaries)`` where partition ``p`` occupies rows
    ``boundaries[p]:boundaries[p + 1]`` of every reordered column.  The sort
    is stable, so rows keep their relative order within a partition (matching
    the mask-based reference implementation).
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    counts = np.bincount(assignment, minlength=num_partitions)
    boundaries = np.zeros(num_partitions + 1, dtype=np.int64)
    np.cumsum(counts, out=boundaries[1:])
    # NumPy's stable sort on integers is a radix sort whose cost scales with
    # the key width; partition ids fit in 1-2 bytes for any realistic fleet,
    # so narrowing the key first cuts the sort time by ~6x at 1M rows.
    if num_partitions <= np.iinfo(np.uint8).max + 1:
        sort_keys = assignment.astype(np.uint8)
    elif num_partitions <= np.iinfo(np.uint16).max + 1:
        sort_keys = assignment.astype(np.uint16)
    else:
        sort_keys = assignment
    order = np.argsort(sort_keys, kind="stable")
    reordered = {name: np.asarray(column)[order] for name, column in table.items()}
    return reordered, boundaries


def partition_scatter(
    table: Table, keys: Sequence[str], num_partitions: int
) -> Tuple[Table, np.ndarray]:
    """Single-pass hash partitioning into contiguous slices.

    Combines :func:`partition_assignments` with :func:`scatter_by_assignment`;
    senders serialise partition ``p`` directly from the slice
    ``boundaries[p]:boundaries[p + 1]`` without any further row gathering.
    """
    assignment = partition_assignments(table, keys, num_partitions)
    return scatter_by_assignment(table, assignment, num_partitions)


def slice_partition(reordered: Table, boundaries: np.ndarray, partition: int) -> Table:
    """Partition ``partition`` of a scattered table, as zero-copy slices."""
    start, end = int(boundaries[partition]), int(boundaries[partition + 1])
    return {name: column[start:end] for name, column in reordered.items()}


def hash_partition(
    table: Table, keys: Sequence[str], num_partitions: int
) -> Dict[int, Table]:
    """Split a table into per-partition tables.

    Only non-empty partitions appear in the result, mirroring the fact that a
    sender only writes files for receivers it has data for.
    """
    reordered, boundaries = partition_scatter(table, keys, num_partitions)
    partitions: Dict[int, Table] = {}
    for partition in range(num_partitions):
        if boundaries[partition + 1] > boundaries[partition]:
            partitions[partition] = slice_partition(reordered, boundaries, partition)
    return partitions


def hash_partition_masked(
    table: Table, keys: Sequence[str], num_partitions: int
) -> Dict[int, Table]:
    """Reference mask-per-partition implementation (the seed's O(N·P) loop).

    Kept for the parity tests and the hot-path benchmark; production code uses
    :func:`hash_partition`.
    """
    assignment = partition_assignments(table, keys, num_partitions)
    partitions: Dict[int, Table] = {}
    for partition in np.unique(assignment):
        mask = assignment == partition
        partitions[int(partition)] = take_rows(table, np.flatnonzero(mask))
    return partitions
