"""Purely serverless exchange (shuffle) operators.

Serverless workers cannot accept incoming connections, so all data exchange
goes through the object store (paper §4.4).  This package implements the full
family of exchange algorithms the paper analyses:

* :class:`~repro.exchange.basic.BasicExchange` — the one-level baseline with
  O(P²) requests;
* :class:`~repro.exchange.multilevel.MultiLevelExchange` — the two- and
  k-level variants with O(P·P^(1/k)) requests, built on
  ``BasicGroupExchange``;
* *write combining* — all partitions of one sender go into a single object,
  with the part offsets either in a companion index object or encoded in the
  object key (discovered via LIST);
* :mod:`~repro.exchange.cost_model` — the request-count formulas of Table 2
  and their dollar costs (Figure 9);
* :mod:`~repro.exchange.simulator` — the timing model with stragglers and
  wait propagation used for Table 3 and Figure 13.
"""

from repro.exchange.partition import (
    hash_partition,
    partition_assignments,
    partition_scatter,
    scatter_by_assignment,
    slice_partition,
)
from repro.exchange.naming import (
    FileNaming,
    SingleBucketNaming,
    MultiBucketNaming,
    WriteCombiningNaming,
)
from repro.exchange.basic import (
    BasicExchange,
    BasicGroupExchange,
    ExchangeConfig,
    ExchangeStats,
)
from repro.exchange.codec import (
    decode_partition,
    decode_partition_slice,
    encode_partition,
    encode_partition_set,
    is_fast_partition,
)
from repro.exchange.multilevel import MultiLevelExchange, grid_coordinates, grid_side
from repro.exchange.cost_model import (
    ExchangeCostModel,
    EXCHANGE_VARIANTS,
    request_counts,
    exchange_cost,
)
from repro.exchange.simulator import ExchangeSimulator, ExchangeTimings, PhaseBreakdown

__all__ = [
    "hash_partition",
    "partition_assignments",
    "partition_scatter",
    "scatter_by_assignment",
    "slice_partition",
    "FileNaming",
    "SingleBucketNaming",
    "MultiBucketNaming",
    "WriteCombiningNaming",
    "BasicExchange",
    "BasicGroupExchange",
    "ExchangeConfig",
    "ExchangeStats",
    "decode_partition",
    "decode_partition_slice",
    "encode_partition",
    "encode_partition_set",
    "is_fast_partition",
    "MultiLevelExchange",
    "grid_coordinates",
    "grid_side",
    "ExchangeCostModel",
    "EXCHANGE_VARIANTS",
    "request_counts",
    "exchange_cost",
    "ExchangeSimulator",
    "ExchangeTimings",
    "PhaseBreakdown",
]
