"""Multi-level (two- and k-level) serverless exchange.

The paper's key optimisation (§4.4.2): instead of every worker exchanging
with every other worker (O(P²) requests), workers are arranged on a grid and
exchange once per grid dimension, only with the workers that share all other
coordinates.  For a k-dimensional grid with side length P^(1/k) this brings
the request count down to k·P·P^(1/k) at the cost of reading and writing the
data k times.

The functional implementation requires the worker count to factor exactly
into the grid dimensions (the analytic cost models in
:mod:`repro.exchange.cost_model` handle arbitrary P).  The default
factorisation picks divisors as close to P^(1/k) as possible.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.s3 import ObjectStore
from repro.engine.table import Table
from repro.errors import ExchangeError
from repro.exchange.basic import BasicGroupExchange, ExchangeConfig, ExchangeStats
from repro.exchange.naming import MultiBucketNaming, WriteCombiningNaming


def grid_side(num_workers: int, levels: int) -> List[int]:
    """Factor ``num_workers`` into ``levels`` dimensions as evenly as possible.

    Returns a list of ``levels`` factors whose product is ``num_workers``.
    Raises :class:`~repro.errors.ExchangeError` if no such factorisation
    exists with every factor > 1, except that trailing factors of 1 are
    allowed when the worker count is too small (e.g. 2 workers on 2 levels).
    """
    if num_workers <= 0:
        raise ExchangeError("num_workers must be positive")
    if levels <= 0:
        raise ExchangeError("levels must be positive")
    if levels == 1:
        return [num_workers]

    dims: List[int] = []
    remaining = num_workers
    for level in range(levels, 1, -1):
        ideal = remaining ** (1.0 / level)
        # Find the divisor of ``remaining`` closest to the ideal side length.
        # Divisors come in pairs (d, remaining // d) with one member at or
        # below sqrt(remaining), so scanning to the square root covers all of
        # them in O(sqrt(P)) instead of the former O(P) full scan.  Ties break
        # toward the smaller divisor, matching the old ascending scan.
        best: Optional[int] = None
        candidate = 1
        while candidate * candidate <= remaining:
            if remaining % candidate == 0:
                for divisor in (candidate, remaining // candidate):
                    if (
                        best is None
                        or abs(divisor - ideal) < abs(best - ideal)
                        or (abs(divisor - ideal) == abs(best - ideal) and divisor < best)
                    ):
                        best = divisor
            candidate += 1
        assert best is not None
        dims.append(best)
        remaining //= best
    dims.append(remaining)
    if math.prod(dims) != num_workers:
        raise ExchangeError(
            f"internal error factorising {num_workers} into {levels} dimensions"
        )
    return dims


def grid_coordinates(worker: int, dims: Sequence[int]) -> Tuple[int, ...]:
    """Mixed-radix coordinates of ``worker`` on a grid with side lengths ``dims``."""
    coords = []
    remainder = worker
    for dim in dims:
        coords.append(remainder % dim)
        remainder //= dim
    return tuple(coords)


def worker_from_coordinates(coords: Sequence[int], dims: Sequence[int]) -> int:
    """Inverse of :func:`grid_coordinates`."""
    worker = 0
    stride = 1
    for coord, dim in zip(coords, dims):
        worker += coord * stride
        stride *= dim
    return worker


class MultiLevelExchange:
    """k-level exchange over a grid of workers."""

    def __init__(
        self,
        store: ObjectStore,
        num_workers: int,
        keys: Sequence[str],
        levels: int = 2,
        dims: Optional[Sequence[int]] = None,
        write_combining: bool = False,
        num_buckets: int = 10,
        compression=None,
        tag: str = "mlx",
    ):
        if num_workers <= 0:
            raise ExchangeError("num_workers must be positive")
        self.store = store
        self.num_workers = num_workers
        self.levels = levels
        self.dims = list(dims) if dims is not None else grid_side(num_workers, levels)
        if math.prod(self.dims) != num_workers:
            raise ExchangeError(
                f"grid dimensions {self.dims} do not multiply to {num_workers} workers"
            )
        if len(self.dims) != levels:
            raise ExchangeError(f"expected {levels} dimensions, got {self.dims}")
        config_kwargs = {"keys": list(keys), "write_combining": write_combining,
                         "num_buckets": num_buckets}
        if compression is not None:
            config_kwargs["compression"] = compression
        self.config = ExchangeConfig(**config_kwargs)
        self.tag = tag
        self.stats = ExchangeStats()
        #: Per-round, per-worker statistics for detailed analysis.
        self.round_stats: List[Dict[int, ExchangeStats]] = []
        #: Mixed-radix stride of each dimension (coordinate d of worker w is
        #: ``(w // stride[d]) % dims[d]``).
        self._strides: List[int] = [
            math.prod(self.dims[:dimension]) for dimension in range(self.levels)
        ]
        # The group structure of every round depends only on the grid, so it
        # is computed once here instead of being rebuilt from
        # ``grid_coordinates`` on every round.
        self._groups_by_round: List[List[List[int]]] = [
            self._build_groups(dimension) for dimension in range(self.levels)
        ]

    # -- group construction ------------------------------------------------------

    def _build_groups(self, dimension: int) -> List[List[int]]:
        """Compute the worker groups along ``dimension`` (vectorized).

        A group's members differ only in their coordinate along the round's
        dimension, i.e. they are ``representative + coord * stride`` for
        ``coord`` in ``0..dims[dimension]``; enumerating representatives and
        strides avoids the per-worker ``grid_coordinates`` loop.
        """
        stride = self._strides[dimension]
        side = self.dims[dimension]
        workers = np.arange(self.num_workers, dtype=np.int64)
        coord = (workers // stride) % side
        representatives = np.unique(workers - coord * stride)
        members = representatives[:, None] + stride * np.arange(side, dtype=np.int64)
        return [row.tolist() for row in members]

    def _groups_for_round(self, dimension: int) -> List[List[int]]:
        """Worker groups for the exchange along ``dimension`` (cached).

        Each group contains the workers that share all coordinates except the
        round's dimension; its size is ``dims[dimension]``, and members are
        listed in ascending coordinate (= ascending worker id) order.
        """
        return self._groups_by_round[dimension]

    def _route_for_round(self, dimension: int, group: Sequence[int]) -> Callable:
        """Routing function of one group in one round.

        A row with global target partition ``t`` goes to the group member
        whose coordinate along the round's dimension equals ``t``'s
        coordinate along that dimension.  The coordinate -> worker map is a
        precomputed int64 lookup table, so routing a batch of targets is one
        divmod plus one fancy-index — no per-row Python.
        """
        stride = self._strides[dimension]
        side = self.dims[dimension]
        group_array = np.asarray(group, dtype=np.int64)
        lookup = np.empty(side, dtype=np.int64)
        lookup[(group_array // stride) % side] = group_array

        def route(targets: np.ndarray) -> np.ndarray:
            targets = np.asarray(targets, dtype=np.int64)
            return lookup[(targets // stride) % side]

        return route

    def _naming_for_round(self, dimension: int, group_id: int):
        prefix = f"r{dimension}/g{group_id}/"
        if self.config.write_combining:
            return WriteCombiningNaming(
                bucket=f"{self.tag}-wc",
                prefix=prefix,
                num_buckets=self.config.num_buckets,
            )
        return MultiBucketNaming(
            num_buckets=self.config.num_buckets,
            bucket_prefix=f"{self.tag}-b",
            prefix=prefix,
        )

    # -- execution ------------------------------------------------------------------

    def run(self, tables: Sequence[Table]) -> List[Table]:
        """Run all exchange rounds, returning the final per-worker tables.

        ``tables[p]`` is worker ``p``'s share of the input; the result's entry
        ``p`` contains exactly the rows whose key hashes to partition ``p``.
        """
        if len(tables) != self.num_workers:
            raise ExchangeError(
                f"expected {self.num_workers} input tables, got {len(tables)}"
            )
        current: List[Table] = list(tables)
        for dimension in range(self.levels):
            current = self._run_round(dimension, current)
        return current

    def _run_round(self, dimension: int, tables: List[Table]) -> List[Table]:
        groups = self._groups_for_round(dimension)
        next_tables: List[Optional[Table]] = [None] * self.num_workers
        round_stats: Dict[int, ExchangeStats] = {}
        for group_id, group in enumerate(groups):
            naming = self._naming_for_round(dimension, group_id)
            exchange = BasicGroupExchange(
                store=self.store,
                group=group,
                total_partitions=self.num_workers,
                route=self._route_for_round(dimension, group),
                naming=naming,
                config=self.config,
            )
            for worker in group:
                exchange.write(worker, tables[worker])
            for worker in group:
                next_tables[worker] = exchange.read(worker)
            for worker, stats in exchange.stats_per_worker.items():
                round_stats.setdefault(worker, ExchangeStats()).merge(stats)
                self.stats.merge(stats)
        self.round_stats.append(round_stats)
        return [table if table is not None else {} for table in next_tables]
