"""Analytic request-count and cost models of the exchange variants (Table 2).

For ``P`` workers the paper derives the following request counts:

============  ===============  ===============  ========  ======
variant       #reads           #writes          #lists    #scans
============  ===============  ===============  ========  ======
``1l``        P²               P²               O(P)      1
``1l-wc``     P²               P                O(P)      1
``2l``        2·P·√P           2·P·√P           O(P)      2
``2l-wc``     2·P·√P           2·P               O(P)      2
``3l``        3·P·∛P           3·P·∛P           O(P)      3
``3l-wc``     3·P·∛P           3·P               O(P)      3
============  ===============  ===============  ========  ======

The dollar cost uses the S3 request prices ($5 per million writes/lists, $0.4
per million reads) and, for context, the cost of running the workers
themselves — the horizontal band of Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cloud.pricing import DEFAULT_PRICES, PriceList
from repro.config import GiB, MiB

#: Identifiers of the exchange variants analysed in the paper.
EXCHANGE_VARIANTS = ("1l", "1l-wc", "2l", "2l-wc", "3l", "3l-wc")

#: Effective scan bandwidth assumed for the worker-cost band (§4.4.4).
_WORKER_BANDWIDTH_BYTES_PER_S = 85 * MiB

#: Per-second price of a 2 GiB worker (§4.4.4, $3.3e-5/s).
_WORKER_PRICE_PER_SECOND = 3.3e-5


def _levels_of(variant: str) -> int:
    if variant not in EXCHANGE_VARIANTS:
        raise ValueError(f"unknown exchange variant {variant!r}")
    return int(variant[0])


def _uses_write_combining(variant: str) -> bool:
    return variant.endswith("-wc")


def request_counts(variant: str, num_workers: int) -> Dict[str, float]:
    """Request counts of one exchange execution (Table 2).

    Returns a dict with ``reads``, ``writes``, ``lists``, and ``scans``.
    Counts are real-valued because the side length P^(1/k) generally is.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    levels = _levels_of(variant)
    side = num_workers ** (1.0 / levels)
    reads = levels * num_workers * side
    if _uses_write_combining(variant):
        writes = float(levels * num_workers)
    else:
        writes = reads
    lists = float(levels * num_workers)
    return {"reads": reads, "writes": writes, "lists": lists, "scans": float(levels)}


def exchange_cost(
    variant: str,
    num_workers: int,
    prices: PriceList = DEFAULT_PRICES,
) -> Dict[str, float]:
    """Dollar cost of the S3 requests of one exchange execution.

    Returns ``read_cost``, ``write_cost`` (PUT + LIST), ``total_cost``, and
    ``cost_per_worker`` — the quantity plotted in Figure 9.
    """
    counts = request_counts(variant, num_workers)
    read_cost = prices.s3_get_cost(int(round(counts["reads"])))
    write_cost = prices.s3_put_cost(int(round(counts["writes"] + counts["lists"])))
    total = read_cost + write_cost
    return {
        "read_cost": read_cost,
        "write_cost": write_cost,
        "total_cost": total,
        "cost_per_worker": total / num_workers,
    }


def worker_cost_band(
    variant: str,
    bytes_per_worker_low: int = 100 * MiB,
    bytes_per_worker_high: int = GiB,
    scans_high_multiplier: int = 3,
) -> Tuple[float, float]:
    """Per-worker running-cost range used as the reference band in Figure 9.

    The lower edge is one scan of 100 MiB per worker; the upper edge is three
    scans of 1 GiB per worker (the paper's "typical configurations" band).
    """
    low_seconds = bytes_per_worker_low / _WORKER_BANDWIDTH_BYTES_PER_S
    high_seconds = (
        scans_high_multiplier * bytes_per_worker_high / _WORKER_BANDWIDTH_BYTES_PER_S
    )
    return (
        low_seconds * _WORKER_PRICE_PER_SECOND,
        high_seconds * _WORKER_PRICE_PER_SECOND,
    )


@dataclass
class ExchangeCostModel:
    """Object-oriented wrapper bundling the Table 2 / Figure 9 computations."""

    prices: PriceList = DEFAULT_PRICES

    def requests(self, variant: str, num_workers: int) -> Dict[str, float]:
        """Request counts for one execution (see :func:`request_counts`)."""
        return request_counts(variant, num_workers)

    def cost(self, variant: str, num_workers: int) -> Dict[str, float]:
        """Dollar costs for one execution (see :func:`exchange_cost`)."""
        return exchange_cost(variant, num_workers, self.prices)

    def figure9_series(self, worker_counts=(64, 256, 1024, 4096, 16384)) -> Dict[str, Dict[int, float]]:
        """Cost-per-worker series for every variant (the bars of Figure 9)."""
        return {
            variant: {
                num_workers: self.cost(variant, num_workers)["cost_per_worker"]
                for num_workers in worker_counts
            }
            for variant in EXCHANGE_VARIANTS
        }

    def requests_per_bucket_per_round(
        self, num_workers: int, num_buckets: int, levels: int = 2
    ) -> float:
        """Requests per bucket per exchange round (the rate-limit metric, §4.4.2).

        ``P`` workers each issue ``P^(1/k)`` requests spread over ``B``
        buckets, i.e. ``P·P^(1/k)/B`` per round.
        """
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        side = num_workers ** (1.0 / levels)
        return num_workers * side / num_buckets
