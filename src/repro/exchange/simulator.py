"""Timing simulation of the two-level exchange at the paper's scale.

The functional exchange implementation in :mod:`repro.exchange.multilevel`
moves real bytes; this module complements it with a calibrated *timing* model
that reproduces the behaviour the paper reports for 100 GB–3 TB shuffles on
hundreds to thousands of workers (Table 3 and Figure 13):

* every phase (read input, per-round write/read) moves ``data/P`` bytes per
  worker at the steady scan bandwidth (~85 MiB/s);
* per-worker write times have a heavy upper tail (stragglers): the paper
  observes the slowest worker being ~30 % slower than the median on the 1 TB
  run and ~4× slower on the 3 TB run;
* waiting propagates: a receiver cannot finish reading a round before every
  sender in its group has finished writing, and groups of the second round
  inherit the delays of the first.

The simulation is deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import MiB
from repro.exchange.multilevel import grid_coordinates, grid_side

#: Steady per-worker S3 bandwidth assumed by the exchange analysis (§4.4.4).
EXCHANGE_BANDWIDTH_BYTES_PER_S = 85 * MiB

#: Base per-request round-trip to S3 (the minimum "wait" in Figure 13).
REQUEST_ROUND_TRIP_SECONDS = 0.1


@dataclass
class PhaseBreakdown:
    """Per-worker timings of every phase of a two-level exchange, in seconds."""

    read_input: np.ndarray
    round1_write: np.ndarray
    round1_wait: np.ndarray
    round1_read: np.ndarray
    round2_write: np.ndarray
    round2_wait: np.ndarray
    round2_read: np.ndarray

    def total_per_worker(self) -> np.ndarray:
        """End-to-end time of each worker."""
        return (
            self.read_input
            + self.round1_write
            + self.round1_wait
            + self.round1_read
            + self.round2_write
            + self.round2_wait
            + self.round2_read
        )

    def phases(self) -> Dict[str, np.ndarray]:
        """All phases keyed by the labels used in Figure 13."""
        return {
            "Read input": self.read_input,
            "Round 1 write": self.round1_write,
            "Round 1 wait": self.round1_wait,
            "Round 1 read": self.round1_read,
            "Round 2 write": self.round2_write,
            "Round 2 wait": self.round2_wait,
            "Round 2 read": self.round2_read,
        }


@dataclass
class ExchangeTimings:
    """Summary of one simulated exchange."""

    num_workers: int
    data_bytes: float
    breakdown: PhaseBreakdown
    #: End-to-end latency (slowest worker), seconds.
    total_seconds: float
    #: End-to-end time of the fastest worker, seconds.
    fastest_worker_seconds: float
    #: Sum of the fastest observed time of each phase (informal lower bound).
    lower_bound_seconds: float

    @property
    def waiting_fraction(self) -> float:
        """Fraction of the slowest worker's time spent waiting."""
        waits = self.breakdown.round1_wait + self.breakdown.round2_wait
        slowest = int(np.argmax(self.breakdown.total_per_worker()))
        return float(waits[slowest] / self.total_seconds) if self.total_seconds else 0.0


class ExchangeSimulator:
    """Simulates the two-level exchange timing with stragglers."""

    def __init__(
        self,
        bandwidth_bytes_per_s: float = EXCHANGE_BANDWIDTH_BYTES_PER_S,
        seed: int = 20,
    ):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth_bytes_per_s
        self.seed = seed

    # -- straggler model ---------------------------------------------------------

    def _straggler_multipliers(
        self, num_workers: int, data_bytes: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-worker slowdown factors for a write phase.

        The tail grows with scale: larger fleets writing more data hit slower
        objects/instances more often.  Calibrated so that the slowest of
        ~1250 workers on 1 TB is ~1.3× the median and the slowest of ~2500
        workers on 3 TB is ~4× the median (paper Figure 13).
        """
        scale_pressure = math.log10(max(data_bytes / (1 << 40), 0.1) + 1.0)  # ~TB scale
        fleet_pressure = math.log2(max(num_workers, 2)) / 11.0
        sigma = 0.05 + 0.45 * scale_pressure * fleet_pressure
        multipliers = rng.lognormal(mean=0.0, sigma=sigma, size=num_workers)
        # Normalise so the median is 1.0 (the paper reports slowdowns vs median).
        return multipliers / np.median(multipliers)

    # -- simulation -----------------------------------------------------------------

    def simulate(
        self,
        num_workers: int,
        data_bytes: float,
        dims: Optional[Sequence[int]] = None,
    ) -> ExchangeTimings:
        """Simulate a two-level exchange of ``data_bytes`` over ``num_workers``."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if data_bytes <= 0:
            raise ValueError("data_bytes must be positive")
        dims = list(dims) if dims is not None else grid_side(num_workers, 2)
        if len(dims) != 2 or dims[0] * dims[1] != num_workers:
            raise ValueError(f"dims {dims} do not form a two-level grid of {num_workers}")

        rng = np.random.default_rng(self.seed)
        per_worker_bytes = data_bytes / num_workers
        base_phase = per_worker_bytes / self.bandwidth

        read_input = np.full(num_workers, base_phase)
        write1 = base_phase * self._straggler_multipliers(num_workers, data_bytes, rng)
        write2 = base_phase * self._straggler_multipliers(num_workers, data_bytes, rng)
        read1 = np.full(num_workers, base_phase)
        read2 = np.full(num_workers, base_phase)

        coords = [grid_coordinates(worker, dims) for worker in range(num_workers)]

        # Round 1: groups share coordinate 1 (exchange along dimension 0).
        write1_done = read_input + write1
        group1_members: Dict[int, List[int]] = {}
        for worker, (c0, c1) in enumerate(coords):
            group1_members.setdefault(c1, []).append(worker)
        group1_ready = {
            key: max(write1_done[member] for member in members)
            for key, members in group1_members.items()
        }
        wait1 = np.empty(num_workers)
        read1_done = np.empty(num_workers)
        for worker, (c0, c1) in enumerate(coords):
            ready = group1_ready[c1]
            wait1[worker] = max(ready - write1_done[worker], REQUEST_ROUND_TRIP_SECONDS)
            read1_done[worker] = write1_done[worker] + wait1[worker] + read1[worker]

        # Round 2: groups share coordinate 0 (exchange along dimension 1).
        write2_done = read1_done + write2
        group2_members: Dict[int, List[int]] = {}
        for worker, (c0, c1) in enumerate(coords):
            group2_members.setdefault(c0, []).append(worker)
        group2_ready = {
            key: max(write2_done[member] for member in members)
            for key, members in group2_members.items()
        }
        wait2 = np.empty(num_workers)
        total = np.empty(num_workers)
        for worker, (c0, c1) in enumerate(coords):
            ready = group2_ready[c0]
            wait2[worker] = max(ready - write2_done[worker], REQUEST_ROUND_TRIP_SECONDS)
            total[worker] = write2_done[worker] + wait2[worker] + read2[worker]

        breakdown = PhaseBreakdown(
            read_input=read_input,
            round1_write=write1,
            round1_wait=wait1,
            round1_read=read1,
            round2_write=write2,
            round2_wait=wait2,
            round2_read=read2,
        )
        lower_bound = float(
            read_input.min()
            + write1.min()
            + REQUEST_ROUND_TRIP_SECONDS
            + read1.min()
            + write2.min()
            + REQUEST_ROUND_TRIP_SECONDS
            + read2.min()
        )
        return ExchangeTimings(
            num_workers=num_workers,
            data_bytes=data_bytes,
            breakdown=breakdown,
            total_seconds=float(total.max()),
            fastest_worker_seconds=float(breakdown.total_per_worker().min()),
            lower_bound_seconds=lower_bound,
        )

    def table3_running_time(self, num_workers: int, data_bytes: float) -> float:
        """End-to-end exchange time including worker start-up (Table 3 rows)."""
        from repro.driver.invocation import TreeInvocationModel

        invocation = TreeInvocationModel(region="eu")
        startup = invocation.time_to_start_all(num_workers)
        return startup + self.simulate(num_workers, data_bytes).total_seconds
