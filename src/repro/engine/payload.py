"""Binary columnar result payloads.

Worker results cross the wire (SQS message or S3 spill object) inside a JSON
envelope.  The seed implementation serialised every table as
``{name: column.tolist()}``, which pays per-element Python cost on both ends
and inflates floats to ~18 characters each.  This module provides a compact
binary columnar codec instead: each column is shipped as its raw little-endian
buffer, base64-framed so it still travels inside the JSON envelope, tagged
with its dtype so the receiver can reconstruct the array with a single
``np.frombuffer`` — no per-row Python work on either side.

Format (a JSON-compatible dict)::

    {
        "__columnar__": 1,            # marker + version
        "num_rows": 1234,
        "columns": [
            {"name": "k", "dtype": "<i8", "data": "<base64>"},
            {"name": "tag", "dtype": "object", "values": [...]},   # fallback
        ],
    }

Columns whose dtype holds Python objects cannot be shipped as raw buffers and
fall back to JSON lists.  Tiny tables (fewer than :data:`SMALL_TABLE_ROWS`
rows, e.g. a handful of aggregate groups) also stay in the legacy
``{name: list}`` form: base64 framing would not pay for itself there, and the
legacy form keeps small payloads human-readable in logs and tests.

:func:`decode_table` accepts *both* forms, so old spilled results and payloads
produced by earlier versions keep replaying correctly.
"""

from __future__ import annotations

import base64
import json
import zlib
from typing import Dict, List, Optional, Union

import numpy as np

from repro.engine.table import Table, table_num_rows
from repro.errors import ExecutionError, IntegrityError

#: Marker key identifying (and versioning) the binary columnar payload form.
PAYLOAD_MARKER = "__columnar__"

#: Current payload format version.
PAYLOAD_VERSION = 1

#: Tables below this row count are encoded in the legacy ``{name: list}``
#: JSON form; above it, the binary columnar form wins on both size and CPU.
SMALL_TABLE_ROWS = 64

#: A payload in either the legacy or the binary columnar form.
Payload = Dict[str, Union[int, List, Dict]]


def is_binary_payload(payload: Payload) -> bool:
    """Whether ``payload`` is in the binary columnar form."""
    return isinstance(payload, dict) and PAYLOAD_MARKER in payload


def _object_column_crc(values: List) -> int:
    """crc32 of an object column's JSON-canonical serialisation.

    JSON round-trips of strings/ints/floats are representation-stable, so the
    receiver recomputes the identical digest from the parsed values.
    """
    return zlib.crc32(json.dumps(values).encode("utf-8"))


def _payload_digest(num_rows: int, entries: List[List]) -> int:
    """Structural digest over ``(num_rows, [[name, dtype, crc], ...])``.

    Covers what the per-column crcs cannot: the column *names*, their dtype
    tags (a flipped dtype reinterprets an intact buffer), and the row count.
    """
    return zlib.crc32(json.dumps([int(num_rows), entries]).encode("utf-8"))


def encode_table(
    table: Table,
    small_table_rows: int = SMALL_TABLE_ROWS,
    force_binary: bool = False,
    checksum: bool = True,
) -> Payload:
    """Serialise a table into a JSON-compatible payload.

    Tables with fewer than ``small_table_rows`` rows use the legacy
    ``{name: list}`` form unless ``force_binary`` is set.  ``checksum``
    (default on) embeds a crc32 per column plus a structural ``digest`` in
    binary payloads; the legacy list form has no room for checksums and is
    covered by the message-level digest instead.
    """
    num_rows = table_num_rows(table)
    if not force_binary and num_rows < small_table_rows:
        return {name: np.asarray(column).tolist() for name, column in table.items()}

    columns: List[Dict] = []
    entries: List[List] = []
    for name, column in table.items():
        array = np.ascontiguousarray(column)
        if array.dtype.hasobject:
            values = array.tolist()
            entry = {"name": name, "dtype": "object", "values": values}
            if checksum:
                entry["crc"] = _object_column_crc(values)
        else:
            raw = array.tobytes()
            entry = {
                "name": name,
                "dtype": array.dtype.str,
                "data": base64.b64encode(raw).decode("ascii"),
            }
            if checksum:
                entry["crc"] = zlib.crc32(raw)
        columns.append(entry)
        if checksum:
            entries.append([name, entry["dtype"], entry["crc"]])
    payload: Payload = {
        PAYLOAD_MARKER: PAYLOAD_VERSION, "num_rows": int(num_rows), "columns": columns
    }
    if checksum:
        payload["digest"] = _payload_digest(num_rows, entries)
    return payload


def decode_table(
    payload: Payload,
    copy: bool = True,
    verify: bool = True,
    key: Optional[str] = None,
) -> Table:
    """Inverse of :func:`encode_table`; accepts legacy and binary payloads.

    ``copy=False`` keeps binary columns as read-only ``frombuffer`` views of
    the base64-decoded bytes — enough for merge paths that only concatenate,
    and one copy less per worker partial on the driver's hot path.  (Legacy
    payloads that already hold ndarrays — e.g. shared-memory partials decoded
    in-place — pass through untouched in either mode.)

    Payloads carrying checksums are verified on decode unless
    ``verify=False``; a mismatch raises :class:`~repro.errors.IntegrityError`
    with ``key`` naming the payload's origin.  Pre-integrity payloads (no
    ``crc``/``digest`` keys) always decode without verification.
    """
    if not is_binary_payload(payload):
        return {name: np.asarray(values) for name, values in payload.items()}

    version = payload[PAYLOAD_MARKER]
    if version != PAYLOAD_VERSION:
        raise ExecutionError(f"unsupported payload version {version!r}")
    table: Table = {}
    entries: List[List] = []
    verify_digest = verify and payload.get("digest") is not None
    for column in payload["columns"]:
        name = column["name"]
        expected_crc = column.get("crc")
        if column["dtype"] == "object":
            if verify and expected_crc is not None:
                actual = _object_column_crc(column["values"])
                if actual != expected_crc:
                    raise IntegrityError(
                        f"object column {name!r} checksum mismatch",
                        key=key, layer="payload.column",
                        expected=expected_crc, actual=actual,
                    )
            table[name] = np.asarray(column["values"], dtype=object)
        else:
            buffer = base64.b64decode(column["data"])
            if verify and expected_crc is not None:
                actual = zlib.crc32(buffer)
                if actual != expected_crc:
                    raise IntegrityError(
                        f"column {name!r} buffer checksum mismatch",
                        key=key, layer="payload.column",
                        expected=expected_crc, actual=actual,
                    )
            # frombuffer yields a read-only view of the decoded bytes; copy
            # (by default) so callers can sort/mutate the columns.
            view = np.frombuffer(buffer, dtype=np.dtype(column["dtype"]))
            table[name] = view.copy() if copy else view
        if verify_digest:
            entries.append([name, column["dtype"], expected_crc])
    if verify_digest:
        actual = _payload_digest(payload.get("num_rows", 0), entries)
        if actual != payload["digest"]:
            raise IntegrityError(
                "payload structural digest mismatch",
                key=key, layer="payload.digest",
                expected=payload["digest"], actual=actual,
            )
    return table
