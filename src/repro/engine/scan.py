"""S3-based columnar scan operator.

Reproduces the design of the paper's Parquet scan operator (§4.3.2, Figure 8):

* one small read fetches the file footer (metadata);
* row groups are pruned against the predicate using the footer's min/max
  statistics before any data is fetched;
* only the projected columns' chunks are downloaded, one ranged request per
  column chunk (or several chunk-sized requests for large chunks);
* downloads are modelled as happening over several concurrent connections and
  are overlapped with decompression of the previous row group ("level 3"
  concurrency), falling back to column-chunk parallelism ("level 2") for
  single-row-group files.

The operator yields decoded table chunks and accumulates
:class:`~repro.engine.s3io.ScanStatistics` plus scan-level counters used by
the benchmarks (pruned vs scanned row groups, modelled scan time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.network import BandwidthModel
from repro.cloud.s3 import ObjectStore
from repro.config import (
    DEFAULT_SCAN_CHUNK_BYTES,
    DEFAULT_SCAN_CONNECTIONS,
    LAMBDA_MEMORY_PER_VCPU_MIB,
    VCPU_ROWS_PER_SECOND,
)
from repro.engine.s3io import S3ObjectSource, ScanStatistics
from repro.engine.table import Table
from repro.formats.parquet import ColumnarFile, RowGroupMeta
from repro.plan.physical import PruneRange


@dataclass
class ScanConfig:
    """Tunable knobs of the scan operator."""

    chunk_bytes: int = DEFAULT_SCAN_CHUNK_BYTES
    connections: int = DEFAULT_SCAN_CONNECTIONS
    memory_mib: int = 2048
    threads: int = 2
    #: Overlap row-group downloads with decompression (concurrency level 3).
    overlap_downloads: bool = True


@dataclass
class ScanCounters:
    """Scan-level counters reported by one worker."""

    files_scanned: int = 0
    row_groups_total: int = 0
    row_groups_pruned: int = 0
    rows_scanned: int = 0
    #: Modelled seconds spent in metadata requests.
    metadata_seconds: float = 0.0
    #: Modelled seconds spent downloading data chunks.
    download_seconds: float = 0.0
    #: Modelled seconds spent decompressing and decoding.
    decode_seconds: float = 0.0

    @property
    def row_groups_scanned(self) -> int:
        """Row groups actually read (total minus pruned)."""
        return self.row_groups_total - self.row_groups_pruned

    def modelled_scan_seconds(self, overlap: bool) -> float:
        """Total modelled scan time, overlapping download and decode if requested."""
        body = (
            max(self.download_seconds, self.decode_seconds)
            if overlap
            else self.download_seconds + self.decode_seconds
        )
        return self.metadata_seconds + body


class S3ScanOperator:
    """Scans a list of columnar files from the object store."""

    def __init__(
        self,
        store: ObjectStore,
        files: Sequence[str],
        columns: Optional[Sequence[str]] = None,
        prune_ranges: Sequence[PruneRange] = (),
        config: Optional[ScanConfig] = None,
        bandwidth: Optional[BandwidthModel] = None,
    ):
        self.store = store
        self.files = list(files)
        self.columns = list(columns) if columns else None
        self.prune_ranges = list(prune_ranges)
        self.config = config or ScanConfig()
        self.bandwidth = bandwidth or BandwidthModel()
        self.statistics = ScanStatistics()
        self.counters = ScanCounters()

    # -- pruning -----------------------------------------------------------------

    def _group_survives(self, group: RowGroupMeta) -> bool:
        """Whether a row group's min/max statistics intersect all prune ranges."""
        for prange in self.prune_ranges:
            if prange.column not in group.columns:
                continue
            meta = group.column_meta(prange.column)
            if meta.max_value < prange.lower or meta.min_value > prange.upper:
                return False
        return True

    # -- decoding cost model --------------------------------------------------------

    def _decode_seconds(self, rows: int, heavyweight: bool) -> float:
        """Modelled CPU seconds to decompress and decode ``rows`` rows.

        Heavy-weight compression (GZIP) is decompression-bound; a second
        thread on large workers can halve it (paper §4.3.2).
        """
        cpu_share = self.config.memory_mib / LAMBDA_MEMORY_PER_VCPU_MIB
        single_thread = min(cpu_share, 1.0)
        if self.config.threads > 1 and cpu_share > 1.0:
            usable = min(cpu_share, float(self.config.threads))
        else:
            usable = single_thread
        base = rows / (VCPU_ROWS_PER_SECOND * max(usable, 1e-9))
        return base * (1.0 if heavyweight else 0.4)

    # -- iteration --------------------------------------------------------------------

    def __iter__(self) -> Iterator[Table]:
        return self.scan()

    def scan(self) -> Iterator[Table]:
        """Yield decoded table chunks (one per surviving row group)."""
        for path in self.files:
            yield from self._scan_file(path)

    def _scan_file(self, path: str) -> Iterator[Table]:
        source = S3ObjectSource(
            self.store,
            path,
            chunk_bytes=self.config.chunk_bytes,
            connections=self.config.connections,
            memory_mib=self.config.memory_mib,
            bandwidth=self.bandwidth,
            statistics=ScanStatistics(),
        )
        reader = ColumnarFile(source)
        self.counters.files_scanned += 1
        # Everything read so far (footer + tail) is metadata.
        self.counters.metadata_seconds += source.statistics.transfer_seconds
        metadata_transfer = source.statistics.transfer_seconds

        columns = self.columns or reader.schema.names
        for group in reader.row_groups:
            if group.num_rows == 0:
                continue
            self.counters.row_groups_total += 1
            if not self._group_survives(group):
                self.counters.row_groups_pruned += 1
                continue
            chunk: Table = {}
            heavyweight = False
            for name in columns:
                chunk[name] = reader.read_column_chunk(group, name)
                heavyweight = heavyweight or group.column_meta(name).compression.is_heavyweight
            self.counters.rows_scanned += group.num_rows
            self.counters.decode_seconds += self._decode_seconds(group.num_rows, heavyweight)
            yield chunk

        # Attribute the remaining transfer time of this file to data download.
        self.counters.download_seconds += source.statistics.transfer_seconds - metadata_transfer
        self.statistics.merge(source.statistics)

    # -- summary ------------------------------------------------------------------------

    def modelled_seconds(self) -> float:
        """Total modelled scan time for this worker."""
        return self.counters.modelled_scan_seconds(self.config.overlap_downloads)
