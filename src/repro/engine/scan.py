"""S3-based columnar scan operator.

Reproduces the design of the paper's Parquet scan operator (§4.3.2, Figure 8):

* one small read fetches the file footer (metadata);
* row groups are pruned against the predicate using the footer's min/max
  statistics before any data is fetched;
* only the projected columns' chunks are downloaded, one ranged request per
  column chunk (or several chunk-sized requests for large chunks);
* downloads are modelled as happening over several concurrent connections and
  are overlapped with decompression of the previous row group ("level 3"
  concurrency), falling back to column-chunk parallelism ("level 2") for
  single-row-group files.

The operator yields decoded table chunks and accumulates
:class:`~repro.engine.s3io.ScanStatistics` plus scan-level counters used by
the benchmarks (pruned vs scanned row groups, modelled scan time).

When a predicate is pushed into the scan, row groups that survive min/max
pruning are executed with **late materialization**: predicate columns are
opened as encoded chunks and the comparisons evaluated directly on
dictionaries/runs, a selection vector is computed, fully-rejected chunks are
short-circuited before the remaining projected columns are even downloaded,
and surviving rows are gathered through
:func:`~repro.formats.encoding.decode_gather` instead of decode-then-mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence

import numpy as np

from repro.cloud.network import BandwidthModel
from repro.cloud.s3 import ObjectStore
from repro.config import (
    DEFAULT_SCAN_CHUNK_BYTES,
    DEFAULT_SCAN_CONNECTIONS,
    LAMBDA_MEMORY_PER_VCPU_MIB,
    VCPU_ROWS_PER_SECOND,
)
from repro.engine.s3io import S3ObjectSource, ScanStatistics
from repro.engine.table import Table
from repro.formats.encoding import (
    EncodedChunk,
    decode_gather,
    encoded_key_codes,
    evaluate_comparison,
)
from repro.formats.parquet import ColumnarFile, RowGroupMeta
from repro.plan.expressions import CompiledPredicate, Expression, compile_predicate, evaluate
from repro.plan.physical import PruneRange


@dataclass
class ScanConfig:
    """Tunable knobs of the scan operator."""

    chunk_bytes: int = DEFAULT_SCAN_CHUNK_BYTES
    connections: int = DEFAULT_SCAN_CONNECTIONS
    memory_mib: int = 2048
    threads: int = 2
    #: Overlap row-group downloads with decompression (concurrency level 3).
    overlap_downloads: bool = True
    #: Evaluate pushed-down predicates on encoded chunks and gather only
    #: surviving rows.  Off, the scan still applies the predicate but through
    #: the full-decode-then-mask baseline path.
    late_materialization: bool = True


@dataclass
class ScanCounters:
    """Scan-level counters reported by one worker."""

    files_scanned: int = 0
    row_groups_total: int = 0
    row_groups_pruned: int = 0
    rows_scanned: int = 0
    #: Row groups whose selection vector came out empty (yield skipped, no
    #: further column downloads) or full (no gather needed).
    row_groups_shortcircuit_empty: int = 0
    row_groups_shortcircuit_full: int = 0
    #: Column-chunk downloads avoided because the selection was empty.
    column_chunks_skipped: int = 0
    #: Rows whose full decode was avoided, summed over gathered/skipped columns.
    rows_decode_saved: int = 0
    #: Modelled seconds spent in metadata requests.
    metadata_seconds: float = 0.0
    #: Modelled seconds spent downloading data chunks.
    download_seconds: float = 0.0
    #: Modelled seconds spent decompressing and decoding.
    decode_seconds: float = 0.0

    @property
    def row_groups_scanned(self) -> int:
        """Row groups actually read (total minus pruned)."""
        return self.row_groups_total - self.row_groups_pruned

    @property
    def row_groups_shortcircuited(self) -> int:
        """Row groups that never reached the gather step."""
        return self.row_groups_shortcircuit_empty + self.row_groups_shortcircuit_full

    def modelled_scan_seconds(self, overlap: bool) -> float:
        """Total modelled scan time, overlapping download and decode if requested."""
        body = (
            max(self.download_seconds, self.decode_seconds)
            if overlap
            else self.download_seconds + self.decode_seconds
        )
        return self.metadata_seconds + body


@dataclass
class FusedBatch:
    """One row group's worth of filtered rows, keys kept in code space.

    Produced by :meth:`S3ScanOperator.scan_fused` for the fused
    scan→filter→partial-agg pipeline: aggregate-input columns are gathered
    into ``values`` exactly as the classic path would, but group-key columns
    stay as ``(sorted uniques, per-row codes)`` pairs when their encoding
    already provides codes (dictionary/RLE chunks), so the group-by kernel
    never materialises the key arrays.  Keys whose codes could not be derived
    (plain chunks) are materialised into ``key_values`` instead.
    """

    num_rows: int
    values: Table
    key_codes: Dict[str, tuple]
    key_values: Table

    def materialize_key(self, name: str) -> np.ndarray:
        """The key column as a value array (identical to the classic gather)."""
        if name in self.key_values:
            return self.key_values[name]
        uniques, codes = self.key_codes[name]
        if len(uniques) == 0:
            return np.zeros(0, dtype=uniques.dtype)
        return uniques[codes]


class S3ScanOperator:
    """Scans a list of columnar files from the object store."""

    def __init__(
        self,
        store: ObjectStore,
        files: Sequence[str],
        columns: Optional[Sequence[str]] = None,
        prune_ranges: Sequence[PruneRange] = (),
        config: Optional[ScanConfig] = None,
        bandwidth: Optional[BandwidthModel] = None,
        predicate: Optional[Expression] = None,
    ):
        self.store = store
        self.files = list(files)
        self.columns = list(columns) if columns else None
        self.prune_ranges = list(prune_ranges)
        self.config = config or ScanConfig()
        self.bandwidth = bandwidth or BandwidthModel()
        self.statistics = ScanStatistics()
        self.counters = ScanCounters()
        self.predicate = predicate
        self._compiled: Optional[CompiledPredicate] = (
            compile_predicate(predicate) if predicate is not None else None
        )

    @property
    def applies_predicate(self) -> bool:
        """Whether yielded chunks are already filtered by the pushed predicate."""
        return self.predicate is not None

    # -- pruning -----------------------------------------------------------------

    def _group_survives(self, group: RowGroupMeta) -> bool:
        """Whether a row group's min/max statistics intersect all prune ranges."""
        for prange in self.prune_ranges:
            if prange.column not in group.columns:
                continue
            meta = group.column_meta(prange.column)
            if meta.max_value < prange.lower or meta.min_value > prange.upper:
                return False
        return True

    # -- decoding cost model --------------------------------------------------------

    def _decode_seconds(self, rows: int, heavyweight: bool) -> float:
        """Modelled CPU seconds to decompress and decode ``rows`` rows.

        Heavy-weight compression (GZIP) is decompression-bound; a second
        thread on large workers can halve it (paper §4.3.2).
        """
        cpu_share = self.config.memory_mib / LAMBDA_MEMORY_PER_VCPU_MIB
        single_thread = min(cpu_share, 1.0)
        if self.config.threads > 1 and cpu_share > 1.0:
            usable = min(cpu_share, float(self.config.threads))
        else:
            usable = single_thread
        base = rows / (VCPU_ROWS_PER_SECOND * max(usable, 1e-9))
        return base * (1.0 if heavyweight else 0.4)

    # -- iteration --------------------------------------------------------------------

    def __iter__(self) -> Iterator[Table]:
        return self.scan()

    def scan(self) -> Iterator[Table]:
        """Yield decoded table chunks (one per surviving row group)."""
        for path in self.files:
            yield from self._scan_file(path)

    def scan_fused(self, group_keys: Sequence[str]) -> Iterator[FusedBatch]:
        """Yield filtered :class:`FusedBatch` batches (one per surviving group).

        Single-pass scan→filter for the fused aggregation pipeline: the
        pushed-down predicate's selection vector feeds the column gathers
        directly and group-key columns are kept in code space.  Download,
        decode-charge, and short-circuit accounting are identical to
        :meth:`scan` with the same predicate.
        """
        group_keys = frozenset(group_keys)
        for path in self.files:
            yield from self._scan_file(path, fused_keys=group_keys)

    def _scan_file(
        self, path: str, fused_keys: Optional[frozenset] = None
    ) -> Iterator[Table]:
        source = S3ObjectSource(
            self.store,
            path,
            chunk_bytes=self.config.chunk_bytes,
            connections=self.config.connections,
            memory_mib=self.config.memory_mib,
            bandwidth=self.bandwidth,
            statistics=ScanStatistics(),
        )
        reader = ColumnarFile(source)
        self.counters.files_scanned += 1
        # Everything read so far (footer + tail) is metadata.
        self.counters.metadata_seconds += source.statistics.transfer_seconds
        metadata_transfer = source.statistics.transfer_seconds

        columns = self.columns or reader.schema.names
        for group in reader.row_groups:
            if group.num_rows == 0:
                continue
            self.counters.row_groups_total += 1
            if not self._group_survives(group):
                self.counters.row_groups_pruned += 1
                continue
            self.counters.rows_scanned += group.num_rows
            if fused_keys is not None:
                batch = self._scan_group_fused(reader, group, columns, fused_keys)
                if batch is not None:
                    yield batch
                continue
            if self._compiled is not None:
                chunk = self._scan_group_filtered(reader, group, columns)
                if chunk is not None:
                    yield chunk
                continue
            chunk: Table = {}
            heavyweight = False
            for name in columns:
                chunk[name] = reader.read_column_chunk(group, name)
                heavyweight = heavyweight or group.column_meta(name).compression.is_heavyweight
            self.counters.decode_seconds += self._decode_seconds(group.num_rows, heavyweight)
            yield chunk

        # Attribute the remaining transfer time of this file to data download.
        self.counters.download_seconds += source.statistics.transfer_seconds - metadata_transfer
        self.statistics.merge(source.statistics)

    # -- predicate push-down -------------------------------------------------------

    def _scan_group_filtered(
        self, reader: ColumnarFile, group: RowGroupMeta, columns: Sequence[str]
    ) -> Optional[Table]:
        """Execute one surviving row group with the pushed-down predicate.

        Returns the filtered, projected chunk, or ``None`` when no row
        survives (in which case non-predicate column chunks were never
        downloaded).
        """
        compiled = self._compiled
        num_rows = group.num_rows
        encoded: Dict[str, EncodedChunk] = {}
        decoded: Dict[str, np.ndarray] = {}

        def load(name: str) -> EncodedChunk:
            if name not in encoded:
                encoded[name] = reader.read_encoded_chunk(group, name)
            return encoded[name]

        if not self.config.late_materialization:
            # Full-decode baseline: decode every needed column, evaluate the
            # whole predicate on the decoded arrays, mask-copy the chunk.
            needed = list(columns)
            for name in compiled.comparison_columns | compiled.residual_columns:
                if name not in needed:
                    needed.append(name)
            for name in needed:
                decoded[name] = load(name).decode()
            mask = np.asarray(evaluate(self.predicate, decoded), dtype=bool)
            self._charge_decode(group, needed, (), 0)
            if not mask.any():
                return None
            if mask.all():
                return {name: decoded[name] for name in columns}
            return {name: decoded[name][mask] for name in columns}

        mask = self._group_selection(load, decoded, num_rows)

        # 2. Short-circuit fully-rejected and fully-selected chunks.
        if mask is not None and not mask.any():
            skipped = [
                name for name in columns if name not in encoded and name not in decoded
            ]
            self.counters.column_chunks_skipped += len(skipped)
            self.counters.rows_decode_saved += num_rows * sum(
                1 for name in columns if name not in decoded
            )
            self.counters.row_groups_shortcircuit_empty += 1
            self._charge_decode(group, list(encoded), (), 0)
            return None
        if mask is None or mask.all():
            selection: Optional[np.ndarray] = None
            selected = num_rows
            self.counters.row_groups_shortcircuit_full += 1
        else:
            selection = np.flatnonzero(mask)
            selected = len(selection)

        # 3. Gather the projected columns for surviving rows only; columns not
        #    touched by the predicate are downloaded just-in-time here.
        predicate_columns = list(encoded)
        gathered_columns = [name for name in columns if name not in encoded]
        chunk: Table = {}
        for name in columns:
            if name in decoded:
                # Already fully decoded for the residual — sliced, not saved.
                values = decoded[name]
                chunk[name] = values if selection is None else values[selection]
            else:
                chunk[name] = decode_gather(load(name), selection)
                if selection is not None:
                    self.counters.rows_decode_saved += num_rows - selected
        self._charge_decode(group, predicate_columns, gathered_columns, selected)
        return chunk

    def _group_selection(self, load, decoded, num_rows: int) -> Optional[np.ndarray]:
        """Evaluate the compiled predicate on encoded chunks for one row group.

        Selection vector step shared by the filtered and fused scan paths:
        encoding-aware comparisons first (cheapest-to-reject ordering is the
        plan's conjunct order, short-circuiting as soon as the mask empties),
        then the decoded residual.  Returns the boolean row mask, or ``None``
        when the predicate constrains nothing.
        """
        compiled = self._compiled
        mask: Optional[np.ndarray] = None
        for comparison in compiled.comparisons:
            comparison_mask = evaluate_comparison(
                load(comparison.column), comparison.op, comparison.value
            )
            mask = comparison_mask if mask is None else mask & comparison_mask
            if not mask.any():
                break

        if mask is None or mask.any():
            if compiled.residual is not None:
                for name in sorted(compiled.residual_columns):
                    decoded[name] = load(name).decode()
                # A residual with no column references (literal-only) still
                # needs a row count to broadcast over.
                residual_input = decoded or {"__rows__": np.zeros(num_rows, dtype=np.int8)}
                residual_mask = np.asarray(
                    evaluate(compiled.residual, residual_input), dtype=bool
                )
                mask = residual_mask if mask is None else mask & residual_mask
        return mask

    # -- fused scan→filter→agg batches ---------------------------------------------

    def _scan_group_fused(
        self,
        reader: ColumnarFile,
        group: RowGroupMeta,
        columns: Sequence[str],
        group_keys: frozenset,
    ) -> Optional[FusedBatch]:
        """Execute one surviving row group for the fused aggregation pipeline.

        The selection vector, short-circuit, and decode-charge accounting are
        identical to :meth:`_scan_group_filtered`; the difference is the
        output shape: instead of materialising a filtered chunk, surviving
        rows are delivered as a :class:`FusedBatch` whose group-key columns
        stay in code space whenever the encoding provides codes.
        """
        num_rows = group.num_rows
        encoded: Dict[str, EncodedChunk] = {}
        decoded: Dict[str, np.ndarray] = {}

        def load(name: str) -> EncodedChunk:
            if name not in encoded:
                encoded[name] = reader.read_encoded_chunk(group, name)
            return encoded[name]

        mask: Optional[np.ndarray] = None
        if self._compiled is not None:
            mask = self._group_selection(load, decoded, num_rows)
            if mask is not None and not mask.any():
                skipped = [
                    name for name in columns if name not in encoded and name not in decoded
                ]
                self.counters.column_chunks_skipped += len(skipped)
                self.counters.rows_decode_saved += num_rows * sum(
                    1 for name in columns if name not in decoded
                )
                self.counters.row_groups_shortcircuit_empty += 1
                self._charge_decode(group, list(encoded), (), 0)
                return None

        if mask is None or mask.all():
            selection: Optional[np.ndarray] = None
            selected = num_rows
            if self._compiled is not None:
                self.counters.row_groups_shortcircuit_full += 1
        else:
            selection = np.flatnonzero(mask)
            selected = len(selection)

        predicate_columns = list(encoded)
        gathered_columns = [name for name in columns if name not in encoded]
        values: Table = {}
        key_codes: Dict[str, tuple] = {}
        key_values: Table = {}
        for name in columns:
            is_key = name in group_keys
            if name in decoded:
                # Already fully decoded for the residual — sliced, not saved.
                column = decoded[name]
                column = column if selection is None else column[selection]
                (key_values if is_key else values)[name] = column
                continue
            chunk = load(name)
            if is_key:
                derived = encoded_key_codes(chunk, selection)
                if derived is not None:
                    key_codes[name] = derived
                else:
                    key_values[name] = decode_gather(chunk, selection)
            else:
                values[name] = decode_gather(chunk, selection)
            if selection is not None:
                self.counters.rows_decode_saved += num_rows - selected
        self._charge_decode(group, predicate_columns, gathered_columns, selected)
        return FusedBatch(
            num_rows=selected, values=values, key_codes=key_codes, key_values=key_values
        )

    def _charge_decode(
        self,
        group: RowGroupMeta,
        full_columns: Sequence[str],
        gathered_columns: Sequence[str],
        gathered_rows: int,
    ) -> None:
        """Charge modelled decode time for the columns actually touched.

        Predicate columns and decoded residual columns pay full-chunk decode;
        gathered columns pay only for the surviving rows.  The charge is
        normalised by the projected column count, so an unfiltered scan of the
        same columns costs exactly the legacy ``_decode_seconds(num_rows)``.
        """
        projected = self.columns or list(group.columns)
        width = max(len(projected), 1)
        touched = list(full_columns) + list(gathered_columns)
        heavyweight = any(
            group.column_meta(name).compression.is_heavyweight for name in touched
        )
        charged = group.num_rows * len(full_columns) + gathered_rows * len(gathered_columns)
        self.counters.decode_seconds += self._decode_seconds(charged / width, heavyweight)

    # -- summary ------------------------------------------------------------------------

    def modelled_seconds(self) -> float:
        """Total modelled scan time for this worker."""
        return self.counters.modelled_scan_seconds(self.config.overlap_downloads)
