"""Vectorized execution engine run inside the serverless workers.

The engine executes :class:`~repro.plan.physical.WorkerPlan` fragments against
the object store: it scans columnar files (with projection push-down, min/max
row-group pruning, and a modelled multi-connection download strategy), applies
filters and computed columns, and produces partial aggregates.  The same
operators also run on the driver for small local scopes.

The public entry point is :func:`~repro.engine.pipeline.execute_worker_plan`.
"""

from repro.engine.table import (
    Table,
    table_num_rows,
    concat_tables,
    filter_table,
    select_columns,
    table_to_payload,
    table_from_payload,
    empty_table_like,
)
from repro.engine.payload import decode_table, encode_table, is_binary_payload
from repro.engine.s3io import S3ObjectSource, ScanStatistics
from repro.engine.scan import S3ScanOperator, ScanConfig
from repro.engine.aggregates import (
    partial_aggregate,
    merge_partials,
    finalize_aggregates,
)
from repro.engine.pipeline import execute_worker_plan, WorkerResult
from repro.engine.join import hash_join, hash_join_dict

__all__ = [
    "Table",
    "table_num_rows",
    "concat_tables",
    "filter_table",
    "select_columns",
    "table_to_payload",
    "table_from_payload",
    "empty_table_like",
    "encode_table",
    "decode_table",
    "is_binary_payload",
    "S3ObjectSource",
    "ScanStatistics",
    "S3ScanOperator",
    "ScanConfig",
    "partial_aggregate",
    "merge_partials",
    "finalize_aggregates",
    "execute_worker_plan",
    "WorkerResult",
    "hash_join",
    "hash_join_dict",
]
