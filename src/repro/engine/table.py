"""In-memory table utilities.

A *table* (or table chunk) is simply a ``dict`` mapping column names to
equal-length NumPy arrays — the columnar in-memory representation that the
paper's JIT-compiled pipelines consume.  These helpers keep that invariant and
provide the operations shared by several operators.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.errors import ExecutionError, UnknownColumnError

#: Type alias for readability; a table maps column name -> NumPy array.
Table = Dict[str, np.ndarray]


def table_num_rows(table: Table) -> int:
    """Number of rows in a table (0 for an empty dict)."""
    if not table:
        return 0
    lengths = {len(column) for column in table.values()}
    if len(lengths) != 1:
        raise ExecutionError(f"ragged table with column lengths {sorted(lengths)}")
    return lengths.pop()


def select_columns(table: Table, columns: Sequence[str]) -> Table:
    """Keep only ``columns`` (in the given order)."""
    missing = [name for name in columns if name not in table]
    if missing:
        raise UnknownColumnError(", ".join(missing))
    return {name: table[name] for name in columns}


def filter_table(table: Table, mask: np.ndarray) -> Table:
    """Apply a boolean mask to every column."""
    if mask.dtype != bool:
        mask = mask.astype(bool)
    if len(mask) != table_num_rows(table):
        raise ExecutionError(
            f"mask of length {len(mask)} applied to table of {table_num_rows(table)} rows"
        )
    return {name: column[mask] for name, column in table.items()}


def concat_tables(tables: Iterable[Table]) -> Table:
    """Concatenate tables with identical column sets."""
    parts: List[Table] = [table for table in tables if table_num_rows(table) > 0]
    if not parts:
        return {}
    names = list(parts[0].keys())
    for part in parts[1:]:
        if list(part.keys()) != names:
            raise ExecutionError(
                f"cannot concatenate tables with different columns: {names} vs {list(part.keys())}"
            )
    return {name: np.concatenate([part[name] for part in parts]) for name in names}


def empty_table_like(columns: Sequence[str]) -> Table:
    """An empty table with the given column names (float64 columns)."""
    return {name: np.zeros(0, dtype=np.float64) for name in columns}


def take_rows(table: Table, indices: np.ndarray) -> Table:
    """Row gather by integer indices: one fancy-index pass per column."""
    return {name: np.asarray(column)[indices] for name, column in table.items()}


def table_to_payload(table: Table) -> Dict[str, List]:
    """Serialise a (small) table into JSON-compatible lists.

    Used for shipping partial aggregate results through SQS / invocation
    responses; the tables at that point are tiny (a handful of groups).
    """
    return {name: np.asarray(column).tolist() for name, column in table.items()}


def table_from_payload(payload: Dict[str, List]) -> Table:
    """Inverse of :func:`table_to_payload`.

    Also accepts the binary columnar payload form of
    :mod:`repro.engine.payload`, so callers can decode a result payload
    without caring which format the producer chose.
    """
    from repro.engine.payload import decode_table, is_binary_payload

    if is_binary_payload(payload):
        return decode_table(payload)
    return {name: np.asarray(values) for name, values in payload.items()}


def tables_allclose(
    left: Table,
    right: Table,
    rtol: float = 1e-9,
    atol: float = 1e-9,
    equal_nan: bool = True,
) -> bool:
    """Whether two tables have the same columns and numerically equal content.

    NaNs compare equal by default (``equal_nan``): two pipelines that both
    produce a NaN for the same row agree semantically.
    """
    if set(left.keys()) != set(right.keys()):
        return False
    for name in left:
        if len(left[name]) != len(right[name]):
            return False
        if not np.allclose(
            np.asarray(left[name], dtype=np.float64),
            np.asarray(right[name], dtype=np.float64),
            rtol=rtol,
            atol=atol,
            equal_nan=equal_nan,
        ):
            return False
    return True


def sort_table(table: Table, keys: Sequence[str], descending: bool = False) -> Table:
    """Sort a table by one or more key columns (lexicographic, stable)."""
    if not keys:
        return table
    missing = [name for name in keys if name not in table]
    if missing:
        raise UnknownColumnError(", ".join(missing))
    # np.lexsort sorts by the *last* key first, so reverse the key order.
    order = np.lexsort(tuple(np.asarray(table[name]) for name in reversed(keys)))
    if descending:
        order = order[::-1]
    return take_rows(table, order)
