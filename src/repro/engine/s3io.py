"""S3-backed random-access source with request accounting and a timing model.

This is the reproduction of the "S3 file system" layer of the paper's scan
operator (Figure 8): it implements the reader-facing random-access interface
(:meth:`read_at`) on top of the object store's ranged GETs, splitting large
reads into chunk-sized requests that would be issued over several concurrent
connections, and it records the statistics needed to model scan bandwidth and
request cost (Figures 6 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cloud.network import BandwidthModel, TransferPlan
from repro.cloud.s3 import ObjectStore, parse_s3_path
from repro.config import DEFAULT_SCAN_CHUNK_BYTES, DEFAULT_SCAN_CONNECTIONS
from repro.formats.source import RandomAccessSource


@dataclass
class ScanStatistics:
    """Accumulated I/O statistics of one worker's scan activity."""

    get_requests: int = 0
    bytes_read: int = 0
    #: Modelled wall-clock seconds spent transferring data (latency + stream).
    transfer_seconds: float = 0.0
    #: Individual transfers as (bytes, seconds) pairs for detailed analysis.
    transfers: List[Tuple[int, float]] = field(default_factory=list)

    def merge(self, other: "ScanStatistics") -> None:
        """Fold another statistics object into this one."""
        self.get_requests += other.get_requests
        self.bytes_read += other.bytes_read
        self.transfer_seconds += other.transfer_seconds
        self.transfers.extend(other.transfers)

    @property
    def effective_bandwidth(self) -> float:
        """Average achieved bandwidth in bytes/second (0 if nothing was read)."""
        if self.transfer_seconds <= 0:
            return 0.0
        return self.bytes_read / self.transfer_seconds


class S3ObjectSource(RandomAccessSource):
    """Random-access reads of one object, issued as chunked ranged GETs."""

    def __init__(
        self,
        store: ObjectStore,
        path: str,
        chunk_bytes: int = DEFAULT_SCAN_CHUNK_BYTES,
        connections: int = DEFAULT_SCAN_CONNECTIONS,
        memory_mib: int = 2048,
        bandwidth: Optional[BandwidthModel] = None,
        statistics: Optional[ScanStatistics] = None,
    ):
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if connections < 1:
            raise ValueError("connections must be at least 1")
        self.store = store
        self.bucket, self.key = parse_s3_path(path)
        self.path = path
        self.chunk_bytes = chunk_bytes
        self.connections = connections
        self.memory_mib = memory_mib
        self.bandwidth = bandwidth or BandwidthModel()
        self.statistics = statistics if statistics is not None else ScanStatistics()
        self._size = self.store.head_object(self.bucket, self.key).size
        self.statistics.get_requests += 1  # the HEAD/metadata request

    def size(self) -> int:
        return self._size

    def read_at(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` using chunked ranged GETs."""
        if offset < 0 or length < 0:
            raise ValueError("offset and length must be non-negative")
        end = min(offset + length, self._size)
        if end <= offset:
            return b""
        pieces: List[bytes] = []
        request_count = 0
        position = offset
        while position < end:
            chunk_end = min(position + self.chunk_bytes, end)
            result = self.store.get_object(self.bucket, self.key, position, chunk_end)
            pieces.append(result.data)
            request_count += 1
            position = chunk_end
        data = b"".join(pieces)

        # Model the transfer time of this read as one pipelined download.
        plan = TransferPlan(
            total_bytes=len(data),
            chunk_bytes=self.chunk_bytes,
            connections=self.connections,
            memory_mib=self.memory_mib,
        )
        seconds = self.bandwidth.transfer_seconds(plan)
        self.statistics.get_requests += request_count
        self.statistics.bytes_read += len(data)
        self.statistics.transfer_seconds += seconds
        self.statistics.transfers.append((len(data), seconds))
        return data
