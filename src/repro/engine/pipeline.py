"""Worker pipeline execution.

:func:`execute_worker_plan` is what the serverless worker's event handler
calls: it executes one :class:`~repro.plan.physical.WorkerPlan` against the
object store — scan (with pruning and push-downs), filter, map, partial
aggregation or row collection — and returns a :class:`WorkerResult` holding
the partial result plus the statistics and modelled timings that the driver
and the benchmarks consume.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.network import BandwidthModel
from repro.cloud.s3 import ObjectStore
from repro.engine.aggregates import (
    merge_partials,
    partial_aggregate,
    partial_aggregate_fused,
)
from repro.engine.payload import encode_table
from repro.engine.scan import S3ScanOperator, ScanConfig
from repro.engine.table import Table, concat_tables, filter_table, table_num_rows
from repro.errors import ExecutionError
from repro.plan.expressions import evaluate
from repro.plan.physical import WorkerPlan, resolve_udf

#: Vectorised reductions for the built-in associative reduce UDFs (see
#: ``BUILTIN_REDUCE_UDFS`` in :mod:`repro.plan.physical`): the per-chunk fold
#: becomes one ufunc reduction instead of a per-row ``functools.reduce``.
_BUILTIN_REDUCE_UFUNCS = {
    "builtin-reduce:add": np.add,
    "builtin-reduce:mul": np.multiply,
    "builtin-reduce:min": np.minimum,
    "builtin-reduce:max": np.maximum,
}


@dataclass
class WorkerResult:
    """Result and statistics of executing one worker plan fragment."""

    #: Partial aggregate table (or collected rows) as a JSON-compatible payload
    #: (binary columnar for large tables, legacy ``{name: list}`` for tiny ones;
    #: see :mod:`repro.engine.payload`).
    partial: Dict[str, Any]
    #: Result of a UDF reduce, if the plan used one.
    reduce_value: Optional[Any] = None
    #: Rows decoded from the scanned row groups.
    rows_scanned: int = 0
    #: Rows remaining after the filter.
    rows_after_filter: int = 0
    #: Rows in the partial result.
    rows_output: int = 0
    row_groups_total: int = 0
    row_groups_pruned: int = 0
    #: Row groups short-circuited by the late-materialization scan (selection
    #: vector came out empty or full before any gather work).
    row_groups_shortcircuited: int = 0
    #: Rows whose full decode the selection-vector gather avoided.
    rows_decode_saved: int = 0
    #: Column-chunk downloads skipped because no row of the chunk survived.
    column_chunks_skipped: int = 0
    get_requests: int = 0
    bytes_read: int = 0
    #: Join-wave counters (non-zero only for shuffle-join workers): probe-side
    #: and build-side input rows and rows produced by the join kernel.
    join_probe_rows: int = 0
    join_build_rows: int = 0
    join_output_rows: int = 0
    #: Modelled time breakdown, seconds.
    metadata_seconds: float = 0.0
    download_seconds: float = 0.0
    compute_seconds: float = 0.0
    duration_seconds: float = 0.0
    #: Exchange request/byte counters of shuffle workers, as the dict form of
    #: :class:`repro.exchange.basic.ExchangeStats` (``None`` for scan-only
    #: workers, which never touch the exchange plane).
    exchange_stats: Optional[Dict[str, int]] = None
    #: Integrity counters of this worker's reads, as the dict form of
    #: :class:`repro.driver.integrity.IntegrityStats` (``None`` when the
    #: worker verified nothing).
    integrity_stats: Optional[Dict[str, Any]] = None
    #: Which attempt produced this result (0 = first invocation); set by the
    #: worker from its payload so the driver can dedup late re-deliveries.
    attempt: int = 0

    def to_payload(self) -> Dict:
        """Serialise for the SQS result message / invocation response."""
        return {
            "attempt": self.attempt,
            "exchange_stats": self.exchange_stats,
            "integrity_stats": self.integrity_stats,
            "partial": self.partial,
            "reduce_value": self.reduce_value,
            "rows_scanned": self.rows_scanned,
            "rows_after_filter": self.rows_after_filter,
            "rows_output": self.rows_output,
            "row_groups_total": self.row_groups_total,
            "row_groups_pruned": self.row_groups_pruned,
            "row_groups_shortcircuited": self.row_groups_shortcircuited,
            "rows_decode_saved": self.rows_decode_saved,
            "column_chunks_skipped": self.column_chunks_skipped,
            "get_requests": self.get_requests,
            "bytes_read": self.bytes_read,
            "join_probe_rows": self.join_probe_rows,
            "join_build_rows": self.join_build_rows,
            "join_output_rows": self.join_output_rows,
            "metadata_seconds": self.metadata_seconds,
            "download_seconds": self.download_seconds,
            "compute_seconds": self.compute_seconds,
            "duration_seconds": self.duration_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "WorkerResult":
        """Inverse of :meth:`to_payload`.

        Unknown keys are ignored so that results recorded by a newer payload
        format (which may carry extra fields) still replay on this version.
        """
        known = {f.name for f in dataclass_fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


def _rows_as_tuples(table: Table, column_order: Sequence[str]) -> List[tuple]:
    """Materialise a table chunk as a list of row tuples (for opaque UDFs)."""
    columns = [np.asarray(table[name]) for name in column_order]
    return list(zip(*columns)) if columns else []


def _apply_filter(
    plan: WorkerPlan,
    chunk: Table,
    column_order: Sequence[str],
    skip_expression: bool = False,
) -> Table:
    """Apply the plan's predicate conjuncts (expression and/or UDF) to a chunk.

    ``skip_expression`` is set when the scan already consumed the expression
    predicate through its selection vector; the opaque UDF conjunct (if any)
    still applies on top.
    """
    result = chunk
    if not skip_expression and plan.predicate is not None:
        mask = np.asarray(evaluate(plan.predicate, result), dtype=bool)
        result = filter_table(result, mask)
    if plan.predicate_udf is not None:
        udf = resolve_udf(plan.predicate_udf)
        rows = _rows_as_tuples(result, column_order)
        mask = np.array([bool(udf(row)) for row in rows], dtype=bool)
        result = filter_table(result, mask)
    return result


def _apply_map(plan: WorkerPlan, chunk: Table, column_order: Sequence[str]) -> Table:
    """Apply the plan's computed columns (expressions or a UDF) to a chunk."""
    if plan.map_udf is not None:
        udf = resolve_udf(plan.map_udf)
        rows = _rows_as_tuples(chunk, column_order)
        values = np.array([udf(row) for row in rows], dtype=np.float64)
        mapped = {"value": values}
        if plan.map_replace:
            return mapped
        combined = dict(chunk)
        combined.update(mapped)
        return combined
    if plan.map_outputs:
        outputs = {
            alias: np.asarray(evaluate(expression, chunk))
            for alias, expression in plan.map_outputs
        }
        if plan.map_replace:
            return outputs
        combined = dict(chunk)
        combined.update(outputs)
        return combined
    return chunk


def _plan_supports_fused(plan: WorkerPlan, config: ScanConfig) -> bool:
    """Whether the fused scan→filter→partial-agg kernel can run this plan.

    The fused path covers expression-only aggregation plans; opaque UDFs and
    computed map columns need materialised chunks, and without late
    materialization there is no selection vector to fuse.
    """
    return bool(
        plan.aggregates
        and plan.predicate_udf is None
        and plan.map_udf is None
        and not plan.map_outputs
        and config.late_materialization
    )


def execute_worker_plan(
    plan: WorkerPlan,
    store: ObjectStore,
    memory_mib: int = 2048,
    threads: int = 2,
    bandwidth: Optional[BandwidthModel] = None,
    fused: bool = True,
) -> WorkerResult:
    """Execute a worker plan fragment and return its partial result.

    The partial table travels in the result as a JSON-compatible payload (see
    :mod:`repro.engine.payload`); :func:`execute_worker_plan_table` returns
    the raw table instead, for callers with a binary result plane.
    """
    result, table = execute_worker_plan_table(
        plan, store, memory_mib=memory_mib, threads=threads, bandwidth=bandwidth,
        fused=fused,
    )
    # Always the binary columnar form: the legacy ``{name: list}`` encoding
    # widens integer dtypes through JSON, which would make serial results
    # differ bitwise from the shared-memory (dtype-preserving) result plane.
    result.partial = encode_table(table, force_binary=True) if table is not None else {}
    return result


def execute_worker_plan_table(
    plan: WorkerPlan,
    store: ObjectStore,
    memory_mib: int = 2048,
    threads: int = 2,
    bandwidth: Optional[BandwidthModel] = None,
    fused: bool = True,
) -> tuple:
    """Execute a worker plan fragment; return ``(result, table)``.

    ``result.partial`` is left empty — the partial aggregate (or collected
    rows) comes back as the raw ``table`` (``None`` for reduce plans), so
    process-pool workers can ship it through shared memory without a
    serialisation round-trip.  ``fused=False`` forces the classic
    chunk-materialising pipeline (used by parity tests and benchmarks).
    """
    config = ScanConfig(
        chunk_bytes=plan.scan_chunk_bytes,
        connections=plan.scan_connections,
        memory_mib=memory_mib,
        threads=threads,
    )
    scan = S3ScanOperator(
        store,
        files=plan.files,
        columns=plan.columns or None,
        prune_ranges=plan.prune_ranges,
        config=config,
        bandwidth=bandwidth,
        # Expression predicates are pushed into the scan, which evaluates them
        # on encoded chunks and yields pre-filtered chunks; UDF predicates are
        # opaque and stay here.
        predicate=plan.predicate,
    )

    partials: List[Table] = []
    collected: List[Table] = []
    reduce_values: List[Any] = []
    reduce_fn = resolve_udf(plan.reduce_udf) if plan.reduce_udf else None
    reduce_ufunc = _BUILTIN_REDUCE_UFUNCS.get(plan.reduce_udf) if plan.reduce_udf else None
    rows_after_filter = 0

    if fused and _plan_supports_fused(plan, config):
        # Fused pipeline: the scan's selection vectors feed the aggregate
        # kernels directly, group keys stay in code space, and no filtered
        # chunk is ever materialised.
        for batch in scan.scan_fused(plan.group_by):
            rows_after_filter += batch.num_rows
            partials.append(
                partial_aggregate_fused(batch, plan.group_by, plan.aggregates)
            )
        return _finish_worker_plan(
            plan, scan, partials, collected, reduce_fn, reduce_values,
            rows_after_filter,
        )

    column_order: List[str] = list(plan.columns)
    for chunk in scan.scan():
        if not column_order:
            column_order = list(chunk.keys())
        # The scan already consumed the expression predicate's selection
        # vector; only a UDF conjunct (if any) remains to apply here.
        filtered = _apply_filter(
            plan, chunk, column_order, skip_expression=scan.applies_predicate
        )
        rows_after_filter += table_num_rows(filtered)
        mapped = _apply_map(plan, filtered, column_order)
        if plan.aggregates:
            partials.append(partial_aggregate(mapped, plan.group_by, plan.aggregates))
        elif reduce_fn is not None:
            values = mapped.get("value")
            if values is None:
                if len(mapped) != 1:
                    raise ExecutionError("reduce requires a single value column")
                values = next(iter(mapped.values()))
            if len(values):
                values = np.asarray(values)
                # add/mul of integer values keeps the Python fold: the old
                # path reduced arbitrary-precision ints, which a fixed-width
                # ufunc reduction would silently wrap on overflow.
                safe = reduce_ufunc in (np.minimum, np.maximum) or values.dtype.kind == "f"
                if reduce_ufunc is not None and safe:
                    reduce_values.append(reduce_ufunc.reduce(values).item())
                else:
                    reduce_values.append(functools.reduce(reduce_fn, values.tolist()))
        else:
            collected.append(mapped)

    return _finish_worker_plan(
        plan, scan, partials, collected, reduce_fn, reduce_values, rows_after_filter
    )


def _finish_worker_plan(
    plan: WorkerPlan,
    scan: S3ScanOperator,
    partials: List[Table],
    collected: List[Table],
    reduce_fn,
    reduce_values: List[Any],
    rows_after_filter: int,
) -> tuple:
    """Merge per-chunk outputs and assemble the (result, table) pair."""
    if plan.aggregates:
        table: Optional[Table] = merge_partials(partials, plan.group_by, plan.aggregates)
        rows_output = table_num_rows(table)
        reduce_value = None
    elif reduce_fn is not None:
        reduce_value = (
            functools.reduce(reduce_fn, reduce_values) if reduce_values else None
        )
        table = None
        rows_output = 0 if reduce_value is None else 1
    else:
        table = concat_tables(collected)
        rows_output = table_num_rows(table)
        reduce_value = None

    counters = scan.counters
    duration = scan.modelled_seconds()
    result = WorkerResult(
        partial={},
        reduce_value=reduce_value,
        rows_scanned=counters.rows_scanned,
        rows_after_filter=rows_after_filter,
        rows_output=rows_output,
        row_groups_total=counters.row_groups_total,
        row_groups_pruned=counters.row_groups_pruned,
        row_groups_shortcircuited=counters.row_groups_shortcircuited,
        rows_decode_saved=counters.rows_decode_saved,
        column_chunks_skipped=counters.column_chunks_skipped,
        get_requests=scan.statistics.get_requests,
        bytes_read=scan.statistics.bytes_read,
        metadata_seconds=counters.metadata_seconds,
        download_seconds=counters.download_seconds,
        compute_seconds=counters.decode_seconds,
        duration_seconds=duration,
    )
    return result, table
