"""Grouped and scalar aggregation.

The workers compute *partial* aggregates over their table chunks; the driver
*merges* the partials and *finalises* derived aggregates (``avg``).  All three
steps operate on tables (dicts of NumPy arrays) and are implemented with
vectorised NumPy group-by kernels.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExecutionError
from repro.plan.expressions import evaluate
from repro.plan.logical import AggregateSpec
from repro.engine.table import Table, concat_tables, table_num_rows


def _column_codes(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct values (ascending) and the per-row code of one key column.

    Single-character string columns (e.g. TPC-H flag columns) are compared as
    their UCS-4 code points, which turns the string sort inside ``np.unique``
    into an integer sort at identical ordering.
    """
    array = np.asarray(values)
    if array.dtype.kind == "U" and array.dtype.itemsize == 4:
        unique_ints, inverse = np.unique(array.view(np.uint32), return_inverse=True)
        return unique_ints.view(array.dtype), inverse
    unique, inverse = np.unique(array, return_inverse=True)
    return unique, inverse


#: Combined-key cardinality up to which the multi-key group-by factorises the
#: dense code space with one ``np.bincount`` pass (O(N + C)) instead of the
#: sort-based ``np.unique`` (O(N log N)).  2^21 int64 counts is a 16 MiB
#: scratch array — trivial next to a worker's chunk buffers.
DENSE_FACTORIZE_MAX_CARDINALITY = 1 << 21


def _dense_factorize(combined: np.ndarray, cardinality: int) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(combined, return_inverse=True)`` for small dense code spaces.

    ``combined`` holds non-negative codes below ``cardinality``.  Presence is
    established with one bincount; the sorted unique codes and the per-row
    inverse fall out of a cumulative-sum remap without sorting the rows.
    """
    counts = np.bincount(combined, minlength=cardinality)
    present = counts > 0
    remap = np.cumsum(present) - 1
    return np.flatnonzero(present), remap[combined]


def _group_indices(table: Table, group_by: Sequence[str]) -> Tuple[Table, np.ndarray, int]:
    """Compute group keys and per-row group indices.

    Returns ``(key_table, inverse, num_groups)`` where ``key_table`` holds the
    distinct key combinations in sorted order and ``inverse[i]`` is the group
    index of row ``i``.

    Multi-key grouping combines per-column integer codes into a single int64
    key instead of sorting a record array, which would fall back to slow
    per-row void comparisons.  Each column's codes are rank-preserving, so the
    combined sort order equals the lexicographic order of the key values.
    """
    num_rows = table_num_rows(table)
    if not group_by:
        return {}, np.zeros(num_rows, dtype=np.int64), 1 if num_rows else 1
    keys = [np.asarray(table[name]) for name in group_by]

    if len(keys) == 1:
        unique_values, inverse = _column_codes(keys[0])
        return {group_by[0]: unique_values}, inverse, len(unique_values)

    column_uniques: List[np.ndarray] = []
    combined: Optional[np.ndarray] = None
    cardinality = 1
    for key in keys:
        unique_values, codes = _column_codes(key)
        column_uniques.append(unique_values)
        cardinality *= max(len(unique_values), 1)
        if cardinality > 2 ** 62:
            break  # combined codes would overflow; use the record-array path
        combined = codes if combined is None else combined * len(unique_values) + codes

    if cardinality > 2 ** 62:
        stacked = np.rec.fromarrays(keys, names=[f"k{i}" for i in range(len(keys))])
        unique, inverse = np.unique(stacked, return_inverse=True)
        key_table = {
            name: np.asarray(unique[f"k{i}"]) for i, name in enumerate(group_by)
        }
        return key_table, inverse, len(unique)

    if cardinality <= DENSE_FACTORIZE_MAX_CARDINALITY:
        unique_codes, inverse = _dense_factorize(combined, cardinality)
    else:
        unique_codes, inverse = np.unique(combined, return_inverse=True)
    key_table: Table = {}
    remaining = unique_codes
    for name, unique_values in zip(reversed(group_by), reversed(column_uniques)):
        width = max(len(unique_values), 1)
        key_table[name] = unique_values[remaining % width]
        remaining = remaining // width
    key_table = {name: key_table[name] for name in group_by}
    return key_table, inverse, len(unique_codes)


def _aggregate_column(
    values: np.ndarray, inverse: np.ndarray, num_groups: int, function: str
) -> np.ndarray:
    """Aggregate ``values`` per group index."""
    if function == "sum":
        return np.bincount(inverse, weights=values, minlength=num_groups)
    if function == "count":
        return np.bincount(inverse, minlength=num_groups).astype(np.float64)
    if function in ("min", "max"):
        result = np.full(num_groups, np.inf if function == "min" else -np.inf)
        reducer = np.minimum if function == "min" else np.maximum
        np_func = reducer.at
        np_func(result, inverse, values)
        return result
    raise ExecutionError(f"unsupported partial aggregate {function!r}")


def partial_aggregate(
    table: Table,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Compute partial aggregates of one table chunk.

    The result has the group-by columns followed by one column per aggregate
    alias.  An empty input yields an empty result table with the right
    columns.
    """
    num_rows = table_num_rows(table)
    aliases = [spec.alias for spec in aggregates]
    if num_rows == 0:
        empty = {name: np.zeros(0, dtype=np.float64) for name in list(group_by) + aliases}
        return empty

    key_table, inverse, num_groups = _group_indices(table, group_by)
    result: Table = dict(key_table)
    for spec in aggregates:
        if spec.function == "count" and spec.expression is None:
            values = np.ones(num_rows, dtype=np.float64)
        else:
            values = np.asarray(evaluate(spec.expression, table), dtype=np.float64)
        result[spec.alias] = _aggregate_column(values, inverse, num_groups, spec.function)
    return result


class _FusedEvalTable(dict):
    """Table view over a :class:`~repro.engine.scan.FusedBatch` for expressions.

    Aggregate-input columns resolve from the batch's gathered ``values``;
    group keys referenced by an aggregate expression materialise lazily from
    their code pairs on first access (``uniques[codes]`` — identical to the
    classic gather).
    """

    def __init__(self, batch):
        super().__init__(batch.values)
        self.update(batch.key_values)
        self._batch = batch

    def __missing__(self, name):
        values = self._batch.materialize_key(name)
        self[name] = values
        return values


def fused_group_indices(batch, group_by: Sequence[str]) -> Tuple[Table, np.ndarray, int]:
    """:func:`_group_indices` over a fused batch, reusing encoding-level codes.

    Keys delivered in code space by the scan skip the ``np.unique`` pass
    entirely: their codes index the chunk's sorted unique list, so combining
    them is rank-preserving exactly like ``_column_codes`` output.  Codes from
    the encoding range over the chunk's *dictionary* (a superset of the values
    actually present after filtering); the dense factorisation drops absent
    entries, which is precisely what ``np.unique`` on the materialised values
    would have produced — the result is bit-identical to the classic path.
    """
    num_rows = batch.num_rows
    if not group_by:
        return {}, np.zeros(num_rows, dtype=np.int64), 1

    per_key: List[Tuple[np.ndarray, np.ndarray]] = []
    cardinality = 1
    for name in group_by:
        if name in batch.key_codes:
            uniques, codes = batch.key_codes[name]
        else:
            uniques, codes = _column_codes(batch.key_values[name])
        per_key.append((uniques, codes))
        cardinality *= max(len(uniques), 1)

    if cardinality > DENSE_FACTORIZE_MAX_CARDINALITY:
        # Superset code space too large for the dense kernel: materialise the
        # keys and take the general (present-values) path.
        table = {name: batch.materialize_key(name) for name in group_by}
        return _group_indices(table, group_by)

    combined: Optional[np.ndarray] = None
    for uniques, codes in per_key:
        combined = (
            codes.astype(np.int64, copy=False)
            if combined is None
            else combined * len(uniques) + codes
        )
    unique_codes, inverse = _dense_factorize(combined, cardinality)
    key_table: Table = {}
    remaining = unique_codes
    for name, (uniques, _) in zip(reversed(group_by), reversed(per_key)):
        width = max(len(uniques), 1)
        key_table[name] = uniques[remaining % width]
        remaining = remaining // width
    key_table = {name: key_table[name] for name in group_by}
    return key_table, inverse, len(unique_codes)


def partial_aggregate_fused(
    batch,
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """:func:`partial_aggregate` over a :class:`~repro.engine.scan.FusedBatch`.

    Selection vectors feed the aggregate kernels directly — the batch's keys
    stay in code space and no intermediate filtered table is materialised.
    The output is bit-identical to running :func:`partial_aggregate` on the
    equivalent materialised chunk (same bincount accumulation order).
    """
    num_rows = batch.num_rows
    aliases = [spec.alias for spec in aggregates]
    if num_rows == 0:
        return {name: np.zeros(0, dtype=np.float64) for name in list(group_by) + aliases}

    key_table, inverse, num_groups = fused_group_indices(batch, group_by)
    eval_table = _FusedEvalTable(batch)
    result: Table = dict(key_table)
    for spec in aggregates:
        if spec.function == "count" and spec.expression is None:
            values = np.ones(num_rows, dtype=np.float64)
        else:
            values = np.asarray(evaluate(spec.expression, eval_table), dtype=np.float64)
        result[spec.alias] = _aggregate_column(values, inverse, num_groups, spec.function)
    return result


def merge_partials(
    partials: Sequence[Table],
    group_by: Sequence[str],
    aggregates: Sequence[AggregateSpec],
) -> Table:
    """Merge per-worker partial aggregate tables into one.

    Partial sums and counts add up; partial mins/maxes combine with min/max.
    """
    non_empty = [table for table in partials if table_num_rows(table) > 0]
    if not non_empty:
        return partial_aggregate({}, group_by, aggregates)
    combined = concat_tables(non_empty)
    merge_specs = []
    for spec in aggregates:
        merge_function = "sum" if spec.function in ("sum", "count") else spec.function
        merge_specs.append(
            AggregateSpec(merge_function, _column_expr(spec.alias), spec.alias)
        )
    return partial_aggregate(combined, group_by, merge_specs)


def _column_expr(name: str):
    from repro.plan.expressions import col

    return col(name)


def finalize_aggregates(
    merged: Table,
    group_by: Sequence[str],
    final_aggregates: Sequence[AggregateSpec],
) -> Table:
    """Produce the user-facing result from merged partials.

    ``avg`` aggregates are finalised as ``sum / count`` from their partial
    columns (named ``__<alias>_sum`` / ``__<alias>_count``); the other
    functions pass through under their alias.
    """
    result: Table = {name: np.asarray(merged[name]) for name in group_by}
    for spec in final_aggregates:
        if spec.function == "avg":
            sum_alias = f"__{spec.alias}_sum"
            count_alias = f"__{spec.alias}_count"
            if sum_alias not in merged or count_alias not in merged:
                raise ExecutionError(f"missing partials for avg aggregate {spec.alias!r}")
            counts = np.asarray(merged[count_alias], dtype=np.float64)
            with np.errstate(divide="ignore", invalid="ignore"):
                result[spec.alias] = np.where(
                    counts > 0,
                    np.asarray(merged[sum_alias], dtype=np.float64) / np.where(counts > 0, counts, 1.0),
                    np.nan,
                )
        else:
            if spec.alias not in merged:
                raise ExecutionError(f"missing merged column for aggregate {spec.alias!r}")
            result[spec.alias] = np.asarray(merged[spec.alias])
    return result
