"""Equi-join of two in-memory tables.

Joins are not part of the paper's evaluation, but the exchange operator is
explicitly motivated as the building block for repartitioning joins; this
module provides the in-memory probe/build kernel so that a repartitioned join
can be expressed as ``exchange(left) + exchange(right) + hash_join`` on each
worker (see :mod:`repro.exchange`).

:func:`hash_join` is a fully vectorized sort-based kernel: the build side is
stable-argsorted by key, every probe key locates its match run with two
``searchsorted`` binary searches, and the match runs are expanded into output
row indices with ``repeat`` plus vectorized offset arithmetic — no per-row
Python anywhere on the critical path.  Multi-key joins encode each key column
of both sides into a shared integer code space (the same column-code
combination used by :mod:`repro.engine.aggregates`) and join on the combined
codes.

The seed's dict build/probe kernel is kept as :func:`hash_join_dict`; the
parity tests pin the two kernels to identical output, including row order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.engine.table import Table, table_num_rows, take_rows
from repro.errors import ExecutionError, UnknownColumnError

#: Join keys: one column name or a sequence of names (multi-key join).
JoinKeys = Union[str, Sequence[str]]


def _normalize_keys(left_key: JoinKeys, right_key: JoinKeys) -> Tuple[List[str], List[str]]:
    left_keys = [left_key] if isinstance(left_key, str) else list(left_key)
    right_keys = [right_key] if isinstance(right_key, str) else list(right_key)
    if not left_keys or not right_keys:
        raise ExecutionError("join requires at least one key column")
    if len(left_keys) != len(right_keys):
        raise ExecutionError(
            f"join key count mismatch: {len(left_keys)} left vs {len(right_keys)} right"
        )
    return left_keys, right_keys


def _empty_join_result(
    left: Table, right: Table, right_keys: Sequence[str], suffix: str
) -> Table:
    """Zero-row result that preserves every source column's dtype."""
    result: Table = {name: np.asarray(column)[:0] for name, column in left.items()}
    for name, column in right.items():
        if name in right_keys:
            continue
        out_name = name if name not in left else name + suffix
        if out_name in result:
            raise ExecutionError(f"column name collision on {out_name!r}")
        result[out_name] = np.asarray(column)[:0]
    return result


def _valid_mask(array: np.ndarray) -> np.ndarray:
    """True where the key is joinable (NaN keys never match, as in SQL)."""
    if array.dtype.kind == "f":
        return ~np.isnan(array)
    return np.ones(len(array), dtype=bool)


def _float_to_int_domain(
    array: np.ndarray, valid: np.ndarray, domain: np.dtype
) -> Tuple[np.ndarray, np.ndarray]:
    """Exactly convert float keys into an integer key domain.

    A float equals an integer iff it is integral and representable in the
    integer's dtype; such values convert losslessly, everything else is
    flagged unmatchable.
    """
    info = np.iinfo(domain)
    # The float bounds are exact: 2^63 and 2^64 are representable, so the
    # strict upper comparison admits every integral float below the limit.
    integral = (
        valid
        & np.isfinite(array)
        & (array == np.floor(array))
        & (array >= float(info.min))
        & (array <= float(info.max))
        & (array < 2.0 ** (64 if domain == np.uint64 else 63))
    )
    converted = np.zeros(len(array), dtype=domain)
    converted[integral] = array[integral].astype(domain)
    return converted, integral


def _align_key_pair(
    larr: np.ndarray, rarr: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Common exact representation of one key-column pair, plus validity.

    Returns ``(left_keys, right_keys, left_valid, right_valid)`` with both
    key arrays in one dtype under which ``==`` matches the dict kernel's
    Python-level comparison.  Same-kind pairs just promote; mixed
    integer/float pairs must NOT promote to float64 (which collapses
    integers above 2^53 onto each other) — instead the float side converts
    exactly into the integer side's domain, with non-integral or
    out-of-range floats flagged unmatchable.
    """
    lvalid = _valid_mask(larr)
    rvalid = _valid_mask(rarr)
    int_kinds = "iub"
    mixed = (larr.dtype.kind in int_kinds) != (rarr.dtype.kind in int_kinds)
    if mixed and {larr.dtype.kind, rarr.dtype.kind} <= set(int_kinds + "f"):
        int_side = larr if larr.dtype.kind in int_kinds else rarr
        domain = np.dtype(np.uint64 if int_side.dtype.kind == "u" else np.int64)
        if larr.dtype.kind == "f":
            lcodes, lvalid = _float_to_int_domain(larr, lvalid, domain)
            return lcodes, rarr.astype(domain, copy=False), lvalid, rvalid
        rcodes, rvalid = _float_to_int_domain(rarr, rvalid, domain)
        return larr.astype(domain, copy=False), rcodes, lvalid, rvalid
    common = np.result_type(larr.dtype, rarr.dtype)
    return (
        larr.astype(common, copy=False),
        rarr.astype(common, copy=False),
        lvalid,
        rvalid,
    )


def _join_codes(
    left: Table, right: Table, left_keys: Sequence[str], right_keys: Sequence[str]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shared-code-space encoding of the key columns of both sides.

    Returns ``(left_codes, right_codes, left_valid, right_valid)``: two int64
    arrays in which equal keys (across all key columns) have equal codes, and
    two boolean masks flagging the rows whose keys can match at all (rows with
    a NaN in any key column cannot).

    The single-key case skips the encoding entirely and compares raw values;
    multi-key combines per-column codes positionally and re-compacts after
    every column with ``np.unique`` so the combined code never overflows.
    """
    num_left = table_num_rows(left)
    num_right = table_num_rows(right)
    left_valid = np.ones(num_left, dtype=bool)
    right_valid = np.ones(num_right, dtype=bool)
    combined_left: np.ndarray = np.zeros(num_left, dtype=np.int64)
    combined_right: np.ndarray = np.zeros(num_right, dtype=np.int64)

    for lname, rname in zip(left_keys, right_keys):
        larr, rarr, lval, rval = _align_key_pair(
            np.asarray(left[lname]), np.asarray(right[rname])
        )
        left_valid &= lval
        right_valid &= rval
        # One unique pass over both (aligned-dtype) sides yields codes that
        # agree across sides exactly when the values compare equal.
        both = np.concatenate([larr, rarr])
        _, codes = np.unique(both, return_inverse=True)
        codes = codes.astype(np.int64, copy=False)
        width = int(codes.max()) + 1 if len(codes) else 1
        combined_left = combined_left * width + codes[:num_left]
        combined_right = combined_right * width + codes[num_left:]
        # Re-compact so the running code stays < num_left + num_right and the
        # next ``* width`` cannot overflow int64.
        _, recompacted = np.unique(
            np.concatenate([combined_left, combined_right]), return_inverse=True
        )
        recompacted = recompacted.astype(np.int64, copy=False)
        combined_left = recompacted[:num_left]
        combined_right = recompacted[num_left:]
    return combined_left, combined_right, left_valid, right_valid


#: Widest dense build-key table, as a multiple of the total input row count.
#: Beyond this the per-key bincount would dominate, so the probe falls back
#: to binary search.
_DENSE_SPAN_FACTOR = 2


def _dense_probe_bounds(
    left_codes: np.ndarray, sorted_codes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Match-run starts/counts via a dense key -> position lookup table.

    Integer build keys spanning a range comparable to the input size are
    looked up O(1) through two arrays indexed by ``key - min_key`` — one
    fancy-index per probe array instead of a binary search per probe row
    (which is cache-hostile and ~3x slower at 1M rows).
    """
    base = int(sorted_codes[0])
    span = int(sorted_codes[-1]) - base + 1
    counts_per_key = np.bincount(sorted_codes.astype(np.int64) - base, minlength=span)
    first_position = np.zeros(span, dtype=np.int64)
    np.cumsum(counts_per_key[:-1], out=first_position[1:])
    shifted = left_codes.astype(np.int64) - base
    in_range = (shifted >= 0) & (shifted < span)
    shifted = np.where(in_range, shifted, 0)
    starts = first_position[shifted]
    counts = np.where(in_range, counts_per_key[shifted], 0)
    return starts, counts


def _probe_sorted(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized probe: row-index pairs of every match, dict-kernel order.

    The build side is stable-argsorted, so equal keys keep ascending row
    order; each probe key finds its match run either through the dense key
    table (:func:`_dense_probe_bounds`) or with two binary searches, and the
    runs are expanded with ``repeat`` + offset arithmetic.  Output pairs are
    ordered by probe (left) row, then by build (right) row — exactly the
    order the dict kernel produces.
    """
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    dense = False
    if sorted_codes.dtype.kind in "iu" and len(sorted_codes):
        key_min, key_max = int(sorted_codes[0]), int(sorted_codes[-1])
        span = key_max - key_min + 1
        budget = max(1024, _DENSE_SPAN_FACTOR * (len(left_codes) + len(right_codes)))
        dense = span <= budget and abs(key_min) < 2 ** 62 and abs(key_max) < 2 ** 62
    if dense:
        starts, counts = _dense_probe_bounds(left_codes, sorted_codes)
    else:
        starts = np.searchsorted(sorted_codes, left_codes, side="left")
        ends = np.searchsorted(sorted_codes, left_codes, side="right")
        counts = ends - starts
    total = int(counts.sum())
    left_idx = np.repeat(np.arange(len(left_codes), dtype=np.int64), counts)
    # Position of each output row within its match run, computed without a
    # per-run loop: subtract every run's cumulative start from a global arange.
    run_offsets = np.repeat(np.cumsum(counts) - counts, counts)
    within_run = np.arange(total, dtype=np.int64) - run_offsets
    right_idx = order[np.repeat(starts, counts) + within_run]
    return left_idx, right_idx


def hash_join(
    left: Table,
    right: Table,
    left_key: JoinKeys,
    right_key: JoinKeys,
    suffix: str = "_right",
) -> Table:
    """Inner equi-join of two tables on one or more key columns.

    The right side is used as the build side.  Columns of the right table
    whose names collide with left columns are renamed with ``suffix``; the
    right key columns are dropped (they equal the left keys in the output).
    ``left_key`` / ``right_key`` accept a single column name or equal-length
    sequences of names for a multi-key join.
    """
    left_keys, right_keys = _normalize_keys(left_key, right_key)
    for name in left_keys:
        if name not in left:
            raise UnknownColumnError(name)
    for name in right_keys:
        if name not in right:
            raise UnknownColumnError(name)

    left_rows = table_num_rows(left)
    right_rows = table_num_rows(right)
    if left_rows == 0 or right_rows == 0:
        return _empty_join_result(left, right, right_keys, suffix)

    if any(
        np.asarray(table[name]).dtype.hasobject
        for table, names in ((left, left_keys), (right, right_keys))
        for name in names
    ):
        # Object-dtype keys (e.g. columns degraded to Python objects with
        # None entries) have no total order, so the sort-based kernel cannot
        # apply; join them hash/eq-style like the seed kernel did.
        return _hash_join_object_keys(left, right, left_keys, right_keys, suffix)

    if len(left_keys) == 1:
        # Single key: compare raw values directly in one aligned dtype, no
        # code construction needed.
        left_codes, right_codes, left_valid, right_valid = _align_key_pair(
            np.asarray(left[left_keys[0]]), np.asarray(right[right_keys[0]])
        )
    else:
        left_codes, right_codes, left_valid, right_valid = _join_codes(
            left, right, left_keys, right_keys
        )

    if left_valid.all() and right_valid.all():
        left_idx, right_idx = _probe_sorted(left_codes, right_codes)
    else:
        # NaN keys never match: probe the valid subsets and map the pair
        # indices back to original row numbers (both maps are ascending, so
        # the dict-kernel output order is preserved).
        left_map = np.flatnonzero(left_valid)
        right_map = np.flatnonzero(right_valid)
        sub_left, sub_right = _probe_sorted(
            left_codes[left_map], right_codes[right_map]
        )
        left_idx = left_map[sub_left]
        right_idx = right_map[sub_right]

    # Output gather: exactly one fancy-index pass per column on each side.
    result: Table = take_rows(left, left_idx)
    for name, column in right.items():
        if name in right_keys:
            continue
        out_name = name if name not in left else name + suffix
        if out_name in result:
            raise ExecutionError(f"column name collision on {out_name!r}")
        result[out_name] = np.asarray(column)[right_idx]
    return result


def _hash_join_object_keys(
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    suffix: str,
) -> Table:
    """Dict build/probe over (tuples of) object keys — the unsortable case.

    Object columns hold arbitrary Python values with hash/eq but no total
    order, so the vectorized sort kernel cannot apply; this per-row fallback
    keeps the seed kernel's semantics (and output order) for them.
    """
    build: Dict[tuple, list] = {}
    right_columns = [np.asarray(right[name]).tolist() for name in right_keys]
    for index, key in enumerate(zip(*right_columns)):
        build.setdefault(key, []).append(index)

    left_columns = [np.asarray(left[name]).tolist() for name in left_keys]
    left_indices: List[int] = []
    right_indices: List[int] = []
    for index, key in enumerate(zip(*left_columns)):
        for match in build.get(key, ()):
            left_indices.append(index)
            right_indices.append(match)

    left_idx = np.asarray(left_indices, dtype=np.int64)
    right_idx = np.asarray(right_indices, dtype=np.int64)
    result: Table = take_rows(left, left_idx)
    for name, column in right.items():
        if name in right_keys:
            continue
        out_name = name if name not in left else name + suffix
        if out_name in result:
            raise ExecutionError(f"column name collision on {out_name!r}")
        result[out_name] = np.asarray(column)[right_idx]
    return result


def hash_join_dict(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    suffix: str = "_right",
) -> Table:
    """The seed's dict build/probe join kernel (single key only).

    Kept as the reference implementation for the parity tests and the
    ``join_probe`` hot-path benchmark; production code uses the vectorized
    :func:`hash_join`.
    """
    if left_key not in left:
        raise UnknownColumnError(left_key)
    if right_key not in right:
        raise UnknownColumnError(right_key)

    left_rows = table_num_rows(left)
    right_rows = table_num_rows(right)
    if left_rows == 0 or right_rows == 0:
        return _empty_join_result(left, right, [right_key], suffix)

    # Build phase: key -> list of row indices on the right.
    build: Dict[float, list] = {}
    right_keys = np.asarray(right[right_key])
    for index, key in enumerate(right_keys.tolist()):
        build.setdefault(key, []).append(index)

    # Probe phase.
    left_keys = np.asarray(left[left_key])
    left_indices = []
    right_indices = []
    for index, key in enumerate(left_keys.tolist()):
        matches = build.get(key)
        if not matches:
            continue
        left_indices.extend([index] * len(matches))
        right_indices.extend(matches)

    left_idx = np.asarray(left_indices, dtype=np.int64)
    right_idx = np.asarray(right_indices, dtype=np.int64)

    result: Table = take_rows(left, left_idx)
    for name, column in right.items():
        if name == right_key:
            continue
        out_name = name if name not in left else name + suffix
        if out_name in result:
            raise ExecutionError(f"column name collision on {out_name!r}")
        result[out_name] = np.asarray(column)[right_idx]
    return result
