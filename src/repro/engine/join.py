"""Hash equi-join of two in-memory tables.

Joins are not part of the paper's evaluation, but the exchange operator is
explicitly motivated as the building block for repartitioning joins; this
module provides the in-memory probe/build kernel so that a repartitioned join
can be expressed as ``exchange(left) + exchange(right) + hash_join`` on each
worker (see :mod:`repro.exchange`).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.engine.table import Table, table_num_rows, take_rows
from repro.errors import ExecutionError, UnknownColumnError


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    suffix: str = "_right",
) -> Table:
    """Inner hash join of two tables on a single key column.

    The right side is used as the build side.  Columns of the right table
    whose names collide with left columns are renamed with ``suffix``; the
    right key column is dropped (it equals the left key in the output).
    """
    if left_key not in left:
        raise UnknownColumnError(left_key)
    if right_key not in right:
        raise UnknownColumnError(right_key)

    left_rows = table_num_rows(left)
    right_rows = table_num_rows(right)
    if left_rows == 0 or right_rows == 0:
        columns = list(left.keys()) + [
            name if name not in left else name + suffix
            for name in right
            if name != right_key
        ]
        return {name: np.zeros(0, dtype=np.float64) for name in columns}

    # Build phase: key -> list of row indices on the right.
    build: Dict[float, list] = {}
    right_keys = np.asarray(right[right_key])
    for index, key in enumerate(right_keys.tolist()):
        build.setdefault(key, []).append(index)

    # Probe phase.
    left_keys = np.asarray(left[left_key])
    left_indices = []
    right_indices = []
    for index, key in enumerate(left_keys.tolist()):
        matches = build.get(key)
        if not matches:
            continue
        left_indices.extend([index] * len(matches))
        right_indices.extend(matches)

    left_idx = np.asarray(left_indices, dtype=np.int64)
    right_idx = np.asarray(right_indices, dtype=np.int64)

    result: Table = take_rows(left, left_idx)
    for name, column in right.items():
        if name == right_key:
            continue
        out_name = name if name not in left else name + suffix
        if out_name in result:
            raise ExecutionError(f"column name collision on {out_name!r}")
        result[out_name] = np.asarray(column)[right_idx]
    return result
