"""Persistent process pool executing worker-plan fragments over shared memory.

The ``processes`` execution mode gives the simulation *real* core-level
parallelism: the driver spawns a pool of OS worker processes once per query
driver (spawn context, so it behaves identically under any start method and
never forks locks), keeps them warm across waves and queries, and ships work
through shared memory instead of pickle:

* **Inputs** — the driver exports the query's input objects into one
  ``multiprocessing.shared_memory`` segment
  (:class:`~repro.cloud.s3.SharedObjectExport`); each child attaches once per
  query and mounts it as a read-only
  :class:`~repro.cloud.s3.SharedSegmentStore`.  Only the segment *name* and
  the ``{path: (offset, length)}`` directory cross the pipe.
* **Outputs** — each child writes its partial table as an uncompressed
  fast-codec partition blob (:func:`repro.exchange.codec.encode_partition`)
  into a fresh shared-memory segment and sends back the segment name; the
  driver decodes it with ``decode_partition(..., copy=False)`` into zero-copy
  views of the segment.  Column arrays never pass through pickle in either
  direction.

Segment lifecycle: the **driver** owns every segment and unlinks them all
when the query finishes (success or failure).  Children merely attach.  With
the spawn start method all children share the parent's ``resource_tracker``,
which acts as a crash safety net — if the driver dies before unlinking, the
tracker removes the segments at exit.

A dead child (killed, crashed interpreter) surfaces as ``EOFError`` on its
pipe: its outstanding tasks come back as error results — flowing into the
driver's normal per-worker retry machinery — and the child is respawned
before the next dispatch.
"""

from __future__ import annotations

import multiprocessing as mp
import uuid
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Tuple

#: Name prefix of result segments created by pool children.
RESULT_SEGMENT_PREFIX = "lambada_r_"


def _child_main(conn) -> None:
    """Child process loop: execute plan fragments against shared segments.

    Message protocol (parent → child)::

        ("run", task_id, plan_dict, segment_name, directory, memory_mib, threads,
         result_name)
        ("forget", [segment_names...])     # drop cached attachments
        ("stop",)

    ``result_name`` is the shared-memory segment name the child must use for
    its result.  The *parent* assigns it (in :meth:`ProcessWorkerPool.
    run_tasks`) so that when a child dies mid-task the parent can unlink the
    segment the child may already have created — otherwise it would leak in
    ``/dev/shm`` until reboot.

    and child → parent::

        ("ok", task_id, counters_payload, result_segment_or_None, nbytes)
        ("err", task_id, "ExcType: message")

    Imports happen lazily inside the child so the parent's spawn cost stays
    low and the module can be imported without NumPy side effects.
    """
    from multiprocessing import shared_memory

    from repro.cloud.s3 import SharedSegmentStore
    from repro.engine.pipeline import execute_worker_plan_table
    from repro.exchange.codec import encode_partition
    from repro.formats.compression import Compression
    from repro.plan.physical import WorkerPlan

    # Cache of attached input segments: name -> (SharedMemory, SharedSegmentStore)
    segments: Dict[str, Tuple[Any, Any]] = {}

    def release(name: str) -> None:
        entry = segments.pop(name, None)
        if entry is not None:
            try:
                entry[0].close()
            except BufferError:
                pass

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        kind = message[0]
        if kind == "stop":
            break
        if kind == "forget":
            for name in message[1]:
                release(name)
            continue

        _, task_id, plan_dict, segment_name, directory, memory_mib, threads = message[:7]
        assigned_name = message[7] if len(message) > 7 else None
        try:
            if segment_name not in segments:
                shm = shared_memory.SharedMemory(name=segment_name)
                segments[segment_name] = (shm, SharedSegmentStore(shm.buf, directory))
            store = segments[segment_name][1]
            plan = WorkerPlan.from_dict(plan_dict)
            result, table = execute_worker_plan_table(
                plan, store, memory_mib=memory_mib, threads=threads
            )
            payload = result.to_payload()
            payload.pop("partial", None)  # travels via shared memory instead
            result_segment: Optional[str] = None
            nbytes = 0
            if table is not None:
                blob = encode_partition(table, Compression.NONE)
                out = shared_memory.SharedMemory(
                    name=assigned_name
                    or f"{RESULT_SEGMENT_PREFIX}{uuid.uuid4().hex[:12]}",
                    create=True,
                    size=max(len(blob), 1),
                )
                out.buf[: len(blob)] = blob
                result_segment = out.name
                nbytes = len(blob)
                # The driver attaches, decodes, and unlinks; this mapping is
                # no longer needed (the /dev/shm entry survives the close).
                out.close()
            conn.send(("ok", task_id, payload, result_segment, nbytes))
        except Exception as exc:  # noqa: BLE001 - report, never die silently
            try:
                conn.send(("err", task_id, f"{type(exc).__name__}: {exc}"))
            except (BrokenPipeError, OSError):
                break


class _Child:
    """Bookkeeping for one pool worker process."""

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: In-flight task ids mapped to their parent-assigned result-segment
        #: names (``None`` for tasks dispatched without one).
        self.pending: Dict[Any, Optional[str]] = {}

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ProcessWorkerPool:
    """Spawn-safe pool of persistent worker processes.

    Children stay warm across :meth:`run_tasks` calls (and therefore across
    queries and retry waves), mirroring warm Lambda instances.  Tasks are
    dispatched round-robin; results are collected as they complete via
    ``multiprocessing.connection.wait``.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("pool size must be at least 1")
        self.size = size
        #: Children respawned after dying mid-query, since pool creation.
        self.respawns = 0
        self._ctx = mp.get_context("spawn")
        self._children: List[_Child] = []
        for _ in range(size):
            self._children.append(self._spawn())

    def _spawn(self) -> _Child:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_child_main, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Child(process, parent_conn)

    def _ensure_children(self) -> List[_Child]:
        """Respawn any child that died since the last dispatch."""
        for index, child in enumerate(self._children):
            if not child.alive:
                try:
                    child.conn.close()
                except OSError:
                    pass
                self._release_orphans(child)
                self._children[index] = self._spawn()
                self.respawns += 1
        return self._children

    @staticmethod
    def _release_orphans(child: _Child) -> None:
        """Unlink result segments a dead child may have created but not reported.

        The parent assigned every in-flight task's result-segment name, so a
        child that died after creating its segment (but before sending the
        result) cannot leak the ``/dev/shm`` entry.
        """
        if not child.pending:
            return
        from multiprocessing import shared_memory

        for result_name in child.pending.values():
            if result_name is None:
                continue
            try:
                orphan = shared_memory.SharedMemory(name=result_name)
            except FileNotFoundError:
                continue
            orphan.close()
            try:
                orphan.unlink()
            except FileNotFoundError:
                pass

    def stats(self) -> Dict[str, int]:
        """Pool health counters (size, live children, respawns so far)."""
        return {
            "size": self.size,
            "alive": sum(1 for child in self._children if child.alive),
            "respawns": self.respawns,
        }

    def run_tasks(self, tasks: List[tuple]) -> Dict[Any, tuple]:
        """Dispatch ``("run", task_id, ...)`` tuples; collect all results.

        Returns ``{task_id: child_message}`` where each message is either
        ``("ok", ...)`` or ``("err", task_id, reason)``.  Tasks stranded on a
        child that dies mid-flight are synthesised as errors, which the
        driver's retry loop then re-dispatches (onto a respawned child).
        """
        results: Dict[Any, tuple] = {}
        if not tasks:
            return results
        children = self._ensure_children()
        for index, task in enumerate(tasks):
            result_name: Optional[str] = None
            if task[0] == "run":
                if len(task) > 7:
                    result_name = task[7]
                else:
                    # Assign the result-segment name here so a child death
                    # mid-task cannot leak the segment it may have created.
                    result_name = f"{RESULT_SEGMENT_PREFIX}{uuid.uuid4().hex[:12]}"
                    task = task + (result_name,)
            child = children[index % len(children)]
            child.conn.send(task)
            child.pending[task[1]] = result_name

        outstanding = len(tasks)
        by_conn = {child.conn: child for child in children}
        while outstanding:
            ready = mp_connection.wait(
                [child.conn for child in children if child.pending]
            )
            for conn in ready:
                child = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    for task_id in child.pending:
                        results[task_id] = (
                            "err", task_id, "worker process terminated unexpectedly",
                        )
                    outstanding -= len(child.pending)
                    self._release_orphans(child)
                    child.pending = {}
                    continue
                task_id = message[1]
                if task_id in child.pending:
                    child.pending.pop(task_id)
                    outstanding -= 1
                results[task_id] = message
        return results

    def forget_segments(self, names: List[str]) -> None:
        """Tell every live child to drop its cached input-segment mappings."""
        for child in self._children:
            if child.alive:
                try:
                    child.conn.send(("forget", list(names)))
                except (BrokenPipeError, OSError):
                    pass

    def close(self) -> None:
        """Stop and join all children; idempotent."""
        from repro.config import DEFAULT_RESILIENCE

        join_timeout = DEFAULT_RESILIENCE.pool_join_timeout_seconds
        for child in self._children:
            try:
                child.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for child in self._children:
            child.process.join(timeout=join_timeout)
            if child.process.is_alive():
                child.process.terminate()
                child.process.join(timeout=join_timeout)
            try:
                child.conn.close()
            except OSError:
                pass
        self._children = []

    def __del__(self):  # pragma: no cover - interpreter-shutdown best effort
        try:
            self.close()
        except Exception:
            pass
