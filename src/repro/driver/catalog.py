"""Central statistics catalog (the §5.3 "future work" optimisation).

The paper observes that for selective queries such as TPC-H Q6, ~80 % of the
workers only read their file's footer, find that every row group is pruned by
the min/max statistics, and return an empty result — and notes that *"if the
min/max indices were stored in a central place and available before starting
the workers, these workers would not even be started."*

:class:`StatisticsCatalog` implements exactly that: per-file, per-column
min/max statistics are collected once (at data-registration time, itself a
serverless operation against the object store) and stored in the DynamoDB-like
key-value store.  At query time the driver consults the catalog with the
optimizer's prune ranges and only invokes workers for files that can contain
matching rows.  The ablation benchmark ``bench_catalog_pruning.py`` quantifies
the effect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cloud.dynamodb import KeyValueStore
from repro.cloud.s3 import ObjectStore
from repro.engine.s3io import S3ObjectSource
from repro.errors import PlanError
from repro.formats.parquet import ColumnarFile
from repro.plan.physical import PruneRange

#: Default key-value table holding the catalog.
CATALOG_TABLE = "lambada-statistics"


@dataclass(frozen=True)
class FileStatistics:
    """Per-file min/max statistics of every column."""

    path: str
    num_rows: int
    column_ranges: Dict[str, tuple]  # column -> (min, max)

    def may_match(self, prune_ranges: Sequence[PruneRange]) -> bool:
        """Whether the file can contain rows satisfying all prune ranges."""
        for prange in prune_ranges:
            bounds = self.column_ranges.get(prange.column)
            if bounds is None:
                continue
            low, high = bounds
            if high < prange.lower or low > prange.upper:
                return False
        return True

    def to_item(self) -> Dict:
        """JSON-compatible representation stored in the key-value store."""
        return {
            "path": self.path,
            "num_rows": self.num_rows,
            "columns": {name: [low, high] for name, (low, high) in self.column_ranges.items()},
        }

    @classmethod
    def from_item(cls, item: Dict) -> "FileStatistics":
        """Inverse of :meth:`to_item`."""
        return cls(
            path=item["path"],
            num_rows=int(item["num_rows"]),
            column_ranges={
                name: (float(low), float(high))
                for name, (low, high) in item["columns"].items()
            },
        )


class StatisticsCatalog:
    """Stores and queries per-file min/max statistics in the key-value store."""

    def __init__(self, kv: KeyValueStore, table: str = CATALOG_TABLE):
        self.kv = kv
        self.table = table
        self.kv.create_table(table)

    # -- registration -------------------------------------------------------------

    def register_file(self, store: ObjectStore, dataset: str, path: str) -> FileStatistics:
        """Read one file's footer and record its statistics."""
        source = S3ObjectSource(store, path)
        reader = ColumnarFile(source)
        column_ranges: Dict[str, tuple] = {}
        for name in reader.schema.names:
            lows, highs = [], []
            for group in reader.row_groups:
                if group.num_rows == 0:
                    continue
                meta = group.column_meta(name)
                lows.append(meta.min_value)
                highs.append(meta.max_value)
            if lows:
                column_ranges[name] = (min(lows), max(highs))
            else:
                column_ranges[name] = (math.inf, -math.inf)
        statistics = FileStatistics(
            path=path, num_rows=reader.num_rows, column_ranges=column_ranges
        )
        self.kv.put_item(self.table, self._key(dataset, path), statistics.to_item())
        return statistics

    def register_dataset(
        self, store: ObjectStore, dataset: str, paths: Iterable[str]
    ) -> List[FileStatistics]:
        """Register every file of a dataset (one footer read per file)."""
        registered = [self.register_file(store, dataset, path) for path in paths]
        self.kv.put_item(
            self.table,
            self._dataset_key(dataset),
            {"paths": [stats.path for stats in registered]},
        )
        return registered

    # -- lookup ----------------------------------------------------------------------

    def dataset_paths(self, dataset: str) -> List[str]:
        """All registered file paths of a dataset."""
        item = self.kv.get_item(self.table, self._dataset_key(dataset))
        if item is None:
            raise PlanError(f"dataset {dataset!r} is not registered in the catalog")
        return list(item["paths"])

    def file_statistics(self, dataset: str, path: str) -> Optional[FileStatistics]:
        """Statistics of one file, or ``None`` if it was never registered."""
        item = self.kv.get_item(self.table, self._key(dataset, path))
        return FileStatistics.from_item(item) if item is not None else None

    def files_matching(
        self, dataset: str, prune_ranges: Sequence[PruneRange]
    ) -> List[str]:
        """Paths of the dataset's files that may contain matching rows.

        Files without statistics are conservatively kept.
        """
        matching: List[str] = []
        for path in self.dataset_paths(dataset):
            statistics = self.file_statistics(dataset, path)
            if statistics is None or statistics.may_match(prune_ranges):
                matching.append(path)
        return matching

    def prune_paths(
        self, paths: Sequence[str], dataset: str, prune_ranges: Sequence[PruneRange]
    ) -> List[str]:
        """Filter an explicit path list through the catalog (unknown files kept)."""
        if not prune_ranges:
            return list(paths)
        kept: List[str] = []
        for path in paths:
            statistics = self.file_statistics(dataset, path)
            if statistics is None or statistics.may_match(prune_ranges):
                kept.append(path)
        return kept

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _key(dataset: str, path: str) -> str:
        return f"{dataset}::{path}"

    @staticmethod
    def _dataset_key(dataset: str) -> str:
        return f"{dataset}::__files__"
