"""The Lambada driver.

The driver runs on the data scientist's machine: it compiles queries, deploys
the worker function (at installation time), invokes the serverless workers —
using the two-level tree invocation strategy of §4.2 — and collects their
partial results from the SQS result queue.
"""

from repro.driver.invocation import (
    FlatInvocationModel,
    TreeInvocationModel,
    InvocationTimeline,
    build_invocation_tree,
)
from repro.driver.worker import make_worker_handler, WORKER_FUNCTION_NAME
from repro.driver.driver import LambadaDriver, QueryResult, QueryStatistics
from repro.driver.catalog import StatisticsCatalog, FileStatistics
from repro.driver.shuffle import (
    ShuffleAggregateCoordinator,
    ShuffleConfig,
    ShuffleStatistics,
)

__all__ = [
    "ShuffleAggregateCoordinator",
    "ShuffleConfig",
    "ShuffleStatistics",
    "FlatInvocationModel",
    "TreeInvocationModel",
    "InvocationTimeline",
    "build_invocation_tree",
    "make_worker_handler",
    "WORKER_FUNCTION_NAME",
    "LambadaDriver",
    "QueryResult",
    "QueryStatistics",
    "StatisticsCatalog",
    "FileStatistics",
]
