"""Admission control for concurrent query submission.

ROADMAP item 2 asks for "an admission controller + fair scheduler with
per-tenant budgets".  This module is the driver-side half of that: the
primitives :class:`~repro.driver.driver.QuerySession` uses to run N in-flight
queries over the shared simulated fleet without letting any one tenant (or an
overload spike) degrade everyone:

* :class:`AdmissionController` — a max-concurrency gate plus a *bounded*
  admission queue.  Submissions beyond the queue bound fail fast with
  :class:`~repro.errors.QueryRejectedError` (``reason="queue_full"``) instead
  of building an invisible backlog.
* :class:`TokenBucket` / per-tenant budgets — each tenant holds two buckets,
  one in Lambda invocations and one in modelled dollars, refilled on the
  environment's *modelled* clock.  An over-budget submission is rejected
  typed (``reason="invocation_budget"`` / ``"dollar_budget"``) before any
  fleet resource is spent.  Estimates are charged at admission and reconciled
  against the query's actual metered spend at completion, so budgets track
  real consumption, not guesses.
* :class:`CancellationToken` — cooperative cancellation with optional
  deadline, threaded from the driver through wave dispatch into worker/pool
  paths.  ``check(stage)`` raises
  :class:`~repro.errors.QueryCancelledError` at well-defined pump points;
  the driver's cleanup paths then release /dev/shm segments and
  garbage-collect S3/SQS state.  ``cancel_at_stage`` arms a deterministic
  self-cancel at the first check of a named stage, which is how the test
  suite provokes exact mid-map-wave / mid-reduce-wave cancellations without
  races.
* :class:`AdmissionStats` — the per-session counters block surfaced next to
  :class:`~repro.driver.resilience.ResilienceStats` in query statistics.

Everything here is modelled-time based (no wall-clock sleeping) and
thread-safe; the controller is shared by the session's worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import QueryCancelledError, QueryRejectedError


class TokenBucket:
    """A token bucket on the modelled clock.

    ``capacity`` bounds the burst; ``refill_per_second`` tokens accrue per
    modelled second (the virtual clock only advances when tests or benchmarks
    drive it, so within one query the bucket is effectively static).  Not
    thread-safe on its own — the owning controller serialises access.
    """

    def __init__(self, capacity: float, refill_per_second: float = 0.0):
        if capacity <= 0:
            raise ValueError("bucket capacity must be positive")
        self.capacity = float(capacity)
        self.refill_per_second = float(refill_per_second)
        self._level = float(capacity)
        self._last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last_refill and self.refill_per_second > 0.0:
            self._level = min(
                self.capacity,
                self._level + (now - self._last_refill) * self.refill_per_second,
            )
        self._last_refill = max(self._last_refill, now)

    def try_take(self, amount: float, now: float) -> bool:
        """Take ``amount`` tokens if available; False leaves the level as-is."""
        self._refill(now)
        if amount > self._level:
            return False
        self._level -= amount
        return True

    def adjust(self, amount: float, now: float) -> None:
        """Reconcile by ``amount`` (positive = extra spend, negative = refund).

        Unlike :meth:`try_take` this never refuses: actual spend already
        happened, so the level may go negative — the tenant then stays
        rejected until refill pays the debt off.
        """
        self._refill(now)
        self._level = min(self.capacity, self._level - amount)

    @property
    def level(self) -> float:
        return self._level


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission gate and the per-tenant budgets."""

    #: Queries executing at once across the session.
    max_concurrent_queries: int = 4
    #: Admitted-but-waiting queries tolerated before fail-fast rejection.
    max_queued_queries: int = 8
    #: Per-tenant invocation budget: burst capacity and modelled refill rate.
    tenant_invocation_capacity: float = 4096.0
    tenant_invocation_refill_per_second: float = 0.0
    #: Per-tenant modelled-dollar budget.
    tenant_dollar_capacity: float = 1.0
    tenant_dollar_refill_per_second: float = 0.0
    #: Charged at admission time, reconciled against actuals at completion.
    default_invocation_estimate: float = 16.0
    default_dollar_estimate: float = 0.001

    def to_dict(self) -> dict:
        return {
            "max_concurrent_queries": self.max_concurrent_queries,
            "max_queued_queries": self.max_queued_queries,
            "tenant_invocation_capacity": self.tenant_invocation_capacity,
            "tenant_dollar_capacity": self.tenant_dollar_capacity,
        }


@dataclass
class AdmissionStats:
    """Counters of one admission controller (session-wide)."""

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Rejections by typed reason: queue_full / invocation_budget / dollar_budget.
    rejected: Dict[str, int] = field(default_factory=dict)
    peak_in_flight: int = 0
    peak_queued: int = 0
    #: Per-tenant admitted/rejected counts and reconciled actual spend.
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def note_rejection(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def tenant(self, name: str) -> Dict[str, float]:
        return self.tenants.setdefault(
            name,
            {
                "admitted": 0,
                "rejected": 0,
                "invocations_spent": 0.0,
                "dollars_spent": 0.0,
            },
        )

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejected": dict(self.rejected),
            "peak_in_flight": self.peak_in_flight,
            "peak_queued": self.peak_queued,
            "tenants": {name: dict(row) for name, row in self.tenants.items()},
        }


@dataclass
class AdmissionPermit:
    """One admitted query's claim on the gate and its tenant's budgets."""

    tenant: str
    invocation_estimate: float
    dollar_estimate: float
    queued: bool = False


class AdmissionController:
    """Max-concurrency gate + bounded queue + per-tenant token buckets.

    ``admit`` is called on the submitting thread and either returns an
    :class:`AdmissionPermit` or raises :class:`QueryRejectedError`; the
    session then hands the permitted query to its executor.  ``start`` flips
    a queued permit to in-flight when a worker thread picks it up, and
    ``finish`` releases the slot and reconciles the tenant's buckets against
    the query's actual metered spend.
    """

    def __init__(
        self,
        config: Optional[AdmissionConfig] = None,
        now_fn: Optional[Callable[[], float]] = None,
    ):
        self.config = config or AdmissionConfig()
        self._now_fn = now_fn or (lambda: 0.0)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._queued = 0
        self._invocations: Dict[str, TokenBucket] = {}
        self._dollars: Dict[str, TokenBucket] = {}
        self.stats = AdmissionStats()

    def _buckets(self, tenant: str) -> tuple:
        if tenant not in self._invocations:
            self._invocations[tenant] = TokenBucket(
                self.config.tenant_invocation_capacity,
                self.config.tenant_invocation_refill_per_second,
            )
            self._dollars[tenant] = TokenBucket(
                self.config.tenant_dollar_capacity,
                self.config.tenant_dollar_refill_per_second,
            )
        return self._invocations[tenant], self._dollars[tenant]

    def admit(
        self,
        tenant: str = "default",
        invocation_estimate: Optional[float] = None,
        dollar_estimate: Optional[float] = None,
    ) -> AdmissionPermit:
        """Admit one submission or raise a typed :class:`QueryRejectedError`."""
        invocation_estimate = (
            self.config.default_invocation_estimate
            if invocation_estimate is None
            else float(invocation_estimate)
        )
        dollar_estimate = (
            self.config.default_dollar_estimate
            if dollar_estimate is None
            else float(dollar_estimate)
        )
        now = self._now_fn()
        with self._lock:
            self.stats.submitted += 1
            row = self.stats.tenant(tenant)
            queued = self._in_flight >= self.config.max_concurrent_queries
            if queued and self._queued >= self.config.max_queued_queries:
                self.stats.note_rejection("queue_full")
                row["rejected"] += 1
                raise QueryRejectedError(
                    f"admission queue full ({self._queued} waiting, "
                    f"{self._in_flight} in flight)",
                    tenant=tenant,
                    reason="queue_full",
                )
            invocations, dollars = self._buckets(tenant)
            if not invocations.try_take(invocation_estimate, now):
                self.stats.note_rejection("invocation_budget")
                row["rejected"] += 1
                raise QueryRejectedError(
                    f"tenant {tenant!r} is out of invocation budget "
                    f"({invocations.level:.0f} tokens left, "
                    f"{invocation_estimate:.0f} needed)",
                    tenant=tenant,
                    reason="invocation_budget",
                )
            if not dollars.try_take(dollar_estimate, now):
                # Give back the invocation tokens the first bucket took.
                invocations.adjust(-invocation_estimate, now)
                self.stats.note_rejection("dollar_budget")
                row["rejected"] += 1
                raise QueryRejectedError(
                    f"tenant {tenant!r} is out of dollar budget "
                    f"(${dollars.level:.6f} left, "
                    f"${dollar_estimate:.6f} needed)",
                    tenant=tenant,
                    reason="dollar_budget",
                )
            if queued:
                self._queued += 1
                self.stats.peak_queued = max(self.stats.peak_queued, self._queued)
            else:
                self._in_flight += 1
                self.stats.peak_in_flight = max(
                    self.stats.peak_in_flight, self._in_flight
                )
            self.stats.admitted += 1
            row["admitted"] += 1
            return AdmissionPermit(
                tenant=tenant,
                invocation_estimate=invocation_estimate,
                dollar_estimate=dollar_estimate,
                queued=queued,
            )

    def start(self, permit: AdmissionPermit) -> None:
        """A worker thread picked a queued permit up: queued -> in-flight."""
        with self._lock:
            if permit.queued:
                permit.queued = False
                self._queued -= 1
                self._in_flight += 1
                self.stats.peak_in_flight = max(
                    self.stats.peak_in_flight, self._in_flight
                )

    def finish(
        self,
        permit: AdmissionPermit,
        outcome: str,
        actual_invocations: float = 0.0,
        actual_dollars: float = 0.0,
    ) -> None:
        """Release the slot and reconcile estimates against actual spend.

        ``outcome`` is ``"completed"`` / ``"failed"`` / ``"cancelled"``.
        Actual spend replaces the admission-time estimate in the tenant's
        buckets: the difference is charged (or refunded), so a tenant's
        remaining budget always reflects what its queries really consumed.
        """
        now = self._now_fn()
        with self._lock:
            if permit.queued:
                permit.queued = False
                self._queued -= 1
            else:
                self._in_flight -= 1
            invocations, dollars = self._buckets(permit.tenant)
            invocations.adjust(actual_invocations - permit.invocation_estimate, now)
            dollars.adjust(actual_dollars - permit.dollar_estimate, now)
            row = self.stats.tenant(permit.tenant)
            row["invocations_spent"] += actual_invocations
            row["dollars_spent"] += actual_dollars
            if outcome == "completed":
                self.stats.completed += 1
            elif outcome == "cancelled":
                self.stats.cancelled += 1
            else:
                self.stats.failed += 1

    def tenant_levels(self, tenant: str) -> Dict[str, float]:
        """Current bucket levels of one tenant (for reports and tests)."""
        now = self._now_fn()
        with self._lock:
            invocations, dollars = self._buckets(tenant)
            invocations._refill(now)
            dollars._refill(now)
            return {
                "invocations": invocations.level,
                "dollars": dollars.level,
            }


class CancellationToken:
    """Cooperative cancellation + deadline for one query.

    The driver calls :meth:`check` at its pump points (poll rounds, retry
    rounds, wave rounds, pooled rounds); a set token or an expired deadline
    raises :class:`QueryCancelledError` there, and the surrounding cleanup
    paths release segments and garbage-collect cloud state.

    ``deadline_seconds`` is measured in *modelled* time from :meth:`bind`
    (environment clock plus accumulated modelled backoff — the driver binds
    the right now-function at execute start).  ``cancel_at_stage`` arms a
    deterministic self-cancel at the first check of that stage, used by tests
    to hit exact mid-wave points without thread races.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        cancel_at_stage: Optional[str] = None,
        query_id: str = "",
    ):
        self.deadline_seconds = deadline_seconds
        self.cancel_at_stage = cancel_at_stage
        self.query_id = query_id
        self._cancelled = threading.Event()
        self._now_fn: Optional[Callable[[], float]] = None
        self._started_at = 0.0
        #: Stage label at which the cancellation was observed.
        self.observed_stage: str = ""

    def bind(self, now_fn: Callable[[], float], query_id: str = "") -> None:
        """Attach the modelled now-function; starts the deadline clock."""
        self._now_fn = now_fn
        self._started_at = now_fn()
        if query_id:
            self.query_id = query_id

    def cancel(self) -> None:
        """Request cancellation; the query unwinds at its next check."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def elapsed_seconds(self) -> float:
        if self._now_fn is None:
            return 0.0
        return self._now_fn() - self._started_at

    def check(self, stage: str) -> None:
        """Raise :class:`QueryCancelledError` if cancelled or past deadline."""
        if self.cancel_at_stage is not None and stage == self.cancel_at_stage:
            self._cancelled.set()
        if self._cancelled.is_set():
            self.observed_stage = self.observed_stage or stage
            raise QueryCancelledError(
                f"query {self.query_id or '<unnamed>'} cancelled at {stage}",
                query_id=self.query_id,
                stage=stage,
            )
        if self.deadline_seconds is not None and self._now_fn is not None:
            elapsed = self._now_fn() - self._started_at
            if elapsed > self.deadline_seconds:
                self._cancelled.set()
                self.observed_stage = self.observed_stage or stage
                raise QueryCancelledError(
                    f"query {self.query_id or '<unnamed>'} exceeded its "
                    f"{self.deadline_seconds:.1f}s deadline at {stage} "
                    f"({elapsed:.1f}s modelled elapsed)",
                    query_id=self.query_id,
                    stage=stage,
                    deadline=True,
                )


__all__ = [
    "TokenBucket",
    "AdmissionConfig",
    "AdmissionStats",
    "AdmissionPermit",
    "AdmissionController",
    "CancellationToken",
]
