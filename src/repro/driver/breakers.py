"""Per-service circuit breakers and per-query retry budgets.

PR 7's retry machinery assumes faults are *transient*: every retry loop backs
off and tries again, forever bounded only by its own attempt count.  Under a
sustained brownout (an S3 throttle storm, a capped Lambda fleet) that
assumption inverts — retries are almost certainly doomed, and the failure
mode is slow, expensive, and invisible.  This module adds the two standard
overload-control primitives on top:

* :class:`CircuitBreaker` — one per service (S3 / Lambda / SQS), counting
  failures in a rolling modelled-time window.  Past the threshold the breaker
  *opens*; retry sites then charge the remaining cooldown to modelled latency
  (instead of issuing doomed requests) and proceed as *half-open* probes.
  Enough probe successes close the breaker again.  An open breaker is also
  the signal for graceful degradation: shuffle mappers drop combined writes
  (combined→legacy) and the driver abandons its process pool
  (processes→serial) when the relevant breaker is open.
* :class:`RetryBudget` — a per-query cap on the *combined* spend of
  ``call_with_backoff`` retries, wave retries, driver re-invocations, and
  hedges.  Exhaustion raises
  :class:`~repro.errors.RetryBudgetExhaustedError`, converting the endless
  grind into a fast failure attributed to exactly what was spent and which
  breakers were open.

Both consume *modelled* time (the environment clock plus accumulated modelled
backoff), never wall-clock time, so breaker schedules are as deterministic as
the fault schedules that trip them.  On the fault-free path neither class is
ever touched: breakers record only failures, and budgets only charge on
retries — keeping armed-plane overhead within the benchmark ceiling.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.config import DEFAULT_RESILIENCE
from repro.errors import (
    NoSuchKeyError,
    RetryBudgetExhaustedError,
    SlowDownError,
    TooManyRequestsError,
)

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Services with a breaker on the board.
BREAKER_SERVICES = ("s3", "lambda", "sqs")


class CircuitBreaker:
    """A rolling-window circuit breaker for one service.

    States follow the textbook machine: ``closed`` (normal; failures are
    counted in a rolling window) → ``open`` (threshold exceeded; callers
    should wait out the cooldown) → ``half_open`` (cooldown elapsed; a few
    probe requests decide) → back to ``closed`` on enough probe successes or
    straight back to ``open`` on a probe failure.

    ``now`` is always modelled seconds supplied by the caller; the breaker
    holds no clock of its own.  Thread-safe: the driver's retry loops and the
    shuffle coordinators share one board per driver.
    """

    def __init__(
        self,
        service: str,
        failure_threshold: int = DEFAULT_RESILIENCE.breaker_failure_threshold,
        window_seconds: float = DEFAULT_RESILIENCE.breaker_window_seconds,
        cooldown_seconds: float = DEFAULT_RESILIENCE.breaker_cooldown_seconds,
        half_open_probes: int = DEFAULT_RESILIENCE.breaker_half_open_probes,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.service = service
        self.failure_threshold = failure_threshold
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self.half_open_probes = half_open_probes
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures: deque = deque()  # modelled timestamps
        self._opened_at = 0.0
        self._probe_successes = 0
        #: Transition log: ``(modelled_now, from_state, to_state)`` tuples.
        self.transitions: List[tuple] = []

    # -- internal (call under lock) -------------------------------------------

    def _transition(self, now: float, to_state: str) -> None:
        self.transitions.append((now, self._state, to_state))
        self._state = to_state

    def _prune(self, now: float) -> None:
        while self._failures and self._failures[0] < now - self.window_seconds:
            self._failures.popleft()

    # -- recording -------------------------------------------------------------

    def record_failure(self, now: float) -> None:
        """Count one failed request against the rolling window."""
        with self._lock:
            if self._state == HALF_OPEN:
                # A failed probe re-opens immediately and restarts the cooldown.
                self._failures.clear()
                self._probe_successes = 0
                self._opened_at = now
                self._transition(now, OPEN)
                return
            self._prune(now)
            self._failures.append(now)
            if self._state == CLOSED and len(self._failures) >= self.failure_threshold:
                self._opened_at = now
                self._transition(now, OPEN)

    def record_success(self, now: float) -> None:
        """Count one successful request (only probes change state)."""
        with self._lock:
            if self._state != HALF_OPEN:
                return
            self._probe_successes += 1
            if self._probe_successes >= self.half_open_probes:
                self._failures.clear()
                self._probe_successes = 0
                self._transition(now, CLOSED)

    # -- querying --------------------------------------------------------------

    def wait_seconds(self, now: float) -> float:
        """Remaining cooldown before a request should be attempted.

        Returns 0.0 for closed/half-open breakers.  For an open breaker whose
        cooldown has elapsed, transitions to half-open (this call *is* the
        probe admission) and returns 0.0; otherwise returns the remaining
        cooldown so the caller can charge it to modelled latency and then
        proceed straight to the probe.
        """
        with self._lock:
            if self._state != OPEN:
                return 0.0
            remaining = self._opened_at + self.cooldown_seconds - now
            if remaining <= 0.0:
                self._probe_successes = 0
                self._transition(now, HALF_OPEN)
                return 0.0
            return remaining

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "window_failures": len(self._failures),
                "transitions": [
                    {"at_seconds": round(at, 6), "from": frm, "to": to}
                    for at, frm, to in self.transitions
                ],
            }


class BreakerBoard:
    """One breaker per cloud service, plus error-to-service classification.

    A driver owns one board for its whole lifetime (breaker state is fleet
    health, not query state), while each query gets its own
    :class:`RetryBudget`.
    """

    def __init__(
        self,
        failure_threshold: int = DEFAULT_RESILIENCE.breaker_failure_threshold,
        window_seconds: float = DEFAULT_RESILIENCE.breaker_window_seconds,
        cooldown_seconds: float = DEFAULT_RESILIENCE.breaker_cooldown_seconds,
        half_open_probes: int = DEFAULT_RESILIENCE.breaker_half_open_probes,
    ):
        self.breakers: Dict[str, CircuitBreaker] = {
            service: CircuitBreaker(
                service,
                failure_threshold=failure_threshold,
                window_seconds=window_seconds,
                cooldown_seconds=cooldown_seconds,
                half_open_probes=half_open_probes,
            )
            for service in BREAKER_SERVICES
        }

    @staticmethod
    def classify(error: BaseException) -> Optional[str]:
        """Which service's breaker a failure counts against (or ``None``).

        Throttles and missing keys are storage-side; concurrency rejections
        are invocation-side.  Anything unrecognised counts against no breaker
        — budgets still bound it.
        """
        if isinstance(error, (SlowDownError, NoSuchKeyError)):
            return "s3"
        if isinstance(error, TooManyRequestsError):
            return "lambda"
        return None

    def record_failure(self, error: BaseException, now: float) -> Optional[str]:
        """Route one failure to its breaker; returns the service charged."""
        service = self.classify(error)
        if service is not None:
            self.breakers[service].record_failure(now)
        return service

    def record_success(self, service: str, now: float) -> None:
        breaker = self.breakers.get(service)
        if breaker is not None:
            breaker.record_success(now)

    def wait_seconds(self, service: str, now: float) -> float:
        breaker = self.breakers.get(service)
        return 0.0 if breaker is None else breaker.wait_seconds(now)

    def open_services(self) -> List[str]:
        return [s for s, b in self.breakers.items() if b.state != CLOSED]

    def states(self) -> Dict[str, str]:
        return {service: b.state for service, b in self.breakers.items()}

    def transition_count(self) -> int:
        return sum(len(b.transitions) for b in self.breakers.values())

    def to_dict(self) -> dict:
        return {service: b.to_dict() for service, b in self.breakers.items()}


class RetryBudget:
    """A per-query cap on combined retry/hedge spend.

    Every repair action — a ``call_with_backoff`` re-attempt, a wave
    re-invocation, a driver retry round, a hedge launch — charges one unit
    under a category label.  :meth:`charge` raises
    :class:`~repro.errors.RetryBudgetExhaustedError` once the cap is reached;
    :meth:`try_charge` is the non-raising variant for optional work (hedges
    are suppressed rather than fatal when the budget runs dry).
    """

    def __init__(
        self,
        limit: int = DEFAULT_RESILIENCE.retry_budget,
        query_id: str = "",
        breaker_states: Optional[Callable[[], Dict[str, str]]] = None,
    ):
        if limit < 1:
            raise ValueError("retry budget limit must be >= 1")
        self.limit = limit
        self.query_id = query_id
        self._breaker_states = breaker_states
        self._lock = threading.Lock()
        self._spent: Dict[str, int] = {}
        self._total = 0

    def charge(self, category: str, amount: int = 1) -> None:
        """Spend ``amount`` units, raising once the budget is exhausted."""
        with self._lock:
            if self._total + amount > self.limit:
                spent = dict(self._spent)
                total = self._total
            else:
                self._spent[category] = self._spent.get(category, 0) + amount
                self._total += amount
                return
        raise RetryBudgetExhaustedError(
            f"query {self.query_id or '<unnamed>'} exhausted its retry budget "
            f"({total}/{self.limit} spent, +{amount} {category} refused)",
            query_id=self.query_id,
            spent=spent,
            breaker_states=self._breaker_states() if self._breaker_states else {},
        )

    def try_charge(self, category: str, amount: int = 1) -> bool:
        """Spend ``amount`` units if available; False (no raise) otherwise."""
        with self._lock:
            if self._total + amount > self.limit:
                return False
            self._spent[category] = self._spent.get(category, 0) + amount
            self._total += amount
            return True

    @property
    def spent_total(self) -> int:
        with self._lock:
            return self._total

    @property
    def remaining(self) -> int:
        with self._lock:
            return self.limit - self._total

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "limit": self.limit,
                "spent_total": self._total,
                "spent": dict(self._spent),
            }


__all__ = [
    "CircuitBreaker",
    "BreakerBoard",
    "RetryBudget",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "BREAKER_SERVICES",
]
