"""Driver-side fault-tolerance primitives.

Everything the hardened driver uses to survive an installed
:class:`~repro.cloud.faults.FaultPlan` (and, by the same mechanisms, the
failures a real deployment would see) lives here:

* :class:`ResiliencePolicy` — the retry/hedging knobs: attempt budget,
  exponential backoff with decorrelated jitter, per-wave deadlines, straggler
  quantile thresholds, and degradation limits.
* :func:`decorrelated_jitter` — the AWS-recommended backoff schedule
  (``sleep = min(cap, uniform(base, prev * 3))``).  Backoff is charged to the
  *modelled* latency ledger, never slept on the wall clock.
* :func:`call_with_backoff` — retry wrapper for driver-side cloud requests
  (e.g. fetching a spilled result object that a fault plan made transiently
  invisible).
* :class:`ResilienceStats` — the ``resilience`` block of
  :class:`~repro.driver.driver.QueryStatistics`: retries, hedges won/lost,
  stale/duplicate messages ignored, injected faults survived, degradation
  fallbacks, and the wasted modelled dollars the failures cost.

A clean run (no fault plan, homogeneous fleet) reports all-zero stats and
takes none of these code paths beyond a handful of comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.config import DEFAULT_RESILIENCE
from repro.errors import NoSuchKeyError, SlowDownError, TooManyRequestsError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the driver's fault-tolerance machinery.

    Every numeric default comes from
    :data:`repro.config.DEFAULT_RESILIENCE`, the single home of the
    retry/backoff/breaker/budget numbers — this class only re-exposes them as
    a per-driver override surface.
    """

    #: Total attempts per worker including the first (>= 1).
    max_attempts: int = DEFAULT_RESILIENCE.max_attempts
    #: First backoff sleep (modelled seconds).
    backoff_base_seconds: float = DEFAULT_RESILIENCE.backoff_base_seconds
    #: Backoff ceiling (modelled seconds).
    backoff_cap_seconds: float = DEFAULT_RESILIENCE.backoff_cap_seconds
    #: Modelled deadline for one wave of workers; workers still missing when
    #: the poll budget runs out are treated as failed and retried.
    wave_deadline_seconds: float = DEFAULT_RESILIENCE.wave_deadline_seconds
    #: Hedged (speculative) re-invocation of stragglers.
    hedge_enabled: bool = DEFAULT_RESILIENCE.hedge_enabled
    #: A worker is a straggler when its modelled duration exceeds
    #: ``hedge_factor`` x the fleet median ...
    hedge_factor: float = DEFAULT_RESILIENCE.hedge_factor
    #: ... and this absolute floor (so tiny fleets/queries never hedge).
    hedge_min_seconds: float = DEFAULT_RESILIENCE.hedge_min_seconds
    #: At most this fraction of the fleet is hedged per query.
    hedge_max_fraction: float = DEFAULT_RESILIENCE.hedge_max_fraction
    #: Shuffle mappers whose combined write keeps failing fall back to the
    #: legacy one-object-per-receiver plane from this attempt number on.
    combined_fallback_attempt: int = DEFAULT_RESILIENCE.combined_fallback_attempt
    #: Process-pool respawns tolerated within one query before the driver
    #: degrades to serial dispatch.
    pool_respawn_limit: int = DEFAULT_RESILIENCE.pool_respawn_limit
    #: Seed for the backoff/jitter RNG (independent of any fault plan).
    jitter_seed: int = DEFAULT_RESILIENCE.jitter_seed
    #: Per-query cap on combined retry/hedge spend (see
    #: :class:`repro.driver.breakers.RetryBudget`).
    retry_budget: int = DEFAULT_RESILIENCE.retry_budget


DEFAULT_RESILIENCE_POLICY = ResiliencePolicy()

#: Errors that driver-side cloud requests may retry on.
TRANSIENT_CLOUD_ERRORS = (SlowDownError, NoSuchKeyError, TooManyRequestsError)


def decorrelated_jitter(
    previous_seconds: float,
    rng: random.Random,
    base_seconds: float = DEFAULT_RESILIENCE_POLICY.backoff_base_seconds,
    cap_seconds: float = DEFAULT_RESILIENCE_POLICY.backoff_cap_seconds,
) -> float:
    """Next backoff sleep under AWS-style decorrelated jitter.

    ``sleep = min(cap, uniform(base, max(previous, base) * 3))`` — grows
    roughly exponentially in expectation while decorrelating concurrent
    retriers, exactly the schedule the AWS architecture blog recommends.
    """
    upper = max(previous_seconds, base_seconds) * 3.0
    return min(cap_seconds, rng.uniform(base_seconds, upper))


def call_with_backoff(
    fn: Callable[..., Any],
    *args: Any,
    policy: ResiliencePolicy = DEFAULT_RESILIENCE_POLICY,
    rng: Optional[random.Random] = None,
    stats: Optional["ResilienceStats"] = None,
    retry_on: tuple = TRANSIENT_CLOUD_ERRORS,
    breakers: Optional[Any] = None,
    budget: Optional[Any] = None,
    now_fn: Optional[Callable[[], float]] = None,
    **kwargs: Any,
) -> Any:
    """Call ``fn`` retrying transient cloud errors with jittered backoff.

    The backoff is accounted to ``stats.backoff_seconds`` (modelled time, no
    wall-clock sleeping).  After ``policy.max_attempts`` attempts the last
    error propagates.

    With a :class:`~repro.driver.breakers.BreakerBoard` (``breakers``) each
    failure is charged to its service's breaker and, when that breaker is
    open, the remaining cooldown is charged to modelled backoff before the
    next attempt proceeds as a half-open probe; a probe success closes the
    loop.  With a :class:`~repro.driver.breakers.RetryBudget` (``budget``)
    every retry spends one unit — exhaustion raises
    :class:`~repro.errors.RetryBudgetExhaustedError` instead of retrying.
    ``now_fn`` supplies modelled "now" for breaker bookkeeping (typically
    environment clock + accumulated backoff).
    """
    rng = rng or random.Random(policy.jitter_seed)
    now_fn = now_fn or (lambda: 0.0)
    sleep = 0.0
    failed_service: Optional[str] = None
    for attempt in range(policy.max_attempts):
        try:
            result = fn(*args, **kwargs)
        except retry_on as error:
            service = None
            if breakers is not None:
                service = breakers.record_failure(error, now_fn())
                failed_service = service or failed_service
            if attempt == policy.max_attempts - 1:
                raise
            if budget is not None:
                budget.charge("backoff_retries")
            sleep = decorrelated_jitter(
                sleep, rng, policy.backoff_base_seconds, policy.backoff_cap_seconds
            )
            if stats is not None:
                stats.retries += 1
                stats.backoff_seconds += sleep
            if breakers is not None and service is not None:
                # An open breaker converts doomed hammering into a modelled
                # wait: charge the cooldown to latency and probe half-open.
                cooldown = breakers.wait_seconds(service, now_fn())
                if cooldown > 0.0 and stats is not None:
                    stats.backoff_seconds += cooldown
                    breakers.wait_seconds(service, now_fn())
        else:
            if breakers is not None and failed_service is not None:
                breakers.record_success(failed_service, now_fn())
            return result


@dataclass
class ResilienceStats:
    """The ``resilience`` block of :class:`QueryStatistics`.

    All-zero on a clean run; every field is cheap counters only.
    """

    #: Re-invocations of failed or missing workers (all planes).
    retries: int = 0
    #: Speculative duplicate invocations launched for stragglers.
    hedges_launched: int = 0
    #: Hedges whose result beat the original worker's.
    hedges_won: int = 0
    #: Hedges that lost the race (their cost is wasted).
    hedges_lost: int = 0
    #: Late/duplicate result messages discarded by (worker, attempt) dedup.
    duplicate_messages_ignored: int = 0
    #: Messages from a superseded attempt discarded in favour of a newer one.
    stale_messages_ignored: int = 0
    #: Total modelled backoff time charged to query latency.
    backoff_seconds: float = 0.0
    #: Shuffle wave re-runs (map or reduce wave level).
    wave_retries: int = 0
    #: Process-pool children respawned during this query.
    pool_respawns: int = 0
    #: Graceful-degradation events, e.g. {"combined_to_legacy": 1,
    #: "processes_to_serial": 1}.
    fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Faults the installed FaultPlan injected during this query, by kind.
    faults_injected: Dict[str, int] = field(default_factory=dict)
    #: Modelled dollars spent on attempts that produced no used result
    #: (failed attempts, lost hedges).
    wasted_cost_dollars: float = 0.0

    def note_fallback(self, kind: str) -> None:
        """Count one graceful-degradation event."""
        self.fallbacks[kind] = self.fallbacks.get(kind, 0) + 1

    def merge(self, other: "ResilienceStats") -> None:
        """Fold another stats block (e.g. a shuffle wave's) into this one."""
        self.retries += other.retries
        self.hedges_launched += other.hedges_launched
        self.hedges_won += other.hedges_won
        self.hedges_lost += other.hedges_lost
        self.duplicate_messages_ignored += other.duplicate_messages_ignored
        self.stale_messages_ignored += other.stale_messages_ignored
        self.backoff_seconds += other.backoff_seconds
        self.wave_retries += other.wave_retries
        self.pool_respawns += other.pool_respawns
        for kind, count in other.fallbacks.items():
            self.fallbacks[kind] = self.fallbacks.get(kind, 0) + count
        for kind, count in other.faults_injected.items():
            self.faults_injected[kind] = self.faults_injected.get(kind, 0) + count
        self.wasted_cost_dollars += other.wasted_cost_dollars

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for reports and tests."""
        return {
            "retries": self.retries,
            "hedges_launched": self.hedges_launched,
            "hedges_won": self.hedges_won,
            "hedges_lost": self.hedges_lost,
            "duplicate_messages_ignored": self.duplicate_messages_ignored,
            "stale_messages_ignored": self.stale_messages_ignored,
            "backoff_seconds": self.backoff_seconds,
            "wave_retries": self.wave_retries,
            "pool_respawns": self.pool_respawns,
            "fallbacks": dict(self.fallbacks),
            "faults_injected": dict(self.faults_injected),
            "wasted_cost_dollars": self.wasted_cost_dollars,
        }

    @property
    def clean(self) -> bool:
        """True when nothing resilience-related happened (fault-free run)."""
        return (
            self.retries == 0
            and self.hedges_launched == 0
            and self.duplicate_messages_ignored == 0
            and self.stale_messages_ignored == 0
            and self.wave_retries == 0
            and self.pool_respawns == 0
            and not self.fallbacks
            and not self.faults_injected
        )


@dataclass
class AttemptLog:
    """Per-worker attempt history for one wave of invocations.

    Feeds the full history into :class:`~repro.errors.WorkerFailedError` when
    a worker exhausts its budget, instead of only the first failure string.
    """

    history: Dict[int, List[Dict[str, Any]]] = field(default_factory=dict)

    def record(
        self,
        worker_id: int,
        attempt: int,
        error: str = "",
        backoff_seconds: float = 0.0,
        hedged: bool = False,
    ) -> None:
        """Append one attempt outcome for a worker."""
        entry: Dict[str, Any] = {"attempt": attempt, "error": error}
        if backoff_seconds:
            entry["backoff_seconds"] = backoff_seconds
        if hedged:
            entry["hedged"] = True
        self.history.setdefault(worker_id, []).append(entry)

    def for_worker(self, worker_id: int) -> List[Dict[str, Any]]:
        """Attempt history of one worker (possibly empty)."""
        return self.history.get(worker_id, [])


def pick_stragglers(
    durations: Dict[int, float],
    policy: ResiliencePolicy,
) -> List[int]:
    """Worker ids whose modelled duration marks them as stragglers.

    A worker is hedge-eligible when its duration exceeds both
    ``policy.hedge_factor`` x the fleet median and the absolute
    ``policy.hedge_min_seconds`` floor; at most
    ``policy.hedge_max_fraction`` of the fleet is returned (slowest first).
    Fleets smaller than 4 never hedge — the median is too noisy.
    """
    if not policy.hedge_enabled or len(durations) < 4:
        return []
    ordered = sorted(durations.values())
    median = ordered[len(ordered) // 2]
    threshold = max(policy.hedge_min_seconds, policy.hedge_factor * median)
    stragglers = [
        worker_id
        for worker_id, duration in durations.items()
        if duration > threshold
    ]
    if not stragglers:
        return []
    budget = max(1, int(len(durations) * policy.hedge_max_fraction))
    stragglers.sort(key=lambda worker_id: -durations[worker_id])
    return stragglers[:budget]
