"""Driver-side data-integrity primitives.

Everything the verify-and-recover read path shares lives here:

* :class:`IntegrityStats` — the ``integrity`` block of
  :class:`~repro.driver.driver.QueryStatistics`: bytes whose content
  checksums were verified on read, mismatches by verification site, and how
  the recovery escalation resolved them (re-issued GETs for in-flight
  corruption, re-executed producing attempts for at-rest corruption).
* :func:`sign_message` / :func:`message_intact` — the crc32 digest every
  result message (and spilled result object) carries so the driver detects a
  payload corrupted on the queue before acting on it.  The digest covers the
  canonical (sorted-keys) JSON form of the message minus the digest field
  itself; JSON round-trips of ints, strings, and shortest-repr floats are
  representation-stable, so the receiver recomputes the identical value from
  the parsed dict.

A clean run with verification disabled (or unchecksummed inputs) reports
all-zero mismatch counters; verified byte counts accumulate wherever a
checksum actually matched.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Key under which a result message carries its content digest.
MESSAGE_DIGEST_KEY = "digest"


def message_digest(payload: Dict[str, Any]) -> int:
    """crc32 over the canonical JSON form of ``payload`` minus its digest."""
    body = {k: v for k, v in payload.items() if k != MESSAGE_DIGEST_KEY}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode("utf-8"))


def sign_message(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Attach the content digest to a result message (mutates and returns)."""
    payload[MESSAGE_DIGEST_KEY] = message_digest(payload)
    return payload


def message_intact(payload: Dict[str, Any]) -> bool:
    """Whether a parsed message matches its digest (unsigned messages pass)."""
    expected = payload.get(MESSAGE_DIGEST_KEY)
    if expected is None:
        return True
    return expected == message_digest(payload)


@dataclass
class IntegrityStats:
    """The ``integrity`` block of :class:`QueryStatistics`.

    Cheap counters only; all-zero mismatches on a corruption-free run.
    """

    #: Bytes that passed content-checksum verification on read (exchange
    #: slices, spilled results, decoded payload buffers).
    verified_bytes: int = 0
    #: Checksum mismatches detected, by verification site (e.g.
    #: ``{"slice.crc": 2, "sqs.digest": 1}``).
    mismatches: Dict[str, int] = field(default_factory=dict)
    #: GETs re-issued because the first response failed verification
    #: (in-flight corruption: the object at rest was fine).
    re_reads: int = 0
    #: Producing attempts re-executed because their output failed
    #: verification persistently or their result message was corrupt
    #: (at-rest / on-queue corruption).
    re_executions: int = 0

    def note_mismatch(self, site: Optional[str]) -> None:
        """Count one detected mismatch at ``site``."""
        site = site or "unknown"
        self.mismatches[site] = self.mismatches.get(site, 0) + 1

    def merge(self, other: "IntegrityStats") -> None:
        """Fold another stats block (e.g. a worker's) into this one."""
        self.verified_bytes += other.verified_bytes
        for site, count in other.mismatches.items():
            self.mismatches[site] = self.mismatches.get(site, 0) + count
        self.re_reads += other.re_reads
        self.re_executions += other.re_executions

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for reports, worker payloads, and tests."""
        return {
            "verified_bytes": self.verified_bytes,
            "mismatches": dict(self.mismatches),
            "re_reads": self.re_reads,
            "re_executions": self.re_executions,
        }

    @classmethod
    def from_dict(cls, payload: Optional[Dict[str, Any]]) -> "IntegrityStats":
        """Inverse of :meth:`to_dict`; missing keys default to zero."""
        if not payload:
            return cls()
        return cls(
            verified_bytes=int(payload.get("verified_bytes", 0)),
            mismatches={
                str(site): int(count)
                for site, count in (payload.get("mismatches") or {}).items()
            },
            re_reads=int(payload.get("re_reads", 0)),
            re_executions=int(payload.get("re_executions", 0)),
        )

    @property
    def clean(self) -> bool:
        """True when no corruption was detected (recovery never ran)."""
        return not self.mismatches and self.re_reads == 0 and self.re_executions == 0
