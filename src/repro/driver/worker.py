"""Serverless worker: the Lambda event handler.

The handler mirrors the paper's description (§3.3): it extracts the worker id,
the query plan fragment, and its input from the invocation parameters, runs
the execution engine, and posts a success or error message to the SQS result
queue from which the driver polls.  First-generation workers additionally
invoke their second-generation children (the tree invocation of §4.2) before
starting their own fragment.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Optional

from repro.cloud.environment import CloudEnvironment
from repro.cloud.lambda_service import InvocationContext
from repro.config import INVOCATION_RATE_INTRA_REGION, IntegrityConfig
from repro.driver.integrity import sign_message
from repro.engine.pipeline import execute_worker_plan
from repro.errors import WorkerCrashError
from repro.plan.physical import WorkerPlan

#: Name under which the worker function is deployed at installation time.
WORKER_FUNCTION_NAME = "lambada-worker"

#: Cold runs are about 20 % slower end to end (paper §5.2), partly because of
#: loading code from the dependency layer; we model it as slower execution.
COLD_EXECUTION_PENALTY = 1.15

#: Results larger than this are staged through S3 instead of the SQS message
#: (SQS messages are limited to 256 KiB); the message then carries a pointer.
#: Result tables travel in the binary columnar payload form (see
#: :mod:`repro.engine.payload`), so far fewer results hit this limit than with
#: the seed's JSON ``.tolist()`` encoding.
RESULT_SPILL_BYTES = 200 * 1024

#: Bucket used for spilled worker results.
RESULT_BUCKET = "lambada-results"


def apply_cold_penalty(duration_seconds: float, cold_start: bool) -> float:
    """Modelled execution duration with the cold-start slowdown applied.

    Shared between the in-process worker handler and the process-pool
    accounting path (via ``LambdaService.account_invocation``'s
    ``cold_penalty``), so both execution planes model cold runs identically.
    """
    return duration_seconds * COLD_EXECUTION_PENALTY if cold_start else duration_seconds


def make_worker_handler(env: CloudEnvironment) -> Callable[[Dict[str, Any], InvocationContext], Dict]:
    """Create the worker event handler bound to a cloud environment.

    The returned callable is deployed into the
    :class:`~repro.cloud.lambda_service.LambdaService` as the Lambada worker
    function.
    """

    def handler(event: Dict[str, Any], context: InvocationContext) -> Dict[str, Any]:
        worker_id = event["worker_id"]
        attempt = event.get("attempt", 0)
        result_queue: Optional[str] = event.get("result_queue")
        query_id = event.get("query_id", "query")
        function_name = event.get("function_name", WORKER_FUNCTION_NAME)
        integrity = IntegrityConfig.from_dict(event.get("integrity"))

        # 1. Invoke second-generation children first so the whole fleet starts
        #    as quickly as possible (tree invocation, §4.2).
        children = event.get("children") or []
        for child in children:
            child_event = dict(child)
            child_event.setdefault("result_queue", result_queue)
            child_event.setdefault("query_id", query_id)
            child_event.setdefault("function_name", function_name)
            child_event.pop("children", None)
            env.lambda_service.invoke(function_name, child_event, from_driver=False)
        if children:
            rate = INVOCATION_RATE_INTRA_REGION.get(env.region, 80.0)
            context.charge(len(children) / rate)

        # 2. Execute the query fragment and report the outcome.
        try:
            plan = WorkerPlan.from_dict(event["plan"])
            result = execute_worker_plan(
                plan,
                env.s3,
                memory_mib=context.memory_mib,
                threads=event.get("threads", 2),
                bandwidth=env.bandwidth,
            )
            duration = apply_cold_penalty(result.duration_seconds, context.cold_start)
            duration *= getattr(context, "straggler_factor", 1.0)
            result.duration_seconds = duration
            result.attempt = attempt
            context.charge(duration)
            message = {
                "query_id": query_id,
                "worker_id": worker_id,
                "attempt": attempt,
                "status": "ok",
                "result": result.to_payload(),
            }
        except WorkerCrashError:
            # The instance died — no result message reaches the driver.
            raise
        except Exception as exc:  # noqa: BLE001 - report, never die silently
            message = {
                "query_id": query_id,
                "worker_id": worker_id,
                "attempt": attempt,
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
            }

        if result_queue:
            if integrity.generate:
                # The content digest lets the driver detect a payload that
                # was corrupted on the queue (or in the spilled object)
                # before acting on it.
                sign_message(message)
            encoded = json.dumps(message).encode("utf-8")
            if len(encoded) > RESULT_SPILL_BYTES:
                # Stage large results through S3 and send only a pointer.
                env.s3.ensure_bucket(RESULT_BUCKET)
                # Attempt-suffixed so a retry never overwrites (or races with)
                # an earlier attempt's spilled result object.
                key = f"{query_id}/worker-{worker_id}.a{attempt}.json"
                env.s3.put_object(RESULT_BUCKET, key, encoded)
                pointer = {
                    "query_id": query_id,
                    "worker_id": worker_id,
                    "attempt": attempt,
                    "status": message["status"],
                    "result_s3": f"s3://{RESULT_BUCKET}/{key}",
                }
                if integrity.generate:
                    sign_message(pointer)
                env.sqs.send_json(result_queue, pointer)
            else:
                # Reuse the bytes already serialised for the spill-size check.
                env.sqs.send_message(result_queue, encoded.decode("utf-8"))
        return message

    return handler
