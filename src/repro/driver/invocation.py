"""Worker invocation strategies and their timing models.

Starting thousands of workers from the driver alone takes 13–18 s at the
measured invocation rates (Table 1), which would dominate an interactive
query.  The paper's solution (§4.2) is a two-level *tree* invocation: the
driver invokes ~√P first-generation workers, each of which invokes ~√P
second-generation workers before starting on its own query fragment; 4096
workers start in under 3 s.

This module provides both the analytic timing models (for Figure 5 and the
flat-vs-tree ablation) and the functional tree builder used by the driver to
construct the invocation payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

import numpy as np

from repro.config import (
    DRIVER_INVOKER_THREADS,
    INVOCATION_LATENCY_SECONDS,
    INVOCATION_RATE_DRIVER,
    INVOCATION_RATE_INTRA_REGION,
    LAMBDA_COLD_START_SECONDS,
    LAMBDA_WARM_START_SECONDS,
)


@dataclass
class InvocationTimeline:
    """Timeline of a two-level invocation (the data behind Figure 5).

    All arrays are indexed by first-generation worker in invocation order.
    """

    #: Time the driver spent before initiating this worker's invocation.
    before_own_invocation: np.ndarray
    #: Duration of this worker's own invocation (request latency + start-up).
    own_invocation: np.ndarray
    #: Time this worker spent invoking its second-generation children.
    invoking_workers: np.ndarray

    @property
    def completion_times(self) -> np.ndarray:
        """Time at which each first-generation worker finished invoking children."""
        return self.before_own_invocation + self.own_invocation + self.invoking_workers

    @property
    def all_started_at(self) -> float:
        """Time at which the last worker of the fleet has been started."""
        return float(self.completion_times.max())


class FlatInvocationModel:
    """Driver-only invocation with a pool of invoker threads (the baseline)."""

    def __init__(self, region: str = "eu", threads: int = DRIVER_INVOKER_THREADS):
        if region not in INVOCATION_RATE_DRIVER:
            raise ValueError(f"unknown region {region!r}")
        self.region = region
        self.threads = threads
        self.rate = INVOCATION_RATE_DRIVER[region]
        self.latency = INVOCATION_LATENCY_SECONDS[region]

    def time_to_start_all(self, num_workers: int, cold: bool = True) -> float:
        """Time until all ``num_workers`` are running."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        startup = LAMBDA_COLD_START_SECONDS if cold else LAMBDA_WARM_START_SECONDS
        return num_workers / self.rate + self.latency + startup

    def worker_start_times(self, num_workers: int, cold: bool = True) -> np.ndarray:
        """Modelled start time of every worker (in invocation order)."""
        startup = LAMBDA_COLD_START_SECONDS if cold else LAMBDA_WARM_START_SECONDS
        initiated = np.arange(num_workers) / self.rate
        return initiated + self.latency + startup


class TreeInvocationModel:
    """Two-level tree invocation (the paper's strategy)."""

    def __init__(self, region: str = "eu", threads: int = DRIVER_INVOKER_THREADS):
        if region not in INVOCATION_RATE_DRIVER:
            raise ValueError(f"unknown region {region!r}")
        self.region = region
        self.threads = threads
        self.driver_rate = INVOCATION_RATE_DRIVER[region]
        self.worker_rate = INVOCATION_RATE_INTRA_REGION[region]
        self.latency = INVOCATION_LATENCY_SECONDS[region]

    @staticmethod
    def first_generation_count(num_workers: int) -> int:
        """Number of first-generation workers (~√P, §4.2)."""
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        return int(math.ceil(math.sqrt(num_workers)))

    def timeline(self, num_workers: int, cold: bool = True) -> InvocationTimeline:
        """Per-first-generation-worker timing breakdown (Figure 5)."""
        first_gen = self.first_generation_count(num_workers)
        children_total = num_workers - first_gen
        base_children = children_total // first_gen if first_gen else 0
        remainder = children_total - base_children * first_gen
        children = np.full(first_gen, base_children, dtype=np.int64)
        children[:remainder] += 1

        startup = LAMBDA_COLD_START_SECONDS if cold else LAMBDA_WARM_START_SECONDS
        before = np.arange(first_gen) / self.driver_rate
        own = np.full(first_gen, self.latency + startup)
        invoking = children / self.worker_rate
        return InvocationTimeline(
            before_own_invocation=before,
            own_invocation=own,
            invoking_workers=invoking,
        )

    def time_to_start_all(self, num_workers: int, cold: bool = True) -> float:
        """Time until every worker of the fleet is running."""
        timeline = self.timeline(num_workers, cold)
        startup = LAMBDA_COLD_START_SECONDS if cold else LAMBDA_WARM_START_SECONDS
        # The last second-generation worker starts one invocation latency +
        # start-up after its parent initiated its invocation.
        return timeline.all_started_at + self.latency + startup

    def worker_start_times(self, num_workers: int, cold: bool = True) -> np.ndarray:
        """Modelled start time of every worker in the fleet.

        First-generation workers start right after their own invocation;
        second-generation workers start after their parent finished the
        (uniformly spread) invocations that precede them.
        """
        timeline = self.timeline(num_workers, cold)
        first_gen = len(timeline.before_own_invocation)
        startup = LAMBDA_COLD_START_SECONDS if cold else LAMBDA_WARM_START_SECONDS
        starts: List[float] = []
        # First generation.
        first_gen_start = timeline.before_own_invocation + timeline.own_invocation
        starts.extend(first_gen_start.tolist())
        # Second generation, parents assigned round-robin in order.
        children_total = num_workers - first_gen
        per_parent_counter = np.zeros(first_gen, dtype=np.int64)
        for child in range(children_total):
            parent = child % first_gen
            per_parent_counter[parent] += 1
            start = (
                first_gen_start[parent]
                + per_parent_counter[parent] / self.worker_rate
                + self.latency
                + startup
            )
            starts.append(float(start))
        return np.asarray(starts[:num_workers])


def build_invocation_tree(
    worker_payloads: Sequence[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Arrange worker payloads into a two-level invocation tree.

    Returns the payloads of the first-generation workers; each carries its
    second-generation children under the ``"children"`` key.  The split is
    balanced: ~√P first-generation workers with ~√P children each.
    """
    total = len(worker_payloads)
    if total == 0:
        return []
    first_gen = TreeInvocationModel.first_generation_count(total)
    parents = [dict(payload) for payload in worker_payloads[:first_gen]]
    for parent in parents:
        parent["children"] = []
    for index, payload in enumerate(worker_payloads[first_gen:]):
        parents[index % first_gen]["children"].append(dict(payload))
    return parents
