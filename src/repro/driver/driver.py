"""The Lambada driver: query coordinator.

The driver deploys the worker function once ("installation"), then executes
queries by compiling them, invoking the worker fleet through the two-level
tree strategy, polling the SQS result queue, and merging the partial results
locally (the driver scope of the physical plan).  It reports per-query
statistics — modelled end-to-end latency and the full dollar-cost breakdown —
which the evaluation benchmarks consume.
"""

from __future__ import annotations

import functools
import json
import math
import os
import random
import threading
import uuid
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.environment import CloudEnvironment
from repro.cloud.lambda_service import FunctionConfig
from repro.cloud.s3 import SharedObjectExport, parse_s3_path
from repro.config import DEFAULT_RESILIENCE, IntegrityConfig
from repro.driver.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    CancellationToken,
)
from repro.driver.breakers import BreakerBoard, RetryBudget
from repro.driver.integrity import IntegrityStats, message_intact
from repro.driver.invocation import TreeInvocationModel, build_invocation_tree
from repro.driver.resilience import (
    DEFAULT_RESILIENCE_POLICY,
    TRANSIENT_CLOUD_ERRORS,
    AttemptLog,
    ResiliencePolicy,
    ResilienceStats,
    call_with_backoff,
    decorrelated_jitter,
    pick_stragglers,
)
from repro.driver.worker import (
    COLD_EXECUTION_PENALTY,
    RESULT_BUCKET,
    WORKER_FUNCTION_NAME,
    make_worker_handler,
)
from repro.engine.aggregates import finalize_aggregates, merge_partials
from repro.engine.payload import decode_table
from repro.engine.pipeline import WorkerResult
from repro.exchange.basic import ExchangeStats
from repro.engine.table import (
    Table,
    concat_tables,
    sort_table,
    table_num_rows,
    take_rows,
)
from repro.errors import (
    CloudError,
    ExecutionError,
    IntegrityError,
    QueryCancelledError,
    QueryTimeoutError,
    RetryBudgetExhaustedError,
    WorkerFailedError,
)
from repro.plan.logical import LogicalPlan
from repro.plan.optimizer import OptimizerReport, optimize
from repro.plan.physical import (
    DagPhysicalPlan,
    JoinPhysicalPlan,
    PhysicalPlan,
    resolve_udf,
)


@dataclass
class QueryStatistics:
    """Performance and cost statistics of one query execution."""

    num_workers: int
    memory_mib: int
    cold: bool
    #: Modelled time until every worker of the fleet was running.
    invocation_seconds: float
    #: Modelled execution time of the slowest / median worker.
    max_worker_seconds: float
    median_worker_seconds: float
    #: Modelled end-to-end query latency seen by the user.
    latency_seconds: float
    rows_scanned: int
    bytes_read: int
    get_requests: int
    #: Dollar cost breakdown.
    cost_lambda_duration: float
    cost_lambda_requests: float
    cost_s3_requests: float
    cost_sqs_requests: float
    #: Per-worker modelled execution durations, seconds.
    worker_durations: List[float] = field(default_factory=list)
    #: Late-materialization scan counters, summed over the fleet: row groups
    #: whose selection vector short-circuited, rows never fully decoded, and
    #: column-chunk downloads avoided.
    row_groups_shortcircuited: int = 0
    rows_decode_saved: int = 0
    column_chunks_skipped: int = 0
    #: Exchange-plane request/byte counters, summed over the fleet (non-zero
    #: only for plans with an exchange hop, e.g. the shuffle-aggregate and
    #: shuffle-join paths).
    exchange: ExchangeStats = field(default_factory=ExchangeStats)
    #: Join-wave counters, summed over the fleet (non-zero only for join
    #: plans): rows entering the probe/build sides of the join kernels after
    #: repartitioning, and rows the kernels produced.
    join_probe_rows: int = 0
    join_build_rows: int = 0
    join_output_rows: int = 0
    #: Number of join waves in the executed schedule (1 for a binary join,
    #: ``len(dag.stages)`` for an N-way join DAG; 1 for scan queries too,
    #: where no join wave exists but the field keeps a uniform meaning).
    dag_stages: int = 1
    #: Intermediate exchange objects deleted by the coordinator's per-stage
    #: and end-of-query garbage collection (0 for scan and binary joins).
    gc_objects_deleted: int = 0
    #: Fault-tolerance counters for this query: retries, hedges won/lost,
    #: injected faults survived, degradation fallbacks, wasted modelled cost.
    #: All-zero on a clean run.
    resilience: ResilienceStats = field(default_factory=ResilienceStats)
    #: Data-integrity counters: bytes whose checksums were verified on read,
    #: detected mismatches by site, and how recovery resolved them (re-reads
    #: vs re-executions).  All-zero mismatches on a corruption-free run.
    integrity: IntegrityStats = field(default_factory=IntegrityStats)
    #: Overload-control block: this query's retry-budget spend plus the
    #: owning driver's circuit-breaker states and transition log at query
    #: end.  ``None`` only for catalog-pruned empty results, which never
    #: touch the fleet.
    overload: Optional[Dict[str, Any]] = None

    @property
    def cost_total(self) -> float:
        """Total dollar cost of the query.

        Retried and hedged invocations are billed inside the components like
        any other request; ``resilience.wasted_cost_dollars`` reports which
        part of this total bought nothing (it is an attribution, not an
        extra charge).
        """
        return (
            self.cost_lambda_duration
            + self.cost_lambda_requests
            + self.cost_s3_requests
            + self.cost_sqs_requests
        )


@dataclass
class QueryResult:
    """Result of one query execution."""

    table: Table
    reduce_value: Optional[Any]
    statistics: QueryStatistics
    worker_results: List[WorkerResult]
    optimizer_report: Optional[OptimizerReport] = None
    #: Rendering of the executed physical plan (``physical.explain()``).
    plan_explain: str = ""

    def column(self, name: str) -> np.ndarray:
        """One result column as a NumPy array."""
        return np.asarray(self.table[name])

    @property
    def rows(self) -> List[Dict[str, Any]]:
        """Result rows as plain dicts of Python scalars, in result order."""
        names = list(self.table)
        columns = [np.asarray(self.table[name]) for name in names]
        return [
            {name: column[index].item() for name, column in zip(names, columns)}
            for index in range(self.num_rows)
        ]

    def explain(self) -> str:
        """The executed schedule: join order, waves, and push-downs.

        Combines the optimizer's report (join order, pruned columns,
        estimated costs) with the physical plan's wave-by-wave rendering.
        """
        parts = []
        if self.optimizer_report is not None:
            parts.append(self.optimizer_report.describe())
        if self.plan_explain:
            parts.append(self.plan_explain)
        return "\n".join(parts) if parts else "(no plan recorded)"

    def scalar(self) -> float:
        """The single value of a scalar (one row, one column) result."""
        if self.reduce_value is not None:
            return float(self.reduce_value)
        if len(self.table) != 1:
            raise ExecutionError(f"result has {len(self.table)} columns, expected 1")
        column = next(iter(self.table.values()))
        if len(column) != 1:
            raise ExecutionError(f"result has {len(column)} rows, expected 1")
        return float(column[0])

    @property
    def num_rows(self) -> int:
        """Number of result rows."""
        return table_num_rows(self.table)


class LambadaDriver:
    """Coordinates query execution over the serverless worker fleet."""

    def __init__(
        self,
        env: CloudEnvironment,
        memory_mib: int = 2048,
        function_name: str = WORKER_FUNCTION_NAME,
        result_queue: str = "lambada-result-queue",
        worker_timeout_seconds: float = 900.0,
        execution_mode: str = "serial",
        max_parallel_invocations: Optional[int] = None,
        shuffle_config: Optional["ShuffleConfig"] = None,
        resilience_policy: Optional[ResiliencePolicy] = None,
        integrity: Optional[IntegrityConfig] = None,
        breakers: Optional[BreakerBoard] = None,
    ):
        """``execution_mode`` selects how the simulated fleet runs.

        ``"serial"`` (default) invokes the tree roots one after another, as the
        seed implementation did.  ``"threads"`` drives them through a thread
        pool: workers are independent pure functions over the (thread-safe)
        simulated services, so large-fleet runs stop paying serial Python
        overhead (but the GIL still serialises their NumPy-adjacent Python
        sections).  ``"processes"`` runs eligible fragments on a persistent
        spawn-based process pool with shared-memory input/result planes
        (:mod:`repro.driver.procpool`), the only mode whose wall-clock time
        actually scales with cores; plans the pool cannot run (registry UDFs,
        join schedules) and single-core hosts fall back transparently.
        Result ordering is deterministic in every mode — results are keyed
        and merged by worker id, never by arrival order.
        ``max_parallel_invocations`` bounds the thread pool, and doubles as a
        forced process-pool size (overriding the core-count default).
        """
        if execution_mode not in ("serial", "threads", "processes"):
            raise ValueError(f"unknown execution mode {execution_mode!r}")
        self.env = env
        self.memory_mib = memory_mib
        self.function_name = function_name
        self.result_queue = result_queue
        self.worker_timeout_seconds = worker_timeout_seconds
        self.execution_mode = execution_mode
        self.max_parallel_invocations = max_parallel_invocations
        self._pool = None
        self._pool_unavailable = False
        #: Configuration of the shuffle I/O plane used by join queries
        #: (:class:`~repro.driver.shuffle.ShuffleConfig`); ``None`` selects
        #: the write-combined default.
        self.shuffle_config = shuffle_config
        self._join_coordinator = None
        #: Retry/backoff/hedging knobs (see :mod:`repro.driver.resilience`).
        self.resilience_policy = resilience_policy or DEFAULT_RESILIENCE_POLICY
        self._jitter_rng = random.Random(self.resilience_policy.jitter_seed)
        #: Per-service circuit breakers.  Breaker state is fleet health, not
        #: query state, so the board lives as long as the driver — and a
        #: :class:`QuerySession` shares one board across all its drivers.
        self.breakers = breakers or BreakerBoard()
        # Per-query overload context, armed by execute() and read by the
        # retry/hedge/collect helpers (avoids threading four extra arguments
        # through every call chain).  A driver runs one query at a time;
        # concurrency comes from one driver per session worker thread.
        self._active_cancel: Optional[CancellationToken] = None
        self._active_budget: Optional[RetryBudget] = None
        self._active_now = None
        #: Content-checksum knobs: workers embed checksums in everything they
        #: write and every consumer verifies on read (both default on).
        self.integrity = integrity or IntegrityConfig()
        self.install()

    # -- installation -------------------------------------------------------------

    def install(self) -> None:
        """Deploy the worker function and create the result queue.

        This is the per-installation step of the usage model (§2.1); it incurs
        no recurring cost.
        """
        config = FunctionConfig(
            name=self.function_name,
            memory_mib=self.memory_mib,
            timeout_seconds=self.worker_timeout_seconds,
            region=self.env.region,
        )
        self.env.lambda_service.deploy(config, make_worker_handler(self.env))
        self.env.sqs.create_queue(self.result_queue)

    def set_memory(self, memory_mib: int) -> None:
        """Reconfigure the worker memory size (redeploys the function)."""
        self.memory_mib = memory_mib
        self.install()

    # -- query execution -----------------------------------------------------------

    def execute(
        self,
        plan: Union[LogicalPlan, PhysicalPlan, JoinPhysicalPlan, DagPhysicalPlan],
        num_workers: Optional[int] = None,
        files_per_worker: Optional[int] = None,
        cold: bool = False,
        threads: int = 2,
        catalog: Optional["StatisticsCatalog"] = None,
        dataset_name: Optional[str] = None,
        max_worker_retries: int = 1,
        deadline_seconds: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
    ) -> QueryResult:
        """Execute a query and return its result and statistics.

        ``num_workers`` and ``files_per_worker`` control the fleet size (the
        paper's ``W`` and ``F`` parameters); by default one worker per input
        file is used.  ``cold=True`` forces cold starts (fresh function
        instances), reproducing the paper's cold-run measurements.

        When a :class:`~repro.driver.catalog.StatisticsCatalog` and the
        dataset's catalog name are given, files whose min/max statistics cannot
        match the query's prune ranges are skipped entirely, so their workers
        are never invoked (the §5.3 central-statistics optimisation).

        Failed workers are retried up to ``max_worker_retries`` times before
        the query is aborted with :class:`~repro.errors.WorkerFailedError`.

        Join plans run through the multi-stage shuffle-join schedule, which
        sizes both map waves and the join wave from ``num_workers`` alone:
        ``files_per_worker`` is not consulted, a failed worker aborts the
        query without retries (the waves are barriered), and catalog-based
        file pruning is rejected explicitly (its single-dataset statistics
        cannot describe two relations).

        ``deadline_seconds``/``cancel`` arm cooperative cancellation: the
        query unwinds with a typed
        :class:`~repro.errors.QueryCancelledError` at its next pump point
        (poll round, retry round, wave round), releasing shared-memory
        segments and garbage-collecting its S3/SQS state on the way out.
        Each query also draws from a retry budget
        (``resilience_policy.retry_budget``) covering backoff retries, wave
        retries, and hedges combined; exhaustion raises
        :class:`~repro.errors.RetryBudgetExhaustedError` instead of grinding
        through a sustained brownout.
        """
        # Per-query jitter stream: reseeding here makes backoff draws a
        # function of this query alone, not of how many ran before it.
        self._jitter_rng = random.Random(self.resilience_policy.jitter_seed)
        if cancel is None and deadline_seconds is not None:
            cancel = CancellationToken(deadline_seconds=deadline_seconds)

        report: Optional[OptimizerReport] = None
        if isinstance(plan, LogicalPlan):
            physical, report = optimize(plan)
        else:
            physical = plan

        # Dispatch on the unified plan protocol: every physical plan carries
        # an ``engine`` tag ("scan" or "shuffle-dag"), so the driver never
        # needs to know the concrete plan class.
        if getattr(physical, "engine", "scan") == "shuffle-dag":
            if catalog is not None or dataset_name is not None:
                raise ExecutionError(
                    "catalog-based file pruning is not supported for join plans"
                )
            return self._execute_join(
                physical, report, num_workers=num_workers, cold=cold,
                cancel=cancel,
            )

        input_files = self._expand_paths(physical.input_files)
        if catalog is not None and dataset_name is not None:
            input_files = catalog.prune_paths(
                input_files, dataset_name, physical.worker_template.prune_ranges
            )
            if not input_files:
                # Every file is pruned by the central statistics: the query
                # result is empty and no worker needs to be started.
                return self._empty_result(physical, report, cold)
        if not input_files:
            raise ExecutionError("query has no input files")
        physical = PhysicalPlan(
            worker_template=physical.worker_template,
            driver=physical.driver,
            input_files=input_files,
        )

        if num_workers is None:
            if files_per_worker is not None:
                if files_per_worker <= 0:
                    raise ValueError("files_per_worker must be positive")
                num_workers = math.ceil(len(input_files) / files_per_worker)
            else:
                num_workers = len(input_files)
        num_workers = min(num_workers, len(input_files))

        worker_plans = physical.worker_plans(num_workers)
        query_id = uuid.uuid4().hex[:12]

        if cold:
            self.env.lambda_service.reset_warm_instances(self.function_name)

        payloads = [
            {
                "worker_id": worker_id,
                "attempt": 0,
                "plan": worker_plan.to_dict(),
                "result_queue": self.result_queue,
                "query_id": query_id,
                "function_name": self.function_name,
                "threads": threads,
                "integrity": self.integrity.to_dict(),
            }
            for worker_id, worker_plan in enumerate(worker_plans)
        ]

        resilience = ResilienceStats()
        integrity_stats = IntegrityStats()
        fault_snapshot = self._fault_snapshot()

        def now_fn() -> float:
            # Modelled "now" for breaker windows and deadlines: environment
            # clock plus the backoff this query has already accrued.
            return self.env.clock.now + resilience.backoff_seconds

        budget = RetryBudget(
            self.resilience_policy.retry_budget,
            query_id=query_id,
            breaker_states=self.breakers.states,
        )
        if cancel is not None:
            cancel.bind(now_fn, query_id=query_id)
        self._active_cancel = cancel
        self._active_budget = budget
        self._active_now = now_fn
        try:
            if self.execution_mode == "processes" and self._pool_supported(physical):
                pooled = self._execute_pooled(
                    physical, payloads, report, cold, max_worker_retries,
                    resilience, fault_snapshot,
                )
                if pooled is not None:
                    return pooled
                # Pool unavailable (single core / spawn failure / respawn
                # storm / open invocation breaker): fall through to the
                # classic serial dispatch below.

            tree = build_invocation_tree(payloads)

            self.env.sqs.purge_queue(self.result_queue)
            self._invoke_tree(tree, resilience)

            attempt_log = AttemptLog()
            messages = self._collect_messages(
                query_id,
                expected=len(payloads),
                want={payload["worker_id"] for payload in payloads},
                raise_on_timeout=max_worker_retries <= 0,
                integrity=integrity_stats,
            )
            by_worker = self._group_messages(
                messages, resilience=resilience, integrity=integrity_stats
            )
            by_worker = self._retry_failures(
                by_worker, payloads, query_id, max_worker_retries,
                resilience=resilience, attempt_log=attempt_log,
                integrity=integrity_stats,
            )
            worker_results = self._parse_results(
                by_worker, expected=len(payloads), attempt_log=attempt_log
            )
            worker_results, hedge_billed_seconds = self._hedge_stragglers(
                worker_results, by_worker, payloads, query_id, resilience,
                integrity=integrity_stats,
            )

            table, reduce_value = self._merge(physical, worker_results)
            statistics = self._build_statistics(
                physical, worker_results, num_workers=len(payloads), cold=cold,
                resilience=resilience, fault_snapshot=fault_snapshot,
                extra_billed_seconds=hedge_billed_seconds,
                integrity=integrity_stats,
            )
            statistics.overload = self._overload_block(budget)
            return QueryResult(
                table=table,
                reduce_value=reduce_value,
                statistics=statistics,
                worker_results=worker_results,
                optimizer_report=report,
                plan_explain=physical.explain(),
            )
        except (QueryCancelledError, RetryBudgetExhaustedError):
            # Typed teardown: a query that will never consume its results
            # must not leave spilled objects or queued messages behind.
            self._gc_cancelled_scan(query_id)
            raise
        finally:
            self._active_cancel = None
            self._active_budget = None
            self._active_now = None

    def _execute_join(
        self,
        physical: Union[JoinPhysicalPlan, DagPhysicalPlan],
        report: Optional[OptimizerReport],
        num_workers: Optional[int],
        cold: bool,
        cancel: Optional[CancellationToken] = None,
    ) -> QueryResult:
        """Execute a join plan through the shuffle-join coordinator.

        The DAG schedule (one scan wave repartitioning every relation by its
        join key through the write-combined exchange, then one join wave per
        DAG stage — middle stages re-emit into the exchange, the final stage
        computes the partial aggregates placed above the join) runs in
        :class:`~repro.driver.shuffle.ShuffleJoinCoordinator`; this wrapper
        folds its worker results into the same :class:`QueryStatistics` shape
        scan queries report, with the exchange and join counters threaded
        through.
        """
        from repro.driver.shuffle import (
            JOIN_MAP_FUNCTION_NAME,
            JOIN_REDUCE_FUNCTION_NAME,
            ShuffleConfig,
            ShuffleJoinCoordinator,
        )

        if self._join_coordinator is None:
            # An explicit shuffle config wins; otherwise the driver's
            # integrity knobs carry over to the join exchange plane.
            config = self.shuffle_config or ShuffleConfig(integrity=self.integrity)
            self._join_coordinator = ShuffleJoinCoordinator(
                self.env,
                memory_mib=self.memory_mib,
                config=config,
                resilience_policy=self.resilience_policy,
            )
        if cold:
            for name in (JOIN_MAP_FUNCTION_NAME, JOIN_REDUCE_FUNCTION_NAME):
                self.env.lambda_service.reset_warm_instances(name)
        budget = RetryBudget(
            self.resilience_policy.retry_budget,
            breaker_states=self.breakers.states,
        )
        table, join_stats, worker_results = self._join_coordinator.execute(
            physical,
            num_workers=num_workers,
            cancel=cancel,
            breakers=self.breakers,
            budget=budget,
            now_fn=lambda: self.env.clock.now,
        )

        prices = self.env.ledger.prices
        durations = [result.duration_seconds for result in worker_results]
        invocation = TreeInvocationModel(region=self.env.region)
        num_total = join_stats.num_workers
        result_poll_seconds = DEFAULT_RESILIENCE.result_poll_seconds
        # modelled_latency_seconds already includes the coordinator's backoff.
        latency = (
            invocation.time_to_start_all(num_total, cold=cold)
            + join_stats.modelled_latency_seconds
            + result_poll_seconds
        )
        resilience = join_stats.resilience
        resilience.wasted_cost_dollars += prices.lambda_invocation_cost(
            resilience.retries
        )
        get_requests = sum(result.get_requests for result in worker_results)
        exchange = join_stats.exchange
        cost_s3 = prices.s3_get_cost(
            get_requests + exchange.get_requests + exchange.head_requests
        ) + prices.s3_put_cost(exchange.put_requests + exchange.list_requests)
        sqs_requests = num_total + math.ceil(num_total / 10) + 2
        statistics = QueryStatistics(
            num_workers=num_total,
            memory_mib=self.memory_mib,
            cold=cold,
            invocation_seconds=invocation.time_to_start_all(num_total, cold=cold),
            max_worker_seconds=float(max(durations)) if durations else 0.0,
            median_worker_seconds=float(np.median(durations)) if durations else 0.0,
            latency_seconds=latency,
            rows_scanned=join_stats.rows_scanned,
            bytes_read=sum(result.bytes_read for result in worker_results),
            get_requests=get_requests,
            cost_lambda_duration=sum(
                prices.lambda_duration_cost(self.memory_mib, duration)
                for duration in durations
            ),
            cost_lambda_requests=prices.lambda_invocation_cost(
                num_total + resilience.retries
            ),
            cost_s3_requests=cost_s3,
            cost_sqs_requests=prices.sqs_cost(sqs_requests),
            worker_durations=durations,
            exchange=exchange,
            join_probe_rows=join_stats.join_probe_rows,
            join_build_rows=join_stats.join_build_rows,
            join_output_rows=join_stats.join_output_rows,
            dag_stages=join_stats.dag_stages,
            gc_objects_deleted=join_stats.gc_objects_deleted,
            resilience=resilience,
            integrity=join_stats.integrity,
        )
        statistics.overload = self._overload_block(budget)
        return QueryResult(
            table=table,
            reduce_value=None,
            statistics=statistics,
            worker_results=worker_results,
            optimizer_report=report,
            plan_explain=physical.explain(),
        )

    # -- process-pool execution plane ------------------------------------------------

    def _pool_supported(self, physical: PhysicalPlan) -> bool:
        """Whether the process pool can run this plan's fragments.

        Registry UDFs live in the driver process only (the registry is
        per-process state) and cannot be resolved inside spawned children;
        the built-in reduce UDFs are module-level and travel by name.
        """
        from repro.plan.physical import BUILTIN_REDUCE_UDFS

        template = physical.worker_template
        if template.predicate_udf is not None or template.map_udf is not None:
            return False
        if template.reduce_udf and template.reduce_udf not in BUILTIN_REDUCE_UDFS:
            return False
        return True

    def _ensure_pool(self):
        """The warm process pool, spawning it on first use; ``None`` on fallback.

        Mirrors the threads-mode single-core fallback: on a single-core host
        (unless a pool size was forced) or when spawning fails (e.g. a
        sandboxed CI runner), ``processes`` mode degrades to serial dispatch
        with a one-line warning instead of raising.
        """
        if self._pool is not None:
            return self._pool
        if self._pool_unavailable:
            return None
        size = self.max_parallel_invocations or (os.cpu_count() or 1)
        if size <= 1 and self.max_parallel_invocations is None:
            self._pool_unavailable = True
            warnings.warn(
                "processes execution mode: single-core host, "
                "falling back to serial dispatch",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        from repro.driver.procpool import ProcessWorkerPool

        try:
            self._pool = ProcessWorkerPool(
                size=min(size, DEFAULT_RESILIENCE.pool_max_children)
            )
        except Exception as exc:  # noqa: BLE001 - degrade, don't fail the query
            self._pool_unavailable = True
            warnings.warn(
                f"processes execution mode: worker pool failed to start ({exc}); "
                "falling back to serial dispatch",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return self._pool

    def close(self) -> None:
        """Shut down the process pool, if one was spawned; idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _execute_pooled(
        self,
        physical: PhysicalPlan,
        payloads: List[Dict],
        report: Optional[OptimizerReport],
        cold: bool,
        max_worker_retries: int,
        resilience: Optional[ResilienceStats] = None,
        fault_snapshot: Optional[Dict[str, int]] = None,
    ) -> Optional[QueryResult]:
        """Run the fleet on the process pool; ``None`` means "fall back".

        The SQS control plane is bypassed — worker results come back through
        shared-memory segments — but the *modelled* statistics are built by
        the exact same ``_parse_results``/``_merge``/``_build_statistics``
        tail as the classic path, and every pool task is metered through
        ``LambdaService.account_invocation``, so invocation cold/warm
        bookkeeping, the ledger, and the cost model stay identical.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None
        cancel = self._active_cancel
        if cancel is not None:
            # Pre-dispatch pump point: a cancelled query never touches the
            # pool (no segments to clean up).
            cancel.check("pooled dispatch")
        resilience = resilience if resilience is not None else ResilienceStats()
        policy = self.resilience_policy
        respawns_before = pool.stats().get("respawns", 0)
        attempt_log = AttemptLog()
        prices = self.env.ledger.prices

        all_files = sorted({path for p in payloads for path in p["plan"]["files"]})
        export: Optional[SharedObjectExport] = None
        attached: List[Any] = []
        by_worker: Dict[int, Dict] = {}
        try:
            export = SharedObjectExport.create(self.env.s3, all_files)
            by_worker.update(self._run_pooled_round(pool, export, payloads, attached))
            payload_by_worker = {p["worker_id"]: p for p in payloads}
            sleep = 0.0
            for _ in range(max_worker_retries):
                failed = [
                    payload_by_worker[wid]
                    for wid, msg in sorted(by_worker.items())
                    if msg.get("status") != "ok"
                ]
                if not failed:
                    break
                if cancel is not None:
                    # Mid-wave pump point: the finally block below unlinks
                    # every attached segment on the way out.
                    cancel.check("pooled retry")
                if "lambda" in self.breakers.open_services():
                    # Invocation-plane brownout: stop feeding the pool and
                    # run this query serially.  Unlike the respawn-storm path
                    # the pool stays up — the breaker recovers on its own.
                    resilience.note_fallback("processes_to_serial")
                    return None
                respawn_delta = pool.stats().get("respawns", 0) - respawns_before
                if respawn_delta > policy.pool_respawn_limit:
                    # Respawn storm: the pool keeps losing children mid-query.
                    # Degrade to serial dispatch instead of thrashing further.
                    resilience.pool_respawns = respawn_delta
                    resilience.note_fallback("processes_to_serial")
                    warnings.warn(
                        f"processes execution mode: {respawn_delta} pool "
                        "respawns in one query, falling back to serial dispatch",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    self.close()
                    self._pool_unavailable = True
                    return None
                sleep = decorrelated_jitter(
                    sleep,
                    self._jitter_rng,
                    policy.backoff_base_seconds,
                    policy.backoff_cap_seconds,
                )
                resilience.backoff_seconds += sleep
                retries: List[Dict] = []
                for payload in failed:
                    worker_id = payload["worker_id"]
                    error = by_worker[worker_id].get("error", "unknown error")
                    attempt_log.record(
                        worker_id,
                        payload.get("attempt", 0),
                        error,
                        backoff_seconds=sleep,
                    )
                    self._record_worker_failure(error)
                    retry_payload = dict(payload)
                    retry_payload["attempt"] = payload.get("attempt", 0) + 1
                    payload_by_worker[worker_id] = retry_payload
                    retries.append(retry_payload)
                    resilience.retries += 1
                    if self._active_budget is not None:
                        self._active_budget.charge("pool_retries")
                    resilience.wasted_cost_dollars += prices.lambda_invocation_cost(1)
                by_worker.update(
                    self._run_pooled_round(pool, export, retries, attached)
                )
            resilience.pool_respawns = pool.stats().get("respawns", 0) - respawns_before
            worker_results = self._parse_results(
                by_worker, expected=len(payloads), attempt_log=attempt_log
            )

            # Fold the workers' simulated S3 traffic into the ledger (the
            # classic path meters it inside ObjectStore per request).
            now = self.env.clock.now
            self.env.ledger.record(
                "s3", "get_requests",
                sum(r.get_requests for r in worker_results), now,
            )
            self.env.ledger.record(
                "s3", "bytes_read",
                sum(r.bytes_read for r in worker_results), now,
            )

            table, reduce_value = self._merge(physical, worker_results)
            statistics = self._build_statistics(
                physical, worker_results, num_workers=len(payloads), cold=cold,
                resilience=resilience, fault_snapshot=fault_snapshot,
            )
            statistics.overload = self._overload_block(self._active_budget)
            # Detach the exposed partials from shared memory before the
            # segments are unlinked: re-encode into the payload form the
            # classic path ships (copies the column data out).
            from repro.engine.payload import encode_table

            for result in worker_results:
                if result.partial:
                    result.partial = encode_table(result.partial, force_binary=True)
            return QueryResult(
                table=table,
                reduce_value=reduce_value,
                statistics=statistics,
                worker_results=worker_results,
                optimizer_report=report,
                plan_explain=physical.explain(),
            )
        finally:
            # Release the zero-copy views BEFORE unmapping the segments.  On
            # the success path the exposed partials were already re-encoded;
            # on the failure path the raised exception's traceback would keep
            # this frame (and hence the views) alive, making SharedMemory's
            # finalizer raise BufferError from the garbage collector.
            for message in by_worker.values():
                result_payload = message.get("result")
                if isinstance(result_payload, dict):
                    partial = result_payload.get("partial")
                    if isinstance(partial, dict):
                        partial.clear()
            for segment in attached:
                try:
                    segment.close()
                except BufferError:
                    pass
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            if export is not None:
                pool.forget_segments([export.name])
                export.close()

    def _run_pooled_round(
        self,
        pool,
        export: SharedObjectExport,
        payloads: List[Dict],
        attached: List[Any],
    ) -> Dict[int, Dict]:
        """Dispatch one wave of payloads to the pool and meter each attempt.

        Returns classic-shaped result messages keyed by worker id, so the
        downstream retry/parse machinery is shared with the SQS path.
        Invocations are accounted in worker-id order (the dispatch order),
        keeping cold/warm assignment deterministic like serial invocation.

        An installed :class:`~repro.cloud.faults.FaultPlan` is consulted here,
        mirroring the SQS path: dropped/timed-out invocations are decided
        before dispatch (the fragment never runs), pool-crash injections lose
        a completed result (its segment is still attached for cleanup), and
        straggler slowdowns multiply the reported duration.
        """
        plan = getattr(self.env, "fault_plan", None)
        faulted: Dict[int, str] = {}
        if plan is not None:
            for payload in payloads:
                fault = plan.invocation_fault(self.function_name)
                if fault is not None:
                    faulted[payload["worker_id"]] = fault
        tasks = [
            (
                "run",
                payload["worker_id"],
                payload["plan"],
                export.name,
                export.directory,
                self.memory_mib,
                payload.get("threads", 2),
            )
            for payload in payloads
            if payload["worker_id"] not in faulted
        ]
        raw = pool.run_tasks(tasks)
        by_worker: Dict[int, Dict] = {}
        for payload in payloads:
            worker_id = payload["worker_id"]
            fault = faulted.get(worker_id)
            if fault is not None:
                if fault == "drop":
                    error = "InvocationDropped: injected invocation drop"
                    duration = 0.0
                else:
                    error = (
                        "FunctionTimeout: injected hang killed at the "
                        f"{self.worker_timeout_seconds:.1f}s timeout"
                    )
                    duration = self.worker_timeout_seconds
                self.env.lambda_service.account_invocation(
                    self.function_name, duration_seconds=duration, from_driver=True
                )
                by_worker[worker_id] = {
                    "worker_id": worker_id,
                    "attempt": payload.get("attempt", 0),
                    "status": "error",
                    "error": error,
                }
                continue
            raw_result = raw.get(worker_id)
            crashed = plan is not None and plan.pool_crash(
                self.function_name, worker_id
            )
            if crashed:
                # The child did the work, but the injected crash loses its
                # result.  Attach the orphaned result segment (if any) so the
                # end-of-query cleanup unlinks it.
                if (
                    raw_result is not None
                    and raw_result[0] == "ok"
                    and raw_result[3] is not None
                ):
                    from multiprocessing import shared_memory

                    try:
                        attached.append(
                            shared_memory.SharedMemory(name=raw_result[3])
                        )
                    except FileNotFoundError:
                        pass
                message = {
                    "worker_id": worker_id,
                    "status": "error",
                    "error": "WorkerCrashError: injected pool worker crash",
                }
            else:
                message = self._pooled_message(raw_result, worker_id, attached)
            message.setdefault("attempt", payload.get("attempt", 0))
            duration = message.get("result", {}).get("duration_seconds", 0.0)
            if plan is not None and message.get("status") == "ok":
                duration *= plan.straggler_factor(self.function_name)
            # Meter the attempt exactly like an invocation of the in-process
            # handler: cold/warm bookkeeping, ledger, invocation log, and the
            # cold execution penalty on the modelled duration.
            invocation = self.env.lambda_service.account_invocation(
                self.function_name,
                duration_seconds=duration,
                from_driver=True,
                cold_penalty=COLD_EXECUTION_PENALTY,
            )
            if message.get("status") == "ok":
                message["result"]["duration_seconds"] = invocation.duration_seconds
            by_worker[worker_id] = message
        return by_worker

    def _pooled_message(
        self, raw: Optional[tuple], worker_id: int, attached: List[Any]
    ) -> Dict:
        """Convert one pool child message into the classic result-message shape.

        Result segments are attached here and decoded as zero-copy views; the
        attached handles collect in ``attached`` so ``_execute_pooled`` can
        unlink every segment when the query finishes.
        """
        if raw is None:
            return {
                "worker_id": worker_id,
                "status": "error",
                "error": "no result from worker pool",
            }
        if raw[0] == "err":
            return {"worker_id": worker_id, "status": "error", "error": raw[2]}
        _, _, payload, result_segment, nbytes = raw
        if result_segment is not None:
            from multiprocessing import shared_memory

            from repro.exchange.codec import decode_partition

            segment = shared_memory.SharedMemory(name=result_segment)
            attached.append(segment)
            payload["partial"] = decode_partition(segment.buf[:nbytes], copy=False)
        else:
            payload["partial"] = {}
        return {"worker_id": worker_id, "status": "ok", "result": payload}

    # -- helpers --------------------------------------------------------------------

    def _invoke_tree(
        self, tree: List[Dict], resilience: Optional[ResilienceStats] = None
    ) -> None:
        """Invoke the tree roots, serially or through the thread pool.

        Invocations retry transient rejections (capacity brownouts throttle
        the fleet with :class:`~repro.errors.TooManyRequestsError`) with
        backoff through the driver's breaker board and the active query's
        retry budget, instead of aborting the wave on the first rejection.
        """

        def invoke(parent: Dict) -> None:
            call_with_backoff(
                self.env.lambda_service.invoke,
                self.function_name,
                parent,
                from_driver=True,
                policy=self.resilience_policy,
                rng=self._jitter_rng,
                stats=resilience,
                breakers=self.breakers,
                budget=self._active_budget,
                now_fn=self._active_now,
            )

        # On a single-core host the pool cannot overlap the workers' numpy
        # sections and only adds dispatch overhead (~10% on TPC-H Q1 at 1M
        # rows, see README "Performance notes"), so fall back to serial
        # dispatch unless the caller forced a pool size explicitly.
        single_core = (os.cpu_count() or 1) <= 1 and self.max_parallel_invocations is None
        if self.execution_mode != "threads" or len(tree) <= 1 or single_core:
            for parent in tree:
                invoke(parent)
            return
        max_workers = self.max_parallel_invocations or min(
            32, 4 * (os.cpu_count() or 4), len(tree)
        )
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(invoke, parent) for parent in tree]
            for future in futures:
                future.result()

    def _expand_paths(self, paths: Sequence[str]) -> List[str]:
        """Expand glob patterns against the object store.

        Globs over missing buckets expand to nothing (the caller then reports
        "no input files"), mirroring how a CLI glob over a missing directory
        behaves.
        """
        from repro.errors import NoSuchBucketError

        expanded: List[str] = []
        for path in paths:
            if "*" in path:
                try:
                    expanded.extend(self.env.s3.glob(path))
                except NoSuchBucketError:
                    continue
            else:
                expanded.append(path)
        return expanded

    #: Worker-reported error prefixes that mean the invocation plane itself
    #: failed (vs. a data error inside a healthy worker).
    _LAMBDA_FAILURE_PREFIXES = (
        "InvocationDropped",
        "FunctionTimeout",
        "WorkerCrashError",
        "no result message",
    )

    def _record_worker_failure(self, error: str) -> None:
        """Charge an invocation-plane worker failure to the lambda breaker.

        Worker failures arrive as strings in result messages (or as missing
        messages), never as raised exceptions, so
        :meth:`~repro.driver.breakers.BreakerBoard.classify` cannot see them;
        a sustained invocation-side failure storm still needs to trip the
        lambda breaker and drive degradation.
        """
        if error.startswith(self._LAMBDA_FAILURE_PREFIXES):
            now = self._active_now
            self.breakers.breakers["lambda"].record_failure(
                now() if now is not None else self.env.clock.now
            )

    def _overload_block(self, budget: Optional[RetryBudget]) -> Dict[str, Any]:
        """The per-query overload-control statistics block."""
        return {
            "retry_budget": budget.to_dict() if budget is not None else None,
            "breakers": self.breakers.to_dict(),
            "breaker_transitions": self.breakers.transition_count(),
        }

    def _gc_cancelled_scan(self, query_id: str) -> int:
        """Best-effort cleanup after a cancelled/budget-killed scan query.

        Purges the result queue (nobody will consume the remaining messages
        — per-session drivers own their queue exclusively) and deletes every
        spilled result object under this query's prefix, so a cancelled query
        leaves no orphaned cloud state.  Returns the number of objects
        deleted; cleanup never masks the typed error being raised.
        """
        deleted = 0
        try:
            self.env.sqs.purge_queue(self.result_queue)
        except CloudError:
            pass
        try:
            objects = self.env.s3.list_objects(RESULT_BUCKET, prefix=f"{query_id}/")
        except CloudError:
            return deleted
        for meta in objects:
            try:
                self.env.s3.delete_object(RESULT_BUCKET, meta.key)
                deleted += 1
            except CloudError:
                continue
        return deleted

    def _fault_snapshot(self) -> Optional[Dict[str, int]]:
        """Per-kind injection counts of the installed fault plan, or ``None``."""
        plan = getattr(self.env, "fault_plan", None)
        if plan is None:
            return None
        return plan.to_dict()

    def _fault_delta(self, snapshot: Optional[Dict[str, int]]) -> Dict[str, int]:
        """Faults injected since ``snapshot`` (the plan outlives single queries)."""
        if snapshot is None:
            return {}
        current = self._fault_snapshot() or {}
        delta = {
            kind: count - snapshot.get(kind, 0) for kind, count in current.items()
        }
        return {kind: count for kind, count in delta.items() if count > 0}

    def _collect_messages(
        self,
        query_id: str,
        expected: int,
        want: Optional[set] = None,
        raise_on_timeout: bool = True,
        integrity: Optional[IntegrityStats] = None,
    ) -> List[Dict]:
        """Poll the result queue until ``expected`` distinct workers reported.

        Progress is counted in *distinct* worker ids (restricted to ``want``
        when given), so duplicated SQS deliveries can no longer satisfy
        ``expected`` early.  The poll budget is the wave deadline; when it
        runs out the driver either raises :class:`QueryTimeoutError` or — with
        ``raise_on_timeout=False`` — returns what arrived so the caller can
        retry the workers that never reported (dropped invocations, crashes).

        Messages that fail to parse or whose content digest mismatches
        (payload corrupted on the queue) are dropped and counted into
        ``integrity``; the retry machinery then re-invokes the
        silently-missing worker, so a corrupt message can never contribute
        rows to the result.
        """
        verify = self.integrity.verify
        messages: List[Dict] = []
        seen: set = set()
        cancel = self._active_cancel
        max_polls = max(
            DEFAULT_RESILIENCE.min_poll_rounds,
            expected * DEFAULT_RESILIENCE.poll_rounds_per_worker,
        )
        for _ in range(max_polls):
            if cancel is not None:
                cancel.check("collect")
            batch = self.env.sqs.receive_messages(self.result_queue, max_messages=10)
            for message in batch:
                try:
                    payload = message.json()
                    if not isinstance(payload, dict):
                        raise ValueError("result message is not an object")
                except ValueError:
                    # Corrupted beyond JSON: the producing worker looks
                    # missing and the retry loop re-invokes it.
                    if integrity is not None:
                        integrity.note_mismatch("sqs.parse")
                        integrity.re_executions += 1
                    continue
                if verify and not message_intact(payload):
                    if integrity is not None:
                        integrity.note_mismatch("sqs.digest")
                        integrity.re_executions += 1
                    continue
                if payload.get("query_id") != query_id:
                    continue  # stale message from an earlier query
                messages.append(payload)
                worker_id = payload.get("worker_id")
                if want is None or worker_id in want:
                    seen.add(worker_id)
            if len(seen) >= expected:
                return messages
        if raise_on_timeout:
            raise QueryTimeoutError(
                f"received {len(seen)} of {expected} worker results before giving up"
            )
        return messages

    @staticmethod
    def _merge_message(
        by_worker: Dict[int, Dict],
        message: Dict,
        resilience: Optional[ResilienceStats] = None,
    ) -> None:
        """Fold one result message into ``by_worker`` with attempt dedup.

        Higher attempts win; at the same attempt an ok beats an error (and
        anything else is a duplicate delivery).  A late or re-delivered
        message from an earlier attempt can therefore never clobber a
        successful retry.
        """
        worker_id = message["worker_id"]
        attempt = message.get("attempt", 0)
        current = by_worker.get(worker_id)
        if current is None:
            by_worker[worker_id] = message
            return
        current_attempt = current.get("attempt", 0)
        if attempt > current_attempt:
            by_worker[worker_id] = message
        elif attempt < current_attempt:
            if resilience is not None:
                resilience.stale_messages_ignored += 1
        elif current.get("status") != "ok" and message.get("status") == "ok":
            by_worker[worker_id] = message
        elif resilience is not None:
            resilience.duplicate_messages_ignored += 1

    def _group_messages(
        self,
        messages: List[Dict],
        by_worker: Optional[Dict[int, Dict]] = None,
        resilience: Optional[ResilienceStats] = None,
        integrity: Optional[IntegrityStats] = None,
    ) -> Dict[int, Dict]:
        """Group result messages by worker id with ``(worker, attempt)`` dedup.

        Spilled payloads are fetched from S3 with backoff — the pointed-to
        object may be transiently invisible under an injected read-after-write
        lag — and, with verification on, must parse and match their content
        digest; a corrupt first read (in-flight corruption) is cured by one
        re-issued GET counted as a re-read.
        """
        if by_worker is None:
            by_worker = {}
        for message in messages:
            if "result_s3" in message:
                spilled = self._fetch_spilled_result(
                    message["result_s3"], resilience, integrity
                )
                spilled.setdefault("attempt", message.get("attempt", 0))
                message = spilled
            self._merge_message(by_worker, message, resilience)
        return by_worker

    def _fetch_spilled_result(
        self,
        path: str,
        resilience: Optional[ResilienceStats],
        integrity: Optional[IntegrityStats],
    ) -> Dict:
        """Fetch a spilled result object, verifying its content digest."""
        bucket, key = parse_s3_path(path)
        verify = self.integrity.verify
        last_error: Optional[IntegrityError] = None
        for read_attempt in range(DEFAULT_RESILIENCE.spill_read_attempts):
            raw = call_with_backoff(
                self.env.s3.get_object,
                bucket,
                key,
                policy=self.resilience_policy,
                rng=self._jitter_rng,
                stats=resilience,
                breakers=self.breakers,
                budget=self._active_budget,
                now_fn=self._active_now,
            ).data
            try:
                spilled = json.loads(raw.decode("utf-8"))
                if not isinstance(spilled, dict):
                    raise ValueError("spilled result is not an object")
            except (ValueError, UnicodeDecodeError) as exc:
                last_error = IntegrityError(
                    f"spilled result does not parse: {exc}",
                    key=path, layer="spill.digest",
                )
            else:
                if not verify or message_intact(spilled):
                    if integrity is not None:
                        if verify:
                            integrity.verified_bytes += len(raw)
                        if read_attempt:
                            integrity.re_reads += 1
                    return spilled
                last_error = IntegrityError(
                    "spilled result failed its content digest",
                    key=path, layer="spill.digest",
                )
            if integrity is not None:
                integrity.note_mismatch("spill.digest")
        raise last_error

    def _retry_failures(
        self,
        by_worker: Dict[int, Dict],
        payloads: List[Dict],
        query_id: str,
        max_worker_retries: int,
        resilience: Optional[ResilienceStats] = None,
        attempt_log: Optional[AttemptLog] = None,
        integrity: Optional[IntegrityStats] = None,
    ) -> Dict[int, Dict]:
        """Re-invoke failed *or missing* workers with jittered backoff.

        Replaces the seed's flat fixed-count loop: each retry round first
        backs off (exponential with decorrelated jitter, charged to modelled
        latency — never slept on the wall clock), tags every retry payload
        with its attempt number, and polls for exactly the retried workers.
        Workers that never reported at all (dropped invocations, crashed
        instances) are retried just like reported failures.
        """
        resilience = resilience if resilience is not None else ResilienceStats()
        attempt_log = attempt_log if attempt_log is not None else AttemptLog()
        payload_by_worker = {payload["worker_id"]: payload for payload in payloads}
        prices = self.env.ledger.prices
        sleep = 0.0
        for _ in range(max_worker_retries):
            need = [
                worker_id
                for worker_id in sorted(payload_by_worker)
                if by_worker.get(worker_id, {}).get("status") != "ok"
            ]
            if not need:
                break
            if self._active_cancel is not None:
                self._active_cancel.check("retry round")
            sleep = decorrelated_jitter(
                sleep,
                self._jitter_rng,
                self.resilience_policy.backoff_base_seconds,
                self.resilience_policy.backoff_cap_seconds,
            )
            resilience.backoff_seconds += sleep
            for worker_id in need:
                message = by_worker.get(worker_id)
                error = (
                    message.get("error", "unknown error")
                    if message is not None
                    else "no result message (lost invocation or worker crash)"
                )
                previous = payload_by_worker[worker_id]
                failed_attempt = previous.get("attempt", 0)
                attempt_log.record(
                    worker_id, failed_attempt, error, backoff_seconds=sleep
                )
                if integrity is not None and error.startswith("IntegrityError"):
                    # The worker detected at-rest corruption that re-GETs
                    # could not cure; this retry re-executes the attempt.
                    integrity.re_executions += 1
                self._record_worker_failure(error)
                retry_payload = dict(previous)
                retry_payload.pop("children", None)
                retry_payload["attempt"] = failed_attempt + 1
                payload_by_worker[worker_id] = retry_payload
                resilience.retries += 1
                if self._active_budget is not None:
                    self._active_budget.charge("driver_retries")
                # The failed attempt's request fee bought nothing.
                resilience.wasted_cost_dollars += prices.lambda_invocation_cost(1)
                call_with_backoff(
                    self.env.lambda_service.invoke,
                    self.function_name,
                    retry_payload,
                    from_driver=True,
                    policy=self.resilience_policy,
                    rng=self._jitter_rng,
                    stats=resilience,
                    breakers=self.breakers,
                    budget=self._active_budget,
                    now_fn=self._active_now,
                )
            retry_messages = self._collect_messages(
                query_id, expected=len(need), want=set(need),
                raise_on_timeout=False, integrity=integrity,
            )
            self._group_messages(
                retry_messages, by_worker=by_worker, resilience=resilience,
                integrity=integrity,
            )
        return by_worker

    def _parse_results(
        self,
        by_worker: Dict[int, Dict],
        expected: int,
        attempt_log: Optional[AttemptLog] = None,
    ) -> List[WorkerResult]:
        """Turn grouped messages into WorkerResults, surfacing remaining failures."""
        failures = sorted(
            (m for m in by_worker.values() if m.get("status") != "ok"),
            key=lambda message: message["worker_id"],
        )
        if failures:
            first = failures[0]
            error = first.get("error", "unknown error")
            attempts: List[Dict] = []
            if attempt_log is not None:
                attempts = list(attempt_log.for_worker(first["worker_id"]))
            attempts.append({"attempt": first.get("attempt", 0), "error": error})
            raise WorkerFailedError(first["worker_id"], error, attempts=attempts)
        if len(by_worker) != expected:
            raise QueryTimeoutError(
                f"got results from {len(by_worker)} distinct workers, expected {expected}"
            )
        return [
            WorkerResult.from_payload(by_worker[worker_id]["result"])
            for worker_id in sorted(by_worker)
        ]

    def _hedge_stragglers(
        self,
        worker_results: List[WorkerResult],
        by_worker: Dict[int, Dict],
        payloads: List[Dict],
        query_id: str,
        resilience: ResilienceStats,
        integrity: Optional[IntegrityStats] = None,
    ) -> Tuple[List[WorkerResult], float]:
        """Speculatively re-invoke straggler workers; first result wins.

        Post-wave quantile detection: workers whose modelled duration exceeds
        both ``hedge_factor`` x the fleet median and the absolute
        ``hedge_min_seconds`` floor are re-invoked once, flat.  The hedge can
        only start once the straggler is *detected*, so its effective
        completion is ``threshold + hedge duration``; if that beats the
        original, the hedge's result replaces it (the recompute is
        deterministic — data identical, only duration/counters differ) and
        the original run's duration cost is attributed as wasted.  A
        homogeneous clean fleet never crosses the threshold, so fault-free
        runs take none of this path.
        """
        policy = self.resilience_policy
        ordered_ids = sorted(by_worker)
        durations = {
            worker_id: worker_results[index].duration_seconds
            for index, worker_id in enumerate(ordered_ids)
        }
        stragglers = pick_stragglers(durations, policy)
        if not stragglers:
            return worker_results, 0.0
        fleet_median = sorted(durations.values())[len(durations) // 2]
        threshold = max(policy.hedge_min_seconds, policy.hedge_factor * fleet_median)
        payload_by_worker = {payload["worker_id"]: payload for payload in payloads}
        prices = self.env.ledger.prices
        index_of = {worker_id: index for index, worker_id in enumerate(ordered_ids)}
        budget = self._active_budget
        launched: List[int] = []
        for worker_id in stragglers:
            if budget is not None and not budget.try_charge("hedges"):
                # Hedging is optional work: when the retry budget runs dry it
                # is suppressed (and attributed), never fatal.
                resilience.note_fallback("hedge_suppressed")
                continue
            hedge_payload = dict(payload_by_worker[worker_id])
            hedge_payload.pop("children", None)
            hedge_payload["attempt"] = by_worker[worker_id].get("attempt", 0) + 1
            try:
                self.env.lambda_service.invoke(
                    self.function_name, hedge_payload, from_driver=True
                )
            except TRANSIENT_CLOUD_ERRORS as error:
                # A brownout-rejected hedge simply never enters the race;
                # the original attempt's result stands.
                now = self._active_now
                self.breakers.record_failure(
                    error, now() if now is not None else self.env.clock.now
                )
                resilience.note_fallback("hedge_rejected")
                continue
            resilience.hedges_launched += 1
            launched.append(worker_id)
        if not launched:
            return worker_results, 0.0
        stragglers = launched
        hedge_messages = self._collect_messages(
            query_id,
            expected=len(stragglers),
            want=set(stragglers),
            raise_on_timeout=False,
            integrity=integrity,
        )
        hedged: Dict[int, Dict] = {}
        self._group_messages(
            hedge_messages, by_worker=hedged, resilience=resilience,
            integrity=integrity,
        )
        # Both racers run to completion and bill their full duration (a real
        # Lambda cannot be cancelled); the loser's extra seconds are billed on
        # top of the per-worker winner durations and attributed as waste.
        extra_billed_seconds = 0.0
        for worker_id in stragglers:
            message = hedged.get(worker_id)
            if message is None or message.get("status") != "ok":
                # The hedge itself failed or vanished — it simply loses.
                resilience.hedges_lost += 1
                resilience.wasted_cost_dollars += prices.lambda_invocation_cost(1)
                continue
            hedge_result = WorkerResult.from_payload(message["result"])
            effective = threshold + hedge_result.duration_seconds
            original = durations[worker_id]
            if effective < original:
                hedge_result.duration_seconds = effective
                worker_results[index_of[worker_id]] = hedge_result
                resilience.hedges_won += 1
                extra_billed_seconds += original
                resilience.wasted_cost_dollars += prices.lambda_duration_cost(
                    self.memory_mib, original
                )
            else:
                resilience.hedges_lost += 1
                extra_billed_seconds += hedge_result.duration_seconds
                resilience.wasted_cost_dollars += (
                    prices.lambda_invocation_cost(1)
                    + prices.lambda_duration_cost(
                        self.memory_mib, hedge_result.duration_seconds
                    )
                )
        return worker_results, extra_billed_seconds

    def _empty_result(
        self,
        physical: PhysicalPlan,
        report: Optional[OptimizerReport],
        cold: bool,
    ) -> QueryResult:
        """Result of a query whose files were all pruned by the catalog."""
        table, reduce_value = self._merge(physical, [])
        statistics = QueryStatistics(
            num_workers=0,
            memory_mib=self.memory_mib,
            cold=cold,
            invocation_seconds=0.0,
            max_worker_seconds=0.0,
            median_worker_seconds=0.0,
            latency_seconds=0.0,
            rows_scanned=0,
            bytes_read=0,
            get_requests=0,
            cost_lambda_duration=0.0,
            cost_lambda_requests=0.0,
            cost_s3_requests=0.0,
            cost_sqs_requests=0.0,
            worker_durations=[],
        )
        return QueryResult(
            table=table,
            reduce_value=reduce_value,
            statistics=statistics,
            worker_results=[],
            optimizer_report=report,
            plan_explain=physical.explain(),
        )

    def _merge(
        self, physical: PhysicalPlan, worker_results: List[WorkerResult]
    ) -> Tuple[Table, Optional[Any]]:
        """Driver-scope final phase: merge partials, finalise, sort, limit."""
        driver_plan = physical.driver
        template = physical.worker_template

        if template.reduce_udf:
            reduce_fn = resolve_udf(template.reduce_udf)
            values = [
                result.reduce_value
                for result in worker_results
                if result.reduce_value is not None
            ]
            reduce_value = functools.reduce(reduce_fn, values) if values else None
            return {}, reduce_value

        # Views, not copies: the merge only concatenates the partials (one
        # concatenate + one vectorised group-by pass), so decoded columns —
        # including shared-memory views from the process pool — are never
        # mutated in place.
        partials = [decode_table(result.partial, copy=False) for result in worker_results]
        if driver_plan.collect_rows:
            table = concat_tables(partials)
        else:
            merged = merge_partials(partials, driver_plan.group_by, template.aggregates)
            table = finalize_aggregates(
                merged, driver_plan.group_by, driver_plan.final_aggregates
            )
        if driver_plan.order_by:
            table = sort_table(table, driver_plan.order_by, driver_plan.descending)
        if driver_plan.limit is not None:
            count = min(driver_plan.limit, table_num_rows(table))
            table = take_rows(table, np.arange(count))
        return table, None

    def _build_statistics(
        self,
        physical: PhysicalPlan,
        worker_results: List[WorkerResult],
        num_workers: int,
        cold: bool,
        resilience: Optional[ResilienceStats] = None,
        fault_snapshot: Optional[Dict[str, int]] = None,
        extra_billed_seconds: float = 0.0,
        integrity: Optional[IntegrityStats] = None,
    ) -> QueryStatistics:
        """Compute modelled latency and dollar cost of the query.

        ``extra_billed_seconds`` bills execution time that bought no used
        result but was still charged (e.g. the losing side of a hedge race);
        it affects cost, never latency.
        """
        resilience = resilience if resilience is not None else ResilienceStats()
        integrity = integrity if integrity is not None else IntegrityStats()
        if fault_snapshot is not None:
            resilience.faults_injected = self._fault_delta(fault_snapshot)
        prices = self.env.ledger.prices
        durations = [result.duration_seconds for result in worker_results]
        invocation = TreeInvocationModel(region=self.env.region)
        start_times = invocation.worker_start_times(num_workers, cold=cold)
        completion = start_times[: len(durations)] + np.asarray(durations)
        # Result collection: one additional round of SQS polling.
        result_poll_seconds = DEFAULT_RESILIENCE.result_poll_seconds
        latency = float(completion.max()) + result_poll_seconds if durations else 0.0
        # Backoff between retry rounds is charged to the modelled latency.
        latency += resilience.backoff_seconds

        rows_scanned = sum(result.rows_scanned for result in worker_results)
        bytes_read = sum(result.bytes_read for result in worker_results)
        get_requests = sum(result.get_requests for result in worker_results)
        shortcircuited = sum(result.row_groups_shortcircuited for result in worker_results)
        decode_saved = sum(result.rows_decode_saved for result in worker_results)
        chunks_skipped = sum(result.column_chunks_skipped for result in worker_results)
        exchange = ExchangeStats()
        for result in worker_results:
            if result.exchange_stats:
                exchange.merge(ExchangeStats.from_dict(result.exchange_stats))
            if result.integrity_stats:
                integrity.merge(IntegrityStats.from_dict(result.integrity_stats))

        cost_lambda_duration = sum(
            prices.lambda_duration_cost(self.memory_mib, duration) for duration in durations
        ) + prices.lambda_duration_cost(self.memory_mib, extra_billed_seconds)
        # Every actually-made invocation request is billed, including retries
        # and hedges (their wasted share is attributed in the resilience block).
        cost_lambda_requests = prices.lambda_invocation_cost(
            num_workers + resilience.retries + resilience.hedges_launched
        )
        cost_s3 = prices.s3_get_cost(get_requests)
        # Each worker sends one result message; the driver polls in batches.
        sqs_requests = num_workers + math.ceil(num_workers / 10) + 1
        cost_sqs = prices.sqs_cost(sqs_requests)

        return QueryStatistics(
            num_workers=num_workers,
            memory_mib=self.memory_mib,
            cold=cold,
            invocation_seconds=invocation.time_to_start_all(num_workers, cold=cold),
            max_worker_seconds=float(max(durations)) if durations else 0.0,
            median_worker_seconds=float(np.median(durations)) if durations else 0.0,
            latency_seconds=latency,
            rows_scanned=rows_scanned,
            bytes_read=bytes_read,
            get_requests=get_requests,
            cost_lambda_duration=cost_lambda_duration,
            cost_lambda_requests=cost_lambda_requests,
            cost_s3_requests=cost_s3,
            cost_sqs_requests=cost_sqs,
            worker_durations=durations,
            row_groups_shortcircuited=shortcircuited,
            rows_decode_saved=decode_saved,
            column_chunks_skipped=chunks_skipped,
            exchange=exchange,
            resilience=resilience,
            integrity=integrity,
        )


class QueryHandle:
    """Tracking handle for one admitted query in a :class:`QuerySession`."""

    def __init__(
        self, tenant: str, cancel: CancellationToken, permit: Any
    ):
        self.tenant = tenant
        self.cancel_token = cancel
        self.permit = permit
        self.future = None

    def cancel(self) -> None:
        """Request cooperative cancellation; the query unwinds at its next
        pump point with a typed :class:`~repro.errors.QueryCancelledError`."""
        self.cancel_token.cancel()

    def done(self) -> bool:
        return self.future is not None and self.future.done()

    def result(self, timeout: Optional[float] = None) -> QueryResult:
        """Block for the result; re-raises the query's typed failure."""
        return self.future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        return self.future.exception(timeout)


class QuerySession:
    """Concurrent query submission over one simulated fleet.

    :meth:`submit` admits a query through the
    :class:`~repro.driver.admission.AdmissionController` — raising
    :class:`~repro.errors.QueryRejectedError` *synchronously* when the
    admission queue is full or the tenant is over budget — and hands it to a
    bounded thread pool.  Each worker thread lazily creates its own
    :class:`LambadaDriver` on a **unique** result queue: result-queue polling
    consumes messages, so two drivers sharing one queue would eat each
    other's results.  All drivers share one
    :class:`~repro.driver.breakers.BreakerBoard`, because breaker state is
    fleet health — a brownout seen by one query should shed load from all of
    them.

    At completion each tenant's token buckets are reconciled against the
    query's actual metered spend (invocations made, modelled dollars), so
    budgets track real consumption rather than admission-time estimates.
    Use as a context manager, or call :meth:`close` to drain and shut down.
    """

    def __init__(
        self,
        env: CloudEnvironment,
        admission: Optional[AdmissionConfig] = None,
        breakers: Optional[BreakerBoard] = None,
        **driver_kwargs: Any,
    ):
        self.env = env
        self.admission_config = admission or AdmissionConfig()
        self.breakers = breakers or BreakerBoard()
        self.controller = AdmissionController(
            self.admission_config, now_fn=lambda: env.clock.now
        )
        self._driver_kwargs = driver_kwargs
        self._executor = ThreadPoolExecutor(
            max_workers=self.admission_config.max_concurrent_queries
        )
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._drivers: List[LambadaDriver] = []
        self._driver_serial = 0
        self._closed = False

    # -- submission -----------------------------------------------------------------

    def submit(
        self,
        plan: Union[LogicalPlan, PhysicalPlan, JoinPhysicalPlan, DagPhysicalPlan],
        tenant: str = "default",
        deadline_seconds: Optional[float] = None,
        cancel: Optional[CancellationToken] = None,
        invocation_estimate: Optional[float] = None,
        dollar_estimate: Optional[float] = None,
        **execute_kwargs: Any,
    ) -> QueryHandle:
        """Admit and launch one query; returns a :class:`QueryHandle`.

        Rejections (queue full, over budget) raise synchronously; every
        execution-time failure — including typed cancellation and retry-budget
        exhaustion — surfaces from ``handle.result()``.  ``execute_kwargs``
        are forwarded to :meth:`LambadaDriver.execute`.
        """
        if self._closed:
            raise ExecutionError("cannot submit to a closed session")
        permit = self.controller.admit(
            tenant,
            invocation_estimate=invocation_estimate,
            dollar_estimate=dollar_estimate,
        )
        token = cancel or CancellationToken(deadline_seconds=deadline_seconds)
        handle = QueryHandle(tenant=tenant, cancel=token, permit=permit)

        def run() -> QueryResult:
            self.controller.start(permit)
            outcome = "failed"
            actual_invocations = 0.0
            actual_dollars = 0.0
            try:
                driver = self._thread_driver()
                result = driver.execute(plan, cancel=token, **execute_kwargs)
                stats = result.statistics
                outcome = "completed"
                actual_invocations = float(
                    stats.num_workers
                    + stats.resilience.retries
                    + stats.resilience.hedges_launched
                )
                actual_dollars = stats.cost_total
                return result
            except QueryCancelledError:
                outcome = "cancelled"
                raise
            finally:
                self.controller.finish(
                    permit,
                    outcome,
                    actual_invocations=actual_invocations,
                    actual_dollars=actual_dollars,
                )

        handle.future = self._executor.submit(run)
        return handle

    def _thread_driver(self) -> LambadaDriver:
        """This worker thread's driver, created on first use."""
        driver = getattr(self._tls, "driver", None)
        if driver is None:
            with self._lock:
                self._driver_serial += 1
                queue = f"lambada-result-queue-s{self._driver_serial}"
            driver = LambadaDriver(
                self.env,
                result_queue=queue,
                breakers=self.breakers,
                **self._driver_kwargs,
            )
            with self._lock:
                self._drivers.append(driver)
            self._tls.driver = driver
        return driver

    # -- reporting ------------------------------------------------------------------

    @property
    def stats(self) -> AdmissionStats:
        """Session-wide admission counters."""
        return self.controller.stats

    def tenant_levels(self, tenant: str) -> Dict[str, float]:
        """Current budget-bucket levels of one tenant."""
        return self.controller.tenant_levels(tenant)

    def to_dict(self) -> dict:
        return {
            "admission": self.controller.stats.to_dict(),
            "config": self.admission_config.to_dict(),
            "breakers": self.breakers.to_dict(),
        }

    def close(self) -> None:
        """Drain in-flight queries and shut down every per-thread driver."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        for driver in self._drivers:
            driver.close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
