"""The Lambada driver: query coordinator.

The driver deploys the worker function once ("installation"), then executes
queries by compiling them, invoking the worker fleet through the two-level
tree strategy, polling the SQS result queue, and merging the partial results
locally (the driver scope of the physical plan).  It reports per-query
statistics — modelled end-to-end latency and the full dollar-cost breakdown —
which the evaluation benchmarks consume.
"""

from __future__ import annotations

import functools
import json
import math
import os
import uuid
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.environment import CloudEnvironment
from repro.cloud.lambda_service import FunctionConfig
from repro.cloud.s3 import SharedObjectExport, parse_s3_path
from repro.driver.invocation import TreeInvocationModel, build_invocation_tree
from repro.driver.worker import (
    COLD_EXECUTION_PENALTY,
    WORKER_FUNCTION_NAME,
    make_worker_handler,
)
from repro.engine.aggregates import finalize_aggregates, merge_partials
from repro.engine.payload import decode_table
from repro.engine.pipeline import WorkerResult
from repro.exchange.basic import ExchangeStats
from repro.engine.table import (
    Table,
    concat_tables,
    sort_table,
    table_num_rows,
    take_rows,
)
from repro.errors import ExecutionError, QueryTimeoutError, WorkerFailedError
from repro.plan.logical import LogicalPlan
from repro.plan.optimizer import OptimizerReport, optimize
from repro.plan.physical import JoinPhysicalPlan, PhysicalPlan, resolve_udf


@dataclass
class QueryStatistics:
    """Performance and cost statistics of one query execution."""

    num_workers: int
    memory_mib: int
    cold: bool
    #: Modelled time until every worker of the fleet was running.
    invocation_seconds: float
    #: Modelled execution time of the slowest / median worker.
    max_worker_seconds: float
    median_worker_seconds: float
    #: Modelled end-to-end query latency seen by the user.
    latency_seconds: float
    rows_scanned: int
    bytes_read: int
    get_requests: int
    #: Dollar cost breakdown.
    cost_lambda_duration: float
    cost_lambda_requests: float
    cost_s3_requests: float
    cost_sqs_requests: float
    #: Per-worker modelled execution durations, seconds.
    worker_durations: List[float] = field(default_factory=list)
    #: Late-materialization scan counters, summed over the fleet: row groups
    #: whose selection vector short-circuited, rows never fully decoded, and
    #: column-chunk downloads avoided.
    row_groups_shortcircuited: int = 0
    rows_decode_saved: int = 0
    column_chunks_skipped: int = 0
    #: Exchange-plane request/byte counters, summed over the fleet (non-zero
    #: only for plans with an exchange hop, e.g. the shuffle-aggregate and
    #: shuffle-join paths).
    exchange: ExchangeStats = field(default_factory=ExchangeStats)
    #: Join-wave counters, summed over the fleet (non-zero only for join
    #: plans): rows entering the probe/build sides of the join kernels after
    #: repartitioning, and rows the kernels produced.
    join_probe_rows: int = 0
    join_build_rows: int = 0
    join_output_rows: int = 0

    @property
    def cost_total(self) -> float:
        """Total dollar cost of the query."""
        return (
            self.cost_lambda_duration
            + self.cost_lambda_requests
            + self.cost_s3_requests
            + self.cost_sqs_requests
        )


@dataclass
class QueryResult:
    """Result of one query execution."""

    table: Table
    reduce_value: Optional[Any]
    statistics: QueryStatistics
    worker_results: List[WorkerResult]
    optimizer_report: Optional[OptimizerReport] = None

    def column(self, name: str) -> np.ndarray:
        """One result column as a NumPy array."""
        return np.asarray(self.table[name])

    def scalar(self) -> float:
        """The single value of a scalar (one row, one column) result."""
        if self.reduce_value is not None:
            return float(self.reduce_value)
        if len(self.table) != 1:
            raise ExecutionError(f"result has {len(self.table)} columns, expected 1")
        column = next(iter(self.table.values()))
        if len(column) != 1:
            raise ExecutionError(f"result has {len(column)} rows, expected 1")
        return float(column[0])

    @property
    def num_rows(self) -> int:
        """Number of result rows."""
        return table_num_rows(self.table)


class LambadaDriver:
    """Coordinates query execution over the serverless worker fleet."""

    def __init__(
        self,
        env: CloudEnvironment,
        memory_mib: int = 2048,
        function_name: str = WORKER_FUNCTION_NAME,
        result_queue: str = "lambada-result-queue",
        worker_timeout_seconds: float = 900.0,
        execution_mode: str = "serial",
        max_parallel_invocations: Optional[int] = None,
        shuffle_config: Optional["ShuffleConfig"] = None,
    ):
        """``execution_mode`` selects how the simulated fleet runs.

        ``"serial"`` (default) invokes the tree roots one after another, as the
        seed implementation did.  ``"threads"`` drives them through a thread
        pool: workers are independent pure functions over the (thread-safe)
        simulated services, so large-fleet runs stop paying serial Python
        overhead (but the GIL still serialises their NumPy-adjacent Python
        sections).  ``"processes"`` runs eligible fragments on a persistent
        spawn-based process pool with shared-memory input/result planes
        (:mod:`repro.driver.procpool`), the only mode whose wall-clock time
        actually scales with cores; plans the pool cannot run (registry UDFs,
        join schedules) and single-core hosts fall back transparently.
        Result ordering is deterministic in every mode — results are keyed
        and merged by worker id, never by arrival order.
        ``max_parallel_invocations`` bounds the thread pool, and doubles as a
        forced process-pool size (overriding the core-count default).
        """
        if execution_mode not in ("serial", "threads", "processes"):
            raise ValueError(f"unknown execution mode {execution_mode!r}")
        self.env = env
        self.memory_mib = memory_mib
        self.function_name = function_name
        self.result_queue = result_queue
        self.worker_timeout_seconds = worker_timeout_seconds
        self.execution_mode = execution_mode
        self.max_parallel_invocations = max_parallel_invocations
        self._pool = None
        self._pool_unavailable = False
        #: Configuration of the shuffle I/O plane used by join queries
        #: (:class:`~repro.driver.shuffle.ShuffleConfig`); ``None`` selects
        #: the write-combined default.
        self.shuffle_config = shuffle_config
        self._join_coordinator = None
        self.install()

    # -- installation -------------------------------------------------------------

    def install(self) -> None:
        """Deploy the worker function and create the result queue.

        This is the per-installation step of the usage model (§2.1); it incurs
        no recurring cost.
        """
        config = FunctionConfig(
            name=self.function_name,
            memory_mib=self.memory_mib,
            timeout_seconds=self.worker_timeout_seconds,
            region=self.env.region,
        )
        self.env.lambda_service.deploy(config, make_worker_handler(self.env))
        self.env.sqs.create_queue(self.result_queue)

    def set_memory(self, memory_mib: int) -> None:
        """Reconfigure the worker memory size (redeploys the function)."""
        self.memory_mib = memory_mib
        self.install()

    # -- query execution -----------------------------------------------------------

    def execute(
        self,
        plan: Union[LogicalPlan, PhysicalPlan, JoinPhysicalPlan],
        num_workers: Optional[int] = None,
        files_per_worker: Optional[int] = None,
        cold: bool = False,
        threads: int = 2,
        catalog: Optional["StatisticsCatalog"] = None,
        dataset_name: Optional[str] = None,
        max_worker_retries: int = 1,
    ) -> QueryResult:
        """Execute a query and return its result and statistics.

        ``num_workers`` and ``files_per_worker`` control the fleet size (the
        paper's ``W`` and ``F`` parameters); by default one worker per input
        file is used.  ``cold=True`` forces cold starts (fresh function
        instances), reproducing the paper's cold-run measurements.

        When a :class:`~repro.driver.catalog.StatisticsCatalog` and the
        dataset's catalog name are given, files whose min/max statistics cannot
        match the query's prune ranges are skipped entirely, so their workers
        are never invoked (the §5.3 central-statistics optimisation).

        Failed workers are retried up to ``max_worker_retries`` times before
        the query is aborted with :class:`~repro.errors.WorkerFailedError`.

        Join plans run through the multi-stage shuffle-join schedule, which
        sizes both map waves and the join wave from ``num_workers`` alone:
        ``files_per_worker`` is not consulted, a failed worker aborts the
        query without retries (the waves are barriered), and catalog-based
        file pruning is rejected explicitly (its single-dataset statistics
        cannot describe two relations).
        """
        report: Optional[OptimizerReport] = None
        if isinstance(plan, LogicalPlan):
            physical, report = optimize(plan)
        else:
            physical = plan

        if isinstance(physical, JoinPhysicalPlan):
            if catalog is not None or dataset_name is not None:
                raise ExecutionError(
                    "catalog-based file pruning is not supported for join plans"
                )
            return self._execute_join(
                physical, report, num_workers=num_workers, cold=cold
            )

        input_files = self._expand_paths(physical.input_files)
        if catalog is not None and dataset_name is not None:
            input_files = catalog.prune_paths(
                input_files, dataset_name, physical.worker_template.prune_ranges
            )
            if not input_files:
                # Every file is pruned by the central statistics: the query
                # result is empty and no worker needs to be started.
                return self._empty_result(physical, report, cold)
        if not input_files:
            raise ExecutionError("query has no input files")
        physical = PhysicalPlan(
            worker_template=physical.worker_template,
            driver=physical.driver,
            input_files=input_files,
        )

        if num_workers is None:
            if files_per_worker is not None:
                if files_per_worker <= 0:
                    raise ValueError("files_per_worker must be positive")
                num_workers = math.ceil(len(input_files) / files_per_worker)
            else:
                num_workers = len(input_files)
        num_workers = min(num_workers, len(input_files))

        worker_plans = physical.worker_plans(num_workers)
        query_id = uuid.uuid4().hex[:12]

        if cold:
            self.env.lambda_service.reset_warm_instances(self.function_name)

        payloads = [
            {
                "worker_id": worker_id,
                "plan": worker_plan.to_dict(),
                "result_queue": self.result_queue,
                "query_id": query_id,
                "function_name": self.function_name,
                "threads": threads,
            }
            for worker_id, worker_plan in enumerate(worker_plans)
        ]

        if self.execution_mode == "processes" and self._pool_supported(physical):
            pooled = self._execute_pooled(
                physical, payloads, report, cold, max_worker_retries
            )
            if pooled is not None:
                return pooled
            # Pool unavailable (single core / spawn failure): fall through to
            # the classic serial dispatch below.

        tree = build_invocation_tree(payloads)

        self.env.sqs.purge_queue(self.result_queue)
        self._invoke_tree(tree)

        messages = self._collect_messages(query_id, expected=len(payloads))
        by_worker = self._group_messages(messages)
        by_worker = self._retry_failures(by_worker, payloads, query_id, max_worker_retries)
        worker_results = self._parse_results(by_worker, expected=len(payloads))

        table, reduce_value = self._merge(physical, worker_results)
        statistics = self._build_statistics(
            physical, worker_results, num_workers=len(payloads), cold=cold
        )
        return QueryResult(
            table=table,
            reduce_value=reduce_value,
            statistics=statistics,
            worker_results=worker_results,
            optimizer_report=report,
        )

    def _execute_join(
        self,
        physical: JoinPhysicalPlan,
        report: Optional[OptimizerReport],
        num_workers: Optional[int],
        cold: bool,
    ) -> QueryResult:
        """Execute a join plan through the shuffle-join coordinator.

        The multi-stage schedule (two map waves repartitioning each side by
        join-key hash through the write-combined exchange, a join wave
        probing the slices and computing the partial aggregates placed above
        the join) runs in :class:`~repro.driver.shuffle.
        ShuffleJoinCoordinator`; this wrapper folds its worker results into
        the same :class:`QueryStatistics` shape scan queries report, with the
        exchange and join counters threaded through.
        """
        from repro.driver.shuffle import (
            JOIN_MAP_FUNCTION_NAME,
            JOIN_REDUCE_FUNCTION_NAME,
            ShuffleJoinCoordinator,
        )

        if self._join_coordinator is None:
            self._join_coordinator = ShuffleJoinCoordinator(
                self.env, memory_mib=self.memory_mib, config=self.shuffle_config
            )
        if cold:
            for name in (JOIN_MAP_FUNCTION_NAME, JOIN_REDUCE_FUNCTION_NAME):
                self.env.lambda_service.reset_warm_instances(name)
        table, join_stats, worker_results = self._join_coordinator.execute(
            physical, num_workers=num_workers
        )

        prices = self.env.ledger.prices
        durations = [result.duration_seconds for result in worker_results]
        invocation = TreeInvocationModel(region=self.env.region)
        num_total = join_stats.num_workers
        result_poll_seconds = 0.3
        latency = (
            invocation.time_to_start_all(num_total, cold=cold)
            + join_stats.modelled_latency_seconds
            + result_poll_seconds
        )
        get_requests = sum(result.get_requests for result in worker_results)
        exchange = join_stats.exchange
        cost_s3 = prices.s3_get_cost(
            get_requests + exchange.get_requests + exchange.head_requests
        ) + prices.s3_put_cost(exchange.put_requests + exchange.list_requests)
        sqs_requests = num_total + math.ceil(num_total / 10) + 2
        statistics = QueryStatistics(
            num_workers=num_total,
            memory_mib=self.memory_mib,
            cold=cold,
            invocation_seconds=invocation.time_to_start_all(num_total, cold=cold),
            max_worker_seconds=float(max(durations)) if durations else 0.0,
            median_worker_seconds=float(np.median(durations)) if durations else 0.0,
            latency_seconds=latency,
            rows_scanned=join_stats.rows_scanned,
            bytes_read=sum(result.bytes_read for result in worker_results),
            get_requests=get_requests,
            cost_lambda_duration=sum(
                prices.lambda_duration_cost(self.memory_mib, duration)
                for duration in durations
            ),
            cost_lambda_requests=prices.lambda_invocation_cost(num_total),
            cost_s3_requests=cost_s3,
            cost_sqs_requests=prices.sqs_cost(sqs_requests),
            worker_durations=durations,
            exchange=exchange,
            join_probe_rows=join_stats.join_probe_rows,
            join_build_rows=join_stats.join_build_rows,
            join_output_rows=join_stats.join_output_rows,
        )
        return QueryResult(
            table=table,
            reduce_value=None,
            statistics=statistics,
            worker_results=worker_results,
            optimizer_report=report,
        )

    # -- process-pool execution plane ------------------------------------------------

    def _pool_supported(self, physical: PhysicalPlan) -> bool:
        """Whether the process pool can run this plan's fragments.

        Registry UDFs live in the driver process only (the registry is
        per-process state) and cannot be resolved inside spawned children;
        the built-in reduce UDFs are module-level and travel by name.
        """
        from repro.plan.physical import BUILTIN_REDUCE_UDFS

        template = physical.worker_template
        if template.predicate_udf is not None or template.map_udf is not None:
            return False
        if template.reduce_udf and template.reduce_udf not in BUILTIN_REDUCE_UDFS:
            return False
        return True

    def _ensure_pool(self):
        """The warm process pool, spawning it on first use; ``None`` on fallback.

        Mirrors the threads-mode single-core fallback: on a single-core host
        (unless a pool size was forced) or when spawning fails (e.g. a
        sandboxed CI runner), ``processes`` mode degrades to serial dispatch
        with a one-line warning instead of raising.
        """
        if self._pool is not None:
            return self._pool
        if self._pool_unavailable:
            return None
        size = self.max_parallel_invocations or (os.cpu_count() or 1)
        if size <= 1 and self.max_parallel_invocations is None:
            self._pool_unavailable = True
            warnings.warn(
                "processes execution mode: single-core host, "
                "falling back to serial dispatch",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        from repro.driver.procpool import ProcessWorkerPool

        try:
            self._pool = ProcessWorkerPool(size=min(size, 16))
        except Exception as exc:  # noqa: BLE001 - degrade, don't fail the query
            self._pool_unavailable = True
            warnings.warn(
                f"processes execution mode: worker pool failed to start ({exc}); "
                "falling back to serial dispatch",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return self._pool

    def close(self) -> None:
        """Shut down the process pool, if one was spawned; idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def _execute_pooled(
        self,
        physical: PhysicalPlan,
        payloads: List[Dict],
        report: Optional[OptimizerReport],
        cold: bool,
        max_worker_retries: int,
    ) -> Optional[QueryResult]:
        """Run the fleet on the process pool; ``None`` means "fall back".

        The SQS control plane is bypassed — worker results come back through
        shared-memory segments — but the *modelled* statistics are built by
        the exact same ``_parse_results``/``_merge``/``_build_statistics``
        tail as the classic path, and every pool task is metered through
        ``LambdaService.account_invocation``, so invocation cold/warm
        bookkeeping, the ledger, and the cost model stay identical.
        """
        pool = self._ensure_pool()
        if pool is None:
            return None

        all_files = sorted({path for p in payloads for path in p["plan"]["files"]})
        export: Optional[SharedObjectExport] = None
        attached: List[Any] = []
        by_worker: Dict[int, Dict] = {}
        try:
            export = SharedObjectExport.create(self.env.s3, all_files)
            by_worker.update(self._run_pooled_round(pool, export, payloads, attached))
            payload_by_worker = {p["worker_id"]: p for p in payloads}
            for _ in range(max_worker_retries):
                failed = [
                    payload_by_worker[wid]
                    for wid, msg in sorted(by_worker.items())
                    if msg.get("status") != "ok"
                ]
                if not failed:
                    break
                by_worker.update(
                    self._run_pooled_round(pool, export, failed, attached)
                )
            worker_results = self._parse_results(by_worker, expected=len(payloads))

            # Fold the workers' simulated S3 traffic into the ledger (the
            # classic path meters it inside ObjectStore per request).
            now = self.env.clock.now
            self.env.ledger.record(
                "s3", "get_requests",
                sum(r.get_requests for r in worker_results), now,
            )
            self.env.ledger.record(
                "s3", "bytes_read",
                sum(r.bytes_read for r in worker_results), now,
            )

            table, reduce_value = self._merge(physical, worker_results)
            statistics = self._build_statistics(
                physical, worker_results, num_workers=len(payloads), cold=cold
            )
            # Detach the exposed partials from shared memory before the
            # segments are unlinked: re-encode into the payload form the
            # classic path ships (copies the column data out).
            from repro.engine.payload import encode_table

            for result in worker_results:
                if result.partial:
                    result.partial = encode_table(result.partial, force_binary=True)
            return QueryResult(
                table=table,
                reduce_value=reduce_value,
                statistics=statistics,
                worker_results=worker_results,
                optimizer_report=report,
            )
        finally:
            # Release the zero-copy views BEFORE unmapping the segments.  On
            # the success path the exposed partials were already re-encoded;
            # on the failure path the raised exception's traceback would keep
            # this frame (and hence the views) alive, making SharedMemory's
            # finalizer raise BufferError from the garbage collector.
            for message in by_worker.values():
                result_payload = message.get("result")
                if isinstance(result_payload, dict):
                    partial = result_payload.get("partial")
                    if isinstance(partial, dict):
                        partial.clear()
            for segment in attached:
                try:
                    segment.close()
                except BufferError:
                    pass
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
            if export is not None:
                pool.forget_segments([export.name])
                export.close()

    def _run_pooled_round(
        self,
        pool,
        export: SharedObjectExport,
        payloads: List[Dict],
        attached: List[Any],
    ) -> Dict[int, Dict]:
        """Dispatch one wave of payloads to the pool and meter each attempt.

        Returns classic-shaped result messages keyed by worker id, so the
        downstream retry/parse machinery is shared with the SQS path.
        Invocations are accounted in worker-id order (the dispatch order),
        keeping cold/warm assignment deterministic like serial invocation.
        """
        tasks = [
            (
                "run",
                payload["worker_id"],
                payload["plan"],
                export.name,
                export.directory,
                self.memory_mib,
                payload.get("threads", 2),
            )
            for payload in payloads
        ]
        raw = pool.run_tasks(tasks)
        by_worker: Dict[int, Dict] = {}
        for payload in payloads:
            worker_id = payload["worker_id"]
            message = self._pooled_message(raw.get(worker_id), worker_id, attached)
            # Meter the attempt exactly like an invocation of the in-process
            # handler: cold/warm bookkeeping, ledger, invocation log, and the
            # cold execution penalty on the modelled duration.
            invocation = self.env.lambda_service.account_invocation(
                self.function_name,
                duration_seconds=message.get("result", {}).get("duration_seconds", 0.0),
                from_driver=True,
                cold_penalty=COLD_EXECUTION_PENALTY,
            )
            if message.get("status") == "ok":
                message["result"]["duration_seconds"] = invocation.duration_seconds
            by_worker[worker_id] = message
        return by_worker

    def _pooled_message(
        self, raw: Optional[tuple], worker_id: int, attached: List[Any]
    ) -> Dict:
        """Convert one pool child message into the classic result-message shape.

        Result segments are attached here and decoded as zero-copy views; the
        attached handles collect in ``attached`` so ``_execute_pooled`` can
        unlink every segment when the query finishes.
        """
        if raw is None:
            return {
                "worker_id": worker_id,
                "status": "error",
                "error": "no result from worker pool",
            }
        if raw[0] == "err":
            return {"worker_id": worker_id, "status": "error", "error": raw[2]}
        _, _, payload, result_segment, nbytes = raw
        if result_segment is not None:
            from multiprocessing import shared_memory

            from repro.exchange.codec import decode_partition

            segment = shared_memory.SharedMemory(name=result_segment)
            attached.append(segment)
            payload["partial"] = decode_partition(segment.buf[:nbytes], copy=False)
        else:
            payload["partial"] = {}
        return {"worker_id": worker_id, "status": "ok", "result": payload}

    # -- helpers --------------------------------------------------------------------

    def _invoke_tree(self, tree: List[Dict]) -> None:
        """Invoke the tree roots, serially or through the thread pool."""
        # On a single-core host the pool cannot overlap the workers' numpy
        # sections and only adds dispatch overhead (~10% on TPC-H Q1 at 1M
        # rows, see README "Performance notes"), so fall back to serial
        # dispatch unless the caller forced a pool size explicitly.
        single_core = (os.cpu_count() or 1) <= 1 and self.max_parallel_invocations is None
        if self.execution_mode != "threads" or len(tree) <= 1 or single_core:
            for parent in tree:
                self.env.lambda_service.invoke(self.function_name, parent, from_driver=True)
            return
        max_workers = self.max_parallel_invocations or min(
            32, 4 * (os.cpu_count() or 4), len(tree)
        )
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(
                    self.env.lambda_service.invoke,
                    self.function_name,
                    parent,
                    from_driver=True,
                )
                for parent in tree
            ]
            for future in futures:
                future.result()

    def _expand_paths(self, paths: Sequence[str]) -> List[str]:
        """Expand glob patterns against the object store.

        Globs over missing buckets expand to nothing (the caller then reports
        "no input files"), mirroring how a CLI glob over a missing directory
        behaves.
        """
        from repro.errors import NoSuchBucketError

        expanded: List[str] = []
        for path in paths:
            if "*" in path:
                try:
                    expanded.extend(self.env.s3.glob(path))
                except NoSuchBucketError:
                    continue
            else:
                expanded.append(path)
        return expanded

    def _collect_messages(self, query_id: str, expected: int) -> List[Dict]:
        """Poll the result queue until all workers have reported."""
        messages: List[Dict] = []
        max_polls = max(expected * 4, 64)
        for _ in range(max_polls):
            batch = self.env.sqs.receive_messages(self.result_queue, max_messages=10)
            for message in batch:
                payload = message.json()
                if payload.get("query_id") != query_id:
                    continue  # stale message from an earlier query
                messages.append(payload)
            if len(messages) >= expected:
                return messages
        raise QueryTimeoutError(
            f"received {len(messages)} of {expected} worker results before giving up"
        )

    def _group_messages(self, messages: List[Dict]) -> Dict[int, Dict]:
        """Group queue messages by worker id, fetching spilled payloads from S3."""
        by_worker: Dict[int, Dict] = {}
        for message in messages:
            if "result_s3" in message:
                bucket, key = parse_s3_path(message["result_s3"])
                raw = self.env.s3.get_object(bucket, key).data
                message = json.loads(raw.decode("utf-8"))
            by_worker[message["worker_id"]] = message
        return by_worker

    def _retry_failures(
        self,
        by_worker: Dict[int, Dict],
        payloads: List[Dict],
        query_id: str,
        max_worker_retries: int,
    ) -> Dict[int, Dict]:
        """Re-invoke failed workers (flat, from the driver) up to the retry limit."""
        payload_by_worker = {payload["worker_id"]: payload for payload in payloads}
        for _ in range(max_worker_retries):
            failed = [wid for wid, msg in by_worker.items() if msg.get("status") != "ok"]
            if not failed:
                break
            for worker_id in failed:
                retry_payload = dict(payload_by_worker[worker_id])
                retry_payload.pop("children", None)
                self.env.lambda_service.invoke(
                    self.function_name, retry_payload, from_driver=True
                )
            retry_messages = self._collect_messages(query_id, expected=len(failed))
            by_worker.update(self._group_messages(retry_messages))
        return by_worker

    def _parse_results(self, by_worker: Dict[int, Dict], expected: int) -> List[WorkerResult]:
        """Turn grouped messages into WorkerResults, surfacing remaining failures."""
        failures = [m for m in by_worker.values() if m.get("status") != "ok"]
        if failures:
            first = failures[0]
            raise WorkerFailedError(first["worker_id"], first.get("error", "unknown error"))
        if len(by_worker) != expected:
            raise QueryTimeoutError(
                f"got results from {len(by_worker)} distinct workers, expected {expected}"
            )
        return [
            WorkerResult.from_payload(by_worker[worker_id]["result"])
            for worker_id in sorted(by_worker)
        ]

    def _empty_result(
        self,
        physical: PhysicalPlan,
        report: Optional[OptimizerReport],
        cold: bool,
    ) -> QueryResult:
        """Result of a query whose files were all pruned by the catalog."""
        table, reduce_value = self._merge(physical, [])
        statistics = QueryStatistics(
            num_workers=0,
            memory_mib=self.memory_mib,
            cold=cold,
            invocation_seconds=0.0,
            max_worker_seconds=0.0,
            median_worker_seconds=0.0,
            latency_seconds=0.0,
            rows_scanned=0,
            bytes_read=0,
            get_requests=0,
            cost_lambda_duration=0.0,
            cost_lambda_requests=0.0,
            cost_s3_requests=0.0,
            cost_sqs_requests=0.0,
            worker_durations=[],
        )
        return QueryResult(
            table=table,
            reduce_value=reduce_value,
            statistics=statistics,
            worker_results=[],
            optimizer_report=report,
        )

    def _merge(
        self, physical: PhysicalPlan, worker_results: List[WorkerResult]
    ) -> Tuple[Table, Optional[Any]]:
        """Driver-scope final phase: merge partials, finalise, sort, limit."""
        driver_plan = physical.driver
        template = physical.worker_template

        if template.reduce_udf:
            reduce_fn = resolve_udf(template.reduce_udf)
            values = [
                result.reduce_value
                for result in worker_results
                if result.reduce_value is not None
            ]
            reduce_value = functools.reduce(reduce_fn, values) if values else None
            return {}, reduce_value

        # Views, not copies: the merge only concatenates the partials (one
        # concatenate + one vectorised group-by pass), so decoded columns —
        # including shared-memory views from the process pool — are never
        # mutated in place.
        partials = [decode_table(result.partial, copy=False) for result in worker_results]
        if driver_plan.collect_rows:
            table = concat_tables(partials)
        else:
            merged = merge_partials(partials, driver_plan.group_by, template.aggregates)
            table = finalize_aggregates(
                merged, driver_plan.group_by, driver_plan.final_aggregates
            )
        if driver_plan.order_by:
            table = sort_table(table, driver_plan.order_by, driver_plan.descending)
        if driver_plan.limit is not None:
            count = min(driver_plan.limit, table_num_rows(table))
            table = take_rows(table, np.arange(count))
        return table, None

    def _build_statistics(
        self,
        physical: PhysicalPlan,
        worker_results: List[WorkerResult],
        num_workers: int,
        cold: bool,
    ) -> QueryStatistics:
        """Compute modelled latency and dollar cost of the query."""
        prices = self.env.ledger.prices
        durations = [result.duration_seconds for result in worker_results]
        invocation = TreeInvocationModel(region=self.env.region)
        start_times = invocation.worker_start_times(num_workers, cold=cold)
        completion = start_times[: len(durations)] + np.asarray(durations)
        # Result collection: one additional round of SQS polling.
        result_poll_seconds = 0.3
        latency = float(completion.max()) + result_poll_seconds if durations else 0.0

        rows_scanned = sum(result.rows_scanned for result in worker_results)
        bytes_read = sum(result.bytes_read for result in worker_results)
        get_requests = sum(result.get_requests for result in worker_results)
        shortcircuited = sum(result.row_groups_shortcircuited for result in worker_results)
        decode_saved = sum(result.rows_decode_saved for result in worker_results)
        chunks_skipped = sum(result.column_chunks_skipped for result in worker_results)
        exchange = ExchangeStats()
        for result in worker_results:
            if result.exchange_stats:
                exchange.merge(ExchangeStats.from_dict(result.exchange_stats))

        cost_lambda_duration = sum(
            prices.lambda_duration_cost(self.memory_mib, duration) for duration in durations
        )
        cost_lambda_requests = prices.lambda_invocation_cost(num_workers)
        cost_s3 = prices.s3_get_cost(get_requests)
        # Each worker sends one result message; the driver polls in batches.
        sqs_requests = num_workers + math.ceil(num_workers / 10) + 1
        cost_sqs = prices.sqs_cost(sqs_requests)

        return QueryStatistics(
            num_workers=num_workers,
            memory_mib=self.memory_mib,
            cold=cold,
            invocation_seconds=invocation.time_to_start_all(num_workers, cold=cold),
            max_worker_seconds=float(max(durations)) if durations else 0.0,
            median_worker_seconds=float(np.median(durations)) if durations else 0.0,
            latency_seconds=latency,
            rows_scanned=rows_scanned,
            bytes_read=bytes_read,
            get_requests=get_requests,
            cost_lambda_duration=cost_lambda_duration,
            cost_lambda_requests=cost_lambda_requests,
            cost_s3_requests=cost_s3,
            cost_sqs_requests=cost_sqs,
            worker_durations=durations,
            row_groups_shortcircuited=shortcircuited,
            rows_decode_saved=decode_saved,
            column_chunks_skipped=chunks_skipped,
            exchange=exchange,
        )
