"""Shuffle-based (repartitioned) aggregation across two waves of workers.

The driver-merge aggregation path (``LambadaDriver.execute``) is ideal for the
paper's evaluation queries, whose results have a handful of groups.  For
high-cardinality group-bys the driver would become the bottleneck; the paper's
exchange operator exists precisely so that such queries can repartition data
among the serverless workers through S3.

:class:`ShuffleAggregateCoordinator` implements that execution strategy as two
waves of serverless function invocations:

* **map wave** — each worker scans its files, applies the filter, computes
  per-group partial aggregates, hash-partitions them by the group keys, and
  writes one partition object per receiver to S3 (using the multi-bucket
  naming scheme of §4.4.1 to stay clear of per-bucket rate limits).  The
  partition objects use the single-pass fast shuffle codec
  (:mod:`repro.exchange.codec`); the reduce side sniffs the format byte, so
  legacy LPQ partition objects from earlier runs still decode;
* **reduce wave** — each worker reads the partition objects addressed to it,
  merges the partial aggregates of its disjoint share of the groups, and
  returns its result rows to the driver through SQS (spilling to S3 when
  large).

The driver only concatenates the disjoint reduce outputs and finalises derived
aggregates (``avg``), so its work is proportional to the result size of its
own share, not to the number of groups.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.environment import CloudEnvironment
from repro.cloud.lambda_service import FunctionConfig, InvocationContext
from repro.driver.worker import RESULT_BUCKET, RESULT_SPILL_BYTES
from repro.engine.aggregates import finalize_aggregates, merge_partials, partial_aggregate
from repro.engine.payload import decode_table, encode_table
from repro.engine.scan import S3ScanOperator, ScanConfig
from repro.engine.table import (
    Table,
    concat_tables,
    filter_table,
    sort_table,
    table_num_rows,
)
from repro.errors import ExecutionError, QueryTimeoutError, WorkerFailedError
from repro.exchange.basic import deserialize_partition, serialize_partition
from repro.exchange.naming import MultiBucketNaming
from repro.exchange.partition import hash_partition
from repro.plan.expressions import evaluate, expression_from_dict, expression_to_dict
from repro.plan.logical import AggregateSpec
from repro.plan.optimizer import _decompose_aggregates
from repro.plan.physical import PruneRange

MAP_FUNCTION_NAME = "lambada-shuffle-map"
REDUCE_FUNCTION_NAME = "lambada-shuffle-reduce"
SHUFFLE_RESULT_QUEUE = "lambada-shuffle-results"


@dataclass
class ShuffleStatistics:
    """Statistics of one shuffle-aggregation execution."""

    map_workers: int
    reduce_workers: int
    rows_scanned: int
    partition_objects_written: int
    partition_objects_read: int
    result_rows: int


def _make_map_handler(env: CloudEnvironment, naming_by_query: Dict[str, MultiBucketNaming]):
    """Handler of the map-wave function."""

    def handler(event: Dict, context: InvocationContext) -> Dict:
        query_id = event["query_id"]
        naming = naming_by_query[query_id]
        worker_id = event["worker_id"]
        group_by = list(event["group_by"])
        partials_specs = [AggregateSpec.from_dict(item) for item in event["aggregates"]]
        predicate = expression_from_dict(event.get("predicate"))
        prune_ranges = [PruneRange.from_dict(item) for item in event.get("prune_ranges", [])]
        num_partitions = event["num_partitions"]

        scan = S3ScanOperator(
            env.s3,
            files=event["files"],
            columns=event.get("columns") or None,
            prune_ranges=prune_ranges,
            config=ScanConfig(memory_mib=context.memory_mib),
            bandwidth=env.bandwidth,
        )
        partials: List[Table] = []
        for chunk in scan.scan():
            if predicate is not None:
                chunk = filter_table(chunk, np.asarray(evaluate(predicate, chunk), dtype=bool))
            partials.append(partial_aggregate(chunk, group_by, partials_specs))
        merged = merge_partials(partials, group_by, partials_specs)

        partitions = hash_partition(merged, group_by, num_partitions)
        written = 0
        for receiver in range(num_partitions):
            part = partitions.get(receiver, {})
            data = serialize_partition(part, fast=True)
            env.s3.put_path(naming.path(worker_id, receiver), data)
            written += 1
        context.charge(scan.modelled_seconds())
        message = {
            "query_id": query_id,
            "worker_id": worker_id,
            "status": "ok",
            "rows_scanned": scan.counters.rows_scanned,
            "partitions_written": written,
        }
        env.sqs.send_json(event["result_queue"], message)
        return message

    return handler


def _make_reduce_handler(env: CloudEnvironment, naming_by_query: Dict[str, MultiBucketNaming]):
    """Handler of the reduce-wave function."""

    def handler(event: Dict, context: InvocationContext) -> Dict:
        import json

        query_id = event["query_id"]
        naming = naming_by_query[query_id]
        partition = event["partition"]
        senders = event["senders"]
        group_by = list(event["group_by"])
        partials_specs = [AggregateSpec.from_dict(item) for item in event["aggregates"]]

        pieces: List[Table] = []
        objects_read = 0
        for sender in senders:
            data = env.s3.get_path(naming.path(sender, partition)).data
            objects_read += 1
            piece = deserialize_partition(data)
            if table_num_rows(piece):
                pieces.append(piece)
        merged = merge_partials(pieces, group_by, partials_specs)
        context.charge(0.1 + 0.001 * objects_read)

        payload = {
            "query_id": query_id,
            "worker_id": partition,
            "status": "ok",
            "objects_read": objects_read,
            "result": encode_table(merged),
        }
        encoded = json.dumps(payload).encode("utf-8")
        if len(encoded) > RESULT_SPILL_BYTES:
            env.s3.ensure_bucket(RESULT_BUCKET)
            key = f"{query_id}/reduce-{partition}.json"
            env.s3.put_object(RESULT_BUCKET, key, encoded)
            env.sqs.send_json(
                event["result_queue"],
                {
                    "query_id": query_id,
                    "worker_id": partition,
                    "status": "ok",
                    "objects_read": objects_read,
                    "result_s3": f"s3://{RESULT_BUCKET}/{key}",
                },
            )
        else:
            # Reuse the bytes already serialised for the spill-size check.
            env.sqs.send_message(event["result_queue"], encoded.decode("utf-8"))
        return payload

    return handler


class ShuffleAggregateCoordinator:
    """Coordinates two-wave (map + reduce) aggregation over serverless workers."""

    def __init__(
        self,
        env: CloudEnvironment,
        memory_mib: int = 2048,
        num_buckets: int = 10,
        result_queue: str = SHUFFLE_RESULT_QUEUE,
    ):
        self.env = env
        self.memory_mib = memory_mib
        self.num_buckets = num_buckets
        self.result_queue = result_queue
        self._naming_by_query: Dict[str, MultiBucketNaming] = {}
        env.sqs.create_queue(result_queue)
        env.lambda_service.deploy(
            FunctionConfig(name=MAP_FUNCTION_NAME, memory_mib=memory_mib),
            _make_map_handler(env, self._naming_by_query),
        )
        env.lambda_service.deploy(
            FunctionConfig(name=REDUCE_FUNCTION_NAME, memory_mib=memory_mib),
            _make_reduce_handler(env, self._naming_by_query),
        )

    # -- execution ------------------------------------------------------------------

    def execute(
        self,
        paths: Sequence[str],
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        predicate=None,
        columns: Optional[Sequence[str]] = None,
        num_workers: Optional[int] = None,
        order_by: Optional[Sequence[str]] = None,
    ):
        """Run a repartitioned group-by aggregation and return (table, statistics)."""
        paths = self._expand(paths)
        if not paths:
            raise ExecutionError("shuffle aggregation has no input files")
        if not group_by:
            raise ExecutionError("shuffle aggregation requires group-by keys")
        num_workers = num_workers or len(paths)
        num_workers = min(num_workers, len(paths))

        partials, finals = _decompose_aggregates(list(aggregates))
        query_id = uuid.uuid4().hex[:12]
        naming = MultiBucketNaming(
            num_buckets=self.num_buckets,
            bucket_prefix="shuffle-b",
            prefix=f"{query_id}/",
        )
        for bucket in naming.buckets():
            self.env.s3.ensure_bucket(bucket)
        self._naming_by_query[query_id] = naming

        # -- map wave -------------------------------------------------------------
        assignments = [paths[i::num_workers] for i in range(num_workers)]
        assignments = [files for files in assignments if files]
        for worker_id, files in enumerate(assignments):
            event = {
                "query_id": query_id,
                "worker_id": worker_id,
                "files": files,
                "columns": list(columns) if columns else None,
                "predicate": expression_to_dict(predicate),
                "prune_ranges": [],
                "group_by": list(group_by),
                "aggregates": [spec.to_dict() for spec in partials],
                "num_partitions": len(assignments),
                "result_queue": self.result_queue,
            }
            self.env.lambda_service.invoke(MAP_FUNCTION_NAME, event)
        map_messages = self._collect(query_id, expected=len(assignments))
        rows_scanned = sum(message.get("rows_scanned", 0) for message in map_messages)
        objects_written = sum(message.get("partitions_written", 0) for message in map_messages)

        # -- reduce wave ------------------------------------------------------------
        for partition in range(len(assignments)):
            event = {
                "query_id": query_id,
                "partition": partition,
                "senders": list(range(len(assignments))),
                "group_by": list(group_by),
                "aggregates": [spec.to_dict() for spec in partials],
                "result_queue": self.result_queue,
            }
            self.env.lambda_service.invoke(REDUCE_FUNCTION_NAME, event)
        reduce_messages = self._collect(query_id, expected=len(assignments))
        objects_read = sum(message.get("objects_read", 0) for message in reduce_messages)

        pieces = []
        for message in reduce_messages:
            if "result_s3" in message:
                import json

                from repro.cloud.s3 import parse_s3_path

                bucket, key = parse_s3_path(message["result_s3"])
                message = json.loads(self.env.s3.get_object(bucket, key).data.decode("utf-8"))
            pieces.append(decode_table(message["result"]))
        merged = concat_tables([piece for piece in pieces if table_num_rows(piece)])
        result = finalize_aggregates(merged, list(group_by), list(finals))
        if order_by:
            result = sort_table(result, list(order_by))

        self._naming_by_query.pop(query_id, None)
        statistics = ShuffleStatistics(
            map_workers=len(assignments),
            reduce_workers=len(assignments),
            rows_scanned=rows_scanned,
            partition_objects_written=objects_written,
            partition_objects_read=objects_read,
            result_rows=table_num_rows(result),
        )
        return result, statistics

    # -- helpers --------------------------------------------------------------------------

    def _expand(self, paths: Sequence[str]) -> List[str]:
        expanded: List[str] = []
        for path in paths:
            if "*" in path:
                expanded.extend(self.env.s3.glob(path))
            else:
                expanded.append(path)
        return expanded

    def _collect(self, query_id: str, expected: int) -> List[Dict]:
        messages: List[Dict] = []
        for _ in range(max(64, expected * 4)):
            for message in self.env.sqs.receive_messages(self.result_queue, max_messages=10):
                payload = message.json()
                if payload.get("query_id") != query_id:
                    continue
                if payload.get("status") != "ok":
                    raise WorkerFailedError(payload.get("worker_id", -1),
                                            payload.get("error", "unknown error"))
                messages.append(payload)
            if len(messages) >= expected:
                return messages
        raise QueryTimeoutError(
            f"received {len(messages)} of {expected} shuffle results before giving up"
        )
